// Contention-scaling + straggler-mitigation bench for the traffic engine.
//
// Two experiments, both fully deterministic in simulated time:
//
//  1. Contention scaling: the same per-tenant open-loop workload (Poisson
//     arrivals, mixed raw/kernel jobs) run at 1 -> 10^4 concurrent tenants
//     against one fixed-size cluster. As the offered load crosses the
//     cluster's service capacity, per-tenant sojourn quantiles collapse
//     from flat (~isolated latency) to queueing-dominated — the open-loop
//     behaviour a closed-loop sweep can never show.
//
//  2. Straggler mitigation A/B: a 64-tenant run with two storage servers
//     slowed 32x (ClusterConfig straggler injection), measured with the
//     straggler-aware client scheduler off, with hedged requests, and with
//     hedging + re-routing. Hedging must cut the aggregate p99 sojourn to
//     at most kHedgeP99Budget of the unmitigated p99 — the binary exits
//     nonzero otherwise, making this the traffic perf-smoke gate in CI.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_traffic.json by default) that CI uploads as an artifact.
//
// Usage: bench_traffic [--max-tenants=10000] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "traffic/engine.hpp"

namespace {

using das::traffic::TrafficConfig;
using das::traffic::TrafficReport;

/// Mitigation must cut p99 to at most this fraction of the baseline.
constexpr double kHedgeP99Budget = 0.7;

struct ScalePoint {
  std::uint32_t tenants = 0;
  TrafficReport report;
  double wall_seconds = 0.0;
};

TrafficConfig scaling_config(std::uint32_t tenants) {
  TrafficConfig config;  // default cluster: 12 storage + 12 compute nodes
  config.arrivals.tenants = tenants;
  config.arrivals.jobs_per_tenant = 4;
  config.arrivals.rate_hz = 2.0;
  config.arrivals.job_bytes = 2ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 4;
  config.arrivals.dataset_strips = 4096;
  config.replication = 2;
  return config;
}

TrafficConfig straggler_config(bool hedge, bool reroute) {
  TrafficConfig config;
  config.cluster.straggler_count = 2;
  config.cluster.straggler_slowdown = 32.0;
  config.arrivals.tenants = 64;
  config.arrivals.jobs_per_tenant = 12;
  config.arrivals.rate_hz = 3.0;
  config.arrivals.job_bytes = 4ULL << 20;
  config.arrivals.strip_bytes = 1ULL << 20;
  config.arrivals.datasets = 2;
  config.arrivals.dataset_strips = 2048;
  config.replication = 3;  // replica holders to hedge/re-route to
  config.straggler.hedge = hedge;
  config.straggler.reroute = reroute;
  return config;
}

ScalePoint run_point(const TrafficConfig& config) {
  ScalePoint point;
  point.tenants = config.arrivals.tenants;
  const auto start = std::chrono::steady_clock::now();
  point.report = das::traffic::run_traffic(config);
  const auto stop = std::chrono::steady_clock::now();
  point.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return point;
}

/// Smallest and largest per-tenant p99 sojourn (fairness spread).
void tenant_p99_range(const TrafficReport& report, double* lo, double* hi) {
  *lo = 0.0;
  *hi = 0.0;
  bool first = true;
  for (const das::traffic::TenantStats& t : report.tenants) {
    if (t.sojourn.count() == 0) continue;
    const double p99 = t.sojourn.summary().p99;
    if (first || p99 < *lo) *lo = p99;
    if (first || p99 > *hi) *hi = p99;
    first = false;
  }
}

std::string point_json(const ScalePoint& point) {
  double lo = 0.0, hi = 0.0;
  tenant_p99_range(point.report, &lo, &hi);
  const das::sim::HistogramSummary s = point.report.total.sojourn.summary();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"tenants\": %u, \"jobs\": %llu, \"makespan_s\": %.6f,\n"
      "     \"sojourn_p50_s\": %.6f, \"sojourn_p95_s\": %.6f, "
      "\"sojourn_p99_s\": %.6f,\n"
      "     \"tenant_p99_min_s\": %.6f, \"tenant_p99_max_s\": %.6f,\n"
      "     \"sim_events\": %llu, \"wall_s\": %.3f}",
      point.tenants,
      static_cast<unsigned long long>(point.report.total.jobs_completed),
      point.report.makespan_s, s.p50, s.p95, s.p99, lo, hi,
      static_cast<unsigned long long>(point.report.events),
      point.wall_seconds);
  return buf;
}

std::string mitigation_json(const char* label, const TrafficReport& report) {
  const das::sim::HistogramSummary s = report.total.sojourn.summary();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"sojourn_p50_s\": %.6f, \"sojourn_p95_s\": %.6f, "
      "\"sojourn_p99_s\": %.6f,\n"
      "     \"reroutes\": %llu, \"hedges_issued\": %llu, "
      "\"hedges_won\": %llu, \"wasted_bytes\": %llu}",
      label, s.p50, s.p95, s.p99,
      static_cast<unsigned long long>(report.reroutes),
      static_cast<unsigned long long>(report.hedges_issued),
      static_cast<unsigned long long>(report.hedges_won),
      static_cast<unsigned long long>(report.wasted_bytes));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t max_tenants = 10'000;
  std::string out_path = "BENCH_traffic.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--max-tenants=", 14) == 0) {
      max_tenants =
          static_cast<std::uint32_t>(std::strtoul(arg + 14, nullptr, 10));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--max-tenants=N] [--out=FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  // Experiment 1: contention scaling, decade steps up to max_tenants.
  std::vector<ScalePoint> points;
  for (std::uint32_t tenants = 1; tenants <= max_tenants; tenants *= 10) {
    points.push_back(run_point(scaling_config(tenants)));
    const das::sim::HistogramSummary s =
        points.back().report.total.sojourn.summary();
    std::printf("tenants=%5u  jobs=%6llu  p50=%8.3fs  p99=%8.3fs  "
                "makespan=%9.3fs  wall=%.2fs\n",
                tenants,
                static_cast<unsigned long long>(
                    points.back().report.total.jobs_completed),
                s.p50, s.p99, points.back().report.makespan_s,
                points.back().wall_seconds);
  }

  // Experiment 2: injected slow servers, mitigation off / hedge / both.
  const TrafficReport baseline =
      run_point(straggler_config(false, false)).report;
  const TrafficReport hedged = run_point(straggler_config(true, false)).report;
  const TrafficReport both = run_point(straggler_config(true, true)).report;

  const double base_p99 = baseline.total.sojourn.summary().p99;
  const double hedge_p99 = hedged.total.sojourn.summary().p99;
  const double both_p99 = both.total.sojourn.summary().p99;
  std::printf("\nstraggler A/B (2 servers 32x slow): p99 %.3fs -> %.3fs "
              "(hedge) -> %.3fs (hedge+reroute)\n",
              base_p99, hedge_p99, both_p99);

  std::string json = "{\n  \"bench\": \"traffic\",\n  \"scaling\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json += point_json(points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"straggler_mitigation\": {\n";
  json += mitigation_json("baseline", baseline) + ",\n";
  json += mitigation_json("hedge", hedged) + ",\n";
  json += mitigation_json("hedge_reroute", both) + "\n";
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "  },\n  \"hedge_p99_ratio\": %.4f\n}\n",
                base_p99 > 0.0 ? hedge_p99 / base_p99 : 0.0);
  json += tail;

  std::printf("%s", json.c_str());
  {
    std::ofstream out(out_path);
    out << json;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (hedge_p99 >= kHedgeP99Budget * base_p99) {
    std::fprintf(stderr,
                 "FAIL: hedged p99 %.3fs is not < %.0f%% of baseline p99 "
                 "%.3fs under 32x slow servers\n",
                 hedge_p99, kHedgeP99Budget * 100.0, base_p99);
    return 1;
  }
  if (hedged.hedges_won == 0) {
    std::fprintf(stderr, "FAIL: hedging never won a single read\n");
    return 1;
  }
  return 0;
}
