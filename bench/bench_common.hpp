// Shared plumbing for the table/figure reproduction benches.
//
// Each bench binary runs its simulation cells once in main, prints the
// paper-shaped series plus the paper-vs-measured shape checks, and then
// registers one google-benchmark entry per cell whose manual time is the
// *simulated* execution time (iterations = 1, nothing is re-run), so the
// standard benchmark output tabulates the same numbers.
//
// Benches whose cells are independent scheme runs can build a CellSpec
// list and hand it to run_cells(), which executes the sweep on a thread
// pool (--jobs=N, stripped from argv by parse_jobs before google-benchmark
// parses the rest). Results come back in spec order, so printed output is
// byte-identical for any job count.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/scheme.hpp"
#include "runner/paper.hpp"
#include "runner/sweep.hpp"
#include "simkit/context.hpp"

namespace das::bench {

struct Cell {
  std::string label;
  core::RunReport report;
};

/// One independent simulation cell: run_scheme(options) under `label`.
struct CellSpec {
  std::string label;
  core::SchemeRunOptions options;
};

inline void print_banner(const char* figure, const char* claim) {
  std::printf("=====================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("=====================================================\n");
}

/// Strip a `--jobs=N` flag out of argv (google-benchmark rejects flags it
/// does not know) and return the job count: absent -> 1, `--jobs=0` ->
/// one job per hardware thread.
inline unsigned parse_jobs(int* argc, char** argv) {
  unsigned jobs = 1;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return jobs == 0 ? runner::default_jobs() : jobs;
}

/// Run every spec on up to `jobs` threads. Each cell gets its own
/// sim::RunContext, so concurrent runs share no logger/tracer/rng state;
/// the returned cells are in spec order regardless of completion order.
inline std::vector<Cell> run_cells(unsigned jobs,
                                   std::vector<CellSpec> specs) {
  std::vector<Cell> cells(specs.size());
  std::vector<std::unique_ptr<sim::RunContext>> contexts(specs.size());
  for (auto& context : contexts) {
    context = std::make_unique<sim::RunContext>();
  }
  runner::parallel_for_indexed(jobs, specs.size(), [&](std::size_t i) {
    specs[i].options.context = contexts[i].get();
    cells[i] = Cell{std::move(specs[i].label),
                    core::run_scheme(specs[i].options)};
  });
  return cells;
}

inline void register_cells(const std::vector<Cell>& cells) {
  for (const Cell& cell : cells) {
    benchmark::RegisterBenchmark(
        cell.label.c_str(),
        [report = cell.report](benchmark::State& state) {
          for (auto _ : state) {
          }
          state.SetIterationTime(report.exec_seconds);
          state.counters["sim_seconds"] = report.exec_seconds;
          state.counters["cli_srv_GiB"] =
              static_cast<double>(report.client_server_bytes) / (1 << 30);
          state.counters["srv_srv_GiB"] =
              static_cast<double>(report.server_server_bytes) / (1 << 30);
          state.counters["bw_MiBps"] =
              report.sustained_bandwidth_bps() / (1 << 20);
          state.counters["wall_ms"] = report.wall_seconds * 1e3;
          state.counters["events_per_sec"] =
              report.wall_seconds > 0.0
                  ? static_cast<double>(report.sim_events) /
                        report.wall_seconds
                  : 0.0;
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

inline int finish(int argc, char** argv, const std::vector<Cell>& cells,
                  const std::vector<runner::ShapeCheck>& checks) {
  std::vector<core::RunReport> reports;
  reports.reserve(cells.size());
  for (const Cell& c : cells) reports.push_back(c.report);
  std::printf("\n%s\n", core::format_report_table(reports).c_str());
  if (!checks.empty()) {
    std::printf("shape checks vs the paper:\n%s\n",
                runner::format_checks(checks).c_str());
  }
  bool all_hold = true;
  for (const auto& c : checks) all_hold = all_hold && c.holds;
  if (!checks.empty()) {
    std::printf("overall: %s\n\n",
                all_hold ? "all shape checks hold"
                         : "SOME SHAPE CHECKS FAILED");
  }

  register_cells(cells);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return all_hold ? 0 : 2;
}

}  // namespace das::bench
