// Shared plumbing for the table/figure reproduction benches.
//
// Each bench binary runs its simulation cells once in main, prints the
// paper-shaped series plus the paper-vs-measured shape checks, and then
// registers one google-benchmark entry per cell whose manual time is the
// *simulated* execution time (iterations = 1, nothing is re-run), so the
// standard benchmark output tabulates the same numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "runner/paper.hpp"

namespace das::bench {

struct Cell {
  std::string label;
  core::RunReport report;
};

inline void print_banner(const char* figure, const char* claim) {
  std::printf("=====================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("=====================================================\n");
}

inline void register_cells(const std::vector<Cell>& cells) {
  for (const Cell& cell : cells) {
    const core::RunReport report = cell.report;
    benchmark::RegisterBenchmark(
        cell.label.c_str(),
        [report](benchmark::State& state) {
          for (auto _ : state) {
          }
          state.SetIterationTime(report.exec_seconds);
          state.counters["sim_seconds"] = report.exec_seconds;
          state.counters["cli_srv_GiB"] =
              static_cast<double>(report.client_server_bytes) / (1 << 30);
          state.counters["srv_srv_GiB"] =
              static_cast<double>(report.server_server_bytes) / (1 << 30);
          state.counters["bw_MiBps"] =
              report.sustained_bandwidth_bps() / (1 << 20);
        })
        ->UseManualTime()
        ->Iterations(1);
  }
}

inline int finish(int argc, char** argv, const std::vector<Cell>& cells,
                  const std::vector<runner::ShapeCheck>& checks) {
  std::vector<core::RunReport> reports;
  reports.reserve(cells.size());
  for (const Cell& c : cells) reports.push_back(c.report);
  std::printf("\n%s\n", core::format_report_table(reports).c_str());
  if (!checks.empty()) {
    std::printf("shape checks vs the paper:\n%s\n",
                runner::format_checks(checks).c_str());
  }
  bool all_hold = true;
  for (const auto& c : checks) all_hold = all_hold && c.holds;
  if (!checks.empty()) {
    std::printf("overall: %s\n\n",
                all_hold ? "all shape checks hold"
                         : "SOME SHAPE CHECKS FAILED");
  }

  register_cells(cells);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return all_hold ? 0 : 2;
}

}  // namespace das::bench
