// Ablation A9: halo-strip prefetch depth x kernel x strip size.
//
// First-pass NAS offloading serializes remote-halo fetch against compute:
// the strip cache (A8) only pays off on *repeated* passes. The prefetcher
// walks the admitted request's fetch plan ahead of the sweep, so the same
// server-to-server bytes move during compute instead of in front of it.
// The pipeline window is pinned to 1 to isolate prefetching from the
// executor's own run pipelining (a second, independent overlap mechanism).
// Sweeping lookahead depth shows makespan falling monotonically to the
// bandwidth floor while the wire traffic stays bit-identical — prefetching
// hides latency, it never adds bytes. Depth 0 must reproduce the
// cache-only system exactly.
#include "bench_common.hpp"

#include "core/scheme.hpp"

namespace {

das::core::SchemeRunOptions base_options(const std::string& kernel,
                                         std::uint64_t strip_size) {
  das::core::SchemeRunOptions o;
  o.scheme = das::core::Scheme::kNAS;
  o.workload = das::runner::paper_workload(kernel, 6);
  o.workload.strip_size = strip_size;
  o.workload.raster_width =
      static_cast<std::uint32_t>(strip_size / o.workload.element_size - 1);
  o.cluster = das::runner::paper_cluster(24);
  o.cluster.pipeline_window = 1;
  o.cluster.server_cache.enabled = true;
  o.cluster.server_cache.capacity_bytes = 2ULL << 30;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;
  namespace bench = das::bench;
  const unsigned jobs = bench::parse_jobs(&argc, argv);

  bench::print_banner(
      "Ablation A9: halo prefetch depth x kernel x strip size "
      "(NAS, round-robin, 6 GiB, 24 nodes, pipeline window 1)",
      "prefetching overlaps the first pass's remote-halo fetches with "
      "compute without moving one extra server-to-server byte");

  const std::uint64_t kib = 1ULL << 10;
  const std::vector<std::uint64_t> strip_sizes = {512 * kib, 1024 * kib,
                                                  2048 * kib};
  const std::vector<std::uint32_t> depths = {0, 1, 2, 4, 8};
  const std::vector<std::string> kernels = {"flow-routing", "gaussian-2d"};

  // Enumerate every run (each strip size's cache-only reference plus the
  // depth sweep) as an independent cell, execute the whole grid on the
  // pool, then print and check in enumeration order.
  std::vector<bench::CellSpec> specs;
  for (const std::string& kernel : kernels) {
    for (const std::uint64_t strip : strip_sizes) {
      specs.push_back({"A9/" + kernel + "/strip" +
                           std::to_string(strip / kib) + "KiB/reference",
                       base_options(kernel, strip)});
      for (const std::uint32_t depth : depths) {
        das::core::SchemeRunOptions o = base_options(kernel, strip);
        o.cluster.prefetch.enabled = depth > 0;
        o.cluster.prefetch.depth = depth;
        specs.push_back({"A9/" + kernel + "/strip" +
                             std::to_string(strip / kib) + "KiB/depth" +
                             std::to_string(depth),
                         std::move(o)});
      }
    }
  }
  const std::vector<bench::Cell> runs = bench::run_cells(jobs, specs);

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\n%-14s %9s %6s %10s %14s %9s %10s\n", "kernel", "strip",
              "depth", "issued", "srv-srv", "pf-hits", "time(s)");
  std::size_t next = 0;
  for (const std::string& kernel : kernels) {
    for (const std::uint64_t strip : strip_sizes) {
      // Cache-only reference: what the system does when it never heard of
      // the prefetch config at all.
      const RunReport reference = runs[next++].report;

      double last_seconds = 0.0;
      bool monotone = true;
      bool bytes_fixed = true;
      RunReport at_zero, deepest;

      for (const std::uint32_t depth : depths) {
        const bench::Cell& cell = runs[next++];
        const RunReport& report = cell.report;

        std::printf("%-14s %9s %6u %10llu %14s %9llu %10.2f\n",
                    kernel.c_str(), das::core::format_bytes(strip).c_str(),
                    depth,
                    static_cast<unsigned long long>(report.prefetch_issued),
                    das::core::format_bytes(report.server_server_bytes).c_str(),
                    static_cast<unsigned long long>(report.prefetch_hits),
                    report.exec_seconds);
        cells.push_back(cell);

        if (depth == 0) {
          at_zero = report;
        } else {
          monotone = monotone && report.exec_seconds <= last_seconds + 1e-9;
          bytes_fixed = bytes_fixed && report.server_server_bytes ==
                                           at_zero.server_server_bytes;
        }
        last_seconds = report.exec_seconds;
        deepest = report;
      }

      const std::string tag =
          kernel + "/" + das::core::format_bytes(strip);
      checks.push_back(das::runner::ShapeCheck{
          tag + ": makespan falls with lookahead depth",
          "monotonically non-increasing across the sweep",
          deepest.exec_seconds, monotone});
      checks.push_back(das::runner::ShapeCheck{
          tag + ": prefetch moves no extra bytes",
          "srv-srv bytes identical at every depth",
          static_cast<double>(deepest.server_server_bytes), bytes_fixed});
      checks.push_back(das::runner::ShapeCheck{
          tag + ": depth 0 reproduces the cache-only system",
          "identical makespan and srv-srv bytes",
          at_zero.exec_seconds,
          at_zero.exec_seconds == reference.exec_seconds &&
              at_zero.server_server_bytes == reference.server_server_bytes});
      checks.push_back(das::runner::ShapeCheck{
          tag + ": the deepest sweep meaningfully overlaps",
          "makespan improves over depth 0",
          at_zero.exec_seconds - deepest.exec_seconds,
          deepest.exec_seconds < at_zero.exec_seconds});
    }
  }

  return bench::finish(argc, argv, cells, checks);
}
