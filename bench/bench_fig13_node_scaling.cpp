// Fig. 13 reproduction: scalability with the number of nodes (24 -> 60,
// half storage, half compute) at a fixed 60 GB data size, DAS vs TS. The
// paper reports both schemes scaling, with execution time dropping ~15% per
// +12 nodes and a similar trend for both.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Fig. 13: Execution Time as the Number of Nodes Increases",
      "DAS and TS both scale; time falls with every +12 nodes");

  const std::vector<std::uint32_t> node_counts{24, 36, 48, 60};
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  for (const std::string& kernel : das::runner::paper_kernels()) {
    std::vector<double> das_times, ts_times;
    for (const Scheme scheme : {Scheme::kDAS, Scheme::kTS}) {
      std::vector<double>& times =
          scheme == Scheme::kDAS ? das_times : ts_times;
      for (const std::uint32_t nodes : node_counts) {
        const RunReport r = das::runner::run_cell(scheme, kernel, 60, nodes);
        cells.push_back({"Fig13/" + kernel + "/" + to_string(scheme) + "/" +
                             std::to_string(nodes) + "nodes",
                         r});
        times.push_back(r.exec_seconds);
      }
      bool monotone = true;
      for (std::size_t i = 1; i < times.size(); ++i) {
        monotone = monotone && times[i] < times[i - 1];
      }
      checks.push_back(das::runner::ShapeCheck{
          std::string(to_string(scheme)) + " scales with nodes, " + kernel,
          "time falls 24 -> 60 nodes", times.back() / times.front(),
          monotone});
    }

    // The paper stresses DAS stays ahead of TS at every cluster size.
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      checks.push_back(das::runner::ShapeCheck{
          "DAS/TS at " + std::to_string(node_counts[i]) + " nodes, " +
              kernel,
          "DAS faster (< 1.0)", das_times[i] / ts_times[i],
          das_times[i] < ts_times[i]});
    }
  }

  return bench::finish(argc, argv, cells, checks);
}
