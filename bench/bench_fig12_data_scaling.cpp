// Fig. 12 reproduction: scalability with data size (24 -> 60 GB) for all
// three schemes and kernels on 24 nodes. The paper reports DAS execution
// time growing ~15% per +12 GB step on average while NAS and TS grow over
// 30%.
#include "bench_common.hpp"

#include "core/scheme.hpp"

namespace {

double average_step_growth(const std::vector<double>& times) {
  double total = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    total += times[i] / times[i - 1] - 1.0;
  }
  return total / static_cast<double>(times.size() - 1);
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Fig. 12: Execution Time of NAS, TS and DAS as Data Size Increases",
      "DAS grows ~15% per +12 GB on average; NAS and TS grow over 30%");

  const std::vector<std::uint64_t> sizes{24, 36, 48, 60};
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  for (const std::string& kernel : das::runner::paper_kernels()) {
    std::vector<double> growth_by_scheme;
    for (const Scheme scheme : {Scheme::kNAS, Scheme::kDAS, Scheme::kTS}) {
      std::vector<double> times;
      for (const std::uint64_t gib : sizes) {
        const RunReport r = das::runner::run_cell(scheme, kernel, gib, 24);
        cells.push_back({"Fig12/" + kernel + "/" + to_string(scheme) + "/" +
                             std::to_string(gib) + "GiB",
                         r});
        times.push_back(r.exec_seconds);
      }
      growth_by_scheme.push_back(average_step_growth(times));
    }

    const double nas_growth = growth_by_scheme[0];
    const double das_growth = growth_by_scheme[1];
    const double ts_growth = growth_by_scheme[2];
    checks.push_back(das::runner::ShapeCheck{
        "DAS avg growth per +12 GiB, " + kernel, "~15% (lowest of the three)",
        das_growth, das_growth < ts_growth && das_growth < nas_growth &&
                        das_growth < 0.25});
    checks.push_back(das::runner::ShapeCheck{
        "TS avg growth per +12 GiB, " + kernel, "over 30% (higher than DAS)",
        ts_growth, ts_growth > das_growth});
    checks.push_back(das::runner::ShapeCheck{
        "NAS avg growth per +12 GiB, " + kernel, "over 30%", nas_growth,
        nas_growth > 0.25});
  }

  return bench::finish(argc, argv, cells, checks);
}
