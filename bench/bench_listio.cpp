// List-I/O bytes-moved A/B: the same sparse access served through the
// scatter-gather request plane (runs + list headers on the wire) versus
// the pre-list-I/O behavior of fetching every enclosing whole strip.
//
// Two access patterns on one TS cluster, both fully deterministic:
//
//  1. strided:8 — every 8th row of a 1 GiB raster plus the stencil halo,
//     i.e. the 1/8-sparsity point of EXPERIMENTS.md. The row geometry is
//     deliberately sub-strip (4 KiB rows in 1 MiB strips) so the whole-
//     strip baseline genuinely over-fetches: the sampled runs touch every
//     strip, so the baseline moves the entire file while the list moves
//     3 rows in 8 (sample +- 1 halo row) plus header bytes.
//
//  2. column — one raster column plus halo: 12-byte runs, one per row,
//     shipped as a single strided descriptor. The extreme-sparsity point
//     where per-run framing, not payload, dominates the wire cost.
//
// The bytes-moved metric is RunReport::client_server_bytes (request
// headers + packed replies + per-run framing; see EXPERIMENTS.md). This
// is the CI perf-smoke gate for the list plane: the binary exits nonzero
// unless at 1/8 sparsity the list path moves <= 40% of the whole-strip
// bytes (a >= 2.5x reduction) and finishes the sweep no slower.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_listio.json by default) that CI uploads as an artifact.
//
// Usage: bench_listio [--gib=N] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/scheme.hpp"

namespace {

using das::core::AccessSpec;
using das::core::ListRunOptions;
using das::core::RunReport;
using das::core::Scheme;

/// At 1/8 sparsity the list path must move at most this fraction of the
/// whole-strip bytes...
constexpr double kStridedByteBudget = 0.40;
/// ...which is the same gate stated as a reduction factor.
constexpr double kMinReduction = 2.5;

struct CaseResult {
  std::string access;
  RunReport list;   // whole_strips = false
  RunReport whole;  // whole_strips = true
  double wall_seconds = 0.0;

  [[nodiscard]] double ratio() const {
    return whole.client_server_bytes == 0
               ? 0.0
               : static_cast<double>(list.client_server_bytes) /
                     static_cast<double>(whole.client_server_bytes);
  }
  [[nodiscard]] double reduction() const {
    return list.client_server_bytes == 0
               ? 0.0
               : static_cast<double>(whole.client_server_bytes) /
                     static_cast<double>(list.client_server_bytes);
  }
};

ListRunOptions base_options(std::uint64_t gib) {
  ListRunOptions options;
  options.scheme = Scheme::kTS;
  options.workload.kernel_name = "flow-routing";
  options.workload.data_bytes = gib << 30;
  options.workload.strip_size = 1ULL << 20;
  // 4 KiB rows in 1 MiB strips (256 rows per strip): the pre-list-I/O
  // fetch shape rounds every sampled row up to its strip, so the A/B
  // actually measures the over-fetch the list plane eliminates.
  options.workload.raster_width = 1024;
  options.cluster.storage_nodes = 8;
  options.cluster.compute_nodes = 8;
  return options;
}

CaseResult run_case(std::uint64_t gib, const AccessSpec& access) {
  CaseResult result;
  result.access = access.label();
  const auto start = std::chrono::steady_clock::now();
  ListRunOptions list = base_options(gib);
  list.access = access;
  result.list = das::core::run_list_scheme(list);
  ListRunOptions whole = base_options(gib);
  whole.access = access;
  whole.whole_strips = true;
  result.whole = das::core::run_list_scheme(whole);
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

std::string case_json(const CaseResult& result) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"access\": \"%s\",\n"
      "     \"list_bytes\": %llu, \"whole_strip_bytes\": %llu,\n"
      "     \"byte_ratio\": %.6f, \"reduction\": %.3f,\n"
      "     \"list_exec_s\": %.6f, \"whole_strip_exec_s\": %.6f,\n"
      "     \"list_sim_events\": %llu, \"wall_s\": %.3f}",
      result.access.c_str(),
      static_cast<unsigned long long>(result.list.client_server_bytes),
      static_cast<unsigned long long>(result.whole.client_server_bytes),
      result.ratio(), result.reduction(), result.list.exec_seconds,
      result.whole.exec_seconds,
      static_cast<unsigned long long>(result.list.sim_events),
      result.wall_seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t gib = 1;
  std::string out_path = "BENCH_listio.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--gib=", 6) == 0) {
      gib = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--gib=N] [--out=FILE]\n", argv[0]);
      return 1;
    }
  }

  std::vector<CaseResult> cases;
  cases.push_back(run_case(gib, AccessSpec::parse("strided:8")));
  cases.push_back(run_case(gib, AccessSpec::parse("column")));
  for (const CaseResult& c : cases) {
    std::printf("%-10s list=%12llu B  whole-strip=%12llu B  ratio=%.4f  "
                "(%.2fx)  exec %.3fs vs %.3fs\n",
                c.access.c_str(),
                static_cast<unsigned long long>(c.list.client_server_bytes),
                static_cast<unsigned long long>(c.whole.client_server_bytes),
                c.ratio(), c.reduction(), c.list.exec_seconds,
                c.whole.exec_seconds);
  }

  const CaseResult& strided = cases[0];
  const CaseResult& column = cases[1];

  std::string json = "{\n  \"bench\": \"listio\",\n";
  char head[128];
  std::snprintf(head, sizeof(head),
                "  \"gib\": %llu,\n  \"cases\": [\n",
                static_cast<unsigned long long>(gib));
  json += head;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    json += case_json(cases[i]);
    json += i + 1 < cases.size() ? ",\n" : "\n";
  }
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"strided8_byte_ratio\": %.6f,\n"
                "  \"strided8_reduction\": %.3f,\n"
                "  \"gate\": {\"max_byte_ratio\": %.2f, "
                "\"min_reduction\": %.1f}\n}\n",
                strided.ratio(), strided.reduction(), kStridedByteBudget,
                kMinReduction);
  json += tail;

  std::printf("%s", json.c_str());
  {
    std::ofstream out(out_path);
    out << json;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (strided.ratio() > kStridedByteBudget) {
    std::fprintf(stderr,
                 "FAIL: strided:8 list I/O moved %.1f%% of the whole-strip "
                 "bytes (gate: <= %.0f%%)\n",
                 strided.ratio() * 100.0, kStridedByteBudget * 100.0);
    return 1;
  }
  if (strided.reduction() < kMinReduction) {
    std::fprintf(stderr,
                 "FAIL: strided:8 bytes-moved reduction %.2fx "
                 "(gate: >= %.1fx)\n",
                 strided.reduction(), kMinReduction);
    return 1;
  }
  if (strided.list.exec_seconds > strided.whole.exec_seconds) {
    std::fprintf(stderr,
                 "FAIL: list serving (%.3fs) slower than whole-strip "
                 "fetches (%.3fs) at 1/8 sparsity\n",
                 strided.list.exec_seconds, strided.whole.exec_seconds);
    return 1;
  }
  if (column.reduction() <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: column access moved no fewer bytes than whole "
                 "strips (%.2fx)\n",
                 column.reduction());
    return 1;
  }
  return 0;
}
