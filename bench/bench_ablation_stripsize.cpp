// Ablation A2: strip-size sweep at a fixed raster geometry. The paper's
// Eqs. 1-4 make locality depend on how dependence offsets land relative to
// strip boundaries; this bench fixes the row width (1 MiB rows) and sweeps
// the strip size, showing how NAS dependence traffic and the predictor's
// per-element bwcost move together while DAS stays flat.
#include "bench_common.hpp"

#include "core/bandwidth_model.hpp"
#include "core/scheme.hpp"
#include "kernels/features.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A2: strip size vs dependence traffic (rows fixed at 1 MiB)",
      "small strips multiply NAS halo fetches (whole rows per strip); "
      "DAS stays near zero at every strip size");

  constexpr std::uint32_t kRowElements = (1U << 20) / 4 - 1;
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\n%12s %12s %14s %14s %14s\n", "strip", "NAS time",
              "NAS srv-srv", "DAS srv-srv", "bwcost/elem");
  for (const std::uint64_t strip :
       {256ULL << 10, 512ULL << 10, 1ULL << 20, 2ULL << 20, 4ULL << 20}) {
    das::core::SchemeRunOptions o;
    o.workload.kernel_name = "flow-routing";
    o.workload.data_bytes = 12ULL << 30;
    o.workload.strip_size = strip;
    o.workload.raster_width = kRowElements;
    o.cluster = das::runner::paper_cluster(24);

    o.scheme = Scheme::kNAS;
    const RunReport nas = das::core::run_scheme(o);
    o.scheme = Scheme::kDAS;
    const RunReport das_r = das::core::run_scheme(o);
    cells.push_back({"A2/NAS/strip" + std::to_string(strip >> 10) + "KiB",
                     nas});
    cells.push_back({"A2/DAS/strip" + std::to_string(strip >> 10) + "KiB",
                     das_r});

    const auto offsets =
        das::kernels::eight_neighbor_pattern("flow-routing")
            .resolve(kRowElements);
    const double bwcost = das::core::bwcost_per_element(
        offsets, 4, strip, das::core::PlacementSpec{12, 1, 0});

    std::printf("%9lluKiB %11.2fs %13.2fG %13.2fG %14.3f\n",
                static_cast<unsigned long long>(strip >> 10),
                nas.exec_seconds,
                static_cast<double>(nas.server_server_bytes) / (1 << 30),
                static_cast<double>(das_r.server_server_bytes) / (1 << 30),
                bwcost);

    checks.push_back(das::runner::ShapeCheck{
        "DAS beats NAS at strip " + std::to_string(strip >> 10) + " KiB",
        "DAS faster", das_r.exec_seconds / nas.exec_seconds,
        das_r.exec_seconds < nas.exec_seconds});
    checks.push_back(das::runner::ShapeCheck{
        "DAS dependence traffic small, strip " +
            std::to_string(strip >> 10) + " KiB",
        "srv-srv well below NAS",
        static_cast<double>(das_r.server_server_bytes) /
            static_cast<double>(nas.server_server_bytes),
        das_r.server_server_bytes < nas.server_server_bytes / 2});
  }

  return bench::finish(argc, argv, cells, checks);
}
