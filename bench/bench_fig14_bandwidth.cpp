// Fig. 14 reproduction: normalized sustained bandwidth of the flow-routing
// operation under NAS, DAS and TS (TS = 1.0) for data sizes 24 -> 48 GB on
// 24 nodes. The paper reports DAS improving sustained bandwidth by nearly
// one fold over TS, with NAS below TS.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Fig. 14: Normalized Sustained Bandwidth (flow-routing)",
      "DAS ~2x TS; NAS below TS, at every data size");

  const std::vector<std::uint64_t> sizes{24, 36, 48};
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\nnormalized sustained bandwidth (TS = 1.0):\n");
  std::printf("%8s %8s %8s %8s\n", "GiB", "NAS", "DAS", "TS");
  for (const std::uint64_t gib : sizes) {
    const RunReport nas =
        das::runner::run_cell(Scheme::kNAS, "flow-routing", gib, 24);
    const RunReport das_r =
        das::runner::run_cell(Scheme::kDAS, "flow-routing", gib, 24);
    const RunReport ts =
        das::runner::run_cell(Scheme::kTS, "flow-routing", gib, 24);
    cells.push_back({"Fig14/NAS/" + std::to_string(gib) + "GiB", nas});
    cells.push_back({"Fig14/DAS/" + std::to_string(gib) + "GiB", das_r});
    cells.push_back({"Fig14/TS/" + std::to_string(gib) + "GiB", ts});

    const double base = ts.sustained_bandwidth_bps();
    const double nas_norm = nas.sustained_bandwidth_bps() / base;
    const double das_norm = das_r.sustained_bandwidth_bps() / base;
    std::printf("%8llu %8.2f %8.2f %8.2f\n",
                static_cast<unsigned long long>(gib), nas_norm, das_norm,
                1.0);

    checks.push_back(das::runner::ShapeCheck{
        "DAS normalized bandwidth, " + std::to_string(gib) + " GiB",
        "well above TS (~2x)", das_norm, das_norm > 1.4});
    checks.push_back(das::runner::ShapeCheck{
        "NAS normalized bandwidth, " + std::to_string(gib) + " GiB",
        "below TS (< 1.0)", nas_norm, nas_norm < 1.0});
  }

  return bench::finish(argc, argv, cells, checks);
}
