// Fig. 10 reproduction: execution time of NAS vs TS for the three Table-I
// kernels as the data size grows from 24 to 60 GB on 24 nodes (12 storage +
// 12 compute). The paper's point: ignoring data dependence makes "normal"
// active storage *slower* than traditional storage.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Fig. 10: Comparison of Execution Time for NAS and TS Schemes",
      "NAS is much slower than TS for every kernel and size");

  const std::vector<std::uint64_t> sizes{24, 36, 48, 60};
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  for (const std::string& kernel : das::runner::paper_kernels()) {
    for (const std::uint64_t gib : sizes) {
      const RunReport nas =
          das::runner::run_cell(Scheme::kNAS, kernel, gib, 24);
      const RunReport ts = das::runner::run_cell(Scheme::kTS, kernel, gib, 24);
      cells.push_back({"Fig10/" + kernel + "/NAS/" + std::to_string(gib) +
                           "GiB",
                       nas});
      cells.push_back({"Fig10/" + kernel + "/TS/" + std::to_string(gib) +
                           "GiB",
                       ts});
      checks.push_back(das::runner::ShapeCheck{
          "NAS/TS time ratio, " + kernel + ", " + std::to_string(gib) +
              " GiB",
          "NAS slower than TS (> 1.0)",
          nas.exec_seconds / ts.exec_seconds,
          nas.exec_seconds > ts.exec_seconds});
    }
  }

  return bench::finish(argc, argv, cells, checks);
}
