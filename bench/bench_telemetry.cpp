// Telemetry overhead bench: the plane must be observational in results AND
// cheap in wall clock.
//
// The same NAS flow-routing workload runs twice per repetition — once with
// no telemetry plane and once with everything armed (metrics sampling at the
// default cadence, span tracking, an SLO monitor) — and the bench gates on
// two invariants:
//
//  1. Result identity: exec time, byte flows, and the reported event count
//     (net of sampler ticks) are equal between the two runs. Telemetry that
//     shifts a simulated number is a bug, not overhead.
//  2. Overhead: the armed run costs at most kOverheadBudget times the
//     baseline. Per-hop span charges ride the hot callback path, so this is
//     the gate that keeps them branch-cheap.
//
// Measurement notes, learned the hard way on small shared VMs:
//  - Process CPU time, not wall time: wall clock folds in hypervisor steal
//    and preemption, which on a single-core box swamps a 10% budget.
//  - Each repetition times the two runs back to back and takes their ratio.
//    CPU frequency drifts slowly, so it divides out within an adjacent
//    pair; the order alternates so drift direction cannot bias one side.
//  - The gate takes the minimum pair ratio. Noise bursts on a shared host
//    last seconds — long enough to contaminate most pairs in a batch — and
//    almost always inflate the ratio, so the min is the closest observation
//    to the true overhead. A real regression inflates every pair, min
//    included, so the gate still catches it; the min only errs lenient by
//    the odd burst that lands on a baseline run, never flaky-strict.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_telemetry.json by default) that CI uploads as an artifact, and
// exits nonzero when either gate fails — the telemetry perf-smoke gate.
//
// Usage: bench_telemetry [--out=FILE]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "runner/paper.hpp"
#include "simkit/context.hpp"
#include "telemetry/plane.hpp"

namespace {

using das::core::RunReport;
using das::core::Scheme;
using das::core::SchemeRunOptions;

/// Fully-armed telemetry may cost at most this factor in CPU time.
constexpr double kOverheadBudget = 1.10;
/// Baseline/armed pairs; the gate takes the minimum pair ratio.
constexpr int kPairs = 11;

double cpu_now() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

SchemeRunOptions workload() {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;  // halo traffic exercises net + disk span hops
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 4ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width = static_cast<std::uint32_t>(
      o.workload.strip_size / o.workload.element_size - 1);
  o.cluster = das::runner::paper_cluster(16);
  // Enough passes that steady-state per-event costs dominate the wall
  // clock; at 1 GiB x 2 passes the run is ~2 ms and plane setup swamps it.
  o.repeat_count = 8;
  return o;
}

das::telemetry::PlaneConfig armed_config() {
  das::telemetry::PlaneConfig config;
  config.metrics = true;  // sample_period stays the das_sim default
  config.spans = true;
  config.slo.target_s = 0.5;
  return config;
}

struct TimedRun {
  RunReport report;
  double cpu_s = 0.0;
  std::uint64_t spans_finished = 0;
};

TimedRun run_armed(bool armed) {
  TimedRun result;
  SchemeRunOptions options = workload();
  das::sim::RunContext context;
  std::unique_ptr<das::telemetry::Plane> plane;
  if (armed) {
    plane = std::make_unique<das::telemetry::Plane>(armed_config());
    context.telemetry = plane.get();
  }
  options.context = &context;
  const double start = cpu_now();
  result.report = run_scheme(options);
  result.cpu_s = cpu_now() - start;
  if (plane != nullptr) result.spans_finished = plane->spans().spans_finished();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_telemetry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // Warm caches and the page allocator before the timed pairs.
  TimedRun off = run_armed(false);
  TimedRun on = run_armed(true);

  std::vector<double> ratios;
  std::vector<double> off_cpu;
  std::vector<double> on_cpu;
  for (int pair = 0; pair < kPairs; ++pair) {
    if (pair % 2 == 0) {
      off = run_armed(false);
      on = run_armed(true);
    } else {
      on = run_armed(true);
      off = run_armed(false);
    }
    if (off.cpu_s <= 0.0) continue;
    ratios.push_back(on.cpu_s / off.cpu_s);
    off_cpu.push_back(off.cpu_s);
    on_cpu.push_back(on.cpu_s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead = ratios.empty() ? 1e30 : ratios.front();
  const double best_off =
      off_cpu.empty() ? 0.0 : *std::min_element(off_cpu.begin(), off_cpu.end());
  const double best_on =
      on_cpu.empty() ? 0.0 : *std::min_element(on_cpu.begin(), on_cpu.end());

  const bool results_match =
      off.report.exec_seconds == on.report.exec_seconds &&
      off.report.server_server_bytes == on.report.server_server_bytes &&
      off.report.client_server_bytes == on.report.client_server_bytes &&
      off.report.sim_events == on.report.sim_events;
  const bool spans_tracked = on.spans_finished > 0;
  const bool overhead_ok = overhead <= kOverheadBudget;
  const bool pass = results_match && spans_tracked && overhead_ok;

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"telemetry\": {\n"
      "    \"baseline_cpu_s\": %.6f, \"armed_cpu_s\": %.6f,\n"
      "    \"overhead_ratio\": %.4f, \"overhead_budget\": %.2f,\n"
      "    \"exec_s\": %.6f, \"sim_events\": %llu,\n"
      "    \"spans_finished\": %llu,\n"
      "    \"results_match\": %s, \"pass\": %s\n  }\n}\n",
      best_off, best_on, overhead, kOverheadBudget,
      on.report.exec_seconds,
      static_cast<unsigned long long>(on.report.sim_events),
      static_cast<unsigned long long>(on.spans_finished),
      results_match ? "true" : "false", pass ? "true" : "false");

  std::ofstream(out_path) << buf;
  std::fputs(buf, stdout);

  if (!results_match) {
    std::fprintf(stderr,
                 "FAIL: telemetry changed simulated results "
                 "(exec %.9f vs %.9f, events %llu vs %llu)\n",
                 off.report.exec_seconds, on.report.exec_seconds,
                 static_cast<unsigned long long>(off.report.sim_events),
                 static_cast<unsigned long long>(on.report.sim_events));
  }
  if (!spans_tracked) {
    std::fprintf(stderr, "FAIL: armed run finished zero spans\n");
  }
  if (!overhead_ok) {
    std::fprintf(stderr, "FAIL: telemetry overhead %.4fx exceeds %.2fx\n",
                 overhead, kOverheadBudget);
  }
  return pass ? 0 : 1;
}
