// Ablation A6: when to establish the DAS layout. Three strategies for a
// dataset that a stencil pipeline will process:
//  (1) ingest round-robin, serve normally (never re-lay-out),
//  (2) ingest round-robin, re-lay-out at first use (runtime redistribution),
//  (3) ingest directly into the DAS layout (pay only 2/r extra at load).
// Cost = ingest + one flow-routing pass, on 12 GiB over 24 nodes.
#include "bench_common.hpp"

#include "core/as_client.hpp"
#include "core/ingest.hpp"
#include "core/scheme.hpp"
#include "kernels/registry.hpp"

namespace {

using das::core::Scheme;

/// Ingest with `layout`, then run flow-routing under `scheme`, in one
/// simulation. Returns a report whose exec time covers both phases.
das::core::RunReport ingest_then_run(
    std::unique_ptr<das::pfs::Layout> layout, Scheme scheme,
    bool pre_distributed_counts, double* ingest_seconds) {
  das::core::SchemeRunOptions o;
  o.workload = das::runner::paper_workload("flow-routing", 12);
  o.cluster = das::runner::paper_cluster(24);
  o.scheme = scheme;
  o.pre_distributed = false;
  o.pipeline_length = 1;

  das::core::Cluster cluster(o.cluster);
  das::core::Ingestor ingestor(cluster);
  das::sim::SimTime ingest_done = -1;
  const das::pfs::FileId input = ingestor.ingest(
      o.workload.make_meta("input"), std::move(layout), nullptr,
      [&] { ingest_done = cluster.simulator().now(); });
  cluster.simulator().run();
  DAS_REQUIRE(ingest_done >= 0);
  if (ingest_seconds != nullptr) {
    *ingest_seconds = das::sim::to_seconds(ingest_done);
  }

  // Process the freshly ingested file through the Active Storage Client
  // (offload) or the TS executor (normal) in the same simulation.
  const das::kernels::KernelRegistry registry =
      das::kernels::standard_registry();
  das::core::ActiveStorageClient client(cluster, registry, o.distribution);
  das::core::ActiveRequest request;
  request.input = input;
  request.kernel_name = "flow-routing";
  request.allow_redistribution = scheme == Scheme::kDAS;
  request.pipeline_length = pre_distributed_counts ? 1 : 2;
  das::sim::SimTime finished = -1;
  client.submit(request, [&] { finished = cluster.simulator().now(); });
  cluster.simulator().run();
  DAS_REQUIRE(finished >= 0);

  das::core::RunReport report;
  report.scheme = to_string(scheme);
  report.kernel = "ingest+flow-routing";
  report.data_bytes = o.workload.data_bytes;
  report.storage_nodes = o.cluster.storage_nodes;
  report.compute_nodes = o.cluster.compute_nodes;
  report.exec_seconds = das::sim::to_seconds(finished);
  report.client_server_bytes = cluster.network().bytes_delivered(
      das::net::TrafficClass::kClientServer);
  report.server_server_bytes = cluster.network().bytes_delivered(
      das::net::TrafficClass::kServerServer);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A6: establishing the DAS layout at ingest vs at first use "
      "(12 GiB + one flow-routing pass, 24 nodes)",
      "ingest-into-DAS is cheapest end to end; runtime re-layout pays the "
      "full move; never-re-laying-out pays TS every pass");

  const std::uint32_t servers = 12;
  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  double rr_ingest = 0.0, das_ingest = 0.0;
  const auto never = ingest_then_run(
      std::make_unique<das::pfs::RoundRobinLayout>(servers), Scheme::kTS,
      true, &rr_ingest);
  const auto relayout = ingest_then_run(
      std::make_unique<das::pfs::RoundRobinLayout>(servers), Scheme::kDAS,
      false, nullptr);
  const auto at_ingest = ingest_then_run(
      std::make_unique<das::pfs::DasReplicatedLayout>(servers, 16, 1),
      Scheme::kDAS, true, &das_ingest);

  cells.push_back({"A6/ingest-RR+serve-normal", never});
  cells.push_back({"A6/ingest-RR+relayout", relayout});
  cells.push_back({"A6/ingest-DAS", at_ingest});

  std::printf("\nround-robin ingest: %.2f s; DAS-layout ingest: %.2f s "
              "(+%.1f%%)\n",
              rr_ingest, das_ingest,
              100.0 * (das_ingest / rr_ingest - 1.0));

  // Volume overhead is 2/r = 12.5%; the measured time overhead runs about
  // twice that because a strip's window slot is held until every holder
  // (primary + replica) has acked, so the slowest ack gates the pipeline.
  checks.push_back(das::runner::ShapeCheck{
      "DAS-layout ingest overhead", "small (2/r volume + ack gating)",
      das_ingest / rr_ingest - 1.0,
      das_ingest / rr_ingest - 1.0 < 0.35});
  checks.push_back(das::runner::ShapeCheck{
      "ingest-into-DAS beats runtime re-layout", "cheapest end to end",
      at_ingest.exec_seconds / relayout.exec_seconds,
      at_ingest.exec_seconds < relayout.exec_seconds});
  checks.push_back(das::runner::ShapeCheck{
      "ingest-into-DAS beats never-re-laying-out", "offload pays off",
      at_ingest.exec_seconds / never.exec_seconds,
      at_ingest.exec_seconds < never.exec_seconds});

  return bench::finish(argc, argv, cells, checks);
}
