// Fig. 11 reproduction: execution time of NAS, DAS and TS for the three
// Table-I kernels at 24 GB on 24 nodes. The paper reports DAS over 30%
// faster than TS and over 60% faster than NAS.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Fig. 11: Comparison of Execution Time for NAS, DAS and TS Schemes",
      "DAS > 30% faster than TS and > 60% faster than NAS at 24 GB");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  for (const std::string& kernel : das::runner::paper_kernels()) {
    const RunReport nas = das::runner::run_cell(Scheme::kNAS, kernel, 24, 24);
    const RunReport das_r =
        das::runner::run_cell(Scheme::kDAS, kernel, 24, 24);
    const RunReport ts = das::runner::run_cell(Scheme::kTS, kernel, 24, 24);
    cells.push_back({"Fig11/" + kernel + "/NAS", nas});
    cells.push_back({"Fig11/" + kernel + "/DAS", das_r});
    cells.push_back({"Fig11/" + kernel + "/TS", ts});

    const double vs_ts = 1.0 - das_r.exec_seconds / ts.exec_seconds;
    const double vs_nas = 1.0 - das_r.exec_seconds / nas.exec_seconds;
    checks.push_back(das::runner::ShapeCheck{
        "DAS improvement over TS, " + kernel, "over 30%", vs_ts,
        vs_ts > 0.30});
    checks.push_back(das::runner::ShapeCheck{
        "DAS improvement over NAS, " + kernel, "over 60%", vs_nas,
        vs_nas > 0.55});
  }

  return bench::finish(argc, argv, cells, checks);
}
