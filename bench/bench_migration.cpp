// Phase-change / online-migration bench: what background re-striping buys
// when a file's access pattern stops matching its layout.
//
// Scenario: a raster ingested round-robin (the streaming-optimal layout)
// is then hit by repeated flow-routing passes — a 3x3 stencil whose
// vertical neighbours live on adjacent servers under round-robin, so every
// pass pays near-total halo traffic. With migration enabled the planner
// notices the divergence after its hysteresis streak and the layout
// migrator re-stripes the file into the grouped+halo placement strip-group
// by strip-group, while the remaining passes keep reading it.
//
// Two experiments, both deterministic in simulated time:
//
//  1. Traffic A/B: the same 6-pass NAS run with migration off and on.
//     Gate: migration fired exactly once, and the migrated run's
//     server-to-server bytes net of the one-time move come in under
//     kSteadyStateBudget of the baseline (the post-migration passes run at
//     grouped-layout halo cost). A DAS pre-distributed run of the same
//     workload is reported as the oracle floor.
//
//  2. Mid-migration bit-identity: a small data-mode run sized so the
//     migration launches right as the final pass starts (hysteresis 2,
//     repeats 3, one strip per round), so that pass computes over a file
//     whose strips are actively moving. Gate: the output still matches the
//     sequential reference bit for bit.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_migration.json by default) that CI uploads as an artifact, and
// exits nonzero when either gate fails — the migration perf-smoke gate.
//
// Usage: bench_migration [--out=FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/scheme.hpp"
#include "runner/paper.hpp"

namespace {

using das::core::RunReport;
using das::core::Scheme;
using das::core::SchemeRunOptions;

/// Migrated run's srv-srv bytes, net of the move itself, must come in
/// under this fraction of the unmigrated baseline.
constexpr double kSteadyStateBudget = 0.85;

SchemeRunOptions phase_change_options() {
  SchemeRunOptions o;
  o.scheme = Scheme::kNAS;  // static offload: layout stays as ingested
  o.workload.kernel_name = "flow-routing";
  o.workload.data_bytes = 1ULL << 30;
  o.workload.strip_size = 1ULL << 20;
  o.workload.raster_width = static_cast<std::uint32_t>(
      o.workload.strip_size / o.workload.element_size - 1);
  o.cluster = das::runner::paper_cluster(8);
  o.repeat_count = 6;
  return o;
}

struct TimedRun {
  RunReport report;
  double wall_seconds = 0.0;
};

TimedRun run(const SchemeRunOptions& options) {
  TimedRun result;
  const auto start = std::chrono::steady_clock::now();
  result.report = run_scheme(options);
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

std::string run_json(const char* name, const TimedRun& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"exec_s\": %.6f, \"server_server_bytes\": %llu,\n"
      "     \"migrations\": %llu, \"migration_bytes\": %llu,\n"
      "     \"sustained_bw_bps\": %.0f, \"sim_events\": %llu, "
      "\"wall_s\": %.3f}",
      name, r.report.exec_seconds,
      static_cast<unsigned long long>(r.report.server_server_bytes),
      static_cast<unsigned long long>(r.report.migrations),
      static_cast<unsigned long long>(r.report.migration_bytes),
      r.report.sustained_bandwidth_bps(),
      static_cast<unsigned long long>(r.report.sim_events), r.wall_seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_migration.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // Experiment 1: traffic A/B on the phase-change workload.
  const SchemeRunOptions off = phase_change_options();
  SchemeRunOptions on = phase_change_options();
  on.migration.enabled = true;

  // Oracle floor: the same passes with the input already in the planned
  // grouped+halo placement (what a prescient ingest would have chosen).
  SchemeRunOptions oracle = phase_change_options();
  oracle.scheme = Scheme::kDAS;
  oracle.pre_distributed = true;

  const TimedRun base = run(off);
  const TimedRun migrated = run(on);
  const TimedRun floor = run(oracle);

  const std::uint64_t moved = migrated.report.migration_bytes;
  const std::uint64_t net =
      migrated.report.server_server_bytes > moved
          ? migrated.report.server_server_bytes - moved
          : 0;
  const double steady_ratio =
      base.report.server_server_bytes > 0
          ? static_cast<double>(net) /
                static_cast<double>(base.report.server_server_bytes)
          : 1.0;
  const bool fired_once = migrated.report.migrations == 1;
  const bool steady_ok = steady_ratio <= kSteadyStateBudget;

  // Experiment 2: mid-migration bit-identity. One strip per round keeps the
  // migration in flight well into the final (verified) pass.
  SchemeRunOptions exact;
  exact.scheme = Scheme::kNAS;
  exact.workload.kernel_name = "flow-routing";
  exact.workload.strip_size = 64;
  exact.workload.element_size = 4;
  exact.workload.data_bytes = 256 * 64;
  exact.workload.with_data = true;
  exact.cluster.storage_nodes = 4;
  exact.cluster.compute_nodes = 4;
  exact.cluster.job_startup = 0;
  exact.repeat_count = 3;
  exact.migration.enabled = true;
  exact.migration.min_observed_bytes = 1;
  exact.migration.hysteresis_passes = 2;
  exact.migration.strips_per_round = 1;
  const TimedRun verified = run(exact);
  const bool exact_fired = verified.report.migrations == 1;
  const bool exact_ok = verified.report.output_verified;

  const bool pass = fired_once && steady_ok && exact_fired && exact_ok;

  std::string json = "{\n  \"migration\": {\n";
  json += run_json("baseline", base) + ",\n";
  json += run_json("migrated", migrated) + ",\n";
  json += run_json("oracle", floor) + ",\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"net_server_server_bytes\": %llu, \"steady_ratio\": %.4f,\n"
      "    \"steady_budget\": %.2f, \"data_mode_migrations\": %llu,\n"
      "    \"data_mode_verified\": %s, \"pass\": %s\n  }\n}\n",
      static_cast<unsigned long long>(net), steady_ratio, kSteadyStateBudget,
      static_cast<unsigned long long>(verified.report.migrations),
      exact_ok ? "true" : "false", pass ? "true" : "false");
  json += buf;

  std::ofstream(out_path) << json;
  std::fputs(json.c_str(), stdout);

  if (!fired_once) {
    std::fprintf(stderr, "FAIL: expected exactly one migration, got %llu\n",
                 static_cast<unsigned long long>(migrated.report.migrations));
  }
  if (!steady_ok) {
    std::fprintf(stderr,
                 "FAIL: net srv-srv ratio %.4f exceeds budget %.2f\n",
                 steady_ratio, kSteadyStateBudget);
  }
  if (!exact_fired) {
    std::fprintf(stderr,
                 "FAIL: data-mode run expected one migration, got %llu\n",
                 static_cast<unsigned long long>(verified.report.migrations));
  }
  if (!exact_ok) {
    std::fprintf(stderr,
                 "FAIL: mid-migration output diverged (max error %g)\n",
                 verified.report.output_max_error);
  }
  return pass ? 0 : 1;
}
