// Ablation A7: iterative halo exchange. Flow accumulation converges through
// repeated local passes with boundary exchange (the exact distributed
// algorithm in kernels/flow_accumulation.*). Each extra round re-reads the
// previous round's output with its halo — locally under the DAS layout,
// over the network under round-robin (NAS). Expressed as a pipeline of R
// accumulation stages, the per-round cost gap is the paper's argument
// compounded: NAS pays ~2x the file in server-server traffic per round,
// DAS pays only local disk plus the 2/r replica propagation.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A7: halo-exchange rounds (flow-accumulation x R, 12 GiB, "
      "24 nodes)",
      "per-round cost: NAS re-ships ~2x the file between servers every "
      "round; DAS rounds are local");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\n%7s %10s %10s %14s %14s\n", "rounds", "NAS(s)", "DAS(s)",
              "NAS srv-srv", "DAS srv-srv");
  double nas_prev = 0.0, das_prev = 0.0;
  double nas_round_cost = 0.0, das_round_cost = 0.0;
  for (std::uint32_t rounds = 1; rounds <= 4; ++rounds) {
    const std::vector<std::string> chain(rounds, "flow-accumulation");
    das::core::SchemeRunOptions o;
    o.workload = das::runner::paper_workload("flow-accumulation", 12);
    o.cluster = das::runner::paper_cluster(24);

    o.scheme = Scheme::kNAS;
    const RunReport nas = das::core::run_pipeline(o, chain).back();
    o.scheme = Scheme::kDAS;
    const RunReport das_r = das::core::run_pipeline(o, chain).back();
    cells.push_back({"A7/NAS/rounds" + std::to_string(rounds), nas});
    cells.push_back({"A7/DAS/rounds" + std::to_string(rounds), das_r});

    std::printf("%7u %10.2f %10.2f %13.2fG %13.2fG\n", rounds,
                nas.exec_seconds, das_r.exec_seconds,
                static_cast<double>(nas.server_server_bytes) / (1 << 30),
                static_cast<double>(das_r.server_server_bytes) / (1 << 30));
    if (rounds > 1) {
      nas_round_cost = nas.exec_seconds - nas_prev;
      das_round_cost = das_r.exec_seconds - das_prev;
    }
    nas_prev = nas.exec_seconds;
    das_prev = das_r.exec_seconds;
  }

  checks.push_back(das::runner::ShapeCheck{
      "marginal round cost, NAS vs DAS",
      "NAS round much dearer (network vs local disk)",
      nas_round_cost / das_round_cost, nas_round_cost > 2.0 * das_round_cost});
  checks.push_back(das::runner::ShapeCheck{
      "DAS marginal round cost", "seconds, small",
      das_round_cost, das_round_cost > 0.0});

  return bench::finish(argc, argv, cells, checks);
}
