// Ablation A3: the dynamic offload decision (paper Fig. 3) on vs off.
// With the input striped round-robin and no successive operation to
// amortize a re-layout, DAS's decision engine *rejects* the offload and
// serves the request as normal I/O — landing at TS performance — while a
// dependence-unaware active storage that offloads anyway lands at NAS
// performance. The decision is the difference.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A3: offload decision on vs off (round-robin input, "
      "single operation)",
      "dynamic DAS rejects the offload and matches TS; forced offload "
      "pays the NAS penalty");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  for (const std::string& kernel : das::runner::paper_kernels()) {
    das::core::SchemeRunOptions o;
    o.workload = das::runner::paper_workload(kernel, 24);
    o.cluster = das::runner::paper_cluster(24);

    // Dynamic DAS on a round-robin file, one operation, no pre-distribution.
    o.scheme = Scheme::kDAS;
    o.pre_distributed = false;
    o.pipeline_length = 1;
    const RunReport dynamic = das::core::run_scheme(o);

    // Forced offload on the same file = the NAS scheme.
    o.scheme = Scheme::kNAS;
    const RunReport forced = das::core::run_scheme(o);

    // The TS reference the decision should land on.
    o.scheme = Scheme::kTS;
    const RunReport ts = das::core::run_scheme(o);

    cells.push_back({"A3/" + kernel + "/DAS-dynamic", dynamic});
    cells.push_back({"A3/" + kernel + "/forced-offload", forced});
    cells.push_back({"A3/" + kernel + "/TS", ts});

    checks.push_back(das::runner::ShapeCheck{
        "decision rejects the offload, " + kernel, "served as normal I/O",
        dynamic.offloaded ? 1.0 : 0.0, !dynamic.offloaded});
    checks.push_back(das::runner::ShapeCheck{
        "dynamic DAS ~ TS, " + kernel, "within 5% of TS",
        dynamic.exec_seconds / ts.exec_seconds,
        dynamic.exec_seconds < ts.exec_seconds * 1.05});
    checks.push_back(das::runner::ShapeCheck{
        "forced offload pays the NAS penalty, " + kernel,
        "well above dynamic DAS",
        forced.exec_seconds / dynamic.exec_seconds,
        forced.exec_seconds > dynamic.exec_seconds * 1.3});
  }

  return bench::finish(argc, argv, cells, checks);
}
