// Microbench for the simulator's event-queue hot path.
//
// Replays the same seeded push / cancel / pop churn against the indexed
// 4-ary heap (sim::EventQueue) and against a faithful replica of the
// pre-overhaul queue (std::function callbacks, std::priority_queue with an
// unordered_set of live ids, lazy cancellation with a dead-event scan in
// both next_time() and pop()). Callbacks capture three pointers so they
// exceed std::function's typical small-buffer size — matching the
// simulator's real callbacks, which capture `this` plus request state.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_simkit.json by default) with events/sec for both engines and the
// speedup ratio, which CI uploads as an artifact.
//
// Usage: bench_simkit_hotpath [--events=N] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "simkit/event_queue.hpp"
#include "simkit/random.hpp"
#include "simkit/time.hpp"

namespace {

// The event engine as it existed before the indexed-heap overhaul, kept
// here verbatim (minus tracing hooks) so the comparison never drifts.
class LegacyEventQueue {
 public:
  struct Event {
    das::sim::SimTime when = 0;
    std::uint64_t id = 0;
    std::function<void()> action;
    const char* tag = "";
  };

  std::uint64_t push(das::sim::SimTime when, std::function<void()> action,
                     const char* tag) {
    const std::uint64_t id = next_id_++;
    heap_.push(Event{when, id, std::move(action), tag});
    pending_.insert(id);
    return id;
  }

  bool cancel(std::uint64_t id) { return pending_.erase(id) > 0; }

  [[nodiscard]] bool empty() const { return pending_.empty(); }

  [[nodiscard]] das::sim::SimTime next_time() const {
    drop_dead();
    return heap_.top().when;
  }

  Event pop() {
    drop_dead();
    Event ev = heap_.top();
    heap_.pop();
    pending_.erase(ev.id);
    return ev;
  }

 private:
  struct Order {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void drop_dead() const {
    while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
      heap_.pop();
    }
  }

  mutable std::priority_queue<Event, std::vector<Event>, Order> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_id_ = 0;
};

struct ChurnResult {
  std::uint64_t delivered = 0;
  std::uint64_t checksum = 0;
  double seconds = 0.0;
};

// One simulator-shaped workload step: keep a backlog of scheduled events,
// deliver the earliest, and from inside the callback schedule a few more
// and cancel a recent one — the schedule/cancel/reschedule pattern the
// NIC and disk models follow. Identical sequence for both queues.
template <typename Queue, typename MakeAction>
ChurnResult run_churn(std::uint64_t total_events, MakeAction make_action) {
  Queue queue;
  das::sim::Rng rng(0xC0FFEE);
  std::uint64_t checksum = 0;
  std::uint64_t scheduled = 0;
  std::vector<std::uint64_t> recent_ids;
  das::sim::SimTime now = 0;

  const auto schedule = [&](das::sim::SimTime at) {
    const std::uint64_t id =
        queue.push(at, make_action(&checksum, &scheduled, &now), "churn");
    ++scheduled;
    recent_ids.push_back(id);
    if (recent_ids.size() > 64) {
      recent_ids.erase(recent_ids.begin(), recent_ids.begin() + 32);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 256; ++i) {
    schedule(static_cast<das::sim::SimTime>(rng.uniform_int(0, 1000)));
  }
  std::uint64_t delivered = 0;
  while (delivered < total_events && !queue.empty()) {
    now = queue.next_time();
    auto ev = queue.pop();
    ev.action();
    ++delivered;
    // Refill and churn: two fresh events (some at the current timestamp to
    // exercise FIFO ties) and one cancellation of a recent id.
    schedule(now + static_cast<das::sim::SimTime>(rng.uniform_int(0, 500)));
    if (rng.bernoulli(0.5)) {
      schedule(now);
    }
    if (!recent_ids.empty() && rng.bernoulli(0.25)) {
      queue.cancel(recent_ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(recent_ids.size()) - 1))]);
    }
  }
  const auto stop = std::chrono::steady_clock::now();

  ChurnResult result;
  result.delivered = delivered;
  result.checksum = checksum;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  std::string out_path = "BENCH_simkit.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--events=", 9) == 0) {
      events = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--events=N] [--out=FILE]\n", argv[0]);
      return 1;
    }
  }

  // Three captured pointers (24 bytes) defeat std::function's small-buffer
  // storage on common ABIs but fit InplaceFn's 64-byte inline slot.
  const auto make_action = [](std::uint64_t* checksum,
                              std::uint64_t* scheduled,
                              das::sim::SimTime* now) {
    return [checksum, scheduled, now]() {
      *checksum += *scheduled + static_cast<std::uint64_t>(*now);
    };
  };

  // Warm-up pass (untimed) so the allocator and caches settle, then the
  // measured passes, legacy first.
  run_churn<LegacyEventQueue>(events / 10, make_action);
  run_churn<das::sim::EventQueue>(events / 10, make_action);

  const ChurnResult legacy = run_churn<LegacyEventQueue>(events, make_action);
  const ChurnResult fresh = run_churn<das::sim::EventQueue>(events,
                                                            make_action);

  if (legacy.checksum != fresh.checksum ||
      legacy.delivered != fresh.delivered) {
    std::fprintf(stderr,
                 "FAIL: engines diverged (legacy %llu/%llu, new %llu/%llu)\n",
                 static_cast<unsigned long long>(legacy.delivered),
                 static_cast<unsigned long long>(legacy.checksum),
                 static_cast<unsigned long long>(fresh.delivered),
                 static_cast<unsigned long long>(fresh.checksum));
    return 1;
  }

  const double legacy_eps =
      static_cast<double>(legacy.delivered) / legacy.seconds;
  const double fresh_eps =
      static_cast<double>(fresh.delivered) / fresh.seconds;
  const double speedup = fresh_eps / legacy_eps;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"simkit_hotpath\",\n"
      "  \"events\": %llu,\n"
      "  \"checksum\": %llu,\n"
      "  \"new\": {\"events_per_sec\": %.0f, \"ns_per_event\": %.2f},\n"
      "  \"legacy\": {\"events_per_sec\": %.0f, \"ns_per_event\": %.2f},\n"
      "  \"speedup\": %.3f\n"
      "}\n",
      static_cast<unsigned long long>(fresh.delivered),
      static_cast<unsigned long long>(fresh.checksum), fresh_eps,
      1e9 / fresh_eps, legacy_eps, 1e9 / legacy_eps, speedup);

  std::printf("%s", json);
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
