// Ablation A4: amortizing the DAS re-layout over successive operations
// (the paper's flow-routing -> flow-accumulation argument). Starting from a
// round-robin file, a runtime redistribution is a loss for one operation
// but pays for itself as the pipeline deepens, because every later stage
// inherits the dependence-aware layout for free.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A4: re-layout cost amortized over pipeline depth "
      "(round-robin start, 12 GiB, 24 nodes)",
      "runtime redistribution loses at depth 1, wins from shallow depths on");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\n%6s %12s %12s %10s\n", "depth", "DAS(s)", "TS(s)",
              "DAS/TS");
  double last_ratio = 0.0;
  for (std::uint32_t depth = 1; depth <= 4; ++depth) {
    std::vector<std::string> chain;
    chain.push_back("flow-routing");
    for (std::uint32_t i = 1; i < depth; ++i) {
      chain.push_back("flow-accumulation");
    }

    das::core::SchemeRunOptions o;
    o.workload = das::runner::paper_workload("flow-routing", 12);
    o.cluster = das::runner::paper_cluster(24);
    o.pre_distributed = false;

    o.scheme = Scheme::kDAS;
    const auto das_reports = das::core::run_pipeline(o, chain);
    o.scheme = Scheme::kTS;
    const auto ts_reports = das::core::run_pipeline(o, chain);

    const RunReport& das_total = das_reports.back();
    const RunReport& ts_total = ts_reports.back();
    cells.push_back({"A4/DAS/depth" + std::to_string(depth), das_total});
    cells.push_back({"A4/TS/depth" + std::to_string(depth), ts_total});

    const double ratio = das_total.exec_seconds / ts_total.exec_seconds;
    last_ratio = ratio;
    std::printf("%6u %12.2f %12.2f %10.2f\n", depth,
                das_total.exec_seconds, ts_total.exec_seconds, ratio);

    if (depth == 1) {
      checks.push_back(das::runner::ShapeCheck{
          "depth 1: decision avoids a losing re-layout",
          "DAS within ~10% of TS", ratio, ratio < 1.1});
    }
  }
  checks.push_back(das::runner::ShapeCheck{
      "deep pipelines amortize the re-layout", "DAS clearly ahead at depth 4",
      last_ratio, last_ratio < 0.8});

  return bench::finish(argc, argv, cells, checks);
}
