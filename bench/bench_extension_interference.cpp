// Extension E2: job interference. Two jobs sharing the same storage
// servers: like pairs pay roughly 2x (DAS+DAS share the disks and engines,
// TS+TS share the links), and a mixed TS+DAS pair overlaps no better than
// running the jobs back to back — the server disks sit on both paths. A
// scheduling observation the paper's single-job evaluation cannot see.
#include "bench_common.hpp"

#include <algorithm>

#include "core/as_client.hpp"
#include "core/scheme.hpp"
#include "core/ts_executor.hpp"
#include "core/workload.hpp"
#include "kernels/registry.hpp"

namespace {

using das::core::Scheme;

/// Run one flow-routing job per entry of `schemes` (each on its own 6 GiB
/// file) concurrently on one 24-node cluster; returns per-job finish times.
std::vector<double> run_jobs(const std::vector<Scheme>& schemes) {
  auto wl = das::runner::paper_workload("flow-routing", 6);
  das::core::ClusterConfig cc = das::runner::paper_cluster(24);
  cc.job_startup = 0;
  das::core::Cluster cluster(cc);
  const auto registry = das::kernels::standard_registry();
  das::core::DistributionConfig distribution;
  das::core::ActiveStorageClient client(cluster, registry, distribution);

  const auto kernel = registry.create(wl.kernel_name);
  const auto offsets = kernel->features().resolve(wl.width());
  das::core::DistributionPlanner planner(distribution);

  std::vector<double> finishes(schemes.size(), 0.0);
  std::vector<std::unique_ptr<das::core::TsExecutor>> ts_execs;

  for (std::size_t job = 0; job < schemes.size(); ++job) {
    auto meta = wl.make_meta("input" + std::to_string(job));
    std::unique_ptr<das::pfs::Layout> layout;
    if (schemes[job] == Scheme::kDAS) {
      layout = planner.plan(meta, offsets, cc.storage_nodes)->make_layout();
    } else {
      layout = std::make_unique<das::pfs::RoundRobinLayout>(cc.storage_nodes);
    }
    const auto input = cluster.pfs().create_file(meta, std::move(layout),
                                                 nullptr);
    double* finish = &finishes[job];
    auto on_done = [&cluster, finish]() {
      *finish = das::sim::to_seconds(cluster.simulator().now());
    };
    if (schemes[job] == Scheme::kDAS) {
      das::core::ActiveRequest request;
      request.input = input;
      request.kernel_name = wl.kernel_name;
      client.submit(request, on_done);
    } else {
      auto out_meta = meta;
      out_meta.name += ".out";
      const auto output = cluster.pfs().create_file(
          out_meta,
          std::make_unique<das::pfs::RoundRobinLayout>(cc.storage_nodes),
          nullptr);
      das::core::TsExecutor::Options opt{kernel.get(), 1, false};
      ts_execs.push_back(
          std::make_unique<das::core::TsExecutor>(cluster, opt));
      ts_execs.back()->start(input, output, on_done);
    }
  }
  cluster.simulator().run();
  return finishes;
}

double makespan(const std::vector<double>& finishes) {
  return *std::max_element(finishes.begin(), finishes.end());
}

das::core::RunReport as_report(const char* label, double seconds) {
  das::core::RunReport r;
  r.scheme = label;
  r.kernel = "flow-routing x2";
  r.data_bytes = 12ULL << 30;
  r.storage_nodes = 12;
  r.compute_nodes = 12;
  r.exec_seconds = seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = das::bench;

  bench::print_banner(
      "Extension E2: two concurrent 6 GiB flow-routing jobs on one cluster",
      "pairs of like jobs pay ~2x (shared disks or shared links); a mixed "
      "TS+DAS pair overlaps no better than running the two jobs back to "
      "back, because the server disks are common to both paths");

  const double das_solo = makespan(run_jobs({Scheme::kDAS}));
  const double ts_solo = makespan(run_jobs({Scheme::kTS}));
  const double das_pair = makespan(run_jobs({Scheme::kDAS, Scheme::kDAS}));
  const double ts_pair = makespan(run_jobs({Scheme::kTS, Scheme::kTS}));
  const double mixed = makespan(run_jobs({Scheme::kTS, Scheme::kDAS}));

  std::vector<bench::Cell> cells;
  cells.push_back({"E2/DAS-solo", as_report("DAS", das_solo)});
  cells.push_back({"E2/TS-solo", as_report("TS", ts_solo)});
  cells.push_back({"E2/DAS+DAS", as_report("DASx2", das_pair)});
  cells.push_back({"E2/TS+TS", as_report("TSx2", ts_pair)});
  cells.push_back({"E2/TS+DAS", as_report("mixed", mixed)});

  std::printf("\nsolo: DAS %.2f s, TS %.2f s\n", das_solo, ts_solo);
  std::printf("pairs (makespan): DAS+DAS %.2f s, TS+TS %.2f s, TS+DAS "
              "%.2f s\n",
              das_pair, ts_pair, mixed);

  std::vector<das::runner::ShapeCheck> checks;
  checks.push_back(das::runner::ShapeCheck{
      "DAS pair slowdown over solo", "~2x (shared disks/engines)",
      das_pair / das_solo, das_pair > 1.5 * das_solo});
  checks.push_back(das::runner::ShapeCheck{
      "TS pair slowdown over solo", ">= 2x (shared links + incast)",
      ts_pair / ts_solo, ts_pair > 1.9 * ts_solo});
  checks.push_back(das::runner::ShapeCheck{
      "mixed pair vs running both serially",
      "no worse than back-to-back (shared disks limit overlap)",
      mixed / (das_solo + ts_solo), mixed < 1.05 * (das_solo + ts_solo)});

  return bench::finish(argc, argv, cells, checks);
}
