// Wall-clock microbench for the vectorized kernel engine.
//
// Measures cells/sec for each of the five stencil kernels under every ISA
// this CPU can run (scalar -> SSE2 -> AVX2), plus cache-blocked vs
// unblocked sweeps on a wide raster whose row panels outgrow L2. Before
// timing, every ISA's output is checksummed against the scalar sweep —
// the engine's bit-identity contract — and any mismatch fails the run.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_kernels.json by default) that CI uploads as an artifact, and it is
// the perf-smoke gate for the SIMD engine — on an AVX2 machine it exits
// nonzero unless at least 3 of the 5 kernels reach >= 2x the scalar
// cells/sec (the reduction's sum must stay sequential for bit-identity, so
// statistics is allowed to miss).
//
// Usage: bench_kernels_simd [--width=1024] [--height=512] [--repeats=5]
//                           [--wide-width=1048576] [--wide-height=8]
//                           [--block-cols=16384] [--out=BENCH_kernels.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "kernels/simd.hpp"
#include "runner/args.hpp"

namespace {

using das::grid::Grid;
using das::kernels::KernelPtr;
using das::kernels::KernelRegistry;
namespace simd = das::kernels::simd;

constexpr const char* kKernels[] = {"laplacian-4", "gaussian-2d",
                                    "surface-slope", "median-3x3",
                                    "raster-statistics"};

Grid<float> make_input(std::uint32_t width, std::uint32_t height) {
  Grid<float> g(width, height);
  std::uint32_t state = 0x9E3779B9U;
  for (std::uint32_t y = 0; y < height; ++y) {
    float* row = g.row(y);
    for (std::uint32_t x = 0; x < width; ++x) {
      state = state * 1664525U + 1013904223U;
      row[x] = 1.0F + static_cast<float>(state >> 8) * (1.0F / (1U << 24));
    }
  }
  return g;
}

/// FNV-1a over the output's bit pattern: equal checksums across ISAs is the
/// engine's bit-identity contract.
std::uint64_t bits_checksum(const Grid<float>& g) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t y = 0; y < g.height(); ++y) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(g.row(y));
    for (std::size_t i = 0; i < g.width() * sizeof(float); ++i) {
      h = (h ^ bytes[i]) * 1099511628211ULL;
    }
  }
  return h;
}

double best_seconds(const das::kernels::ProcessingKernel& kernel,
                    const Grid<float>& input, std::uint32_t repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t r = 0; r < repeats + 1; ++r) {  // +1 warm-up, discarded
    const auto start = std::chrono::steady_clock::now();
    const Grid<float> out = kernel.run_reference(input);
    const auto stop = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(stop - start).count();
    if (r > 0) best = std::min(best, s);
  }
  return best;
}

struct IsaResult {
  simd::Isa isa = simd::Isa::kScalar;
  double cells_per_sec = 0.0;
};

struct KernelResult {
  std::string name;
  std::vector<IsaResult> isas;  // index 0 is always scalar
  double blocked_cells_per_sec = 0.0;
  double unblocked_cells_per_sec = 0.0;

  [[nodiscard]] double speedup(simd::Isa isa) const {
    for (const IsaResult& r : isas) {
      if (r.isa == isa && isas[0].cells_per_sec > 0.0) {
        return r.cells_per_sec / isas[0].cells_per_sec;
      }
    }
    return 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const das::runner::Args args(argc, argv);
  const auto width =
      static_cast<std::uint32_t>(args.get_int("width", 1024));
  const auto height =
      static_cast<std::uint32_t>(args.get_int("height", 512));
  const auto repeats =
      static_cast<std::uint32_t>(args.get_int("repeats", 5));
  const auto wide_width =
      static_cast<std::uint32_t>(args.get_int("wide-width", 1048576));
  const auto wide_height =
      static_cast<std::uint32_t>(args.get_int("wide-height", 8));
  const auto block_cols = static_cast<std::uint32_t>(
      args.get_int("block-cols", simd::kDefaultBlockCols));
  const std::string out_path = args.get("out", "BENCH_kernels.json");
  if (const std::string u = args.unused(); !u.empty()) {
    std::fprintf(stderr, "unknown flags: %s\n", u.c_str());
    return 2;
  }

  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() >= simd::Isa::kSse2) {
    isas.push_back(simd::Isa::kSse2);
  }
  if (simd::detected_isa() >= simd::Isa::kAvx2) {
    isas.push_back(simd::Isa::kAvx2);
  }

  const KernelRegistry registry = das::kernels::standard_registry();
  const Grid<float> input = make_input(width, height);
  const Grid<float> wide = make_input(wide_width, wide_height);
  const double cells = static_cast<double>(width) * height;
  const double wide_cells = static_cast<double>(wide_width) * wide_height;

  std::vector<KernelResult> results;
  for (const char* name : kKernels) {
    const KernelPtr kernel = registry.create(name);
    KernelResult result;
    result.name = name;

    // Bit-identity first: every ISA must reproduce the scalar output.
    std::uint64_t scalar_sum = 0;
    for (const simd::Isa isa : isas) {
      simd::set_isa_override(isa);
      const std::uint64_t sum = bits_checksum(kernel->run_reference(input));
      if (isa == simd::Isa::kScalar) {
        scalar_sum = sum;
      } else if (sum != scalar_sum) {
        std::fprintf(stderr, "FAIL: %s %s output differs from scalar\n",
                     name, simd::to_string(isa));
        return 1;
      }
    }

    for (const simd::Isa isa : isas) {
      simd::set_isa_override(isa);
      IsaResult r;
      r.isa = isa;
      r.cells_per_sec = cells / best_seconds(*kernel, input, repeats);
      result.isas.push_back(r);
    }

    // Blocked vs unblocked on the wide raster, widest ISA. The reduction
    // has no 3-row interior sweep, so the comparison is stencils-only.
    // Full `repeats` here too: the first sweeps after a fresh 32 MiB
    // allocation pay one-off page-fault costs, and best-of needs enough
    // later runs to see the warm steady state.
    if (std::string(name) != "raster-statistics") {
      simd::set_isa_override(isas.back());
      simd::set_block_cols(block_cols);
      result.blocked_cells_per_sec =
          wide_cells / best_seconds(*kernel, wide, repeats);
      simd::set_block_cols(0);
      result.unblocked_cells_per_sec =
          wide_cells / best_seconds(*kernel, wide, repeats);
      simd::set_block_cols(simd::kDefaultBlockCols);
    }
    simd::set_isa_override(std::nullopt);
    results.push_back(result);
  }

  std::string json = "{\n  \"bench\": \"kernels_simd\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"detected_isa\": \"%s\",\n"
                  "  \"grid\": [%u, %u],\n  \"wide_grid\": [%u, %u],\n"
                  "  \"kernels\": {\n",
                  simd::to_string(simd::detected_isa()), width, height,
                  wide_width, wide_height);
    json += buf;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& k = results[i];
    json += "    \"" + k.name + "\": {";
    for (const IsaResult& r : k.isas) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "\"%s_cells_per_sec\": %.3e, ",
                    simd::to_string(r.isa), r.cells_per_sec);
      json += buf;
    }
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\"simd_speedup\": %.2f, \"blocked_cells_per_sec\": %.3e, "
                  "\"unblocked_cells_per_sec\": %.3e}",
                  k.speedup(isas.back()), k.blocked_cells_per_sec,
                  k.unblocked_cells_per_sec);
    json += buf;
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  }\n}\n";

  std::printf("%s", json.c_str());
  {
    std::ofstream out(out_path);
    out << json;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // The perf gate: >= 2x scalar on at least 3 of 5 kernels, AVX2 machines
  // only (SSE2-only hosts still check bit-identity above).
  if (simd::detected_isa() == simd::Isa::kAvx2) {
    int fast = 0;
    for (const KernelResult& k : results) {
      const double speedup = k.speedup(simd::Isa::kAvx2);
      std::printf("%-18s avx2/scalar %.2fx\n", k.name.c_str(), speedup);
      if (speedup >= 2.0) ++fast;
    }
    if (fast < 3) {
      std::fprintf(stderr,
                   "FAIL: only %d of 5 kernels reached 2x scalar under AVX2 "
                   "(need 3)\n",
                   fast);
      return 1;
    }
  } else {
    std::printf("gate skipped: detected ISA is %s, not avx2\n",
                simd::to_string(simd::detected_isa()));
  }
  return 0;
}
