// Ablation A1: replication-factor sweep. The paper's layout trades capacity
// (2*halo/r overhead) against nothing at runtime — the halo is local for any
// feasible r — but small r multiplies output-replica propagation and large r
// coarsens parallelism. This bench sweeps r and reports execution time,
// server-server traffic, and the measured capacity overhead.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A1: DAS group size r (capacity overhead 2/r vs traffic)",
      "larger r shrinks replica traffic toward zero; all r beat TS");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  const RunReport ts =
      das::runner::run_cell(Scheme::kTS, "flow-routing", 24, 24);
  cells.push_back({"A1/TS-baseline", ts});

  std::printf("\n%6s %10s %14s %16s\n", "r", "time(s)", "srv-srv GiB",
              "capacity +%");
  double previous_srv = 1e30;
  for (const std::uint64_t r : {4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
    das::core::SchemeRunOptions o;
    o.scheme = Scheme::kDAS;
    o.workload = das::runner::paper_workload("flow-routing", 24);
    o.cluster = das::runner::paper_cluster(24);
    o.distribution.group_size = r;
    o.distribution.max_capacity_overhead = 1.0;  // let r alone control it
    const RunReport rep = das::core::run_scheme(o);
    cells.push_back({"A1/DAS/r" + std::to_string(r), rep});

    const double overhead = 2.0 / static_cast<double>(r) * 100.0;
    std::printf("%6llu %10.2f %14.3f %16.2f\n",
                static_cast<unsigned long long>(r), rep.exec_seconds,
                static_cast<double>(rep.server_server_bytes) / (1 << 30),
                overhead);

    checks.push_back(das::runner::ShapeCheck{
        "DAS(r=" + std::to_string(r) + ") beats TS", "faster than TS",
        rep.exec_seconds / ts.exec_seconds,
        rep.exec_seconds < ts.exec_seconds});
    checks.push_back(das::runner::ShapeCheck{
        "replica traffic shrinks, r=" + std::to_string(r),
        "monotone in 1/r",
        static_cast<double>(rep.server_server_bytes) / (1 << 30),
        static_cast<double>(rep.server_server_bytes) <= previous_srv});
    previous_srv = static_cast<double>(rep.server_server_bytes);
  }

  return bench::finish(argc, argv, cells, checks);
}
