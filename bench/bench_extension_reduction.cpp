// Extension E1: reduction offloading (raster-statistics). The active-disk
// literature the paper builds on (Riedel et al., Keeton et al.) targets
// scan/reduction kernels whose output is a few bytes: offloading always
// wins there, and — with an empty dependence set — NAS and DAS coincide.
// This bench quantifies that contrast with the paper's stencil kernels,
// framing where dependence awareness does and does not matter.
#include "bench_common.hpp"

#include "core/scheme.hpp"

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Extension E1: reduction offloading (raster-statistics, 24 GiB, "
      "24 nodes)",
      "offloading crushes TS; NAS == DAS because there is no dependence");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  RunReport by_scheme[3];
  std::size_t i = 0;
  for (const Scheme scheme : {Scheme::kNAS, Scheme::kDAS, Scheme::kTS}) {
    das::core::SchemeRunOptions o;
    o.scheme = scheme;
    o.workload = das::runner::paper_workload("raster-statistics", 24);
    o.cluster = das::runner::paper_cluster(24);
    by_scheme[i] = das::core::run_scheme(o);
    cells.push_back({std::string("E1/") + to_string(scheme), by_scheme[i]});
    ++i;
  }
  const RunReport& nas = by_scheme[0];
  const RunReport& das_r = by_scheme[1];
  const RunReport& ts = by_scheme[2];

  checks.push_back(das::runner::ShapeCheck{
      "offload speedup over TS", "large (output is ~64 B)",
      ts.exec_seconds / das_r.exec_seconds,
      das_r.exec_seconds < 0.7 * ts.exec_seconds});
  checks.push_back(das::runner::ShapeCheck{
      "NAS/DAS time ratio", "~1.0 (no dependence to be aware of)",
      nas.exec_seconds / das_r.exec_seconds,
      std::abs(nas.exec_seconds / das_r.exec_seconds - 1.0) < 0.02});
  checks.push_back(das::runner::ShapeCheck{
      "active-scheme network traffic", "near zero (partials only)",
      static_cast<double>(das_r.client_server_bytes +
                          das_r.server_server_bytes) /
          (1 << 20),
      das_r.client_server_bytes + das_r.server_server_bytes <
          (1ULL << 20) * 16});

  return bench::finish(argc, argv, cells, checks);
}
