// Table I reproduction: the data-analysis kernels, their descriptions and
// dependence records, plus measured host throughput of the real kernel
// implementations (google-benchmark over a 512x512 raster).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/workload.hpp"
#include "kernels/registry.hpp"

namespace {

das::grid::Grid<float> bench_input(const std::string& kernel_name) {
  das::core::WorkloadSpec spec;
  spec.kernel_name = kernel_name;
  spec.element_size = 4;
  spec.strip_size = 2048;  // width 512
  spec.data_bytes = 512ULL * 512 * 4;
  spec.with_data = true;
  const auto registry = das::kernels::standard_registry();
  return das::core::make_input(spec, *registry.create(kernel_name));
}

void run_kernel(benchmark::State& state, const std::string& name) {
  const auto registry = das::kernels::standard_registry();
  const auto kernel = registry.create(name);
  const auto input = bench_input(name);
  for (auto _ : state) {
    auto out = kernel->run_reference(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size() * 4));
}

}  // namespace

BENCHMARK_CAPTURE(run_kernel, flow_routing, "flow-routing");
BENCHMARK_CAPTURE(run_kernel, flow_accumulation, "flow-accumulation");
BENCHMARK_CAPTURE(run_kernel, gaussian_2d, "gaussian-2d");
BENCHMARK_CAPTURE(run_kernel, median_3x3, "median-3x3");
BENCHMARK_CAPTURE(run_kernel, surface_slope, "surface-slope");
BENCHMARK_CAPTURE(run_kernel, laplacian_4, "laplacian-4");
BENCHMARK_CAPTURE(run_kernel, raster_statistics, "raster-statistics");

int main(int argc, char** argv) {
  std::printf("Table I: description of data analysis kernels\n");
  std::printf("---------------------------------------------\n");
  const auto registry = das::kernels::standard_registry();
  for (const std::string& name : registry.names()) {
    const auto kernel = registry.create(name);
    std::printf("%-18s  %s\n", kernel->name().c_str(),
                kernel->description().c_str());
    std::printf("%-18s  %s\n", "", kernel->features().format().c_str());
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
