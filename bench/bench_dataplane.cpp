// Microbench for the zero-copy data plane.
//
// Replays the same deterministic halo-fetch churn — store lookup, payload
// hand-off to a delivery callback, cache admission with eviction, consumer
// copy into a compute slab — against the real data plane (flat-table
// ServerStore + shared StripBuffer payloads + InplaceFn callbacks +
// StripCache with pooled eviction nodes) and against a faithful replica of
// the pre-overhaul plane (map-indexed store, a fresh std::vector copy at
// every hop, std::function delivery callbacks whose captures exceed the
// small-buffer size).
//
// Besides wall-clock ops/sec it reports, per fetch, the heap allocation
// count (global counting operator new) and the payload bytes copied. The
// steady-state fetch loop of the new plane must perform ZERO heap
// allocations — the binary exits nonzero otherwise, and CI runs it as the
// perf-smoke regression gate. It also requires >= 2x ops/sec over the
// legacy replica.
//
// Deliberately not a google-benchmark binary: it emits one JSON document
// (BENCH_dataplane.json by default) that CI uploads as an artifact.
//
// Usage: bench_dataplane [--fetches=N] [--out=FILE]
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <list>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "cache/strip_cache.hpp"
#include "pfs/store.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/inplace_fn.hpp"

namespace {

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in the process goes through
// here, so a steady-state window with g_allocs unchanged means the fetch
// path is allocation-free end to end (callbacks, cache, pool included).
std::uint64_t g_allocs = 0;
std::uint64_t g_alloc_bytes = 0;

// Payload bytes memcpy'd, counted explicitly at every copy site.
std::uint64_t g_bytes_copied = 0;

void* counted_alloc(std::size_t size) {
  ++g_allocs;
  g_alloc_bytes += size;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

void copy_payload(std::byte* dst, const std::byte* src, std::uint64_t n) {
  std::memcpy(dst, src, n);
  g_bytes_copied += n;
}

constexpr std::uint64_t kStripBytes = 64 * 1024;
constexpr std::uint64_t kNumStrips = 256;
constexpr std::uint64_t kCacheStrips = kNumStrips / 2;  // cyclic churn: all miss

// ---------------------------------------------------------------------------
// The data plane as it existed before the zero-copy overhaul, kept here as
// a faithful replica so the comparison never drifts: ordered-map indexes
// keyed by (file, strip), a fresh vector copy at every hop, std::function
// callbacks.

class LegacyStore {
 public:
  void put(std::uint64_t file, std::uint64_t strip,
           std::vector<std::byte> bytes) {
    strips_[{file, strip}] = std::move(bytes);
  }

  [[nodiscard]] const std::vector<std::byte>& bytes(std::uint64_t file,
                                                    std::uint64_t strip) const {
    return strips_.at({file, strip});
  }

 private:
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::byte>>
      strips_;
};

class LegacyCache {
 public:
  explicit LegacyCache(std::uint64_t capacity) : capacity_(capacity) {}

  [[nodiscard]] const std::vector<std::byte>* lookup(std::uint64_t file,
                                                     std::uint64_t strip) {
    const auto it = entries_.find({file, strip});
    if (it == entries_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second.position);
    return &it->second.bytes;
  }

  void insert(std::uint64_t file, std::uint64_t strip,
              const std::vector<std::byte>& bytes) {
    while (used_ + bytes.size() > capacity_ && !order_.empty()) {
      const auto victim = order_.back();
      order_.pop_back();
      const auto it = entries_.find(victim);
      used_ -= it->second.bytes.size();
      entries_.erase(it);
    }
    order_.push_front({file, strip});
    Entry entry;
    entry.bytes = bytes;  // the copy-on-admit of the old cache
    g_bytes_copied += bytes.size();
    entry.position = order_.begin();
    entries_[{file, strip}] = std::move(entry);
    used_ += bytes.size();
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  struct Entry {
    std::vector<std::byte> bytes;
    std::list<Key>::iterator position;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Key> order_;
  std::map<Key, Entry> entries_;
};

struct ChurnResult {
  std::uint64_t fetches = 0;
  std::uint64_t checksum = 0;
  std::uint64_t allocs = 0;        // heap allocations in the measured window
  std::uint64_t bytes_copied = 0;  // payload bytes memcpy'd in the window
  double seconds = 0.0;
};

// One legacy halo fetch: cache lookup; on miss slice a fresh vector out of
// the store, deliver it through a freshly built std::function (captures a
// slab pointer, a checksum pointer, and the strip id — past the 16-byte
// small-buffer limit of common ABIs), copy into the consumer slab, and
// admit another copy into the cache.
ChurnResult run_legacy(std::uint64_t fetches, const LegacyStore& store) {
  LegacyCache cache(kCacheStrips * kStripBytes);
  std::vector<std::byte> slab(kStripBytes);
  std::uint64_t checksum = 0;

  const auto fetch_one = [&](std::uint64_t i) {
    const std::uint64_t strip = i % kNumStrips;
    const std::vector<std::byte>* cached = cache.lookup(0, strip);
    if (cached == nullptr) {
      const std::vector<std::byte>& stored = store.bytes(0, strip);
      std::vector<std::byte> payload(stored.begin(), stored.end());
      g_bytes_copied += payload.size();
      std::function<void(const std::vector<std::byte>&)> deliver =
          [slab_data = slab.data(), sum = &checksum,
           strip](const std::vector<std::byte>& bytes) {
            copy_payload(slab_data, bytes.data(), bytes.size());
            *sum += static_cast<std::uint64_t>(slab_data[0]) +
                    static_cast<std::uint64_t>(slab_data[bytes.size() - 1]) +
                    strip;
          };
      deliver(payload);
      cache.insert(0, strip, payload);
    } else {
      copy_payload(slab.data(), cached->data(), cached->size());
      checksum += static_cast<std::uint64_t>(slab[0]) +
                  static_cast<std::uint64_t>(slab[cached->size() - 1]) + strip;
    }
  };

  for (std::uint64_t i = 0; i < kNumStrips * 2; ++i) fetch_one(i);  // warm up

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t copied_before = g_bytes_copied;
  const auto start = std::chrono::steady_clock::now();
  checksum = 0;
  for (std::uint64_t i = 0; i < fetches; ++i) fetch_one(i);
  const auto stop = std::chrono::steady_clock::now();

  ChurnResult result;
  result.fetches = fetches;
  result.checksum = checksum;
  result.allocs = g_allocs - allocs_before;
  result.bytes_copied = g_bytes_copied - copied_before;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

// One zero-copy halo fetch: cache lookup; on miss slice a refcounted view
// of the stored payload, deliver it through an InplaceFn (same captures,
// inline), copy once into the consumer slab, and admit the SAME shared
// buffer into the cache. The only payload copy is the consumer's.
ChurnResult run_dataplane(std::uint64_t fetches,
                          const das::pfs::ServerStore& store) {
  das::cache::CacheConfig config;
  config.enabled = true;
  config.capacity_bytes = kCacheStrips * kStripBytes;
  das::cache::StripCache cache(config);
  std::vector<std::byte> slab(kStripBytes);
  std::uint64_t checksum = 0;

  const auto fetch_one = [&](std::uint64_t i) {
    const std::uint64_t strip = i % kNumStrips;
    const das::cache::CacheKey key{0, strip};
    if (const das::cache::CachedStrip* hit = cache.lookup(key)) {
      copy_payload(slab.data(), hit->bytes.data(), hit->bytes.size());
      checksum += static_cast<std::uint64_t>(slab[0]) +
                  static_cast<std::uint64_t>(slab[hit->bytes.size() - 1]) +
                  strip;
      return;
    }
    const das::pfs::StripBuffer& stored = store.buffer(0, strip);
    das::pfs::StripBuffer payload = stored.view(0, stored.size());
    das::sim::InplaceFn<void(const das::pfs::StripBuffer&)> deliver =
        [slab_data = slab.data(), sum = &checksum,
         strip](const das::pfs::StripBuffer& bytes) {
          copy_payload(slab_data, bytes.data(), bytes.size());
          *sum += static_cast<std::uint64_t>(slab_data[0]) +
                  static_cast<std::uint64_t>(slab_data[bytes.size() - 1]) +
                  strip;
        };
    deliver(payload);
    const std::uint64_t length = payload.size();
    cache.insert(key, length, std::move(payload));
  };

  for (std::uint64_t i = 0; i < kNumStrips * 2; ++i) fetch_one(i);  // warm up

  const std::uint64_t allocs_before = g_allocs;
  const std::uint64_t copied_before = g_bytes_copied;
  const auto start = std::chrono::steady_clock::now();
  checksum = 0;
  for (std::uint64_t i = 0; i < fetches; ++i) fetch_one(i);
  const auto stop = std::chrono::steady_clock::now();

  ChurnResult result;
  result.fetches = fetches;
  result.checksum = checksum;
  result.allocs = g_allocs - allocs_before;
  result.bytes_copied = g_bytes_copied - copied_before;
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t fetches = 2'000'000;
  std::string out_path = "BENCH_dataplane.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--fetches=", 10) == 0) {
      fetches = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--fetches=N] [--out=FILE]\n", argv[0]);
      return 1;
    }
  }

  // Identical strip contents for both stores.
  LegacyStore legacy_store;
  das::pfs::ServerStore store;
  store.reserve_file(0, kNumStrips);
  for (std::uint64_t s = 0; s < kNumStrips; ++s) {
    std::vector<std::byte> bytes(kStripBytes);
    for (std::uint64_t i = 0; i < kStripBytes; ++i) {
      bytes[i] = static_cast<std::byte>((s * 131 + i) % 251);
    }
    store.put(0, s, kStripBytes, das::pfs::StripBuffer::copy_of(bytes));
    legacy_store.put(0, s, std::move(bytes));
  }

  const ChurnResult legacy = run_legacy(fetches, legacy_store);
  const ChurnResult fresh = run_dataplane(fetches, store);

  if (legacy.checksum != fresh.checksum || legacy.fetches != fresh.fetches) {
    std::fprintf(stderr,
                 "FAIL: data planes diverged (legacy %llu/%llu, new "
                 "%llu/%llu)\n",
                 static_cast<unsigned long long>(legacy.fetches),
                 static_cast<unsigned long long>(legacy.checksum),
                 static_cast<unsigned long long>(fresh.fetches),
                 static_cast<unsigned long long>(fresh.checksum));
    return 1;
  }

  const double legacy_ops = static_cast<double>(legacy.fetches) /
                            legacy.seconds;
  const double fresh_ops = static_cast<double>(fresh.fetches) / fresh.seconds;
  const double speedup = fresh_ops / legacy_ops;
  const double fresh_allocs_per_fetch =
      static_cast<double>(fresh.allocs) / static_cast<double>(fresh.fetches);
  const double legacy_allocs_per_fetch =
      static_cast<double>(legacy.allocs) / static_cast<double>(legacy.fetches);

  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"bench\": \"dataplane\",\n"
      "  \"fetches\": %llu,\n"
      "  \"strip_bytes\": %llu,\n"
      "  \"checksum\": %llu,\n"
      "  \"new\": {\"ops_per_sec\": %.0f, \"allocs_per_fetch\": %.4f,\n"
      "          \"bytes_copied_per_fetch\": %.1f},\n"
      "  \"legacy\": {\"ops_per_sec\": %.0f, \"allocs_per_fetch\": %.4f,\n"
      "             \"bytes_copied_per_fetch\": %.1f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"steady_state_allocs\": %llu\n"
      "}\n",
      static_cast<unsigned long long>(fresh.fetches),
      static_cast<unsigned long long>(kStripBytes),
      static_cast<unsigned long long>(fresh.checksum), fresh_ops,
      fresh_allocs_per_fetch,
      static_cast<double>(fresh.bytes_copied) /
          static_cast<double>(fresh.fetches),
      legacy_ops, legacy_allocs_per_fetch,
      static_cast<double>(legacy.bytes_copied) /
          static_cast<double>(legacy.fetches),
      speedup, static_cast<unsigned long long>(fresh.allocs));

  std::printf("%s", json);
  {
    std::ofstream out(out_path);
    out << json;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (fresh.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state fetch loop performed %llu heap "
                 "allocations (must be 0)\n",
                 static_cast<unsigned long long>(fresh.allocs));
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: speedup %.3f < 2.0 over the legacy plane\n",
                 speedup);
    return 1;
  }
  return 0;
}
