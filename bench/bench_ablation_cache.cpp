// Ablation A8: server-side remote-strip caching under recurring analyses.
//
// NAS repeatedly runs a kernel over the same round-robin file (a hot
// dataset analysed again and again). Each pass's dependence halo is fetched
// from neighbouring servers — unless the per-server strip cache absorbed it
// on an earlier pass. Sweeping capacity x eviction policy x kernel shows
// the paper's NAS dependence penalty melting away as the cache grows:
// server-to-server bytes fall monotonically with capacity, and a cache-off
// run reproduces the uncached NAS numbers exactly.
#include "bench_common.hpp"

#include "core/scheme.hpp"

namespace {

das::core::SchemeRunOptions base_options(const std::string& kernel) {
  das::core::SchemeRunOptions o;
  o.scheme = das::core::Scheme::kNAS;
  o.workload = das::runner::paper_workload(kernel, 6);
  o.cluster = das::runner::paper_cluster(24);
  o.repeat_count = 4;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;
  namespace bench = das::bench;
  const unsigned jobs = bench::parse_jobs(&argc, argv);

  bench::print_banner(
      "Ablation A8: remote-strip cache capacity x policy x kernel "
      "(NAS, round-robin, 6 GiB, 24 nodes, 4 repeats)",
      "caching the fetched halo converts NAS's dependence traffic into "
      "local memory reads on every repeated pass");

  // Per-server halo working set for this configuration: 2 remote strips per
  // local strip, 512 strips per server -> 1 GiB. The sweep brackets it.
  const std::uint64_t mib = 1ULL << 20;
  const std::vector<std::uint64_t> capacities = {
      0, 256 * mib, 512 * mib, 1024 * mib, 2048 * mib};
  const std::vector<std::string> policies = {"lru", "lfu"};
  const std::vector<std::string> kernels = {"flow-routing", "median-3x3"};

  // Every cell (including each kernel's uncached reference) is an
  // independent scheme run; enumerate them all, sweep on the pool, then
  // print and check in enumeration order.
  std::vector<bench::CellSpec> specs;
  for (const std::string& kernel : kernels) {
    specs.push_back({"A8/" + kernel + "/reference", base_options(kernel)});
    for (const std::string& policy : policies) {
      for (const std::uint64_t capacity : capacities) {
        das::core::SchemeRunOptions o = base_options(kernel);
        o.cluster.server_cache.enabled = capacity > 0;
        o.cluster.server_cache.capacity_bytes = capacity;
        o.cluster.server_cache.policy = policy;
        specs.push_back({"A8/" + kernel + "/" + policy + "/cap" +
                             std::to_string(capacity / mib) + "MiB",
                         std::move(o)});
      }
    }
  }
  const std::vector<bench::Cell> runs = bench::run_cells(jobs, specs);

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  std::printf("\n%-14s %-6s %10s %14s %9s %10s\n", "kernel", "policy",
              "cache", "srv-srv", "hit-rate", "time(s)");
  std::size_t next = 0;
  for (const std::string& kernel : kernels) {
    // Uncached reference: the seed's NAS numbers for this repeat count.
    const RunReport reference = runs[next++].report;

    for (const std::string& policy : policies) {
      std::uint64_t last_bytes = UINT64_MAX;
      bool monotone = true;
      std::uint64_t off_bytes = 0;
      double best_hit_rate = 0.0;

      for (const std::uint64_t capacity : capacities) {
        const bench::Cell& cell = runs[next++];
        const RunReport& report = cell.report;

        std::printf("%-14s %-6s %10s %14s %9.2f %10.2f\n", kernel.c_str(),
                    policy.c_str(), das::core::format_bytes(capacity).c_str(),
                    das::core::format_bytes(report.server_server_bytes).c_str(),
                    report.cache_hit_rate(), report.exec_seconds);
        cells.push_back(cell);

        monotone = monotone && report.server_server_bytes <= last_bytes;
        last_bytes = report.server_server_bytes;
        if (capacity == 0) off_bytes = report.server_server_bytes;
        best_hit_rate = std::max(best_hit_rate, report.cache_hit_rate());
      }

      checks.push_back(das::runner::ShapeCheck{
          kernel + "/" + policy + ": srv-srv bytes fall with capacity",
          "monotonically non-increasing across the sweep",
          static_cast<double>(last_bytes), monotone});
      checks.push_back(das::runner::ShapeCheck{
          kernel + "/" + policy + ": cache off reproduces uncached NAS",
          "srv-srv bytes identical to the no-cache-config run",
          static_cast<double>(off_bytes),
          off_bytes == reference.server_server_bytes});
      checks.push_back(das::runner::ShapeCheck{
          kernel + "/" + policy + ": repeats find the steady state",
          "hit rate > 0.5 once capacity covers the working set",
          best_hit_rate, best_hit_rate > 0.5});
    }
  }

  return bench::finish(argc, argv, cells, checks);
}
