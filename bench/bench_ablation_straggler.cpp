// Ablation A5: straggler sensitivity. Active storage binds computation to
// data placement, so one slow storage server gates the slabs it owns; TS's
// bottleneck is the client links, which a slow server disk barely dents.
// This sweep slows one of twelve servers by 1-8x and compares the relative
// execution-time hit of DAS vs TS (flow-routing, 24 GiB, 24 nodes).
#include "bench_common.hpp"

#include "core/scheme.hpp"

namespace {

das::core::RunReport run_with_straggler(das::core::Scheme scheme,
                                        double slowdown) {
  das::core::SchemeRunOptions o;
  o.scheme = scheme;
  o.workload = das::runner::paper_workload("flow-routing", 24);
  o.cluster = das::runner::paper_cluster(24);
  o.cluster.straggler_count = slowdown > 1.0 ? 1 : 0;
  o.cluster.straggler_slowdown = slowdown;
  return das::core::run_scheme(o);
}

}  // namespace

int main(int argc, char** argv) {
  using das::core::RunReport;
  using das::core::Scheme;
  namespace bench = das::bench;

  bench::print_banner(
      "Ablation A5: one slow storage server (flow-routing, 24 GiB, 24 "
      "nodes)",
      "DAS degrades more than TS as the straggler slows: offloaded "
      "compute is bound to data placement");

  std::vector<bench::Cell> cells;
  std::vector<das::runner::ShapeCheck> checks;

  const double das_base = run_with_straggler(Scheme::kDAS, 1.0).exec_seconds;
  const double ts_base = run_with_straggler(Scheme::kTS, 1.0).exec_seconds;

  std::printf("\n%10s %12s %12s %12s %12s\n", "slowdown", "DAS(s)",
              "DAS hit", "TS(s)", "TS hit");
  for (const double slowdown : {1.0, 2.0, 4.0, 8.0}) {
    const RunReport das_r = run_with_straggler(Scheme::kDAS, slowdown);
    const RunReport ts = run_with_straggler(Scheme::kTS, slowdown);
    cells.push_back({"A5/DAS/x" + std::to_string(static_cast<int>(slowdown)),
                     das_r});
    cells.push_back({"A5/TS/x" + std::to_string(static_cast<int>(slowdown)),
                     ts});
    const double das_hit = das_r.exec_seconds / das_base;
    const double ts_hit = ts.exec_seconds / ts_base;
    std::printf("%9.0fx %12.2f %11.2fx %12.2f %11.2fx\n", slowdown,
                das_r.exec_seconds, das_hit, ts.exec_seconds, ts_hit);
    if (slowdown >= 4.0) {
      checks.push_back(das::runner::ShapeCheck{
          "DAS hit exceeds TS hit at " +
              std::to_string(static_cast<int>(slowdown)) + "x",
          "active storage is placement-bound", das_hit / ts_hit,
          das_hit > ts_hit});
    }
    if (slowdown == 2.0) {
      // A mild straggler does not erase the layout advantage; by ~4x the
      // placement-bound compute lets TS catch up (the crossover this
      // ablation exists to expose).
      checks.push_back(das::runner::ShapeCheck{
          "DAS still beats TS at 2x",
          "layout advantage survives a mild straggler",
          das_r.exec_seconds / ts.exec_seconds,
          das_r.exec_seconds < ts.exec_seconds});
    }
  }

  return bench::finish(argc, argv, cells, checks);
}
