# Empty dependencies file for bench_ablation_stripsize.
# This may be replaced when dependencies are built.
