file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stripsize.dir/bench_ablation_stripsize.cpp.o"
  "CMakeFiles/bench_ablation_stripsize.dir/bench_ablation_stripsize.cpp.o.d"
  "bench_ablation_stripsize"
  "bench_ablation_stripsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stripsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
