file(REMOVE_RECURSE
  "CMakeFiles/bench_simkit_hotpath.dir/bench_simkit_hotpath.cpp.o"
  "CMakeFiles/bench_simkit_hotpath.dir/bench_simkit_hotpath.cpp.o.d"
  "bench_simkit_hotpath"
  "bench_simkit_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simkit_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
