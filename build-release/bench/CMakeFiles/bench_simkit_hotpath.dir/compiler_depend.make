# Empty compiler generated dependencies file for bench_simkit_hotpath.
# This may be replaced when dependencies are built.
