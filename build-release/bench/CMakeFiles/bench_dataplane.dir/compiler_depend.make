# Empty compiler generated dependencies file for bench_dataplane.
# This may be replaced when dependencies are built.
