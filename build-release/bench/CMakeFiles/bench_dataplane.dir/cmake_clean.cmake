file(REMOVE_RECURSE
  "CMakeFiles/bench_dataplane.dir/bench_dataplane.cpp.o"
  "CMakeFiles/bench_dataplane.dir/bench_dataplane.cpp.o.d"
  "bench_dataplane"
  "bench_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
