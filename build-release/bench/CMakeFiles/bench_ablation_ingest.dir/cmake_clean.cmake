file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ingest.dir/bench_ablation_ingest.cpp.o"
  "CMakeFiles/bench_ablation_ingest.dir/bench_ablation_ingest.cpp.o.d"
  "bench_ablation_ingest"
  "bench_ablation_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
