# Empty dependencies file for bench_ablation_ingest.
# This may be replaced when dependencies are built.
