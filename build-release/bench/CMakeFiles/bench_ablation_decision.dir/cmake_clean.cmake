file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decision.dir/bench_ablation_decision.cpp.o"
  "CMakeFiles/bench_ablation_decision.dir/bench_ablation_decision.cpp.o.d"
  "bench_ablation_decision"
  "bench_ablation_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
