file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rounds.dir/bench_ablation_rounds.cpp.o"
  "CMakeFiles/bench_ablation_rounds.dir/bench_ablation_rounds.cpp.o.d"
  "bench_ablation_rounds"
  "bench_ablation_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
