# Empty compiler generated dependencies file for bench_ablation_rounds.
# This may be replaced when dependencies are built.
