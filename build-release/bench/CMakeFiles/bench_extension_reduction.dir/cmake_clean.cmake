file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_reduction.dir/bench_extension_reduction.cpp.o"
  "CMakeFiles/bench_extension_reduction.dir/bench_extension_reduction.cpp.o.d"
  "bench_extension_reduction"
  "bench_extension_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
