# Empty dependencies file for bench_extension_reduction.
# This may be replaced when dependencies are built.
