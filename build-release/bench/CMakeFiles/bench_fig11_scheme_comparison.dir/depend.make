# Empty dependencies file for bench_fig11_scheme_comparison.
# This may be replaced when dependencies are built.
