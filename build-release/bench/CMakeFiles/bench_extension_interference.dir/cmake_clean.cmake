file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_interference.dir/bench_extension_interference.cpp.o"
  "CMakeFiles/bench_extension_interference.dir/bench_extension_interference.cpp.o.d"
  "bench_extension_interference"
  "bench_extension_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
