# Empty dependencies file for bench_extension_interference.
# This may be replaced when dependencies are built.
