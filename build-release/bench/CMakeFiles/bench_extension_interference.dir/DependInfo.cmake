
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_extension_interference.cpp" "bench/CMakeFiles/bench_extension_interference.dir/bench_extension_interference.cpp.o" "gcc" "bench/CMakeFiles/bench_extension_interference.dir/bench_extension_interference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/core/CMakeFiles/das_core.dir/DependInfo.cmake"
  "/root/repo/build-release/src/runner/CMakeFiles/das_runner.dir/DependInfo.cmake"
  "/root/repo/build-release/src/pfs/CMakeFiles/das_pfs.dir/DependInfo.cmake"
  "/root/repo/build-release/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/storage/CMakeFiles/das_storage.dir/DependInfo.cmake"
  "/root/repo/build-release/src/cache/CMakeFiles/das_cache.dir/DependInfo.cmake"
  "/root/repo/build-release/src/kernels/CMakeFiles/das_kernels.dir/DependInfo.cmake"
  "/root/repo/build-release/src/grid/CMakeFiles/das_grid.dir/DependInfo.cmake"
  "/root/repo/build-release/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
