# Empty dependencies file for bench_fig13_node_scaling.
# This may be replaced when dependencies are built.
