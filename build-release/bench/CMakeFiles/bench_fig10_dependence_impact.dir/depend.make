# Empty dependencies file for bench_fig10_dependence_impact.
# This may be replaced when dependencies are built.
