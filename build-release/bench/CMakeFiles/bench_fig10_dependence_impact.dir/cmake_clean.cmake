file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dependence_impact.dir/bench_fig10_dependence_impact.cpp.o"
  "CMakeFiles/bench_fig10_dependence_impact.dir/bench_fig10_dependence_impact.cpp.o.d"
  "bench_fig10_dependence_impact"
  "bench_fig10_dependence_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dependence_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
