file(REMOVE_RECURSE
  "CMakeFiles/terrain_analysis.dir/terrain_analysis.cpp.o"
  "CMakeFiles/terrain_analysis.dir/terrain_analysis.cpp.o.d"
  "terrain_analysis"
  "terrain_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
