# Empty compiler generated dependencies file for terrain_analysis.
# This may be replaced when dependencies are built.
