# Empty dependencies file for offload_advisor.
# This may be replaced when dependencies are built.
