file(REMOVE_RECURSE
  "CMakeFiles/offload_advisor.dir/offload_advisor.cpp.o"
  "CMakeFiles/offload_advisor.dir/offload_advisor.cpp.o.d"
  "offload_advisor"
  "offload_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
