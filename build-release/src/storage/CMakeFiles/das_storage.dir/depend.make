# Empty dependencies file for das_storage.
# This may be replaced when dependencies are built.
