file(REMOVE_RECURSE
  "libdas_storage.a"
)
