file(REMOVE_RECURSE
  "CMakeFiles/das_storage.dir/compute_engine.cpp.o"
  "CMakeFiles/das_storage.dir/compute_engine.cpp.o.d"
  "CMakeFiles/das_storage.dir/disk.cpp.o"
  "CMakeFiles/das_storage.dir/disk.cpp.o.d"
  "libdas_storage.a"
  "libdas_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
