
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/compute_engine.cpp" "src/storage/CMakeFiles/das_storage.dir/compute_engine.cpp.o" "gcc" "src/storage/CMakeFiles/das_storage.dir/compute_engine.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/storage/CMakeFiles/das_storage.dir/disk.cpp.o" "gcc" "src/storage/CMakeFiles/das_storage.dir/disk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
