file(REMOVE_RECURSE
  "libdas_simkit.a"
)
