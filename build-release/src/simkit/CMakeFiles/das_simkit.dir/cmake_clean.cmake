file(REMOVE_RECURSE
  "CMakeFiles/das_simkit.dir/context.cpp.o"
  "CMakeFiles/das_simkit.dir/context.cpp.o.d"
  "CMakeFiles/das_simkit.dir/event_queue.cpp.o"
  "CMakeFiles/das_simkit.dir/event_queue.cpp.o.d"
  "CMakeFiles/das_simkit.dir/log.cpp.o"
  "CMakeFiles/das_simkit.dir/log.cpp.o.d"
  "CMakeFiles/das_simkit.dir/random.cpp.o"
  "CMakeFiles/das_simkit.dir/random.cpp.o.d"
  "CMakeFiles/das_simkit.dir/simulator.cpp.o"
  "CMakeFiles/das_simkit.dir/simulator.cpp.o.d"
  "CMakeFiles/das_simkit.dir/stats.cpp.o"
  "CMakeFiles/das_simkit.dir/stats.cpp.o.d"
  "CMakeFiles/das_simkit.dir/trace.cpp.o"
  "CMakeFiles/das_simkit.dir/trace.cpp.o.d"
  "libdas_simkit.a"
  "libdas_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
