
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkit/context.cpp" "src/simkit/CMakeFiles/das_simkit.dir/context.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/context.cpp.o.d"
  "/root/repo/src/simkit/event_queue.cpp" "src/simkit/CMakeFiles/das_simkit.dir/event_queue.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/event_queue.cpp.o.d"
  "/root/repo/src/simkit/log.cpp" "src/simkit/CMakeFiles/das_simkit.dir/log.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/log.cpp.o.d"
  "/root/repo/src/simkit/random.cpp" "src/simkit/CMakeFiles/das_simkit.dir/random.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/random.cpp.o.d"
  "/root/repo/src/simkit/simulator.cpp" "src/simkit/CMakeFiles/das_simkit.dir/simulator.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/simulator.cpp.o.d"
  "/root/repo/src/simkit/stats.cpp" "src/simkit/CMakeFiles/das_simkit.dir/stats.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/stats.cpp.o.d"
  "/root/repo/src/simkit/trace.cpp" "src/simkit/CMakeFiles/das_simkit.dir/trace.cpp.o" "gcc" "src/simkit/CMakeFiles/das_simkit.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
