# Empty dependencies file for das_simkit.
# This may be replaced when dependencies are built.
