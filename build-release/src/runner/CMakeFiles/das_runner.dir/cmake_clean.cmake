file(REMOVE_RECURSE
  "CMakeFiles/das_runner.dir/args.cpp.o"
  "CMakeFiles/das_runner.dir/args.cpp.o.d"
  "CMakeFiles/das_runner.dir/paper.cpp.o"
  "CMakeFiles/das_runner.dir/paper.cpp.o.d"
  "CMakeFiles/das_runner.dir/sweep.cpp.o"
  "CMakeFiles/das_runner.dir/sweep.cpp.o.d"
  "libdas_runner.a"
  "libdas_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
