# Empty dependencies file for das_runner.
# This may be replaced when dependencies are built.
