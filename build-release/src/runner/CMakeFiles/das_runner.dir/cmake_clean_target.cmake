file(REMOVE_RECURSE
  "libdas_runner.a"
)
