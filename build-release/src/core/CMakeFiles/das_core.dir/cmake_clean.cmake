file(REMOVE_RECURSE
  "CMakeFiles/das_core.dir/active_executor.cpp.o"
  "CMakeFiles/das_core.dir/active_executor.cpp.o.d"
  "CMakeFiles/das_core.dir/as_client.cpp.o"
  "CMakeFiles/das_core.dir/as_client.cpp.o.d"
  "CMakeFiles/das_core.dir/audit.cpp.o"
  "CMakeFiles/das_core.dir/audit.cpp.o.d"
  "CMakeFiles/das_core.dir/bandwidth_model.cpp.o"
  "CMakeFiles/das_core.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/das_core.dir/cluster.cpp.o"
  "CMakeFiles/das_core.dir/cluster.cpp.o.d"
  "CMakeFiles/das_core.dir/decision.cpp.o"
  "CMakeFiles/das_core.dir/decision.cpp.o.d"
  "CMakeFiles/das_core.dir/distribution_planner.cpp.o"
  "CMakeFiles/das_core.dir/distribution_planner.cpp.o.d"
  "CMakeFiles/das_core.dir/ingest.cpp.o"
  "CMakeFiles/das_core.dir/ingest.cpp.o.d"
  "CMakeFiles/das_core.dir/metrics.cpp.o"
  "CMakeFiles/das_core.dir/metrics.cpp.o.d"
  "CMakeFiles/das_core.dir/scheme.cpp.o"
  "CMakeFiles/das_core.dir/scheme.cpp.o.d"
  "CMakeFiles/das_core.dir/ts_executor.cpp.o"
  "CMakeFiles/das_core.dir/ts_executor.cpp.o.d"
  "CMakeFiles/das_core.dir/workload.cpp.o"
  "CMakeFiles/das_core.dir/workload.cpp.o.d"
  "libdas_core.a"
  "libdas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
