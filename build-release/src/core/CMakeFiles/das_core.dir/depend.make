# Empty dependencies file for das_core.
# This may be replaced when dependencies are built.
