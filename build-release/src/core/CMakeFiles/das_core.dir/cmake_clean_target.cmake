file(REMOVE_RECURSE
  "libdas_core.a"
)
