
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_executor.cpp" "src/core/CMakeFiles/das_core.dir/active_executor.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/active_executor.cpp.o.d"
  "/root/repo/src/core/as_client.cpp" "src/core/CMakeFiles/das_core.dir/as_client.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/as_client.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/das_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/bandwidth_model.cpp" "src/core/CMakeFiles/das_core.dir/bandwidth_model.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/das_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/core/CMakeFiles/das_core.dir/decision.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/decision.cpp.o.d"
  "/root/repo/src/core/distribution_planner.cpp" "src/core/CMakeFiles/das_core.dir/distribution_planner.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/distribution_planner.cpp.o.d"
  "/root/repo/src/core/ingest.cpp" "src/core/CMakeFiles/das_core.dir/ingest.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/ingest.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/das_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/das_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/scheme.cpp.o.d"
  "/root/repo/src/core/ts_executor.cpp" "src/core/CMakeFiles/das_core.dir/ts_executor.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/ts_executor.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/das_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/das_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  "/root/repo/build-release/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/storage/CMakeFiles/das_storage.dir/DependInfo.cmake"
  "/root/repo/build-release/src/grid/CMakeFiles/das_grid.dir/DependInfo.cmake"
  "/root/repo/build-release/src/pfs/CMakeFiles/das_pfs.dir/DependInfo.cmake"
  "/root/repo/build-release/src/kernels/CMakeFiles/das_kernels.dir/DependInfo.cmake"
  "/root/repo/build-release/src/cache/CMakeFiles/das_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
