file(REMOVE_RECURSE
  "libdas_grid.a"
)
