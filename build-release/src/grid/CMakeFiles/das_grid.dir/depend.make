# Empty dependencies file for das_grid.
# This may be replaced when dependencies are built.
