file(REMOVE_RECURSE
  "CMakeFiles/das_grid.dir/dem.cpp.o"
  "CMakeFiles/das_grid.dir/dem.cpp.o.d"
  "CMakeFiles/das_grid.dir/image.cpp.o"
  "CMakeFiles/das_grid.dir/image.cpp.o.d"
  "CMakeFiles/das_grid.dir/serialize.cpp.o"
  "CMakeFiles/das_grid.dir/serialize.cpp.o.d"
  "libdas_grid.a"
  "libdas_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
