file(REMOVE_RECURSE
  "CMakeFiles/das_net.dir/network.cpp.o"
  "CMakeFiles/das_net.dir/network.cpp.o.d"
  "CMakeFiles/das_net.dir/nic.cpp.o"
  "CMakeFiles/das_net.dir/nic.cpp.o.d"
  "libdas_net.a"
  "libdas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
