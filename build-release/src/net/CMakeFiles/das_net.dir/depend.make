# Empty dependencies file for das_net.
# This may be replaced when dependencies are built.
