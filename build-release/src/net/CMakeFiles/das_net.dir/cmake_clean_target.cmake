file(REMOVE_RECURSE
  "libdas_net.a"
)
