file(REMOVE_RECURSE
  "CMakeFiles/das_cache.dir/eviction.cpp.o"
  "CMakeFiles/das_cache.dir/eviction.cpp.o.d"
  "CMakeFiles/das_cache.dir/strip_cache.cpp.o"
  "CMakeFiles/das_cache.dir/strip_cache.cpp.o.d"
  "libdas_cache.a"
  "libdas_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
