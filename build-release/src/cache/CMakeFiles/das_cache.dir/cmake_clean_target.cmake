file(REMOVE_RECURSE
  "libdas_cache.a"
)
