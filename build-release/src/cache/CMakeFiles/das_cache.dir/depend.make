# Empty dependencies file for das_cache.
# This may be replaced when dependencies are built.
