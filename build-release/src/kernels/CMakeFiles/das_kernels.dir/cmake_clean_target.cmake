file(REMOVE_RECURSE
  "libdas_kernels.a"
)
