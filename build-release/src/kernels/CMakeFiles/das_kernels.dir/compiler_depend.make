# Empty compiler generated dependencies file for das_kernels.
# This may be replaced when dependencies are built.
