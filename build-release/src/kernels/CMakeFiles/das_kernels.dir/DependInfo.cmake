
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/catalog.cpp" "src/kernels/CMakeFiles/das_kernels.dir/catalog.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/catalog.cpp.o.d"
  "/root/repo/src/kernels/features.cpp" "src/kernels/CMakeFiles/das_kernels.dir/features.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/features.cpp.o.d"
  "/root/repo/src/kernels/flow_accumulation.cpp" "src/kernels/CMakeFiles/das_kernels.dir/flow_accumulation.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/flow_accumulation.cpp.o.d"
  "/root/repo/src/kernels/flow_routing.cpp" "src/kernels/CMakeFiles/das_kernels.dir/flow_routing.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/flow_routing.cpp.o.d"
  "/root/repo/src/kernels/gaussian.cpp" "src/kernels/CMakeFiles/das_kernels.dir/gaussian.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/gaussian.cpp.o.d"
  "/root/repo/src/kernels/laplacian.cpp" "src/kernels/CMakeFiles/das_kernels.dir/laplacian.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/laplacian.cpp.o.d"
  "/root/repo/src/kernels/median.cpp" "src/kernels/CMakeFiles/das_kernels.dir/median.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/median.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/das_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/registry.cpp.o.d"
  "/root/repo/src/kernels/slope.cpp" "src/kernels/CMakeFiles/das_kernels.dir/slope.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/slope.cpp.o.d"
  "/root/repo/src/kernels/statistics.cpp" "src/kernels/CMakeFiles/das_kernels.dir/statistics.cpp.o" "gcc" "src/kernels/CMakeFiles/das_kernels.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/grid/CMakeFiles/das_grid.dir/DependInfo.cmake"
  "/root/repo/build-release/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
