file(REMOVE_RECURSE
  "CMakeFiles/das_kernels.dir/catalog.cpp.o"
  "CMakeFiles/das_kernels.dir/catalog.cpp.o.d"
  "CMakeFiles/das_kernels.dir/features.cpp.o"
  "CMakeFiles/das_kernels.dir/features.cpp.o.d"
  "CMakeFiles/das_kernels.dir/flow_accumulation.cpp.o"
  "CMakeFiles/das_kernels.dir/flow_accumulation.cpp.o.d"
  "CMakeFiles/das_kernels.dir/flow_routing.cpp.o"
  "CMakeFiles/das_kernels.dir/flow_routing.cpp.o.d"
  "CMakeFiles/das_kernels.dir/gaussian.cpp.o"
  "CMakeFiles/das_kernels.dir/gaussian.cpp.o.d"
  "CMakeFiles/das_kernels.dir/laplacian.cpp.o"
  "CMakeFiles/das_kernels.dir/laplacian.cpp.o.d"
  "CMakeFiles/das_kernels.dir/median.cpp.o"
  "CMakeFiles/das_kernels.dir/median.cpp.o.d"
  "CMakeFiles/das_kernels.dir/registry.cpp.o"
  "CMakeFiles/das_kernels.dir/registry.cpp.o.d"
  "CMakeFiles/das_kernels.dir/slope.cpp.o"
  "CMakeFiles/das_kernels.dir/slope.cpp.o.d"
  "CMakeFiles/das_kernels.dir/statistics.cpp.o"
  "CMakeFiles/das_kernels.dir/statistics.cpp.o.d"
  "libdas_kernels.a"
  "libdas_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
