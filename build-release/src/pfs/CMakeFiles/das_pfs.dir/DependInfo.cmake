
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/client.cpp" "src/pfs/CMakeFiles/das_pfs.dir/client.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/client.cpp.o.d"
  "/root/repo/src/pfs/layout.cpp" "src/pfs/CMakeFiles/das_pfs.dir/layout.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/layout.cpp.o.d"
  "/root/repo/src/pfs/local_io.cpp" "src/pfs/CMakeFiles/das_pfs.dir/local_io.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/local_io.cpp.o.d"
  "/root/repo/src/pfs/metadata.cpp" "src/pfs/CMakeFiles/das_pfs.dir/metadata.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/metadata.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "src/pfs/CMakeFiles/das_pfs.dir/pfs.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/pfs.cpp.o.d"
  "/root/repo/src/pfs/prefetch.cpp" "src/pfs/CMakeFiles/das_pfs.dir/prefetch.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/prefetch.cpp.o.d"
  "/root/repo/src/pfs/server.cpp" "src/pfs/CMakeFiles/das_pfs.dir/server.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/server.cpp.o.d"
  "/root/repo/src/pfs/store.cpp" "src/pfs/CMakeFiles/das_pfs.dir/store.cpp.o" "gcc" "src/pfs/CMakeFiles/das_pfs.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-release/src/simkit/CMakeFiles/das_simkit.dir/DependInfo.cmake"
  "/root/repo/build-release/src/net/CMakeFiles/das_net.dir/DependInfo.cmake"
  "/root/repo/build-release/src/storage/CMakeFiles/das_storage.dir/DependInfo.cmake"
  "/root/repo/build-release/src/cache/CMakeFiles/das_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
