file(REMOVE_RECURSE
  "CMakeFiles/das_pfs.dir/client.cpp.o"
  "CMakeFiles/das_pfs.dir/client.cpp.o.d"
  "CMakeFiles/das_pfs.dir/layout.cpp.o"
  "CMakeFiles/das_pfs.dir/layout.cpp.o.d"
  "CMakeFiles/das_pfs.dir/local_io.cpp.o"
  "CMakeFiles/das_pfs.dir/local_io.cpp.o.d"
  "CMakeFiles/das_pfs.dir/metadata.cpp.o"
  "CMakeFiles/das_pfs.dir/metadata.cpp.o.d"
  "CMakeFiles/das_pfs.dir/pfs.cpp.o"
  "CMakeFiles/das_pfs.dir/pfs.cpp.o.d"
  "CMakeFiles/das_pfs.dir/prefetch.cpp.o"
  "CMakeFiles/das_pfs.dir/prefetch.cpp.o.d"
  "CMakeFiles/das_pfs.dir/server.cpp.o"
  "CMakeFiles/das_pfs.dir/server.cpp.o.d"
  "CMakeFiles/das_pfs.dir/store.cpp.o"
  "CMakeFiles/das_pfs.dir/store.cpp.o.d"
  "libdas_pfs.a"
  "libdas_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
