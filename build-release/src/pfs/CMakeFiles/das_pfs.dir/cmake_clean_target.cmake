file(REMOVE_RECURSE
  "libdas_pfs.a"
)
