# Empty dependencies file for das_pfs.
# This may be replaced when dependencies are built.
