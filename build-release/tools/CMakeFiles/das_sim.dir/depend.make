# Empty dependencies file for das_sim.
# This may be replaced when dependencies are built.
