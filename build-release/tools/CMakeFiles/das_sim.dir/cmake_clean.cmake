file(REMOVE_RECURSE
  "CMakeFiles/das_sim.dir/das_sim.cpp.o"
  "CMakeFiles/das_sim.dir/das_sim.cpp.o.d"
  "das_sim"
  "das_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
