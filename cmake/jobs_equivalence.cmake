# Regression gate for sweep-runner determinism: a multi-scheme x
# multi-trial das_sim sweep must emit byte-identical CSV
# whether the cells run serially (--jobs=1) or on eight worker threads
# (--jobs=8, oversubscribed on small CI machines — which is exactly the
# interleaving stress we want). Catches any shared mutable state between
# cells (logger, tracer, rng, caches) and any ordering dependence in how
# results are collected and printed.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P jobs_equivalence.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(sweep --scheme=all --kernel=flow-routing --gib=1 --nodes=8
    --trials=2 --repeats=2 --cache-mib=64 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${sweep} --jobs=1
  OUTPUT_VARIABLE serial_csv
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=1 das_sim run failed (exit ${serial_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${sweep} --jobs=8
  OUTPUT_VARIABLE parallel_csv
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=8 das_sim run failed (exit ${parallel_rc})")
endif()

if(NOT serial_csv STREQUAL parallel_csv)
  message(FATAL_ERROR
    "parallel sweep diverges from the serial sweep\n"
    "--- jobs=1 ---\n${serial_csv}\n"
    "--- jobs=8 ---\n${parallel_csv}")
endif()
message(STATUS "--jobs=8 reproduces the --jobs=1 sweep CSV byte for byte")
