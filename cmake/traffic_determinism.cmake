# Regression gate for traffic-engine determinism: the same seed and tenant
# count must produce byte-identical output — the run summary, straggler
# counters, and the full per-tenant SLO CSV — regardless of --jobs. The
# traffic engine runs one single-threaded simulation (arrivals are
# precomputed from per-tenant forked RNG streams, service points break ties
# by sequence number), so worker count may not leak into results any more
# than it may for the classic sweep.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P traffic_determinism.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

# Every traffic feature on at once: admission, fair queueing with uneven
# weights, hedging and re-routing against injected stragglers.
set(run --tenants=8 --tenant-jobs=6 --arrival-rate=2 --job-mib=4
    --gib=1 --nodes=8 --replicas=3 --stragglers=1 --slowdown=8
    --admission-mib=32 --fair-queue=on --weights=3,1 --hedge=on --reroute=on)

execute_process(
  COMMAND ${DAS_SIM} ${run} --jobs=1
  OUTPUT_VARIABLE serial_out
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=1 traffic run failed (exit ${serial_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${run} --jobs=8
  OUTPUT_VARIABLE parallel_out
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=8 traffic run failed (exit ${parallel_rc})")
endif()

if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR
    "traffic run output depends on --jobs\n"
    "--- jobs=1 ---\n${serial_out}\n"
    "--- jobs=8 ---\n${parallel_out}")
endif()

# And a second identical invocation must reproduce the first exactly.
execute_process(
  COMMAND ${DAS_SIM} ${run} --jobs=1
  OUTPUT_VARIABLE repeat_out
  RESULT_VARIABLE repeat_rc)
if(NOT repeat_rc EQUAL 0)
  message(FATAL_ERROR "repeat traffic run failed (exit ${repeat_rc})")
endif()
if(NOT serial_out STREQUAL repeat_out)
  message(FATAL_ERROR
    "traffic run is not reproducible across invocations\n"
    "--- first ---\n${serial_out}\n"
    "--- repeat ---\n${repeat_out}")
endif()

# The SLO CSV must actually be present and per-tenant.
if(NOT serial_out MATCHES "tenant,jobs,bytes,deferred")
  message(FATAL_ERROR "SLO CSV header missing from traffic output:\n${serial_out}")
endif()
message(STATUS "traffic run is byte-identical across --jobs and invocations")
