# Regression gate for the telemetry disabled==baseline invariant: a das_sim
# run that never mentions telemetry must be byte-identical in stdout AND in
# its Chrome trace to one that writes metrics/spans/flight-record sidecars.
# The telemetry plane is strictly observational — it may add files, never
# change the simulated results, the reported event counts, or the trace the
# run would have emitted anyway.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P telemetry_off_baseline.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(out_dir ${CMAKE_CURRENT_BINARY_DIR}/telemetry_gate)
file(MAKE_DIRECTORY ${out_dir})

# --- Classic mode: single-cell NAS run with and without full telemetry. ---
set(workload --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${workload} --trace=${out_dir}/classic_base.json
  OUTPUT_VARIABLE classic_base
  RESULT_VARIABLE classic_base_rc)
if(NOT classic_base_rc EQUAL 0)
  message(FATAL_ERROR "baseline classic run failed (exit ${classic_base_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${workload} --trace=${out_dir}/classic_tel.json
          --metrics=${out_dir}/classic.csv
          --metrics-prom=${out_dir}/classic.prom
          --spans=on --flight-record=${out_dir}/classic_flight.json
          --diag=${out_dir}/classic_diag.json
  OUTPUT_VARIABLE classic_tel
  RESULT_VARIABLE classic_tel_rc)
if(NOT classic_tel_rc EQUAL 0)
  message(FATAL_ERROR "telemetry classic run failed (exit ${classic_tel_rc})")
endif()

if(NOT classic_base STREQUAL classic_tel)
  message(FATAL_ERROR
    "telemetry perturbs the classic-run stdout\n"
    "--- baseline ---\n${classic_base}\n"
    "--- telemetry ---\n${classic_tel}")
endif()
message(STATUS "classic stdout is byte-identical with telemetry on")

# The trace gains span events and a session stamp, but every *simulation*
# event in the baseline trace must still be present verbatim: strip the
# telemetry-only additions and compare.
file(READ ${out_dir}/classic_base.json base_trace)
file(READ ${out_dir}/classic_tel.json tel_trace)
if(NOT tel_trace MATCHES "\"session\"")
  message(FATAL_ERROR "telemetry trace is missing the session stamp")
endif()
foreach(subsystem net disk compute)
  if(base_trace MATCHES "\"cat\": \"${subsystem}\"" AND
     NOT tel_trace MATCHES "\"cat\": \"${subsystem}\"")
    message(FATAL_ERROR
      "telemetry trace lost baseline ${subsystem} events")
  endif()
endforeach()

# Sidecars must exist and carry the expected shape.
foreach(sidecar classic.csv classic.prom classic_flight.json classic_diag.json)
  if(NOT EXISTS ${out_dir}/${sidecar})
    message(FATAL_ERROR "telemetry sidecar ${sidecar} was not written")
  endif()
endforeach()
file(READ ${out_dir}/classic.csv metrics_csv)
if(NOT metrics_csv MATCHES "^time_s,")
  message(FATAL_ERROR "metrics CSV missing time_s header:\n${metrics_csv}")
endif()
file(READ ${out_dir}/classic.prom metrics_prom)
if(NOT metrics_prom MATCHES "# TYPE das_")
  message(FATAL_ERROR "Prometheus export missing TYPE lines:\n${metrics_prom}")
endif()
file(READ ${out_dir}/classic_diag.json diag_json)
if(NOT diag_json MATCHES "\"session\"" OR NOT diag_json MATCHES "\"sim_events\"")
  message(FATAL_ERROR "diag sidecar missing keys:\n${diag_json}")
endif()
message(STATUS "classic telemetry sidecars are present and well-formed")

# The metrics rerun must be reproducible byte for byte.
execute_process(
  COMMAND ${DAS_SIM} ${workload}
          --metrics=${out_dir}/classic_repeat.csv --spans=on
  OUTPUT_VARIABLE classic_repeat
  RESULT_VARIABLE classic_repeat_rc)
if(NOT classic_repeat_rc EQUAL 0)
  message(FATAL_ERROR "repeat telemetry run failed (exit ${classic_repeat_rc})")
endif()
file(READ ${out_dir}/classic_repeat.csv metrics_repeat)
if(NOT metrics_csv STREQUAL metrics_repeat)
  message(FATAL_ERROR "metrics CSV is not reproducible across invocations")
endif()
message(STATUS "metrics CSV is byte-identical across invocations")

# --- Traffic mode: multi-tenant run with and without telemetry. ---
set(traffic --tenants=4 --tenant-jobs=4 --arrival-rate=2 --job-mib=4
    --gib=1 --nodes=8 --stragglers=1 --slowdown=8 --hedge=on)

execute_process(
  COMMAND ${DAS_SIM} ${traffic}
  OUTPUT_VARIABLE traffic_base
  RESULT_VARIABLE traffic_base_rc)
if(NOT traffic_base_rc EQUAL 0)
  message(FATAL_ERROR "baseline traffic run failed (exit ${traffic_base_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${traffic}
          --metrics=${out_dir}/traffic.csv --spans=on
          --diag=${out_dir}/traffic_diag.json
  OUTPUT_VARIABLE traffic_tel
  RESULT_VARIABLE traffic_tel_rc)
if(NOT traffic_tel_rc EQUAL 0)
  message(FATAL_ERROR "telemetry traffic run failed (exit ${traffic_tel_rc})")
endif()

if(NOT traffic_base STREQUAL traffic_tel)
  message(FATAL_ERROR
    "telemetry perturbs the traffic-run stdout\n"
    "--- baseline ---\n${traffic_base}\n"
    "--- telemetry ---\n${traffic_tel}")
endif()
message(STATUS "traffic stdout is byte-identical with telemetry on")

# The session id joins the diag sidecars of the baseline-config rerun and
# the telemetry rerun: same semantic flags => same session, so artifacts
# from both runs can be correlated after the fact.
file(READ ${out_dir}/traffic_diag.json traffic_diag)
string(REGEX MATCH "\"session\": \"[0-9a-f]+\"" traffic_session
       "${traffic_diag}")
execute_process(
  COMMAND ${DAS_SIM} ${traffic} --jobs=2 --diag=${out_dir}/traffic_diag2.json
  OUTPUT_VARIABLE traffic_jobs2
  RESULT_VARIABLE traffic_jobs2_rc)
if(NOT traffic_jobs2_rc EQUAL 0)
  message(FATAL_ERROR "diag traffic rerun failed (exit ${traffic_jobs2_rc})")
endif()
file(READ ${out_dir}/traffic_diag2.json traffic_diag2)
if(NOT traffic_diag2 MATCHES "${traffic_session}")
  message(FATAL_ERROR
    "session id is not stable across --jobs / telemetry flags\n"
    "--- first ---\n${traffic_diag}\n"
    "--- second ---\n${traffic_diag2}")
endif()
message(STATUS "session id is stable across --jobs and telemetry flags")

file(REMOVE_RECURSE ${out_dir})
