# Regression gate for the migration disabled==baseline invariant: a das_sim
# run with migration explicitly switched off (--migrate=false, with a
# threshold still supplied) must emit CSV byte-identical to a run that never
# mentions the subsystem — including on the repeated-pass path where the
# migration hook actually lives. Catches any code path where the inactive
# planner, the per-pass observation wrapper, or the Pfs migration plumbing
# perturbs event ordering, byte flows, or reporting.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P migration_off_baseline.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(workload --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8
    --repeats=3 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${workload}
  OUTPUT_VARIABLE baseline_csv
  RESULT_VARIABLE baseline_rc)
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR "baseline das_sim run failed (exit ${baseline_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${workload} --migrate=false --migrate-threshold=2.0
  OUTPUT_VARIABLE disabled_csv
  RESULT_VARIABLE disabled_rc)
if(NOT disabled_rc EQUAL 0)
  message(FATAL_ERROR
    "migration-off das_sim run failed (exit ${disabled_rc})")
endif()

if(NOT baseline_csv STREQUAL disabled_csv)
  message(FATAL_ERROR
    "disabled migration no longer reproduces the baseline CSV\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- disabled ---\n${disabled_csv}")
endif()
message(STATUS "disabled migration reproduces the baseline CSV byte for byte")

# The migration-enabled run must differ only in the migration columns'
# effects, never crash, and still report through the same CSV schema.
execute_process(
  COMMAND ${DAS_SIM} ${workload} --migrate=true
  OUTPUT_VARIABLE enabled_csv
  RESULT_VARIABLE enabled_rc)
if(NOT enabled_rc EQUAL 0)
  message(FATAL_ERROR
    "migration-on das_sim run failed (exit ${enabled_rc})")
endif()

string(REGEX MATCH "[^\n]*\n" baseline_header "${baseline_csv}")
string(REGEX MATCH "[^\n]*\n" enabled_header "${enabled_csv}")
if(NOT baseline_header STREQUAL enabled_header)
  message(FATAL_ERROR
    "migration-on run changed the CSV header\n"
    "--- baseline ---\n${baseline_header}\n"
    "--- enabled ---\n${enabled_header}")
endif()
message(STATUS "migration-on run reports through the unchanged CSV schema")
