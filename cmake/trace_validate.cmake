# Traced-sweep smoke gate: run a small cached+prefetched NAS sweep with
# --trace and --audit, then validate the artifacts without any external
# tooling — CMake's string(JSON) parses the trace (so a malformed document
# fails the test, not just a missing file) and the audit CSV must carry a
# header plus at least one row with a matching field count.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P trace_validate.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(trace_file ${CMAKE_CURRENT_BINARY_DIR}/trace_validate.json)
set(audit_file ${CMAKE_CURRENT_BINARY_DIR}/trace_validate_audit.csv)

execute_process(
  COMMAND ${DAS_SIM} --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8
          --repeats=2 --cache-mib=64 --prefetch-depth=2 --csv
          --trace=${trace_file} --audit=${audit_file}
  OUTPUT_VARIABLE run_csv
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "traced das_sim sweep failed (exit ${run_rc})")
endif()

# --- The trace must be a JSON document with a non-empty traceEvents array.
file(READ ${trace_file} trace_json)
string(JSON event_count ERROR_VARIABLE json_error LENGTH "${trace_json}" traceEvents)
if(json_error)
  message(FATAL_ERROR "trace is not valid JSON: ${json_error}")
endif()
if(event_count LESS 1)
  message(FATAL_ERROR "trace has no events")
endif()

# Spot-check the first event's shape: a phase and a pid must be present.
string(JSON first_event GET "${trace_json}" traceEvents 0)
string(JSON first_ph ERROR_VARIABLE ph_error GET "${first_event}" ph)
string(JSON first_pid ERROR_VARIABLE pid_error GET "${first_event}" pid)
if(ph_error OR pid_error)
  message(FATAL_ERROR "trace event 0 lacks ph/pid: ${first_event}")
endif()

# Every instrumented subsystem must appear somewhere in the timeline.
foreach(marker "\"cat\":\"net\"" "\"cat\":\"disk\"" "\"cat\":\"compute\""
               "\"cat\":\"cache\"" "\"cat\":\"prefetch\""
               "\"cat\":\"request\"")
  string(FIND "${trace_json}" "${marker}" marker_pos)
  if(marker_pos EQUAL -1)
    message(FATAL_ERROR "trace is missing events with ${marker}")
  endif()
endforeach()

# --- The audit CSV must have a header and at least one data row, with the
# same comma count on both lines.
file(STRINGS ${audit_file} audit_lines)
list(LENGTH audit_lines audit_line_count)
if(audit_line_count LESS 2)
  message(FATAL_ERROR "audit CSV has no data rows (${audit_line_count} lines)")
endif()
list(GET audit_lines 0 audit_header)
list(GET audit_lines 1 audit_row)
if(NOT audit_header MATCHES "predicted_halo_bytes_per_pass")
  message(FATAL_ERROR "unexpected audit header: ${audit_header}")
endif()
string(REGEX MATCHALL "," header_commas "${audit_header}")
string(REGEX MATCHALL "," row_commas "${audit_row}")
list(LENGTH header_commas header_comma_count)
list(LENGTH row_commas row_comma_count)
if(NOT header_comma_count EQUAL row_comma_count)
  message(FATAL_ERROR
    "audit header/row field counts differ\n"
    "header: ${audit_header}\nrow: ${audit_row}")
endif()

file(REMOVE ${trace_file} ${audit_file})
message(STATUS "traced sweep emits valid trace JSON (${event_count} events) "
               "and a well-formed audit CSV")
