# Regression gate for the disabled==baseline invariant: a das_sim run with
# the cache and prefetch explicitly switched off (--prefetch=off
# --prefetch-depth=8 --cache-mib=0) must emit CSV byte-identical to a run
# that never mentions either subsystem. Catches any code path where an
# inactive config still perturbs event ordering, byte flows, or reporting.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P prefetch_off_baseline.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(workload --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${workload}
  OUTPUT_VARIABLE baseline_csv
  RESULT_VARIABLE baseline_rc)
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR "baseline das_sim run failed (exit ${baseline_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${workload} --cache-mib=0 --prefetch=off
          --prefetch-depth=8
  OUTPUT_VARIABLE disabled_csv
  RESULT_VARIABLE disabled_rc)
if(NOT disabled_rc EQUAL 0)
  message(FATAL_ERROR "disabled-config das_sim run failed (exit ${disabled_rc})")
endif()

if(NOT baseline_csv STREQUAL disabled_csv)
  message(FATAL_ERROR
    "disabled cache+prefetch no longer reproduces the seed NAS CSV\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- disabled ---\n${disabled_csv}")
endif()
message(STATUS "disabled cache+prefetch reproduces the seed CSV byte for byte")
