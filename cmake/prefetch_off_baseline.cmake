# Regression gate for the disabled==baseline invariant: a das_sim run with
# the cache and prefetch explicitly switched off (--prefetch=off
# --prefetch-depth=8 --cache-mib=0) must emit CSV byte-identical to a run
# that never mentions either subsystem, and so must a run with tracing
# enabled (tracing is observational only). Catches any code path where an
# inactive config or the tracer still perturbs event ordering, byte flows,
# or reporting.
#
# Invoked as: cmake -DDAS_SIM=<path-to-das_sim> -P prefetch_off_baseline.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(workload --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${workload}
  OUTPUT_VARIABLE baseline_csv
  RESULT_VARIABLE baseline_rc)
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR "baseline das_sim run failed (exit ${baseline_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${workload} --cache-mib=0 --prefetch=off
          --prefetch-depth=8
  OUTPUT_VARIABLE disabled_csv
  RESULT_VARIABLE disabled_rc)
if(NOT disabled_rc EQUAL 0)
  message(FATAL_ERROR "disabled-config das_sim run failed (exit ${disabled_rc})")
endif()

if(NOT baseline_csv STREQUAL disabled_csv)
  message(FATAL_ERROR
    "disabled cache+prefetch no longer reproduces the seed NAS CSV\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- disabled ---\n${disabled_csv}")
endif()
message(STATUS "disabled cache+prefetch reproduces the seed CSV byte for byte")

# Tracing must be strictly observational: the same workload with --trace
# emits the identical CSV to stdout.
set(trace_file ${CMAKE_CURRENT_BINARY_DIR}/baseline_trace.json)
execute_process(
  COMMAND ${DAS_SIM} ${workload} --trace=${trace_file}
  OUTPUT_VARIABLE traced_csv
  RESULT_VARIABLE traced_rc)
if(NOT traced_rc EQUAL 0)
  message(FATAL_ERROR "traced das_sim run failed (exit ${traced_rc})")
endif()
file(REMOVE ${trace_file})

if(NOT baseline_csv STREQUAL traced_csv)
  message(FATAL_ERROR
    "--trace perturbs the simulated results\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- traced ---\n${traced_csv}")
endif()
message(STATUS "tracing reproduces the seed CSV byte for byte")

# And so must a traced *parallel* sweep: per-cell tracers merged in cell
# order plus the thread-pool runner may not perturb results either.
set(jobs_trace_file ${CMAKE_CURRENT_BINARY_DIR}/baseline_trace_jobs.json)
execute_process(
  COMMAND ${DAS_SIM} ${workload} --jobs=4 --trace=${jobs_trace_file}
  OUTPUT_VARIABLE jobs_traced_csv
  RESULT_VARIABLE jobs_traced_rc)
if(NOT jobs_traced_rc EQUAL 0)
  message(FATAL_ERROR
    "traced --jobs=4 das_sim run failed (exit ${jobs_traced_rc})")
endif()
file(REMOVE ${jobs_trace_file})

if(NOT baseline_csv STREQUAL jobs_traced_csv)
  message(FATAL_ERROR
    "--jobs=4 --trace perturbs the simulated results\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- traced jobs=4 ---\n${jobs_traced_csv}")
endif()
message(STATUS "traced parallel sweep reproduces the seed CSV byte for byte")
