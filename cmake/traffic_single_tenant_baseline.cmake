# Regression gate for the traffic engine's disabled==baseline invariant:
# `--tenants=1` with every traffic feature off (no admission, no fair
# queueing, no hedging or re-routing, no trace file) must reproduce the
# classic sweep CSV byte for byte — das_sim deliberately routes that case
# through the original single-workload path, mirroring the --prefetch=off
# discipline. Catches any accidental coupling where merely linking or
# configuring the traffic subsystem perturbs the seed results.
#
# Invoked as:
#   cmake -DDAS_SIM=<path-to-das_sim> -P traffic_single_tenant_baseline.cmake
if(NOT DEFINED DAS_SIM)
  message(FATAL_ERROR "pass -DDAS_SIM=<path to das_sim>")
endif()

set(workload --scheme=NAS --kernel=flow-routing --gib=1 --nodes=8 --csv)

execute_process(
  COMMAND ${DAS_SIM} ${workload}
  OUTPUT_VARIABLE baseline_csv
  RESULT_VARIABLE baseline_rc)
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR "baseline das_sim run failed (exit ${baseline_rc})")
endif()

execute_process(
  COMMAND ${DAS_SIM} ${workload} --tenants=1 --arrival-rate=1.0
          --admission-mib=0 --fair-queue=off --hedge=off --reroute=off
  OUTPUT_VARIABLE single_tenant_csv
  RESULT_VARIABLE single_tenant_rc)
if(NOT single_tenant_rc EQUAL 0)
  message(FATAL_ERROR
    "--tenants=1 das_sim run failed (exit ${single_tenant_rc})")
endif()

if(NOT baseline_csv STREQUAL single_tenant_csv)
  message(FATAL_ERROR
    "--tenants=1 with traffic features off no longer reproduces the classic "
    "sweep CSV\n"
    "--- baseline ---\n${baseline_csv}\n"
    "--- tenants=1 ---\n${single_tenant_csv}")
endif()
message(STATUS "--tenants=1 (features off) reproduces the classic CSV byte for byte")
