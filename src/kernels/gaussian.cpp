#include "kernels/gaussian.hpp"

#include <algorithm>

namespace das::kernels {

std::string GaussianKernel::description() const {
  return "Basic operation of signal and medical image processing: 3x3 "
         "binomial Gaussian smoothing of the raw data";
}

KernelFeatures GaussianKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> GaussianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void GaussianKernel::run_tile(const grid::Grid<float>& buffer,
                              std::uint32_t buffer_row0,
                              std::uint32_t grid_height,
                              std::uint32_t out_row_begin,
                              std::uint32_t out_row_end,
                              grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);
  constexpr float kWeights[3][3] = {
      {1.0F, 2.0F, 1.0F}, {2.0F, 4.0F, 2.0F}, {1.0F, 2.0F, 1.0F}};
  const std::uint32_t width = buffer.width();

  // Clamped per-cell path, needed only where the 3x3 window leaves the grid.
  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    float sum = 0.0F;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        sum += kWeights[dy + 1][dx + 1] *
               view.at_clamped(static_cast<std::int64_t>(x) + dx,
                               static_cast<std::int64_t>(y) + dy);
      }
    }
    out.at(x, y - out_row_begin) = sum / 16.0F;
  };

  // Rows/columns whose full window is in the grid take the branch-free
  // sweep. It accumulates in the same (dy, dx) order as the clamped path,
  // so outputs are bit-identical.
  const std::uint32_t interior_lo = std::max(out_row_begin, 1U);
  const std::uint32_t interior_hi = std::min(out_row_end, grid_height - 1);
  for (std::uint32_t y = out_row_begin; y < out_row_end; ++y) {
    if (y < interior_lo || y >= interior_hi || width <= 2) {
      for (std::uint32_t x = 0; x < width; ++x) edge_cell(x, y);
      continue;
    }
    const float* up = view.row(y - 1);
    const float* mid = view.row(y);
    const float* down = view.row(y + 1);
    float* dst = out.row(y - out_row_begin);
    edge_cell(0, y);
    for (std::uint32_t x = 1; x + 1 < width; ++x) {
      float sum = 0.0F;
      sum += kWeights[0][0] * up[x - 1];
      sum += kWeights[0][1] * up[x];
      sum += kWeights[0][2] * up[x + 1];
      sum += kWeights[1][0] * mid[x - 1];
      sum += kWeights[1][1] * mid[x];
      sum += kWeights[1][2] * mid[x + 1];
      sum += kWeights[2][0] * down[x - 1];
      sum += kWeights[2][1] * down[x];
      sum += kWeights[2][2] * down[x + 1];
      dst[x] = sum / 16.0F;
    }
    edge_cell(width - 1, y);
  }
}

}  // namespace das::kernels
