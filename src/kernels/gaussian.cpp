#include "kernels/gaussian.hpp"

#include <algorithm>

#include "kernels/simd.hpp"

namespace das::kernels {

std::string GaussianKernel::description() const {
  return "Basic operation of signal and medical image processing: 3x3 "
         "binomial Gaussian smoothing of the raw data";
}

KernelFeatures GaussianKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> GaussianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void GaussianKernel::run_tile(const grid::Grid<float>& buffer,
                              std::uint32_t buffer_row0,
                              std::uint32_t grid_height,
                              std::uint32_t out_row_begin,
                              std::uint32_t out_row_end,
                              grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);
  constexpr float kWeights[3][3] = {
      {1.0F, 2.0F, 1.0F}, {2.0F, 4.0F, 2.0F}, {1.0F, 2.0F, 1.0F}};

  // Clamped per-cell path, needed only where the 3x3 window leaves the grid.
  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    float sum = 0.0F;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        sum += kWeights[dy + 1][dx + 1] *
               view.at_clamped(static_cast<std::int64_t>(x) + dx,
                               static_cast<std::int64_t>(y) + dy);
      }
    }
    out.at(x, y - out_row_begin) = sum / 16.0F;
  };

  // Cells whose full window is in the grid take the dispatched branch-free
  // sweep, which accumulates in the same (dy, dx) order as the clamped path
  // on every ISA, so outputs are bit-identical.
  simd::run_tile_blocked(view, grid_height, out_row_begin, out_row_end, out,
                         edge_cell, simd::gaussian_row(simd::active_isa()));
}

}  // namespace das::kernels
