#include "kernels/slope.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/simd.hpp"

namespace das::kernels {

std::string SlopeKernel::description() const {
  return "Terrain analysis (GIS): per-cell slope magnitude via Horn's "
         "3x3 weighted central differences";
}

KernelFeatures SlopeKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> SlopeKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void SlopeKernel::run_tile(const grid::Grid<float>& buffer,
                           std::uint32_t buffer_row0,
                           std::uint32_t grid_height,
                           std::uint32_t out_row_begin,
                           std::uint32_t out_row_end,
                           grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    const auto ix = static_cast<std::int64_t>(x);
    const auto iy = static_cast<std::int64_t>(y);
    // Horn 1981: weighted central differences over the 3x3 window with
    // clamp-to-edge sampling.
    const double a = view.at_clamped(ix - 1, iy - 1);
    const double b = view.at_clamped(ix, iy - 1);
    const double c = view.at_clamped(ix + 1, iy - 1);
    const double d = view.at_clamped(ix - 1, iy);
    const double f = view.at_clamped(ix + 1, iy);
    const double g = view.at_clamped(ix - 1, iy + 1);
    const double h = view.at_clamped(ix, iy + 1);
    const double i = view.at_clamped(ix + 1, iy + 1);

    const double dzdx = ((c + 2 * f + i) - (a + 2 * d + g)) /
                        (8.0 * cell_size_);
    const double dzdy = ((g + 2 * h + i) - (a + 2 * b + c)) /
                        (8.0 * cell_size_);
    out.at(x, y - out_row_begin) =
        static_cast<float>(std::sqrt(dzdx * dzdx + dzdy * dzdy));
  };

  // Interior sweep: same reads, same expressions, no clamping — outputs
  // are bit-identical to the clamped path on every ISA (the dispatched row
  // functions evaluate Horn's expression per lane in scalar operand order,
  // with correctly-rounded divide and sqrt).
  const simd::SlopeRowFn row_fn = simd::slope_row(simd::active_isa());
  const double denom = 8.0 * cell_size_;
  simd::run_tile_blocked(
      view, grid_height, out_row_begin, out_row_end, out, edge_cell,
      [row_fn, denom](const float* up, const float* mid, const float* down,
                      float* dst, std::uint32_t x0, std::uint32_t x1) {
        row_fn(up, mid, down, dst, x0, x1, denom);
      });
}

}  // namespace das::kernels
