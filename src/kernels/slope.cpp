#include "kernels/slope.hpp"

#include <algorithm>
#include <cmath>

namespace das::kernels {

std::string SlopeKernel::description() const {
  return "Terrain analysis (GIS): per-cell slope magnitude via Horn's "
         "3x3 weighted central differences";
}

KernelFeatures SlopeKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> SlopeKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void SlopeKernel::run_tile(const grid::Grid<float>& buffer,
                           std::uint32_t buffer_row0,
                           std::uint32_t grid_height,
                           std::uint32_t out_row_begin,
                           std::uint32_t out_row_end,
                           grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);
  const std::uint32_t width = buffer.width();

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    const auto ix = static_cast<std::int64_t>(x);
    const auto iy = static_cast<std::int64_t>(y);
    // Horn 1981: weighted central differences over the 3x3 window with
    // clamp-to-edge sampling.
    const double a = view.at_clamped(ix - 1, iy - 1);
    const double b = view.at_clamped(ix, iy - 1);
    const double c = view.at_clamped(ix + 1, iy - 1);
    const double d = view.at_clamped(ix - 1, iy);
    const double f = view.at_clamped(ix + 1, iy);
    const double g = view.at_clamped(ix - 1, iy + 1);
    const double h = view.at_clamped(ix, iy + 1);
    const double i = view.at_clamped(ix + 1, iy + 1);

    const double dzdx = ((c + 2 * f + i) - (a + 2 * d + g)) /
                        (8.0 * cell_size_);
    const double dzdy = ((g + 2 * h + i) - (a + 2 * b + c)) /
                        (8.0 * cell_size_);
    out.at(x, y - out_row_begin) =
        static_cast<float>(std::sqrt(dzdx * dzdx + dzdy * dzdy));
  };

  // Interior sweep: same reads, same expressions, no clamping — outputs
  // are bit-identical to the clamped path.
  const std::uint32_t interior_lo = std::max(out_row_begin, 1U);
  const std::uint32_t interior_hi = std::min(out_row_end, grid_height - 1);
  for (std::uint32_t y = out_row_begin; y < out_row_end; ++y) {
    if (y < interior_lo || y >= interior_hi || width <= 2) {
      for (std::uint32_t x = 0; x < width; ++x) edge_cell(x, y);
      continue;
    }
    const float* up = view.row(y - 1);
    const float* mid = view.row(y);
    const float* down = view.row(y + 1);
    float* dst = out.row(y - out_row_begin);
    edge_cell(0, y);
    for (std::uint32_t x = 1; x + 1 < width; ++x) {
      const double a = up[x - 1];
      const double b = up[x];
      const double c = up[x + 1];
      const double d = mid[x - 1];
      const double f = mid[x + 1];
      const double g = down[x - 1];
      const double h = down[x];
      const double i = down[x + 1];

      const double dzdx = ((c + 2 * f + i) - (a + 2 * d + g)) /
                          (8.0 * cell_size_);
      const double dzdy = ((g + 2 * h + i) - (a + 2 * b + c)) /
                          (8.0 * cell_size_);
      dst[x] = static_cast<float>(std::sqrt(dzdx * dzdx + dzdy * dzdy));
    }
    edge_cell(width - 1, y);
  }
}

}  // namespace das::kernels
