#include "kernels/flow_accumulation.hpp"

#include <deque>

#include "kernels/flow_routing.hpp"

namespace das::kernels {
namespace {

/// Downstream cell of (x, y) under direction code `code`, or {-1, -1} when
/// the cell is a pit or its flow leaves the grid.
struct Cell {
  std::int64_t x = -1;
  std::int64_t y = -1;
  [[nodiscard]] bool valid() const { return x >= 0; }
};

Cell downstream(const grid::Grid<float>& dirs, std::int64_t x,
                std::int64_t y) {
  const auto code = static_cast<std::uint32_t>(
      dirs.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)));
  if (code == 0) return {};
  const D8Step step = d8_step(static_cast<D8>(code));
  const std::int64_t nx = x + step.dx;
  const std::int64_t ny = y + step.dy;
  if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(dirs.width()) ||
      ny >= static_cast<std::int64_t>(dirs.height())) {
    return {};
  }
  return {nx, ny};
}

/// Kahn-style accumulation over rows [row_begin, row_end) of `dirs`.
/// `inflow` supplies external contributions entering each cell; `acc`
/// receives the result for the slab's rows; contributions leaving the slab
/// (but staying in the grid) are added into `outflow`.
void accumulate_slab(const grid::Grid<float>& dirs, std::uint32_t row_begin,
                     std::uint32_t row_end, const grid::Grid<float>& inflow,
                     grid::Grid<float>& acc, grid::Grid<float>& outflow) {
  const std::uint32_t width = dirs.width();
  const auto in_slab = [&](const Cell& c) {
    return c.valid() && c.y >= row_begin && c.y < row_end;
  };
  const auto slab_index = [&](std::int64_t x, std::int64_t y) {
    return static_cast<std::size_t>(y - row_begin) * width +
           static_cast<std::size_t>(x);
  };

  const std::size_t cells =
      static_cast<std::size_t>(row_end - row_begin) * width;
  std::vector<std::uint32_t> indegree(cells, 0);
  for (std::uint32_t y = row_begin; y < row_end; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const Cell d = downstream(dirs, x, y);
      if (in_slab(d)) ++indegree[slab_index(d.x, d.y)];
    }
  }

  std::vector<double> value(cells);
  std::deque<std::pair<std::uint32_t, std::uint32_t>> ready;
  for (std::uint32_t y = row_begin; y < row_end; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      value[slab_index(x, y)] = inflow.at(x, y);
      if (indegree[slab_index(x, y)] == 0) ready.emplace_back(x, y);
    }
  }

  while (!ready.empty()) {
    const auto [x, y] = ready.front();
    ready.pop_front();
    const double v = value[slab_index(x, y)];
    acc.at(x, y) = static_cast<float>(v);
    const Cell d = downstream(dirs, x, y);
    if (!d.valid()) continue;
    const double contribution = v + 1.0;
    if (in_slab(d)) {
      value[slab_index(d.x, d.y)] += contribution;
      if (--indegree[slab_index(d.x, d.y)] == 0) {
        ready.emplace_back(static_cast<std::uint32_t>(d.x),
                           static_cast<std::uint32_t>(d.y));
      }
    } else {
      outflow.at(static_cast<std::uint32_t>(d.x),
                 static_cast<std::uint32_t>(d.y)) +=
          static_cast<float>(contribution);
    }
  }
}

}  // namespace

std::string FlowAccumulationKernel::description() const {
  return "Basic operation of terrain analysis (GIS): accumulated flow as the "
         "count of upstream cells draining through each cell";
}

KernelFeatures FlowAccumulationKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> FlowAccumulationKernel::run_reference(
    const grid::Grid<float>& dirs) const {
  grid::Grid<float> acc(dirs.width(), dirs.height(), 0.0F);
  grid::Grid<float> inflow(dirs.width(), dirs.height(), 0.0F);
  grid::Grid<float> outflow(dirs.width(), dirs.height(), 0.0F);
  accumulate_slab(dirs, 0, dirs.height(), inflow, acc, outflow);
  return acc;
}

void FlowAccumulationKernel::run_tile(const grid::Grid<float>& buffer,
                                      std::uint32_t buffer_row0,
                                      std::uint32_t grid_height,
                                      std::uint32_t out_row_begin,
                                      std::uint32_t out_row_end,
                                      grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  // Round 0 of the distributed algorithm: accumulate within the slab with
  // zero external inflow. The buffer rows corresponding to the slab are
  // copied into a standalone grid so slab row indices start at 0.
  const grid::Grid<float> slab_dirs = buffer.slice_rows(
      out_row_begin - buffer_row0, out_row_end - buffer_row0);
  grid::Grid<float> acc(slab_dirs.width(), slab_dirs.height(), 0.0F);
  grid::Grid<float> inflow(slab_dirs.width(), slab_dirs.height(), 0.0F);
  grid::Grid<float> outflow(slab_dirs.width(), slab_dirs.height(), 0.0F);
  accumulate_slab(slab_dirs, 0, slab_dirs.height(), inflow, acc, outflow);
  out = acc;
}

DistributedAccumulationResult distributed_flow_accumulation(
    const grid::Grid<float>& dirs,
    const std::vector<std::uint32_t>& slab_begins) {
  DAS_REQUIRE(!slab_begins.empty());
  DAS_REQUIRE(slab_begins.front() == 0);
  for (std::size_t i = 1; i < slab_begins.size(); ++i) {
    DAS_REQUIRE(slab_begins[i] > slab_begins[i - 1]);
    DAS_REQUIRE(slab_begins[i] < dirs.height());
  }

  const std::uint32_t width = dirs.width();
  const std::uint32_t height = dirs.height();
  grid::Grid<float> acc(width, height, 0.0F);
  grid::Grid<float> inflow(width, height, 0.0F);

  // A flow path of length L crosses slab boundaries at most L times and each
  // round resolves one more crossing along every path, so W*H rounds is a
  // true upper bound; exceeding it means a cycle in the direction raster.
  const std::uint64_t max_rounds =
      static_cast<std::uint64_t>(width) * height + 8;
  std::uint32_t round = 0;
  for (;; ++round) {
    DAS_REQUIRE(round < max_rounds && "distributed accumulation diverged");
    grid::Grid<float> next_inflow(width, height, 0.0F);
    for (std::size_t s = 0; s < slab_begins.size(); ++s) {
      const std::uint32_t row_begin = slab_begins[s];
      const std::uint32_t row_end =
          s + 1 < slab_begins.size() ? slab_begins[s + 1] : height;
      accumulate_slab(dirs, row_begin, row_end, inflow, acc, next_inflow);
    }
    if (next_inflow == inflow) break;
    inflow = std::move(next_inflow);
  }
  return DistributedAccumulationResult{std::move(acc), round + 1};
}

}  // namespace das::kernels
