#include "kernels/catalog.hpp"

#include <utility>

namespace das::kernels {

FeaturesCatalog FeaturesCatalog::from_text(std::string_view text) {
  FeaturesCatalog catalog;
  for (KernelFeatures& record : parse_catalog(text)) {
    catalog.add(std::move(record));
  }
  return catalog;
}

void FeaturesCatalog::add(KernelFeatures features) {
  std::string name = features.name;
  records_.insert_or_assign(std::move(name), std::move(features));
}

bool FeaturesCatalog::remove(const std::string& name) {
  return records_.erase(name) > 0;
}

bool FeaturesCatalog::contains(const std::string& name) const {
  return records_.contains(name);
}

std::optional<KernelFeatures> FeaturesCatalog::lookup(
    const std::string& name) const {
  const auto it = records_.find(name);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::string FeaturesCatalog::to_text() const {
  std::string out;
  for (const auto& [name, record] : records_) {
    if (!out.empty()) out += '\n';
    out += record.format();
  }
  return out;
}

}  // namespace das::kernels
