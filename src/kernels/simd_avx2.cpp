// AVX2 row-segment functions (8 float lanes / 4 double lanes).
//
// Same contract as the SSE2 TU: one output cell per lane, scalar operand
// order per cell, unaligned loads for the off-by-one stencil taps, scalar
// tails. This TU is the only one compiled with -mavx2 (see
// src/kernels/CMakeLists.txt); it is reached only after runtime CPUID
// detection reports AVX2, and builds as scalar forwarders on targets where
// the compiler provides no AVX2 (__AVX2__ unset).
//
// Deliberately no FMA: the scalar kernels compile without floating-point
// contraction (-ffp-contract=off on das_kernels), so a fused
// multiply-add here would break bit-identity.
#include "kernels/simd_detail.hpp"

#include <algorithm>

#if defined(__AVX2__)
#define DAS_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define DAS_SIMD_HAVE_AVX2 0
#endif

namespace das::kernels::simd::detail {

#if DAS_SIMD_HAVE_AVX2

namespace {

/// sort2: a <- min(a, b), b <- max(a, b); ties keep the first operand in a.
inline void sort2(__m256& a, __m256& b) {
  const __m256 lo = _mm256_min_ps(a, b);
  b = _mm256_max_ps(a, b);
  a = lo;
}

/// Median of 9 via the Devillard / Paeth 19-exchange selection network.
inline __m256 median9(__m256 p0, __m256 p1, __m256 p2, __m256 p3, __m256 p4,
                      __m256 p5, __m256 p6, __m256 p7, __m256 p8) {
  sort2(p1, p2); sort2(p4, p5); sort2(p7, p8);
  sort2(p0, p1); sort2(p3, p4); sort2(p6, p7);
  sort2(p1, p2); sort2(p4, p5); sort2(p7, p8);
  sort2(p0, p3); sort2(p5, p8); sort2(p4, p7);
  sort2(p3, p6); sort2(p1, p4); sort2(p2, p5);
  sort2(p4, p7); sort2(p4, p2); sort2(p6, p4);
  sort2(p4, p2);
  return p4;
}

}  // namespace

void laplacian_row_avx2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  const __m256 four = _mm256_set1_ps(4.0F);
  for (; x + 8 <= x1; x += 8) {
    const __m256 left = _mm256_loadu_ps(mid + x - 1);
    const __m256 right = _mm256_loadu_ps(mid + x + 1);
    const __m256 u = _mm256_loadu_ps(up + x);
    const __m256 d = _mm256_loadu_ps(down + x);
    const __m256 c = _mm256_loadu_ps(mid + x);
    __m256 acc = _mm256_add_ps(left, right);
    acc = _mm256_add_ps(acc, u);
    acc = _mm256_add_ps(acc, d);
    acc = _mm256_sub_ps(acc, _mm256_mul_ps(four, c));
    _mm256_storeu_ps(dst + x, acc);
  }
  laplacian_row_scalar(up, mid, down, dst, x, x1);
}

void gaussian_row_avx2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  const __m256 two = _mm256_set1_ps(2.0F);
  const __m256 four = _mm256_set1_ps(4.0F);
  const __m256 sixteen = _mm256_set1_ps(16.0F);
  for (; x + 8 <= x1; x += 8) {
    // Mirrors the scalar accumulation order including the initial
    // 0 + tap add (see the SSE2 TU).
    __m256 sum =
        _mm256_add_ps(_mm256_setzero_ps(), _mm256_loadu_ps(up + x - 1));
    sum = _mm256_add_ps(sum, _mm256_mul_ps(two, _mm256_loadu_ps(up + x)));
    sum = _mm256_add_ps(sum, _mm256_loadu_ps(up + x + 1));
    sum = _mm256_add_ps(sum,
                        _mm256_mul_ps(two, _mm256_loadu_ps(mid + x - 1)));
    sum = _mm256_add_ps(sum, _mm256_mul_ps(four, _mm256_loadu_ps(mid + x)));
    sum = _mm256_add_ps(sum,
                        _mm256_mul_ps(two, _mm256_loadu_ps(mid + x + 1)));
    sum = _mm256_add_ps(sum, _mm256_loadu_ps(down + x - 1));
    sum = _mm256_add_ps(sum, _mm256_mul_ps(two, _mm256_loadu_ps(down + x)));
    sum = _mm256_add_ps(sum, _mm256_loadu_ps(down + x + 1));
    _mm256_storeu_ps(dst + x, _mm256_div_ps(sum, sixteen));
  }
  gaussian_row_scalar(up, mid, down, dst, x, x1);
}

void slope_row_avx2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom) {
  std::uint32_t x = x0;
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d vden = _mm256_set1_pd(denom);
  const auto widen = [](const float* p) {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  };
  for (; x + 4 <= x1; x += 4) {
    const __m256d a = widen(up + x - 1);
    const __m256d b = widen(up + x);
    const __m256d c = widen(up + x + 1);
    const __m256d d = widen(mid + x - 1);
    const __m256d f = widen(mid + x + 1);
    const __m256d g = widen(down + x - 1);
    const __m256d h = widen(down + x);
    const __m256d i = widen(down + x + 1);

    const __m256d east =
        _mm256_add_pd(_mm256_add_pd(c, _mm256_mul_pd(two, f)), i);
    const __m256d west =
        _mm256_add_pd(_mm256_add_pd(a, _mm256_mul_pd(two, d)), g);
    const __m256d dzdx = _mm256_div_pd(_mm256_sub_pd(east, west), vden);
    const __m256d south =
        _mm256_add_pd(_mm256_add_pd(g, _mm256_mul_pd(two, h)), i);
    const __m256d north =
        _mm256_add_pd(_mm256_add_pd(a, _mm256_mul_pd(two, b)), c);
    const __m256d dzdy = _mm256_div_pd(_mm256_sub_pd(south, north), vden);

    const __m256d mag = _mm256_sqrt_pd(_mm256_add_pd(
        _mm256_mul_pd(dzdx, dzdx), _mm256_mul_pd(dzdy, dzdy)));
    _mm_storeu_ps(dst + x, _mm256_cvtpd_ps(mag));
  }
  slope_row_scalar(up, mid, down, dst, x, x1, denom);
}

void median_row_avx2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  for (; x + 8 <= x1; x += 8) {
    const __m256 med = median9(
        _mm256_loadu_ps(up + x - 1), _mm256_loadu_ps(up + x),
        _mm256_loadu_ps(up + x + 1), _mm256_loadu_ps(mid + x - 1),
        _mm256_loadu_ps(mid + x), _mm256_loadu_ps(mid + x + 1),
        _mm256_loadu_ps(down + x - 1), _mm256_loadu_ps(down + x),
        _mm256_loadu_ps(down + x + 1));
    _mm256_storeu_ps(dst + x, med);
  }
  median_row_scalar(up, mid, down, dst, x, x1);
}

void flow_routing_row_avx2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1) {
  std::uint32_t x = x0;
  for (; x + 8 <= x1; x += 8) {
    // 8-way argmax with strict `<` and first-wins ties: the compare mask is
    // taken BEFORE the min update, so a later neighbour equal to the running
    // best never steals the code — exactly the scalar consider() order.
    // Codes stay in the float domain (0..128 are exactly representable) so
    // the winner blends straight into the output store.
    __m256 best = _mm256_loadu_ps(mid + x);
    __m256 code = _mm256_setzero_ps();
    const auto consider = [&](const float* taps, float step_code) {
      const __m256 v = _mm256_loadu_ps(taps);
      const __m256 lt = _mm256_cmp_ps(v, best, _CMP_LT_OQ);
      best = _mm256_min_ps(v, best);  // v < best ? v : best — scalar update
      code = _mm256_blendv_ps(code, _mm256_set1_ps(step_code), lt);
    };
    consider(mid + x + 1, 1.0F);    // E
    consider(down + x + 1, 2.0F);   // SE
    consider(down + x, 4.0F);       // S
    consider(down + x - 1, 8.0F);   // SW
    consider(mid + x - 1, 16.0F);   // W
    consider(up + x - 1, 32.0F);    // NW
    consider(up + x, 64.0F);        // N
    consider(up + x + 1, 128.0F);   // NE
    _mm256_storeu_ps(dst + x, code);
  }
  flow_routing_row_scalar(up, mid, down, dst, x, x1);
}

void statistics_row_avx2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares) {
  std::uint32_t x = 0;
  if (n >= 8) {
    __m256 vmin = _mm256_loadu_ps(row);
    __m256 vmax = vmin;
    for (x = 8; x + 8 <= n; x += 8) {
      const __m256 v = _mm256_loadu_ps(row + x);
      vmin = _mm256_min_ps(v, vmin);  // ties keep the accumulator
      vmax = _mm256_max_ps(v, vmax);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmin);
    for (const float lane : lanes) min = std::min(min, lane);
    _mm256_store_ps(lanes, vmax);
    for (const float lane : lanes) max = std::max(max, lane);
  }
  for (; x < n; ++x) {
    min = std::min(min, row[x]);
    max = std::max(max, row[x]);
  }
  count += n;
  // Exact scalar accumulation order — see the StatsRowFn contract.
  for (std::uint32_t k = 0; k < n; ++k) {
    const float v = row[k];
    sum += v;
    sum_squares += static_cast<double>(v) * v;
  }
}

#else  // !DAS_SIMD_HAVE_AVX2 — compiler lacks AVX2: forward to scalar.

void laplacian_row_avx2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1) {
  laplacian_row_scalar(up, mid, down, dst, x0, x1);
}
void gaussian_row_avx2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1) {
  gaussian_row_scalar(up, mid, down, dst, x0, x1);
}
void slope_row_avx2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom) {
  slope_row_scalar(up, mid, down, dst, x0, x1, denom);
}
void median_row_avx2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1) {
  median_row_scalar(up, mid, down, dst, x0, x1);
}
void flow_routing_row_avx2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1) {
  flow_routing_row_scalar(up, mid, down, dst, x0, x1);
}
void statistics_row_avx2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares) {
  statistics_row_scalar(row, n, count, min, max, sum, sum_squares);
}

#endif  // DAS_SIMD_HAVE_AVX2

}  // namespace das::kernels::simd::detail
