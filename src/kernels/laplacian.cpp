#include "kernels/laplacian.hpp"

#include <algorithm>

#include "kernels/simd.hpp"

namespace das::kernels {

std::string LaplacianKernel::description() const {
  return "Edge detection / curvature (imaging and GIS): 5-point discrete "
         "Laplacian over the 4-neighbourhood";
}

KernelFeatures LaplacianKernel::features() const {
  return four_neighbor_pattern(name());
}

grid::Grid<float> LaplacianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void LaplacianKernel::run_tile(const grid::Grid<float>& buffer,
                               std::uint32_t buffer_row0,
                               std::uint32_t grid_height,
                               std::uint32_t out_row_begin,
                               std::uint32_t out_row_end,
                               grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    const auto ix = static_cast<std::int64_t>(x);
    const auto iy = static_cast<std::int64_t>(y);
    const float centre = view.at(ix, iy);
    out.at(x, y - out_row_begin) =
        view.at_clamped(ix - 1, iy) + view.at_clamped(ix + 1, iy) +
        view.at_clamped(ix, iy - 1) + view.at_clamped(ix, iy + 1) -
        4.0F * centre;
  };

  // Interior cells go through the dispatched row-segment sweep (AVX2 ->
  // SSE2 -> scalar), which sums in the same left, right, up, down order as
  // the clamped path on every ISA, so outputs are bit-identical.
  simd::run_tile_blocked(view, grid_height, out_row_begin, out_row_end, out,
                         edge_cell, simd::laplacian_row(simd::active_isa()));
}

}  // namespace das::kernels
