#include "kernels/laplacian.hpp"

#include <algorithm>

namespace das::kernels {

std::string LaplacianKernel::description() const {
  return "Edge detection / curvature (imaging and GIS): 5-point discrete "
         "Laplacian over the 4-neighbourhood";
}

KernelFeatures LaplacianKernel::features() const {
  return four_neighbor_pattern(name());
}

grid::Grid<float> LaplacianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void LaplacianKernel::run_tile(const grid::Grid<float>& buffer,
                               std::uint32_t buffer_row0,
                               std::uint32_t grid_height,
                               std::uint32_t out_row_begin,
                               std::uint32_t out_row_end,
                               grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);
  const std::uint32_t width = buffer.width();

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    const auto ix = static_cast<std::int64_t>(x);
    const auto iy = static_cast<std::int64_t>(y);
    const float centre = view.at(ix, iy);
    out.at(x, y - out_row_begin) =
        view.at_clamped(ix - 1, iy) + view.at_clamped(ix + 1, iy) +
        view.at_clamped(ix, iy - 1) + view.at_clamped(ix, iy + 1) -
        4.0F * centre;
  };

  // Interior sweep sums in the same left, right, up, down order as the
  // clamped path, so outputs are bit-identical.
  const std::uint32_t interior_lo = std::max(out_row_begin, 1U);
  const std::uint32_t interior_hi = std::min(out_row_end, grid_height - 1);
  for (std::uint32_t y = out_row_begin; y < out_row_end; ++y) {
    if (y < interior_lo || y >= interior_hi || width <= 2) {
      for (std::uint32_t x = 0; x < width; ++x) edge_cell(x, y);
      continue;
    }
    const float* up = view.row(y - 1);
    const float* mid = view.row(y);
    const float* down = view.row(y + 1);
    float* dst = out.row(y - out_row_begin);
    edge_cell(0, y);
    for (std::uint32_t x = 1; x + 1 < width; ++x) {
      dst[x] = mid[x - 1] + mid[x + 1] + up[x] + down[x] - 4.0F * mid[x];
    }
    edge_cell(width - 1, y);
  }
}

}  // namespace das::kernels
