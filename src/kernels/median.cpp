#include "kernels/median.hpp"

#include <algorithm>
#include <array>

namespace das::kernels {

std::string MedianKernel::description() const {
  return "Impulse-noise removal for medical images: each cell becomes the "
         "median of its in-bounds 3x3 neighbourhood";
}

KernelFeatures MedianKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> MedianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void MedianKernel::run_tile(const grid::Grid<float>& buffer,
                            std::uint32_t buffer_row0,
                            std::uint32_t grid_height,
                            std::uint32_t out_row_begin,
                            std::uint32_t out_row_end,
                            grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);
  const std::uint32_t width = buffer.width();

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    std::array<float, 9> window{};
    std::size_t n = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
        if (view.in_grid(nx, ny)) window[n++] = view.at(nx, ny);
      }
    }
    const auto mid = static_cast<std::ptrdiff_t>(n / 2);
    std::nth_element(window.begin(), window.begin() + mid,
                     window.begin() + static_cast<std::ptrdiff_t>(n));
    out.at(x, y - out_row_begin) = window[static_cast<std::size_t>(mid)];
  };

  // Interior cells always have the full 9-cell window; the sweep fills it
  // in the same (dy, dx) order as the checked path, so nth_element sees the
  // same array and outputs are bit-identical.
  const std::uint32_t interior_lo = std::max(out_row_begin, 1U);
  const std::uint32_t interior_hi = std::min(out_row_end, grid_height - 1);
  for (std::uint32_t y = out_row_begin; y < out_row_end; ++y) {
    if (y < interior_lo || y >= interior_hi || width <= 2) {
      for (std::uint32_t x = 0; x < width; ++x) edge_cell(x, y);
      continue;
    }
    const float* up = view.row(y - 1);
    const float* mid_row = view.row(y);
    const float* down = view.row(y + 1);
    float* dst = out.row(y - out_row_begin);
    edge_cell(0, y);
    for (std::uint32_t x = 1; x + 1 < width; ++x) {
      std::array<float, 9> window = {
          up[x - 1],       up[x],   up[x + 1],  mid_row[x - 1], mid_row[x],
          mid_row[x + 1],  down[x - 1], down[x], down[x + 1]};
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      dst[x] = window[4];
    }
    edge_cell(width - 1, y);
  }
}

}  // namespace das::kernels
