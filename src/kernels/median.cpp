#include "kernels/median.hpp"

#include <algorithm>
#include <array>

#include "kernels/simd.hpp"

namespace das::kernels {

std::string MedianKernel::description() const {
  return "Impulse-noise removal for medical images: each cell becomes the "
         "median of its in-bounds 3x3 neighbourhood";
}

KernelFeatures MedianKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> MedianKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void MedianKernel::run_tile(const grid::Grid<float>& buffer,
                            std::uint32_t buffer_row0,
                            std::uint32_t grid_height,
                            std::uint32_t out_row_begin,
                            std::uint32_t out_row_end,
                            grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    std::array<float, 9> window{};
    std::size_t n = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
        if (view.in_grid(nx, ny)) window[n++] = view.at(nx, ny);
      }
    }
    const auto mid = static_cast<std::ptrdiff_t>(n / 2);
    std::nth_element(window.begin(), window.begin() + mid,
                     window.begin() + static_cast<std::ptrdiff_t>(n));
    out.at(x, y - out_row_begin) = window[static_cast<std::size_t>(mid)];
  };

  // Interior cells always have the full 9-cell window. The dispatched sweep
  // selects the median with a fixed min/max sorting network, which yields
  // the same value as nth_element for any 9-element multiset, so outputs
  // are bit-identical.
  simd::run_tile_blocked(view, grid_height, out_row_begin, out_row_end, out,
                         edge_cell, simd::median_row(simd::active_isa()));
}

}  // namespace das::kernels
