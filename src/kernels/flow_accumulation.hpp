// Flow accumulation (paper Table I).
//
// Input is a D8 direction raster (the flow-routing output); the output
// raster holds, per cell, the number of upstream cells whose flow passes
// through it (not counting the cell itself — the ESRI convention).
//
// Flow accumulation has *global* dataflow: water entering one edge of a
// strip can exit the other side, so a single pass over a tile with a 1-row
// halo is not exact. The reference uses topological (Kahn) propagation; the
// distributed algorithm partitions the grid into row slabs and iterates
// boundary-inflow exchanges until a fixed point — the same structure an
// active-storage execution uses, with each exchange round costing one halo
// transfer. run_tile computes the zero-external-inflow local pass (round 0
// of the distributed algorithm), hence tile_exact() == false.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/kernel.hpp"

namespace das::kernels {

class FlowAccumulationKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override {
    return "flow-accumulation";
  }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 1.0; }
  [[nodiscard]] bool tile_exact() const override { return false; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& dirs) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

/// Result of the distributed algorithm: the accumulation raster plus the
/// number of boundary-exchange rounds it took to converge (each round is a
/// halo transfer in an active-storage execution).
struct DistributedAccumulationResult {
  grid::Grid<float> accumulation;
  std::uint32_t rounds = 0;
};

/// Run flow accumulation over a row partition. `slab_begins` lists the first
/// row of each slab, ascending, starting with 0; the last slab ends at
/// dirs.height(). Produces output identical to the reference.
[[nodiscard]] DistributedAccumulationResult distributed_flow_accumulation(
    const grid::Grid<float>& dirs, const std::vector<std::uint32_t>& slab_begins);

}  // namespace das::kernels
