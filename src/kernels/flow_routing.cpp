#include "kernels/flow_routing.hpp"

#include <algorithm>

#include "kernels/simd.hpp"

namespace das::kernels {
namespace {

// Neighbour scan order fixes tie-breaking: E, SE, S, SW, W, NW, N, NE.
constexpr D8Step kSteps[8] = {{1, 0},  {1, 1},   {0, 1},  {-1, 1},
                              {-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
constexpr std::uint32_t kCodes[8] = {1, 2, 4, 8, 16, 32, 64, 128};

float route_cell(const TileView& view, std::int64_t x, std::int64_t y) {
  const float centre = view.at(x, y);
  float best = centre;
  std::uint32_t code = 0;
  for (int k = 0; k < 8; ++k) {
    const std::int64_t nx = x + kSteps[k].dx;
    const std::int64_t ny = y + kSteps[k].dy;
    if (!view.in_grid(nx, ny)) continue;
    const float v = view.at(nx, ny);
    if (v < best) {
      best = v;
      code = kCodes[k];
    }
  }
  return static_cast<float>(code);
}

}  // namespace

D8Step d8_step(D8 code) {
  for (int k = 0; k < 8; ++k) {
    if (kCodes[k] == static_cast<std::uint32_t>(code)) return kSteps[k];
  }
  DAS_REQUIRE(false && "d8_step on kPit or invalid code");
  return {0, 0};
}

std::string FlowRoutingKernel::description() const {
  return "Basic operation of terrain analysis (GIS): routes flow from each "
         "cell to its lowest 8-neighbour";
}

KernelFeatures FlowRoutingKernel::features() const {
  return eight_neighbor_pattern(name());
}

grid::Grid<float> FlowRoutingKernel::run_reference(
    const grid::Grid<float>& input) const {
  grid::Grid<float> out(input.width(), input.height());
  run_tile(input, 0, input.height(), 0, input.height(), out);
  return out;
}

void FlowRoutingKernel::run_tile(const grid::Grid<float>& buffer,
                                 std::uint32_t buffer_row0,
                                 std::uint32_t grid_height,
                                 std::uint32_t out_row_begin,
                                 std::uint32_t out_row_end,
                                 grid::Grid<float>& out) const {
  check_tile_args(buffer, buffer_row0, grid_height, out_row_begin,
                  out_row_end, out);
  const TileView view(buffer, buffer_row0, grid_height);

  const auto edge_cell = [&](std::uint32_t x, std::uint32_t y) {
    out.at(x, y - out_row_begin) = route_cell(view, x, y);
  };

  // Interior cells have all 8 neighbours in the grid, so the dispatched
  // row-segment sweep (AVX2 -> SSE2 -> scalar) drops the in_grid test and
  // unrolls the scan in the same E, SE, S, SW, W, NW, N, NE order with the
  // same strict `<` per lane, keeping tie-breaks (and outputs) identical to
  // route_cell on every ISA.
  simd::run_tile_blocked(view, grid_height, out_row_begin, out_row_end, out,
                         edge_cell,
                         simd::flow_routing_row(simd::active_isa()));
}

}  // namespace das::kernels
