// 4-neighbour Laplacian (paper §III-C: "the most useful data dependence
// patterns are 4-neighbor and 8-neighbor patterns"). The discrete 5-point
// Laplacian is the canonical 4-neighbour operator — edge detection in
// imaging, smoothing residual in terrain analysis.
#pragma once

#include "kernels/kernel.hpp"

namespace das::kernels {

class LaplacianKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override { return "laplacian-4"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 0.9; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

}  // namespace das::kernels
