#include "kernels/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "simkit/assert.hpp"

namespace das::kernels {

namespace {

constexpr const char* kCalibratedKernels[] = {
    "laplacian-4", "gaussian-2d", "surface-slope", "median-3x3",
    "flow-routing", "raster-statistics"};

/// Deterministic synthetic raster; strictly positive values so the
/// reduction kernels never see -0.0 (min/max over mixed zero signs is the
/// one case where vector and scalar folds could differ).
grid::Grid<float> make_input(std::uint32_t width, std::uint32_t height) {
  grid::Grid<float> g(width, height);
  std::uint32_t state = 0x9E3779B9U;
  for (std::uint32_t y = 0; y < height; ++y) {
    float* row = g.row(y);
    for (std::uint32_t x = 0; x < width; ++x) {
      state = state * 1664525U + 1013904223U;
      row[x] = 1.0F + static_cast<float>(state >> 8) * (1.0F / (1U << 24));
    }
  }
  return g;
}

double seconds_for_run(const ProcessingKernel& kernel,
                       const grid::Grid<float>& input) {
  const auto start = std::chrono::steady_clock::now();
  const grid::Grid<float> out = kernel.run_reference(input);
  const auto stop = std::chrono::steady_clock::now();
  // Touch the result so the timed region cannot be elided.
  DAS_REQUIRE(out.width() > 0);
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

std::string CalibrationReport::kernel_cost_flag() const {
  std::string flag;
  for (const KernelCalibration& k : kernels) {
    if (!flag.empty()) flag += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s:%.3f", k.name.c_str(), k.cost_factor);
    flag += buf;
  }
  return flag;
}

std::string CalibrationReport::format() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "kernel calibration: isa=%s grid=%ux%u repeats=%u\n",
                simd::to_string(isa), width, height, repeats);
  out += line;
  std::snprintf(line, sizeof(line), "  %-18s %14s %12s %12s\n", "kernel",
                "cells/sec", "MiB/s", "cost-factor");
  out += line;
  for (const KernelCalibration& k : kernels) {
    std::snprintf(line, sizeof(line), "  %-18s %14.3e %12.1f %12.3f\n",
                  k.name.c_str(), k.cells_per_second, k.mib_per_second,
                  k.cost_factor);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "recommended flags:\n  --compute-mibps=%.0f\n"
                "  --kernel-cost=%s\n",
                anchor_mibps, kernel_cost_flag().c_str());
  out += line;
  return out;
}

CalibrationReport calibrate_kernels(std::uint32_t width, std::uint32_t height,
                                    std::uint32_t repeats) {
  DAS_REQUIRE(width >= 3 && height >= 3 && repeats >= 1);
  CalibrationReport report;
  report.isa = simd::active_isa();
  report.width = width;
  report.height = height;
  report.repeats = repeats;

  const grid::Grid<float> input = make_input(width, height);
  const double cells =
      static_cast<double>(width) * static_cast<double>(height);
  const KernelRegistry registry = standard_registry();

  for (const char* name : kCalibratedKernels) {
    const KernelPtr kernel = registry.create(name);
    seconds_for_run(*kernel, input);  // warm-up: page in, prime caches
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t r = 0; r < repeats; ++r) {
      best = std::min(best, seconds_for_run(*kernel, input));
    }
    KernelCalibration k;
    k.name = name;
    k.cells_per_second = cells / best;
    k.mib_per_second = k.cells_per_second * sizeof(float) / (1024.0 * 1024.0);
    report.kernels.push_back(k);
  }

  double anchor = 0.0;
  for (const KernelCalibration& k : report.kernels) {
    anchor = std::max(anchor, k.mib_per_second);
  }
  report.anchor_mibps = anchor;
  for (KernelCalibration& k : report.kernels) {
    k.cost_factor = anchor / k.mib_per_second;
  }
  return report;
}

}  // namespace das::kernels
