#include "kernels/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/simd.hpp"

namespace das::kernels {

double RasterSummary::mean() const {
  DAS_REQUIRE(count > 0);
  return sum / static_cast<double>(count);
}

double RasterSummary::variance() const {
  DAS_REQUIRE(count > 0);
  const double m = mean();
  return std::max(0.0, sum_squares / static_cast<double>(count) - m * m);
}

double RasterSummary::stddev() const { return std::sqrt(variance()); }

void RasterSummary::merge(const RasterSummary& other) {
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  sum_squares += other.sum_squares;
}

RasterSummary RasterSummary::of(const grid::Grid<float>& g) {
  return of_rows(g, 0, g.height());
}

RasterSummary RasterSummary::of_rows(const grid::Grid<float>& g,
                                     std::uint32_t row_begin,
                                     std::uint32_t row_end) {
  DAS_REQUIRE(row_begin <= row_end && row_end <= g.height());
  RasterSummary s;
  // Dispatched per-row reduction. min/max vectorize (order-free without
  // NaN); sum and sum_squares stay sequential scalar double adds on every
  // ISA so the summary is bit-identical to the naive loop.
  const simd::StatsRowFn row_fn = simd::statistics_row(simd::active_isa());
  for (std::uint32_t y = row_begin; y < row_end; ++y) {
    row_fn(g.row(y), g.width(), s.count, s.min, s.max, s.sum,
           s.sum_squares);
  }
  return s;
}

std::string StatisticsKernel::description() const {
  return "Scan-style reduction: count/min/max/mean/stddev of the raster "
         "(the classic active-storage workload; no data dependence)";
}

KernelFeatures StatisticsKernel::features() const {
  KernelFeatures f;
  f.name = name();
  return f;  // element-local: empty dependence list
}

grid::Grid<float> StatisticsKernel::run_reference(
    const grid::Grid<float>& input) const {
  const RasterSummary s = RasterSummary::of(input);
  grid::Grid<float> out(5, 1);
  out.at(0, 0) = static_cast<float>(s.count);
  out.at(1, 0) = s.min;
  out.at(2, 0) = s.max;
  out.at(3, 0) = static_cast<float>(s.mean());
  out.at(4, 0) = static_cast<float>(s.stddev());
  return out;
}

void StatisticsKernel::run_tile(const grid::Grid<float>& /*buffer*/,
                                std::uint32_t /*buffer_row0*/,
                                std::uint32_t /*grid_height*/,
                                std::uint32_t /*out_row_begin*/,
                                std::uint32_t /*out_row_end*/,
                                grid::Grid<float>& /*out*/) const {
  DAS_REQUIRE(false && "reduction kernels do not execute through run_tile");
}

}  // namespace das::kernels
