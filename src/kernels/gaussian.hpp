// 2-D Gaussian filter (paper Table I): 3x3 binomial smoothing
// ([1 2 1; 2 4 2; 1 2 1] / 16) with clamp-to-edge boundary sampling, as used
// in signal and medical image processing.
#pragma once

#include "kernels/kernel.hpp"

namespace das::kernels {

class GaussianKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override { return "gaussian-2d"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 1.5; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

}  // namespace das::kernels
