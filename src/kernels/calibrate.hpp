// Kernel calibration: measure what the vectorized kernels actually sustain
// on this machine and translate that into the simulator's compute-time
// parameters (--compute-mibps plus per-kernel --kernel-cost factors), so
// A8/A9 scheme decisions rest on measured rather than guessed compute rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/simd.hpp"

namespace das::kernels {

/// Measured throughput of one kernel plus the cost factor it implies
/// relative to the calibration anchor (the fastest kernel measured).
struct KernelCalibration {
  std::string name;
  double cells_per_second = 0.0;
  double mib_per_second = 0.0;  // cells * sizeof(float)
  double cost_factor = 1.0;     // anchor rate / this kernel's rate
};

struct CalibrationReport {
  simd::Isa isa = simd::Isa::kScalar;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint32_t repeats = 0;
  /// Byte rate of the fastest kernel; the recommended --compute-mibps.
  double anchor_mibps = 0.0;
  std::vector<KernelCalibration> kernels;

  /// Comma-joined "name:factor" list, ready for --kernel-cost=.
  [[nodiscard]] std::string kernel_cost_flag() const;

  /// Human-readable table plus the recommended das_sim flags.
  [[nodiscard]] std::string format() const;
};

/// Run the five stencil kernels over a synthetic `width` x `height` raster
/// `repeats` times each (best-of timing) under the currently active ISA.
[[nodiscard]] CalibrationReport calibrate_kernels(std::uint32_t width = 1024,
                                                  std::uint32_t height = 512,
                                                  std::uint32_t repeats = 3);

}  // namespace das::kernels
