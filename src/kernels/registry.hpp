// Kernel registry: the catalog the Active Storage Client consults when an
// application names an operator to offload. Factories produce fresh kernel
// instances; the standard registry holds the paper's three Table-I kernels
// plus the median filter.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernel.hpp"

namespace das::kernels {

class KernelRegistry {
 public:
  using Factory = std::function<KernelPtr()>;

  /// Register a factory under the name its kernels report.
  /// Throws std::invalid_argument if the name is already taken.
  void add(Factory factory);

  /// True if an operator with this name is registered.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiate a kernel. Throws std::out_of_range for unknown names.
  [[nodiscard]] KernelPtr create(const std::string& name) const;

  /// Registered operator names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Registry preloaded with flow-routing, flow-accumulation, gaussian-2d and
/// median-3x3.
[[nodiscard]] KernelRegistry standard_registry();

}  // namespace das::kernels
