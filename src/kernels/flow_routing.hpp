// Flow routing (single flow direction, paper Fig. 1 and Table I).
//
// For each cell the kernel inspects the 8 neighbours and routes flow to the
// neighbour with the minimum value, following the paper's description
// ("compares the value of central element to every 8-neighbor element and
// find out the element with the minimum value as the flow direction").
// Cells with no strictly lower neighbour are pits (direction 0). Directions
// use the ESRI D8 encoding: E=1, SE=2, S=4, SW=8, W=16, NW=32, N=64, NE=128,
// stored exactly in the float output raster.
#pragma once

#include "kernels/kernel.hpp"

namespace das::kernels {

/// D8 direction codes. kPit marks cells with no lower neighbour.
enum class D8 : std::uint32_t {
  kPit = 0,
  kE = 1,
  kSE = 2,
  kS = 4,
  kSW = 8,
  kW = 16,
  kNW = 32,
  kN = 64,
  kNE = 128,
};

/// (dx, dy) step for a D8 code. Requires code != kPit.
struct D8Step {
  std::int32_t dx;
  std::int32_t dy;
};
[[nodiscard]] D8Step d8_step(D8 code);

class FlowRoutingKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override { return "flow-routing"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 1.2; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

}  // namespace das::kernels
