// Runtime ISA detection, override plumbing and the dispatch tables.
#include "kernels/simd.hpp"

#include <atomic>
#include <stdexcept>
#include <string>

#include "kernels/simd_detail.hpp"

namespace das::kernels::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
Isa probe_isa() {
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
  return Isa::kScalar;
}
#else
Isa probe_isa() { return Isa::kScalar; }
#endif

// kScalar is a valid override, so the "no override" sentinel lives outside
// the enum range.
constexpr std::uint8_t kNoOverride = 0xFF;
std::atomic<std::uint8_t> g_override{kNoOverride};
std::atomic<std::uint32_t> g_block_cols{kDefaultBlockCols};

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

std::optional<Isa> isa_from_string(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "sse2") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

Isa detected_isa() {
  static const Isa detected = probe_isa();
  return detected;
}

Isa active_isa() {
  const std::uint8_t over = g_override.load(std::memory_order_relaxed);
  if (over == kNoOverride) return detected_isa();
  return static_cast<Isa>(over);
}

void set_isa_override(std::optional<Isa> isa) {
  if (!isa) {
    g_override.store(kNoOverride, std::memory_order_relaxed);
    return;
  }
  if (*isa > detected_isa()) {
    throw std::invalid_argument(
        std::string("kernel ISA '") + to_string(*isa) +
        "' not supported by this CPU (detected: " +
        to_string(detected_isa()) + ")");
  }
  g_override.store(static_cast<std::uint8_t>(*isa),
                   std::memory_order_relaxed);
}

std::optional<Isa> isa_override() {
  const std::uint8_t over = g_override.load(std::memory_order_relaxed);
  if (over == kNoOverride) return std::nullopt;
  return static_cast<Isa>(over);
}

std::uint32_t block_cols() {
  return g_block_cols.load(std::memory_order_relaxed);
}

void set_block_cols(std::uint32_t cols) {
  g_block_cols.store(cols, std::memory_order_relaxed);
}

Stencil3RowFn laplacian_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::laplacian_row_avx2;
    case Isa::kSse2: return detail::laplacian_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::laplacian_row_scalar;
}

Stencil3RowFn gaussian_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::gaussian_row_avx2;
    case Isa::kSse2: return detail::gaussian_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::gaussian_row_scalar;
}

Stencil3RowFn median_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::median_row_avx2;
    case Isa::kSse2: return detail::median_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::median_row_scalar;
}

Stencil3RowFn flow_routing_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::flow_routing_row_avx2;
    case Isa::kSse2: return detail::flow_routing_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::flow_routing_row_scalar;
}

SlopeRowFn slope_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::slope_row_avx2;
    case Isa::kSse2: return detail::slope_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::slope_row_scalar;
}

StatsRowFn statistics_row(Isa isa) {
  switch (isa) {
    case Isa::kAvx2: return detail::statistics_row_avx2;
    case Isa::kSse2: return detail::statistics_row_sse2;
    case Isa::kScalar: break;
  }
  return detail::statistics_row_scalar;
}

}  // namespace das::kernels::simd
