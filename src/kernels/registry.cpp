#include "kernels/registry.hpp"

#include <stdexcept>
#include <utility>

#include "kernels/flow_accumulation.hpp"
#include "kernels/flow_routing.hpp"
#include "kernels/gaussian.hpp"
#include "kernels/laplacian.hpp"
#include "kernels/median.hpp"
#include "kernels/slope.hpp"
#include "kernels/statistics.hpp"
#include "simkit/assert.hpp"

namespace das::kernels {

void KernelRegistry::add(Factory factory) {
  DAS_REQUIRE(factory != nullptr);
  std::string name = factory()->name();
  const auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("kernel already registered: " + name);
  }
}

bool KernelRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

KernelPtr KernelRegistry::create(const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::out_of_range("unknown kernel: " + name);
  }
  return it->second();
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

KernelRegistry standard_registry() {
  KernelRegistry registry;
  registry.add([] { return std::make_unique<FlowRoutingKernel>(); });
  registry.add([] { return std::make_unique<FlowAccumulationKernel>(); });
  registry.add([] { return std::make_unique<GaussianKernel>(); });
  registry.add([] { return std::make_unique<MedianKernel>(); });
  registry.add([] { return std::make_unique<SlopeKernel>(); });
  registry.add([] { return std::make_unique<LaplacianKernel>(); });
  registry.add([] { return std::make_unique<StatisticsKernel>(); });
  return registry;
}

}  // namespace das::kernels
