#include "kernels/features.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace das::kernels {
namespace {

[[noreturn]] void bad(std::string_view what, std::string_view context) {
  throw std::invalid_argument("kernel features: " + std::string(what) +
                              " near '" + std::string(context) + "'");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse one offset expression: a signed sum of terms, each term being an
/// integer, "imgWidth", or "<int>*imgWidth".
SymbolicOffset parse_offset(std::string_view expr) {
  const std::string_view original = expr;
  expr = trim(expr);
  if (expr.empty()) bad("empty offset", original);

  SymbolicOffset out;
  std::size_t i = 0;
  while (i < expr.size()) {
    std::int64_t sign = 1;
    while (i < expr.size() && (expr[i] == '+' || expr[i] == '-' ||
                               std::isspace(static_cast<unsigned char>(expr[i])))) {
      if (expr[i] == '-') sign = -sign;
      ++i;
    }
    if (i >= expr.size()) bad("dangling sign", original);

    std::int64_t magnitude = 1;
    bool saw_number = false;
    if (std::isdigit(static_cast<unsigned char>(expr[i]))) {
      magnitude = 0;
      saw_number = true;
      while (i < expr.size() &&
             std::isdigit(static_cast<unsigned char>(expr[i]))) {
        magnitude = magnitude * 10 + (expr[i] - '0');
        ++i;
      }
      while (i < expr.size() &&
             std::isspace(static_cast<unsigned char>(expr[i]))) {
        ++i;
      }
      if (i < expr.size() && expr[i] == '*') {
        ++i;
        while (i < expr.size() &&
               std::isspace(static_cast<unsigned char>(expr[i]))) {
          ++i;
        }
        saw_number = false;  // the number was a coefficient, not a term
      } else {
        out.constant += sign * magnitude;
        continue;
      }
    }

    constexpr std::string_view kWidth = "imgWidth";
    if (expr.compare(i, kWidth.size(), kWidth) == 0) {
      out.width_coeff += sign * magnitude;
      i += kWidth.size();
    } else if (saw_number) {
      out.constant += sign * magnitude;
    } else {
      bad("expected integer or imgWidth", expr.substr(i));
    }
  }
  return out;
}

}  // namespace

std::string SymbolicOffset::to_string() const {
  std::ostringstream out;
  if (width_coeff != 0) {
    if (width_coeff == -1) {
      out << "-imgWidth";
    } else if (width_coeff == 1) {
      out << "imgWidth";
    } else {
      out << width_coeff << "*imgWidth";
    }
    if (constant > 0) out << '+' << constant;
    if (constant < 0) out << constant;
  } else {
    out << constant;
  }
  return out.str();
}

std::vector<std::int64_t> KernelFeatures::resolve(
    std::uint32_t img_width) const {
  std::vector<std::int64_t> out;
  out.reserve(dependence.size());
  for (const SymbolicOffset& o : dependence) out.push_back(o.resolve(img_width));
  return out;
}

std::uint64_t KernelFeatures::max_reach(std::uint32_t img_width) const {
  std::uint64_t reach = 0;
  for (const SymbolicOffset& o : dependence) {
    const std::int64_t r = o.resolve(img_width);
    reach = std::max(reach, static_cast<std::uint64_t>(r < 0 ? -r : r));
  }
  return reach;
}

std::string KernelFeatures::format() const {
  std::ostringstream out;
  out << "Name:" << name << "\nDependence: ";
  for (std::size_t i = 0; i < dependence.size(); ++i) {
    if (i > 0) out << ", ";
    out << dependence[i].to_string();
  }
  out << '\n';
  return out.str();
}

KernelFeatures parse_features(std::string_view text) {
  const auto records = parse_catalog(text);
  if (records.size() != 1) {
    throw std::invalid_argument(
        "kernel features: expected exactly one record, found " +
        std::to_string(records.size()));
  }
  return records.front();
}

std::vector<KernelFeatures> parse_catalog(std::string_view text) {
  std::vector<KernelFeatures> records;
  KernelFeatures current;
  bool in_record = false;
  bool in_dependence = false;

  auto flush = [&]() {
    if (!in_record) return;
    if (current.dependence.empty()) {
      bad("record has no Dependence line", current.name);
    }
    records.push_back(std::move(current));
    current = KernelFeatures{};
    in_record = false;
    in_dependence = false;
  };

  auto parse_offset_list = [&](std::string_view list) {
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string_view piece = trim(
          list.substr(start, comma == std::string_view::npos
                                 ? std::string_view::npos
                                 : comma - start));
      if (!piece.empty()) current.dependence.push_back(parse_offset(piece));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = trim(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    if (line.empty()) {
      in_dependence = false;
      continue;
    }
    if (line.starts_with("Name:")) {
      flush();
      current.name = std::string(trim(line.substr(5)));
      if (current.name.empty()) bad("empty operator name", line);
      in_record = true;
      in_dependence = false;
    } else if (line.starts_with("Dependence:")) {
      if (!in_record) bad("Dependence before Name", line);
      parse_offset_list(line.substr(11));
      in_dependence = true;
    } else if (in_dependence) {
      parse_offset_list(line);  // wrapped continuation of the offset list
    } else {
      bad("unrecognized line", line);
    }
  }
  flush();
  return records;
}

KernelFeatures four_neighbor_pattern(std::string name) {
  KernelFeatures f;
  f.name = std::move(name);
  f.dependence = {
      SymbolicOffset{-1, 0},  // north
      SymbolicOffset{0, -1},  // west
      SymbolicOffset{0, 1},   // east
      SymbolicOffset{1, 0},   // south
  };
  return f;
}

KernelFeatures eight_neighbor_pattern(std::string name) {
  KernelFeatures f;
  f.name = std::move(name);
  // The paper's flow-routing record order.
  f.dependence = {
      SymbolicOffset{-1, 1},  SymbolicOffset{-1, 0}, SymbolicOffset{-1, -1},
      SymbolicOffset{0, -1},  SymbolicOffset{0, 1},  SymbolicOffset{1, -1},
      SymbolicOffset{1, 0},   SymbolicOffset{1, 1},
  };
  return f;
}

}  // namespace das::kernels
