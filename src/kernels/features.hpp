// Kernel Features descriptors (paper §III-B).
//
// A descriptor names an operator and lists the element offsets of its data
// dependence relative to the element being processed, with the file viewed
// as a 1-D element array. Offsets may reference the raster width
// symbolically so one record covers any image size, exactly as in the
// paper's example:
//
//   Name:flow-routing
//   Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
//               imgWidth-1, imgWidth, imgWidth+1
//
// The bandwidth predictor (src/core/bandwidth_model.*) consumes resolved
// integer offsets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace das::kernels {

/// An offset of the form width_coeff * imgWidth + constant (elements).
struct SymbolicOffset {
  std::int64_t width_coeff = 0;
  std::int64_t constant = 0;

  [[nodiscard]] std::int64_t resolve(std::uint32_t img_width) const {
    return width_coeff * static_cast<std::int64_t>(img_width) + constant;
  }

  /// Render in the paper's notation, e.g. "-imgWidth+1" or "-1".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SymbolicOffset&,
                         const SymbolicOffset&) = default;
};

/// One operator's dependence record.
struct KernelFeatures {
  std::string name;
  std::vector<SymbolicOffset> dependence;

  /// Instantiate the offsets for a raster of the given width.
  [[nodiscard]] std::vector<std::int64_t> resolve(
      std::uint32_t img_width) const;

  /// Largest |offset| in elements for the given width (the reach of the
  /// stencil, which determines the halo the DAS layout must replicate).
  [[nodiscard]] std::uint64_t max_reach(std::uint32_t img_width) const;

  /// Render the record in the paper's two-line text format.
  [[nodiscard]] std::string format() const;

  friend bool operator==(const KernelFeatures&,
                         const KernelFeatures&) = default;
};

/// Parse one record ("Name:..." line followed by "Dependence:..." line,
/// which may wrap). Throws std::invalid_argument on malformed input.
[[nodiscard]] KernelFeatures parse_features(std::string_view text);

/// Parse a catalog: records separated by blank lines or back to back.
[[nodiscard]] std::vector<KernelFeatures> parse_catalog(std::string_view text);

/// The common GIS / imaging patterns (paper §III-C).
[[nodiscard]] KernelFeatures four_neighbor_pattern(std::string name);
[[nodiscard]] KernelFeatures eight_neighbor_pattern(std::string name);

}  // namespace das::kernels
