// Processing-kernel interface (the paper's "Processing Kernels", Fig. 2).
//
// Kernels are separate components invoked either on compute nodes (the TS
// scheme) or by the AS helper process on storage servers (NAS/DAS schemes).
// Each kernel supplies:
//   * its Kernel Features record (dependence pattern) for the bandwidth
//     predictor,
//   * a per-byte relative compute cost for the timing model,
//   * a sequential reference implementation, and
//   * a tile implementation that computes a row slab given a buffer holding
//     the slab plus its dependence halo — the exact shape of data a storage
//     server owns under the DAS layout.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "grid/grid.hpp"
#include "kernels/features.hpp"
#include "simkit/assert.hpp"

namespace das::kernels {

/// Read access to a logical-grid window held in a row-slab buffer.
///
/// `buffer` stores logical rows [row0, row0 + buffer.height()); reads are
/// checked against both the buffer and the logical grid bounds.
class TileView {
 public:
  TileView(const grid::Grid<float>& buffer, std::uint32_t row0,
           std::uint32_t grid_height)
      : buffer_(buffer), row0_(row0), grid_height_(grid_height) {}

  [[nodiscard]] std::uint32_t width() const { return buffer_.width(); }
  [[nodiscard]] std::uint32_t grid_height() const { return grid_height_; }

  /// True if logical cell (x, y) exists in the grid.
  [[nodiscard]] bool in_grid(std::int64_t x, std::int64_t y) const {
    return x >= 0 && y >= 0 && x < static_cast<std::int64_t>(width()) &&
           y < static_cast<std::int64_t>(grid_height_);
  }

  /// Value at logical cell (x, y); the cell must be in the grid and covered
  /// by the buffer.
  [[nodiscard]] float at(std::int64_t x, std::int64_t y) const {
    DAS_ASSERT(in_grid(x, y));
    DAS_ASSERT(y >= row0_ && y < row0_ + buffer_.height());
    return buffer_.at(static_cast<std::uint32_t>(x),
                      static_cast<std::uint32_t>(y - row0_));
  }

  /// Clamp-to-edge sample: coordinates outside the grid are clamped to the
  /// nearest grid cell (still must be covered by the buffer after clamping).
  [[nodiscard]] float at_clamped(std::int64_t x, std::int64_t y) const {
    const std::int64_t cx =
        std::max<std::int64_t>(0, std::min<std::int64_t>(x, width() - 1));
    const std::int64_t cy = std::max<std::int64_t>(
        0, std::min<std::int64_t>(y, grid_height_ - 1));
    return at(cx, cy);
  }

  /// Raw pointer to logical row `y` (must be in the grid and covered by the
  /// buffer). Interior sweeps read through this to skip the per-cell bounds
  /// and clamp logic that only boundary cells need.
  [[nodiscard]] const float* row(std::uint32_t y) const {
    DAS_ASSERT(y < grid_height_);
    DAS_ASSERT(y >= row0_ && y - row0_ < buffer_.height());
    return buffer_.row(y - row0_);
  }

 private:
  const grid::Grid<float>& buffer_;
  std::uint32_t row0_;
  std::uint32_t grid_height_;
};

class ProcessingKernel {
 public:
  virtual ~ProcessingKernel() = default;

  /// Operator name as used in Kernel Features records.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line description (the paper's Table I).
  [[nodiscard]] virtual std::string description() const = 0;

  /// Dependence pattern, offsets symbolic in imgWidth.
  [[nodiscard]] virtual KernelFeatures features() const = 0;

  /// Per-byte compute cost relative to a baseline single-pass scan.
  [[nodiscard]] virtual double cost_factor() const = 0;

  /// Rows of dependence halo needed on each side of a tile.
  [[nodiscard]] virtual std::uint32_t halo_rows() const { return 1; }

  /// True if stitching run_tile outputs over a row partition (with
  /// halo_rows() of halo) reproduces run_reference exactly. False for
  /// kernels with global dataflow (flow accumulation), which need the
  /// iterative distributed algorithm instead.
  [[nodiscard]] virtual bool tile_exact() const { return true; }

  /// True for reduction kernels: the output is a small summary, not a
  /// same-size raster. Reduction kernels never go through run_tile inside
  /// the executors; each worker produces a reduction_result_bytes() message
  /// instead of output strips.
  [[nodiscard]] virtual bool is_reduction() const { return false; }

  /// Size of the operator's output given its input size. Identity for the
  /// raster-to-raster kernels; a small constant for reductions.
  [[nodiscard]] virtual std::uint64_t output_bytes(
      std::uint64_t input_bytes) const {
    return input_bytes;
  }

  /// Bytes of the per-worker partial result a reduction ships back.
  [[nodiscard]] virtual std::uint64_t reduction_result_bytes() const {
    return 64;
  }

  /// Sequential reference over the whole grid.
  [[nodiscard]] virtual grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const = 0;

  /// Compute logical rows [out_row_begin, out_row_end) into `out` (whose
  /// row 0 corresponds to logical row out_row_begin). `buffer` holds
  /// logical rows [buffer_row0, buffer_row0 + buffer.height()) and must
  /// cover the output rows plus halo_rows() of halo clipped to the grid.
  virtual void run_tile(const grid::Grid<float>& buffer,
                        std::uint32_t buffer_row0, std::uint32_t grid_height,
                        std::uint32_t out_row_begin, std::uint32_t out_row_end,
                        grid::Grid<float>& out) const = 0;

 protected:
  /// Validate the run_tile contract; kernels call this first.
  void check_tile_args(const grid::Grid<float>& buffer,
                       std::uint32_t buffer_row0, std::uint32_t grid_height,
                       std::uint32_t out_row_begin, std::uint32_t out_row_end,
                       const grid::Grid<float>& out) const {
    DAS_REQUIRE(out_row_begin < out_row_end);
    DAS_REQUIRE(out_row_end <= grid_height);
    DAS_REQUIRE(out.width() == buffer.width());
    DAS_REQUIRE(out.height() == out_row_end - out_row_begin);
    const std::uint32_t halo = halo_rows();
    const std::uint32_t need_lo =
        out_row_begin >= halo ? out_row_begin - halo : 0;
    const std::uint32_t need_hi =
        std::min(grid_height, out_row_end + halo);
    DAS_REQUIRE(buffer_row0 <= need_lo);
    DAS_REQUIRE(buffer_row0 + buffer.height() >= need_hi);
  }
};

using KernelPtr = std::unique_ptr<ProcessingKernel>;

}  // namespace das::kernels
