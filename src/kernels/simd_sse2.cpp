// SSE2 row-segment functions (4 float lanes / 2 double lanes).
//
// Every lane computes one output cell with the exact scalar operand order —
// lanes never share partial results — so outputs are bit-identical to the
// scalar path. Loads are unaligned (the x-1 / x+1 taps are off-alignment by
// construction); loop tails fall back to the scalar body. SSE2 is the
// x86-64 baseline, so this TU needs no special compile flags; on non-x86
// targets every entry point forwards to the scalar implementation.
#include "kernels/simd_detail.hpp"

#include <algorithm>

#if defined(__SSE2__)
#define DAS_SIMD_HAVE_SSE2 1
#include <emmintrin.h>
#else
#define DAS_SIMD_HAVE_SSE2 0
#endif

namespace das::kernels::simd::detail {

#if DAS_SIMD_HAVE_SSE2

namespace {

/// sort2: a <- min(a, b), b <- max(a, b). With both operands ordered this
/// way, ties keep the first operand in `a`, matching std::nth_element's
/// selection of the median *value*.
inline void sort2(__m128& a, __m128& b) {
  const __m128 lo = _mm_min_ps(a, b);
  b = _mm_max_ps(a, b);
  a = lo;
}

/// Median of 9 via the Devillard / Paeth 19-exchange selection network;
/// returns the same median value as nth_element over the window.
inline __m128 median9(__m128 p0, __m128 p1, __m128 p2, __m128 p3, __m128 p4,
                      __m128 p5, __m128 p6, __m128 p7, __m128 p8) {
  sort2(p1, p2); sort2(p4, p5); sort2(p7, p8);
  sort2(p0, p1); sort2(p3, p4); sort2(p6, p7);
  sort2(p1, p2); sort2(p4, p5); sort2(p7, p8);
  sort2(p0, p3); sort2(p5, p8); sort2(p4, p7);
  sort2(p3, p6); sort2(p1, p4); sort2(p2, p5);
  sort2(p4, p7); sort2(p4, p2); sort2(p6, p4);
  sort2(p4, p2);
  return p4;
}

}  // namespace

void laplacian_row_sse2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  const __m128 four = _mm_set1_ps(4.0F);
  for (; x + 4 <= x1; x += 4) {
    // ((((mid[x-1] + mid[x+1]) + up[x]) + down[x]) - 4 * mid[x])
    const __m128 left = _mm_loadu_ps(mid + x - 1);
    const __m128 right = _mm_loadu_ps(mid + x + 1);
    const __m128 u = _mm_loadu_ps(up + x);
    const __m128 d = _mm_loadu_ps(down + x);
    const __m128 c = _mm_loadu_ps(mid + x);
    __m128 acc = _mm_add_ps(left, right);
    acc = _mm_add_ps(acc, u);
    acc = _mm_add_ps(acc, d);
    acc = _mm_sub_ps(acc, _mm_mul_ps(four, c));
    _mm_storeu_ps(dst + x, acc);
  }
  laplacian_row_scalar(up, mid, down, dst, x, x1);
}

void gaussian_row_sse2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  const __m128 two = _mm_set1_ps(2.0F);
  const __m128 four = _mm_set1_ps(4.0F);
  const __m128 sixteen = _mm_set1_ps(16.0F);
  for (; x + 4 <= x1; x += 4) {
    // sum accumulates in the scalar path's (dy, dx) order, including the
    // initial 0 + tap add (0 + -0.0 is +0.0, so skipping it would flip a
    // bit on all-zero windows); weight-1 taps add the tap directly —
    // 1.0f * v is exactly v for every float.
    __m128 sum = _mm_add_ps(_mm_setzero_ps(), _mm_loadu_ps(up + x - 1));
    sum = _mm_add_ps(sum, _mm_mul_ps(two, _mm_loadu_ps(up + x)));
    sum = _mm_add_ps(sum, _mm_loadu_ps(up + x + 1));
    sum = _mm_add_ps(sum, _mm_mul_ps(two, _mm_loadu_ps(mid + x - 1)));
    sum = _mm_add_ps(sum, _mm_mul_ps(four, _mm_loadu_ps(mid + x)));
    sum = _mm_add_ps(sum, _mm_mul_ps(two, _mm_loadu_ps(mid + x + 1)));
    sum = _mm_add_ps(sum, _mm_loadu_ps(down + x - 1));
    sum = _mm_add_ps(sum, _mm_mul_ps(two, _mm_loadu_ps(down + x)));
    sum = _mm_add_ps(sum, _mm_loadu_ps(down + x + 1));
    _mm_storeu_ps(dst + x, _mm_div_ps(sum, sixteen));
  }
  gaussian_row_scalar(up, mid, down, dst, x, x1);
}

void slope_row_sse2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom) {
  std::uint32_t x = x0;
  const __m128d two = _mm_set1_pd(2.0);
  const __m128d vden = _mm_set1_pd(denom);
  // Two double lanes per step: widen float taps exactly, then evaluate the
  // scalar expression per lane (sqrt and divide are correctly rounded, so
  // lane results match std::sqrt / scalar division bit for bit).
  for (; x + 2 <= x1; x += 2) {
    const __m128d a = _mm_cvtps_pd(_mm_loadu_ps(up + x - 1));
    const __m128d b = _mm_cvtps_pd(_mm_loadu_ps(up + x));
    const __m128d c = _mm_cvtps_pd(_mm_loadu_ps(up + x + 1));
    const __m128d d = _mm_cvtps_pd(_mm_loadu_ps(mid + x - 1));
    const __m128d f = _mm_cvtps_pd(_mm_loadu_ps(mid + x + 1));
    const __m128d g = _mm_cvtps_pd(_mm_loadu_ps(down + x - 1));
    const __m128d h = _mm_cvtps_pd(_mm_loadu_ps(down + x));
    const __m128d i = _mm_cvtps_pd(_mm_loadu_ps(down + x + 1));

    // ((c + 2*f + i) - (a + 2*d + g)) / denom
    const __m128d east = _mm_add_pd(_mm_add_pd(c, _mm_mul_pd(two, f)), i);
    const __m128d west = _mm_add_pd(_mm_add_pd(a, _mm_mul_pd(two, d)), g);
    const __m128d dzdx = _mm_div_pd(_mm_sub_pd(east, west), vden);
    // ((g + 2*h + i) - (a + 2*b + c)) / denom
    const __m128d south = _mm_add_pd(_mm_add_pd(g, _mm_mul_pd(two, h)), i);
    const __m128d north = _mm_add_pd(_mm_add_pd(a, _mm_mul_pd(two, b)), c);
    const __m128d dzdy = _mm_div_pd(_mm_sub_pd(south, north), vden);

    const __m128d mag = _mm_sqrt_pd(
        _mm_add_pd(_mm_mul_pd(dzdx, dzdx), _mm_mul_pd(dzdy, dzdy)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + x),
                     _mm_castps_si128(_mm_cvtpd_ps(mag)));
  }
  slope_row_scalar(up, mid, down, dst, x, x1, denom);
}

void median_row_sse2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1) {
  std::uint32_t x = x0;
  for (; x + 4 <= x1; x += 4) {
    const __m128 med = median9(
        _mm_loadu_ps(up + x - 1), _mm_loadu_ps(up + x),
        _mm_loadu_ps(up + x + 1), _mm_loadu_ps(mid + x - 1),
        _mm_loadu_ps(mid + x), _mm_loadu_ps(mid + x + 1),
        _mm_loadu_ps(down + x - 1), _mm_loadu_ps(down + x),
        _mm_loadu_ps(down + x + 1));
    _mm_storeu_ps(dst + x, med);
  }
  median_row_scalar(up, mid, down, dst, x, x1);
}

void flow_routing_row_sse2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1) {
  std::uint32_t x = x0;
  for (; x + 4 <= x1; x += 4) {
    // 8-way argmax, strict `<` with first-wins ties: the compare mask is
    // taken BEFORE the min update, so a neighbour equal to the running best
    // never steals the code — exactly the scalar consider() order. Codes
    // live as their float values (0..128 are exact), so the winning lane's
    // code blends through the ps domain and stores directly.
    __m128 best = _mm_loadu_ps(mid + x);
    __m128 code = _mm_setzero_ps();
    const auto consider = [&](const float* taps, float step_code) {
      const __m128 v = _mm_loadu_ps(taps);
      const __m128 lt = _mm_cmplt_ps(v, best);
      best = _mm_min_ps(v, best);  // v < best ? v : best — scalar update
      const __m128 c = _mm_set1_ps(step_code);
      code = _mm_or_ps(_mm_and_ps(lt, c), _mm_andnot_ps(lt, code));
    };
    consider(mid + x + 1, 1.0F);    // E
    consider(down + x + 1, 2.0F);   // SE
    consider(down + x, 4.0F);       // S
    consider(down + x - 1, 8.0F);   // SW
    consider(mid + x - 1, 16.0F);   // W
    consider(up + x - 1, 32.0F);    // NW
    consider(up + x, 64.0F);        // N
    consider(up + x + 1, 128.0F);   // NE
    _mm_storeu_ps(dst + x, code);
  }
  flow_routing_row_scalar(up, mid, down, dst, x, x1);
}

void statistics_row_sse2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares) {
  // min/max fold vectorizes (operand order keeps the accumulator on ties,
  // like std::min/std::max); the sum / sum_squares chains stay scalar in
  // exact left-to-right order — reassociating a float->double accumulation
  // would change low-order bits.
  std::uint32_t x = 0;
  if (n >= 4) {
    __m128 vmin = _mm_loadu_ps(row);
    __m128 vmax = vmin;
    for (x = 4; x + 4 <= n; x += 4) {
      const __m128 v = _mm_loadu_ps(row + x);
      vmin = _mm_min_ps(v, vmin);  // ties keep the accumulator
      vmax = _mm_max_ps(v, vmax);
    }
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, vmin);
    for (const float lane : lanes) min = std::min(min, lane);
    _mm_store_ps(lanes, vmax);
    for (const float lane : lanes) max = std::max(max, lane);
  }
  for (; x < n; ++x) {
    min = std::min(min, row[x]);
    max = std::max(max, row[x]);
  }
  count += n;
  for (std::uint32_t k = 0; k < n; ++k) {
    const float v = row[k];
    sum += v;
    sum_squares += static_cast<double>(v) * v;
  }
}

#else  // !DAS_SIMD_HAVE_SSE2 — non-x86 target: forward to scalar.

void laplacian_row_sse2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1) {
  laplacian_row_scalar(up, mid, down, dst, x0, x1);
}
void gaussian_row_sse2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1) {
  gaussian_row_scalar(up, mid, down, dst, x0, x1);
}
void slope_row_sse2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom) {
  slope_row_scalar(up, mid, down, dst, x0, x1, denom);
}
void median_row_sse2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1) {
  median_row_scalar(up, mid, down, dst, x0, x1);
}
void flow_routing_row_sse2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1) {
  flow_routing_row_scalar(up, mid, down, dst, x0, x1);
}
void statistics_row_sse2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares) {
  statistics_row_scalar(row, n, count, min, max, sum, sum_squares);
}

#endif  // DAS_SIMD_HAVE_SSE2

}  // namespace das::kernels::simd::detail
