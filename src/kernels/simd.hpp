// Vectorized kernel engine: runtime ISA dispatch + cache-blocked tiling.
//
// The five stencil kernels (laplacian, gaussian, slope, median, statistics)
// formulate their hot loop as a *row-segment function*: compute output cells
// x in [x0, x1) of one interior row, given raw pointers to the three input
// rows. Per ISA (AVX2 -> SSE2 -> scalar) there is one such function per
// kernel; the widest ISA the CPU supports is selected once at startup via
// CPUID and can be narrowed with set_isa_override (the das_sim --kernel-isa
// flag). Every vector lane evaluates the *same arithmetic expression in the
// same operand order* as the scalar path for its own cell — lanes are
// independent output cells, never partial sums — so SIMD, SSE2 and scalar
// outputs are bit-identical, and with them every scheme CSV and trace.
//
// run_tile_blocked drives the sweep: boundary rows and the two edge columns
// go through the kernel's clamped per-cell path; interior cells are walked
// in column strips sized so three input row panels plus the output panel
// stay L2-resident (a 256 KiB budget). Within a strip the y-loop advances
// over all rows before the next strip starts, so each input panel is loaded
// from memory once instead of three times on rasters whose rows outgrow the
// cache. Cells are written exactly once whatever the strip width, so
// blocked and unblocked sweeps are bit-identical too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>

#include "grid/grid.hpp"
#include "kernels/kernel.hpp"

namespace das::kernels::simd {

/// Instruction sets the engine dispatches between, narrowest first.
enum class Isa : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* to_string(Isa isa);
/// Parse "scalar" / "sse2" / "avx2"; nullopt for anything else.
[[nodiscard]] std::optional<Isa> isa_from_string(std::string_view name);

/// Widest ISA the CPU supports (CPUID, probed once).
[[nodiscard]] Isa detected_isa();

/// ISA the kernels actually run: min(detected, override).
[[nodiscard]] Isa active_isa();

/// Pin the engine to at most `isa` (nullopt restores auto-detection).
/// Requesting an ISA the CPU lacks throws std::invalid_argument.
void set_isa_override(std::optional<Isa> isa);
[[nodiscard]] std::optional<Isa> isa_override();

// ---------------------------------------------------------------------------
// Row-segment functions. `up` / `mid` / `down` point at logical rows
// y-1 / y / y+1 (never clamped: callers only invoke these on interior rows),
// `dst` at the output row; all four may be offset into padded-stride
// storage. [x0, x1) is an interior column range (x0 >= 1, x1 <= width - 1).

using Stencil3RowFn = void (*)(const float* up, const float* mid,
                               const float* down, float* dst,
                               std::uint32_t x0, std::uint32_t x1);

/// Slope needs the Horn denominator 8 * cell_size (double, like the scalar
/// path's internal arithmetic).
using SlopeRowFn = void (*)(const float* up, const float* mid,
                            const float* down, float* dst, std::uint32_t x0,
                            std::uint32_t x1, double denom);

/// Statistics row scan: folds row[0, n) into the running reduction state.
/// min/max fold vectorizes; sum / sum_squares keep the scalar path's exact
/// left-to-right double accumulation order (reordering would change bits).
using StatsRowFn = void (*)(const float* row, std::uint32_t n,
                            std::uint64_t& count, float& min, float& max,
                            double& sum, double& sum_squares);

[[nodiscard]] Stencil3RowFn laplacian_row(Isa isa);
[[nodiscard]] Stencil3RowFn gaussian_row(Isa isa);
[[nodiscard]] Stencil3RowFn median_row(Isa isa);
/// D8 flow routing: 8-way strict-less argmax with first-wins tie-breaking
/// (E, SE, S, SW, W, NW, N, NE scan order preserved lane-wise).
[[nodiscard]] Stencil3RowFn flow_routing_row(Isa isa);
[[nodiscard]] SlopeRowFn slope_row(Isa isa);
[[nodiscard]] StatsRowFn statistics_row(Isa isa);

// ---------------------------------------------------------------------------
// Cache-blocked tile driver.

/// Interior column-strip width (elements). Default sizes three input row
/// panels + one output panel to a 256 KiB L2 budget; 0 disables blocking
/// (whole-row sweeps). Overridable for benchmarks and tests.
[[nodiscard]] std::uint32_t block_cols();
void set_block_cols(std::uint32_t cols);
inline constexpr std::uint32_t kDefaultBlockCols = 16384;

/// Shared run_tile driver for the 3x3/5-point stencils.
///
/// `edge_cell(x, y)` is the kernel's clamped per-cell path (identical to the
/// seed implementation); `row_segment(up, mid, down, dst, x0, x1)` its
/// dispatched interior row function. Boundary rows, narrow grids
/// (width <= 2) and the first/last column take edge_cell; every interior
/// cell is covered exactly once by row_segment in column strips of
/// block_cols() width. Bit-identical to the seed's single sweep for any
/// strip width because cells are computed independently.
template <typename EdgeFn, typename RowFn>
void run_tile_blocked(const TileView& view, std::uint32_t grid_height,
                      std::uint32_t out_row_begin, std::uint32_t out_row_end,
                      grid::Grid<float>& out, EdgeFn&& edge_cell,
                      RowFn&& row_segment) {
  const std::uint32_t width = view.width();
  const std::uint32_t interior_lo = std::max(out_row_begin, 1U);
  const std::uint32_t interior_hi = std::min(out_row_end, grid_height - 1);

  const auto edge_row = [&](std::uint32_t y) {
    for (std::uint32_t x = 0; x < width; ++x) edge_cell(x, y);
  };
  if (width <= 2 || interior_lo >= interior_hi) {
    for (std::uint32_t y = out_row_begin; y < out_row_end; ++y) edge_row(y);
    return;
  }
  for (std::uint32_t y = out_row_begin; y < interior_lo; ++y) edge_row(y);
  for (std::uint32_t y = interior_hi; y < out_row_end; ++y) edge_row(y);

  for (std::uint32_t y = interior_lo; y < interior_hi; ++y) {
    edge_cell(0, y);
    edge_cell(width - 1, y);
  }

  const std::uint32_t cols = block_cols();
  const std::uint32_t strip = cols == 0 ? width - 2 : cols;
  for (std::uint32_t x0 = 1; x0 < width - 1; x0 += strip) {
    const std::uint32_t x1 = std::min(x0 + strip, width - 1);
    for (std::uint32_t y = interior_lo; y < interior_hi; ++y) {
      row_segment(view.row(y - 1), view.row(y), view.row(y + 1),
                  out.row(y - out_row_begin), x0, x1);
    }
  }
}

}  // namespace das::kernels::simd
