// Raster statistics — a reduction kernel (count / min / max / mean /
// standard deviation over the whole raster).
//
// Scan-style reductions are the workload the active-disk literature the
// paper builds on was designed for (Riedel et al., Keeton et al.): the
// output is a few dozen bytes, so offloading always wins and — because the
// dependence set is empty — NAS and DAS behave identically. Including it
// contrasts the paper's contribution: dependence awareness only matters for
// operators that have dependence.
#pragma once

#include <cstdint>
#include <limits>

#include "kernels/kernel.hpp"

namespace das::kernels {

/// Mergeable summary of a set of raster cells.
struct RasterSummary {
  std::uint64_t count = 0;
  float min = std::numeric_limits<float>::infinity();
  float max = -std::numeric_limits<float>::infinity();
  double sum = 0.0;
  double sum_squares = 0.0;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Absorb another summary (associative and commutative for exact sums).
  void merge(const RasterSummary& other);

  /// Summary of a whole grid.
  [[nodiscard]] static RasterSummary of(const grid::Grid<float>& g);

  /// Summary of rows [row_begin, row_end).
  [[nodiscard]] static RasterSummary of_rows(const grid::Grid<float>& g,
                                             std::uint32_t row_begin,
                                             std::uint32_t row_end);

  friend bool operator==(const RasterSummary&,
                         const RasterSummary&) = default;
};

class StatisticsKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override {
    return "raster-statistics";
  }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;  // no dependence
  [[nodiscard]] double cost_factor() const override { return 0.6; }
  [[nodiscard]] std::uint32_t halo_rows() const override { return 0; }
  [[nodiscard]] bool tile_exact() const override { return false; }
  [[nodiscard]] bool is_reduction() const override { return true; }
  [[nodiscard]] std::uint64_t output_bytes(
      std::uint64_t /*input_bytes*/) const override {
    return sizeof(RasterSummary);
  }

  /// Returns a 5x1 raster [count, min, max, mean, stddev] so that the
  /// common ProcessingKernel interface still has a reference output.
  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  /// Reductions never execute through the tile path; aborts if called.
  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

}  // namespace das::kernels
