// Surface slope analysis (named in paper §III-C as a common 8-neighbour
// GIS operation): per-cell terrain slope magnitude via Horn's method, the
// standard GIS estimator (3x3 weighted central differences).
#pragma once

#include "kernels/kernel.hpp"

namespace das::kernels {

class SlopeKernel final : public ProcessingKernel {
 public:
  /// `cell_size` is the ground distance between cell centres.
  explicit SlopeKernel(double cell_size = 1.0) : cell_size_(cell_size) {
    DAS_REQUIRE(cell_size > 0.0);
  }

  [[nodiscard]] std::string name() const override { return "surface-slope"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 1.8; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;

 private:
  double cell_size_;
};

}  // namespace das::kernels
