// Internal per-ISA row-segment implementations behind the simd.hpp
// dispatcher. Each symbol exists on every platform: on targets without the
// instruction set (or without x86 at all) the sse2/avx2 entry points
// forward to the scalar body, and runtime detection never selects them
// anyway. Keep this header free of intrinsics so every TU can include it.
#pragma once

#include <cstdint>

namespace das::kernels::simd::detail {

void laplacian_row_scalar(const float* up, const float* mid,
                          const float* down, float* dst, std::uint32_t x0,
                          std::uint32_t x1);
void gaussian_row_scalar(const float* up, const float* mid, const float* down,
                         float* dst, std::uint32_t x0, std::uint32_t x1);
void slope_row_scalar(const float* up, const float* mid, const float* down,
                      float* dst, std::uint32_t x0, std::uint32_t x1,
                      double denom);
void median_row_scalar(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1);
void flow_routing_row_scalar(const float* up, const float* mid,
                             const float* down, float* dst, std::uint32_t x0,
                             std::uint32_t x1);
void statistics_row_scalar(const float* row, std::uint32_t n,
                           std::uint64_t& count, float& min, float& max,
                           double& sum, double& sum_squares);

void laplacian_row_sse2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1);
void gaussian_row_sse2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1);
void slope_row_sse2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom);
void median_row_sse2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1);
void flow_routing_row_sse2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1);
void statistics_row_sse2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares);

void laplacian_row_avx2(const float* up, const float* mid, const float* down,
                        float* dst, std::uint32_t x0, std::uint32_t x1);
void gaussian_row_avx2(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1);
void slope_row_avx2(const float* up, const float* mid, const float* down,
                    float* dst, std::uint32_t x0, std::uint32_t x1,
                    double denom);
void median_row_avx2(const float* up, const float* mid, const float* down,
                     float* dst, std::uint32_t x0, std::uint32_t x1);
void flow_routing_row_avx2(const float* up, const float* mid,
                           const float* down, float* dst, std::uint32_t x0,
                           std::uint32_t x1);
void statistics_row_avx2(const float* row, std::uint32_t n,
                         std::uint64_t& count, float& min, float& max,
                         double& sum, double& sum_squares);

}  // namespace das::kernels::simd::detail
