// Kernel Features catalog — the paper's §III-B component: "a component
// called Kernel Features is embedded in the active storage client to
// identify data dependence patterns. The patterns can be implemented and
// represented as a plain text file."
//
// The catalog maps operator names to dependence records. The Active Storage
// Client consults it before falling back to the kernel implementation's
// built-in pattern, so deployments can describe operators (or correct a
// pattern) without recompiling — exactly the paper's plain-text workflow.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "kernels/features.hpp"

namespace das::kernels {

class FeaturesCatalog {
 public:
  FeaturesCatalog() = default;

  /// Parse a catalog from the paper's text format (one or more records).
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static FeaturesCatalog from_text(std::string_view text);

  /// Insert or replace the record for `features.name`.
  void add(KernelFeatures features);

  /// Remove a record; returns false if it was absent.
  bool remove(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// The record for `name`, if present.
  [[nodiscard]] std::optional<KernelFeatures> lookup(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Render every record back to the text format (round-trips from_text).
  [[nodiscard]] std::string to_text() const;

 private:
  std::map<std::string, KernelFeatures> records_;
};

}  // namespace das::kernels
