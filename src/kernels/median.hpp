// 3x3 median filter — the second medical-imaging operation the paper's
// introduction motivates ("many commonly used operations, such as ... median
// filter, always require eight neighbor data items"). Included beyond the
// three Table-I kernels to exercise a higher compute-cost stencil.
#pragma once

#include "kernels/kernel.hpp"

namespace das::kernels {

class MedianKernel final : public ProcessingKernel {
 public:
  [[nodiscard]] std::string name() const override { return "median-3x3"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] KernelFeatures features() const override;
  [[nodiscard]] double cost_factor() const override { return 2.5; }

  [[nodiscard]] grid::Grid<float> run_reference(
      const grid::Grid<float>& input) const override;

  void run_tile(const grid::Grid<float>& buffer, std::uint32_t buffer_row0,
                std::uint32_t grid_height, std::uint32_t out_row_begin,
                std::uint32_t out_row_end,
                grid::Grid<float>& out) const override;
};

}  // namespace das::kernels
