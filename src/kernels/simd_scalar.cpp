// Scalar row-segment functions — the seed kernels' interior loops, verbatim.
//
// These are the bit-exactness reference for every wider ISA: each SIMD lane
// must evaluate the same expression in the same operand order as the body
// below for its cell. They also serve as the loop tails of the vector
// paths, so keep them branch-free and in exact seed order.
#include "kernels/simd_detail.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace das::kernels::simd::detail {

void laplacian_row_scalar(const float* up, const float* mid,
                          const float* down, float* dst, std::uint32_t x0,
                          std::uint32_t x1) {
  for (std::uint32_t x = x0; x < x1; ++x) {
    dst[x] = mid[x - 1] + mid[x + 1] + up[x] + down[x] - 4.0F * mid[x];
  }
}

void gaussian_row_scalar(const float* up, const float* mid, const float* down,
                         float* dst, std::uint32_t x0, std::uint32_t x1) {
  constexpr float kWeights[3][3] = {
      {1.0F, 2.0F, 1.0F}, {2.0F, 4.0F, 2.0F}, {1.0F, 2.0F, 1.0F}};
  for (std::uint32_t x = x0; x < x1; ++x) {
    float sum = 0.0F;
    sum += kWeights[0][0] * up[x - 1];
    sum += kWeights[0][1] * up[x];
    sum += kWeights[0][2] * up[x + 1];
    sum += kWeights[1][0] * mid[x - 1];
    sum += kWeights[1][1] * mid[x];
    sum += kWeights[1][2] * mid[x + 1];
    sum += kWeights[2][0] * down[x - 1];
    sum += kWeights[2][1] * down[x];
    sum += kWeights[2][2] * down[x + 1];
    dst[x] = sum / 16.0F;
  }
}

void slope_row_scalar(const float* up, const float* mid, const float* down,
                      float* dst, std::uint32_t x0, std::uint32_t x1,
                      double denom) {
  for (std::uint32_t x = x0; x < x1; ++x) {
    const double a = up[x - 1];
    const double b = up[x];
    const double c = up[x + 1];
    const double d = mid[x - 1];
    const double f = mid[x + 1];
    const double g = down[x - 1];
    const double h = down[x];
    const double i = down[x + 1];

    const double dzdx = ((c + 2 * f + i) - (a + 2 * d + g)) / denom;
    const double dzdy = ((g + 2 * h + i) - (a + 2 * b + c)) / denom;
    dst[x] = static_cast<float>(std::sqrt(dzdx * dzdx + dzdy * dzdy));
  }
}

void median_row_scalar(const float* up, const float* mid, const float* down,
                       float* dst, std::uint32_t x0, std::uint32_t x1) {
  for (std::uint32_t x = x0; x < x1; ++x) {
    std::array<float, 9> window = {up[x - 1],   up[x],   up[x + 1],
                                   mid[x - 1],  mid[x],  mid[x + 1],
                                   down[x - 1], down[x], down[x + 1]};
    std::nth_element(window.begin(), window.begin() + 4, window.end());
    dst[x] = window[4];
  }
}

void flow_routing_row_scalar(const float* up, const float* mid,
                             const float* down, float* dst, std::uint32_t x0,
                             std::uint32_t x1) {
  for (std::uint32_t x = x0; x < x1; ++x) {
    float best = mid[x];
    std::uint32_t code = 0;
    const auto consider = [&](float v, std::uint32_t step_code) {
      if (v < best) {
        best = v;
        code = step_code;
      }
    };
    consider(mid[x + 1], 1);    // E
    consider(down[x + 1], 2);   // SE
    consider(down[x], 4);       // S
    consider(down[x - 1], 8);   // SW
    consider(mid[x - 1], 16);   // W
    consider(up[x - 1], 32);    // NW
    consider(up[x], 64);        // N
    consider(up[x + 1], 128);   // NE
    dst[x] = static_cast<float>(code);
  }
}

void statistics_row_scalar(const float* row, std::uint32_t n,
                           std::uint64_t& count, float& min, float& max,
                           double& sum, double& sum_squares) {
  for (std::uint32_t x = 0; x < n; ++x) {
    const float v = row[x];
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    sum_squares += static_cast<double>(v) * v;
  }
}

}  // namespace das::kernels::simd::detail
