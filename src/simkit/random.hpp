// Deterministic random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Every consumer
// of randomness in this repository takes an explicit Rng (or a seed) so that
// simulations and generated datasets are reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace das::sim {

class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 so that nearby seeds produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive a named independent substream (e.g. per node, per file).
  /// The same (parent seed, name) pair always yields the same stream.
  [[nodiscard]] Rng fork(std::string_view name) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return UINT64_MAX; }

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller (caches the spare deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

 private:
  explicit Rng(std::array<std::uint64_t, 4> state) : state_(state) {}

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace das::sim
