#include "simkit/log.hpp"

#include <cstdio>
#include <iostream>

namespace das::sim {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_string(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void Logger::log(LogLevel level, SimTime now, std::string_view component,
                 std::string_view message) {
  std::ostream* sink = sink_.load(std::memory_order_relaxed);
  if (sink == nullptr || level < level_.load(std::memory_order_relaxed)) {
    return;
  }
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%12.6fs]", to_seconds(now));
  *sink << stamp << ' ' << to_string(level) << ' ' << component << ": "
        << message << '\n';
}

Logger& Logger::global() {
  static Logger logger(&std::cerr, LogLevel::kWarn);
  return logger;
}

}  // namespace das::sim
