#include "simkit/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "simkit/assert.hpp"

namespace das::sim {

const char* to_string(TraceTrack track) {
  switch (track) {
    case TraceTrack::kRequest: return "request";
    case TraceTrack::kCompute: return "compute";
    case TraceTrack::kDisk: return "disk";
    case TraceTrack::kNicEgress: return "nic.egress";
    case TraceTrack::kNicIngress: return "nic.ingress";
    case TraceTrack::kCache: return "cache";
    case TraceTrack::kPrefetch: return "prefetch";
  }
  return "?";
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::complete(SimTime start, SimTime end, std::uint32_t node,
                      TraceTrack track, std::string name, std::string cat,
                      std::string args) {
  if (!enabled_) return;
  DAS_REQUIRE(end >= start);
  events_.push_back(TraceEvent{start, end - start, node,
                               static_cast<std::uint32_t>(track), 'X', 0,
                               std::move(name), std::move(cat),
                               std::move(args)});
}

void Tracer::instant(SimTime t, std::uint32_t node, TraceTrack track,
                     std::string name, std::string cat, std::string args) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{t, 0, node, static_cast<std::uint32_t>(track),
                               'i', 0, std::move(name), std::move(cat),
                               std::move(args)});
}

void Tracer::instant_now(std::uint32_t node, TraceTrack track,
                         std::string name, std::string cat,
                         std::string args) {
  if (!enabled_) return;
  instant(now(), node, track, std::move(name), std::move(cat),
          std::move(args));
}

void Tracer::async_begin(SimTime t, std::uint32_t node, std::uint64_t id,
                         std::string name, std::string cat,
                         std::string args) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{
      t, 0, node, static_cast<std::uint32_t>(TraceTrack::kRequest), 'b', id,
      std::move(name), std::move(cat), std::move(args)});
}

void Tracer::async_end(SimTime t, std::uint32_t node, std::uint64_t id,
                       std::string name, std::string cat) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{
      t, 0, node, static_cast<std::uint32_t>(TraceTrack::kRequest), 'e', id,
      std::move(name), std::move(cat), {}});
}

void Tracer::set_process_name(std::uint32_t node, const std::string& name) {
  if (!enabled_) return;
  const std::string args = "{\"name\":\"" + json_escape(name) + "\"}";
  for (TraceEvent& event : metadata_) {
    if (event.name == "process_name" && event.pid == node) {
      event.args = args;
      return;
    }
  }
  metadata_.push_back(
      TraceEvent{0, 0, node, 0, 'M', 0, "process_name", "__metadata", args});
}

void Tracer::set_track_name(std::uint32_t node, TraceTrack track,
                            const std::string& name) {
  if (!enabled_) return;
  const auto tid = static_cast<std::uint32_t>(track);
  const std::string args = "{\"name\":\"" + json_escape(name) + "\"}";
  for (TraceEvent& event : metadata_) {
    if (event.name == "thread_name" && event.pid == node &&
        event.tid == tid) {
      event.args = args;
      return;
    }
  }
  metadata_.push_back(
      TraceEvent{0, 0, node, tid, 'M', 0, "thread_name", "__metadata", args});
}

std::vector<TraceEvent> Tracer::sorted_events() const {
  std::vector<TraceEvent> sorted = events_;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  return sorted;
}

namespace {

void append_event(std::string& out, const TraceEvent& event, bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[160];
  // Chrome trace timestamps are microseconds; SimTime is nanoseconds.
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f",
                json_escape(event.name).c_str(),
                json_escape(event.cat).c_str(), event.ph,
                static_cast<double>(event.ts) / 1e3);
  out += buf;
  if (event.ph == 'X') {
    std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                  static_cast<double>(event.dur) / 1e3);
    out += buf;
  }
  if (event.ph == 'b' || event.ph == 'e') {
    std::snprintf(buf, sizeof buf, ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(event.id));
    out += buf;
  }
  if (event.ph == 'i') out += ",\"s\":\"t\"";
  std::snprintf(buf, sizeof buf, ",\"pid\":%u,\"tid\":%u", event.pid,
                event.tid);
  out += buf;
  if (!event.args.empty()) {
    out += ",\"args\":";
    out += event.args;
  }
  out += '}';
}

}  // namespace

std::string Tracer::to_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& event : metadata_) append_event(out, event, first);
  for (const TraceEvent& event : sorted_events()) {
    append_event(out, event, first);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (!session_.empty()) {
    out += ",\"session\":\"" + json_escape(session_) + "\"";
  }
  out += "}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = to_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

void Tracer::clear() {
  events_.clear();
  metadata_.clear();
  last_scope_id_ = 0;
}

void Tracer::merge_from(const Tracer& other) {
  // Shift incoming async scope ids past every id this tracer has handed out,
  // then absorb the donor's id space, so ids stay unique across any number
  // of merges and match what serial accumulation would have produced.
  const std::uint64_t offset = last_scope_id_;
  events_.reserve(events_.size() + other.events_.size());
  for (const TraceEvent& event : other.events_) {
    events_.push_back(event);
    if (event.ph == 'b' || event.ph == 'e') events_.back().id += offset;
  }
  last_scope_id_ += other.last_scope_id_;

  for (const TraceEvent& incoming : other.metadata_) {
    bool found = false;
    for (TraceEvent& existing : metadata_) {
      if (existing.name == incoming.name && existing.pid == incoming.pid &&
          existing.tid == incoming.tid) {
        existing.args = incoming.args;
        found = true;
        break;
      }
    }
    if (!found) metadata_.push_back(incoming);
  }
}

}  // namespace das::sim
