// Span-based tracing with simulated timestamps.
//
// Components record complete spans (a disk access, a NIC serialization, a
// compute reservation), instant events (cache hit, prefetch issue), and
// async request scopes (one NAS/DAS run from first input to last write) on
// per-node tracks. The buffer exports Chrome trace-event JSON, loadable in
// Perfetto / chrome://tracing, so one traced run yields a complete
// per-server timeline of where a sweep's time went.
//
// Tracing is strictly observational and zero-cost when disabled: every
// recording call returns after one branch, and call sites must guard any
// argument formatting behind enabled(). Components never change simulated
// behaviour based on the tracer, so a traced run's results are
// byte-identical to an untraced one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "simkit/time.hpp"

namespace das::sim {

/// Per-node resource tracks. Track ids are stable across runs so tooling
/// can rely on (pid=node, tid=track) identifying one resource timeline.
enum class TraceTrack : std::uint32_t {
  kRequest = 0,  // request/run scopes and decisions
  kCompute = 1,
  kDisk = 2,
  kNicEgress = 3,
  kNicIngress = 4,
  kCache = 5,
  kPrefetch = 6,
};

inline constexpr std::uint32_t kNumTraceTracks = 7;

[[nodiscard]] const char* to_string(TraceTrack track);

/// One buffered trace event (Chrome trace-event model).
struct TraceEvent {
  SimTime ts = 0;
  SimDuration dur = 0;    // complete ('X') events only
  std::uint32_t pid = 0;  // cluster node id
  std::uint32_t tid = 0;  // TraceTrack
  char ph = 'X';          // 'X' complete, 'i' instant, 'b'/'e' async, 'M' meta
  std::uint64_t id = 0;   // async scope id ('b'/'e' only)
  std::string name;
  std::string cat;
  std::string args;  // preformatted JSON object ("{...}"), or empty
};

/// Escape `text` for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

class Tracer {
 public:
  using Clock = std::function<SimTime()>;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Bind the simulation clock so components without direct time access
  /// (the strip cache) can stamp instants. Rebound by every Cluster; only
  /// valid while that simulator is alive.
  void set_clock(Clock clock) { clock_ = std::move(clock); }
  [[nodiscard]] SimTime now() const { return clock_ ? clock_() : 0; }

  /// A finished span [start, end] on node `node`'s `track`.
  void complete(SimTime start, SimTime end, std::uint32_t node,
                TraceTrack track, std::string name, std::string cat,
                std::string args = {});

  /// A point event at `t`.
  void instant(SimTime t, std::uint32_t node, TraceTrack track,
               std::string name, std::string cat, std::string args = {});

  /// A point event stamped with the bound clock.
  void instant_now(std::uint32_t node, TraceTrack track, std::string name,
                   std::string cat, std::string args = {});

  /// Async scope for long-lived, overlapping work (one executor run). The
  /// begin/end pair is matched by (cat, id); scopes on one track may nest
  /// and interleave freely.
  void async_begin(SimTime t, std::uint32_t node, std::uint64_t id,
                   std::string name, std::string cat, std::string args = {});
  void async_end(SimTime t, std::uint32_t node, std::uint64_t id,
                 std::string name, std::string cat);

  /// Fresh id for an async scope (never 0, so 0 can mean "no scope").
  [[nodiscard]] std::uint64_t next_scope_id() { return ++last_scope_id_; }

  /// Run session id stamped as a top-level key of the exported JSON so the
  /// trace joins audits/SLO CSVs/metrics on one key. Empty emits no key
  /// (pre-session traces stay byte-identical).
  void set_session(std::string session) { session_ = std::move(session); }
  [[nodiscard]] const std::string& session() const { return session_; }

  /// Metadata naming for the viewer ("server3", "disk"). Deduplicated, so
  /// repeated runs in one process do not bloat the buffer.
  void set_process_name(std::uint32_t node, const std::string& name);
  void set_track_name(std::uint32_t node, TraceTrack track,
                      const std::string& name);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t event_count() const {
    return events_.size() + metadata_.size();
  }

  /// Events stably sorted by timestamp (the order to_json emits), so every
  /// track's begin timestamps are monotone.
  [[nodiscard]] std::vector<TraceEvent> sorted_events() const;

  /// Render the whole buffer as a Chrome trace-event JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; false on I/O failure.
  [[nodiscard]] bool write_json(const std::string& path) const;

  /// Append everything `other` recorded to this buffer. Async scope ids are
  /// shifted past this tracer's id space so merged scopes never collide, and
  /// metadata entries are re-deduplicated. Merging per-run tracers in a fixed
  /// cell order reproduces exactly the buffer a single shared tracer would
  /// have accumulated serially, which is what keeps traced sweep output
  /// independent of --jobs.
  void merge_from(const Tracer& other);

  /// Drop all buffered events and scope ids (keeps enabled state + clock).
  void clear();

 private:
  bool enabled_ = false;
  Clock clock_;
  std::string session_;
  std::uint64_t last_scope_id_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> metadata_;  // ph 'M', emitted before the timeline
};

}  // namespace das::sim
