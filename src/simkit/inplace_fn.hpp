// Small-buffer-optimized move-only callable, the event engine's callback
// type.
//
// Every scheduled event used to carry a std::function<void()>, whose capture
// state lives on the heap once it outgrows the library's tiny inline buffer
// (16 bytes on libstdc++ — two captured pointers). Simulation callbacks
// routinely capture five to ten pointers, so the old hot path paid one
// malloc/free pair per scheduled event. InplaceFn keeps captures up to
// kInplaceFnStorage bytes inline in the event node itself; only outsized
// callables fall back to one heap cell. It is move-only (no copy), which is
// all the event queue needs and what lets it hold move-only captures that
// std::function rejects.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "simkit/assert.hpp"

namespace das::sim {

/// Inline capture capacity. Sized for the repository's common scheduling
/// lambdas (up to eight captured words); bigger callables still work via a
/// single heap allocation.
inline constexpr std::size_t kInplaceFnStorage = 64;

template <typename Signature>
class InplaceFn;

template <typename R, typename... Args>
class InplaceFn<R(Args...)> {
 public:
  InplaceFn() = default;
  InplaceFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFn> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFn(F&& callable) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(callable));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(callable));
      ops_ = &kHeapOps<D>;
    }
  }

  InplaceFn(InplaceFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  /// Drop the held callable (back to empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    DAS_ASSERT(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the held callable lives inline (diagnostics and tests).
  [[nodiscard]] bool is_inline() const {
    return ops_ != nullptr && ops_->inline_storage;
  }

  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(F) <= kInplaceFnStorage &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char* obj, Args&&... args);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(unsigned char* src, unsigned char* dst) noexcept;
    void (*destroy)(unsigned char* obj) noexcept;
    bool inline_storage;
  };

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](unsigned char* obj, Args&&... args) -> R {
        return (*reinterpret_cast<F*>(obj))(std::forward<Args>(args)...);
      },
      [](unsigned char* src, unsigned char* dst) noexcept {
        F* from = reinterpret_cast<F*>(src);
        ::new (static_cast<void*>(dst)) F(std::move(*from));
        from->~F();
      },
      [](unsigned char* obj) noexcept { reinterpret_cast<F*>(obj)->~F(); },
      true,
  };

  template <typename F>
  static constexpr Ops kHeapOps = {
      [](unsigned char* obj, Args&&... args) -> R {
        return (**reinterpret_cast<F**>(obj))(std::forward<Args>(args)...);
      },
      [](unsigned char* src, unsigned char* dst) noexcept {
        *reinterpret_cast<F**>(dst) = *reinterpret_cast<F**>(src);
      },
      [](unsigned char* obj) noexcept { delete *reinterpret_cast<F**>(obj); },
      false,
  };

  alignas(std::max_align_t) unsigned char storage_[kInplaceFnStorage]{};
  const Ops* ops_ = nullptr;
};

}  // namespace das::sim
