#include "simkit/context.hpp"

#include <iostream>

namespace das::sim {

RunContext::RunContext() : log(&std::cerr, LogLevel::kWarn) {}

}  // namespace das::sim
