// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps are delivered in insertion order (FIFO), which
// makes every simulation in this repository fully deterministic: the same
// inputs always produce the same event trace.
//
// The implementation is an indexed 4-ary min-heap over a pool of event
// nodes. Each node records its heap position, so cancellation locates the
// event in O(1) (no hash set) and removes it with one localized sift —
// the heap never holds dead events, which also removes the old
// double drop-dead scan that next_time() + pop() used to pay per step.
// Slots are recycled through a free list and tagged with a generation
// counter; an EventId packs (generation, slot) so a stale handle (already
// fired or cancelled) is rejected in O(1). Callbacks are
// small-buffer-optimized InplaceFn values stored inside the node, so the
// common scheduling path performs no heap allocation at all.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/inplace_fn.hpp"
#include "simkit/time.hpp"

namespace das::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Packs the pool slot in the low 32 bits and its generation in the high 32
/// so handles from earlier occupancies of a slot never alias live events.
using EventId = std::uint64_t;

/// A delivered callback as returned by pop(). `tag` is a static string used
/// only for tracing. Move-only (the action is an InplaceFn).
struct Event {
  SimTime when = 0;
  EventId id = 0;
  InplaceFn<void()> action;
  const char* tag = "";
};

/// Min-heap of events ordered by (when, push sequence).
class EventQueue {
 public:
  /// Insert an event; returns its id for later cancellation.
  EventId push(SimTime when, InplaceFn<void()> action, const char* tag);

  /// Remove an event in O(1) lookup + one localized sift. Returns false if
  /// the id already fired or was already cancelled.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Timestamp of the next live event. Requires !empty(). O(1): the heap
  /// holds live events only, so no dead-event scan happens here or in pop().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the next live event. Requires !empty().
  Event pop();

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Total events ever pushed (diagnostic).
  [[nodiscard]] std::uint64_t total_pushed() const { return next_seq_; }

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;

  struct Node {
    SimTime when = 0;
    std::uint64_t seq = 0;  // monotonically increasing; breaks ties FIFO
    InplaceFn<void()> action;
    const char* tag = "";
    std::uint32_t generation = 0;
    std::uint32_t heap_index = kNone;  // position in heap_, kNone when free
    std::uint32_t next_free = kNone;   // free-list link while unoccupied
  };

  /// True when the node in `slot_a` must be delivered before `slot_b`.
  [[nodiscard]] bool before(std::uint32_t slot_a, std::uint32_t slot_b) const {
    const Node& a = nodes_[slot_a];
    const Node& b = nodes_[slot_b];
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void place(std::uint32_t heap_index, std::uint32_t slot) {
    heap_[heap_index] = slot;
    nodes_[slot].heap_index = heap_index;
  }

  void sift_up(std::uint32_t heap_index);
  void sift_down(std::uint32_t heap_index);

  /// Detach the node at `heap_index` from the heap, keeping the heap
  /// property (swap in the last element and sift it into place).
  void remove_from_heap(std::uint32_t heap_index);

  /// Return `slot` to the free list and invalidate outstanding handles.
  void release(std::uint32_t slot);

  std::vector<Node> nodes_;         // slot pool
  std::vector<std::uint32_t> heap_;  // 4-ary min-heap of slot indices
  std::uint32_t free_head_ = kNone;
  std::uint64_t next_seq_ = 0;
};

}  // namespace das::sim
