// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps are delivered in insertion order (FIFO), which
// makes every simulation in this repository fully deterministic: the same
// inputs always produce the same event trace.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "simkit/time.hpp"

namespace das::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// A scheduled callback. `tag` is a static string used only for tracing.
struct Event {
  SimTime when = 0;
  EventId id = 0;  // monotonically increasing; breaks timestamp ties FIFO
  std::function<void()> action;
  const char* tag = "";
};

/// Min-heap of events ordered by (when, id).
///
/// Cancellation is lazy: a cancelled event stays in the heap and is dropped
/// when it reaches the top, but it no longer counts as live.
class EventQueue {
 public:
  /// Insert an event; returns its id for later cancellation.
  EventId push(SimTime when, std::function<void()> action, const char* tag);

  /// Mark an event dead. Returns false if the id already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Timestamp of the next live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Remove and return the next live event. Requires !empty().
  Event pop();

  /// Number of live events (cancelled-but-unpopped events excluded).
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Total events ever pushed (diagnostic).
  [[nodiscard]] std::uint64_t total_pushed() const { return next_id_; }

 private:
  struct Order {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Pop cancelled events off the top of the heap.
  void drop_dead() const;

  mutable std::priority_queue<Event, std::vector<Event>, Order> heap_;
  std::unordered_set<EventId> pending_;  // ids pushed, not yet popped/cancelled
  EventId next_id_ = 0;
};

}  // namespace das::sim
