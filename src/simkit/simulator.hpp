// The discrete-event simulator driving every experiment in this repository.
//
// Components schedule callbacks at future simulated times; Simulator::run()
// delivers them in timestamp order (FIFO among equal timestamps) until the
// event set drains or a stop condition is reached. All simulations are
// single-threaded and deterministic.
#pragma once

#include <cstdint>

#include "simkit/context.hpp"
#include "simkit/event_queue.hpp"
#include "simkit/inplace_fn.hpp"
#include "simkit/time.hpp"

namespace das::sim {

class Simulator {
 public:
  /// Scheduled-callback type. Small-buffer optimized: captures up to
  /// kInplaceFnStorage bytes schedule without heap allocation.
  using Callback = InplaceFn<void()>;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (must be >= now()).
  /// `tag` is a static string for tracing; it is not copied.
  EventId schedule_at(SimTime when, Callback cb, const char* tag = "");

  /// Schedule `cb` after `delay` (must be >= 0) from now().
  EventId schedule_after(SimDuration delay, Callback cb, const char* tag = "");

  /// Cancel a previously scheduled event. Returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Deliver the next event. Returns false if the queue was empty.
  bool step();

  /// Run until the event set drains or stop() is called.
  /// Returns the number of events delivered by this call.
  std::uint64_t run();

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` are delivered). Advances now() to `deadline` if the queue
  /// drains earlier. Returns the number of events delivered.
  std::uint64_t run_until(SimTime deadline);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// True once stop() has been called during the current run.
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events delivered over the simulator's lifetime.
  [[nodiscard]] std::uint64_t events_delivered() const { return delivered_; }

  /// Number of events currently pending.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Attach this simulator to a run context (logger/tracer/rng bundle).
  /// Pass nullptr to fall back to the simulator's private default context.
  /// The context must outlive the simulator's use of it.
  void set_context(RunContext* context) {
    context_ = context != nullptr ? context : &default_context_;
  }

  [[nodiscard]] RunContext& context() { return *context_; }
  [[nodiscard]] Tracer& tracer() { return context_->tracer; }
  [[nodiscard]] Logger& log() { return context_->log; }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::uint64_t delivered_ = 0;
  bool stopped_ = false;
  RunContext default_context_;
  RunContext* context_ = &default_context_;
};

}  // namespace das::sim
