#include "simkit/simulator.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::sim {

EventId Simulator::schedule_at(SimTime when, Callback cb, const char* tag) {
  DAS_REQUIRE(when >= now_);
  return queue_.push(when, std::move(cb), tag);
}

EventId Simulator::schedule_after(SimDuration delay, Callback cb,
                                  const char* tag) {
  DAS_REQUIRE(delay >= 0);
  return queue_.push(now_ + delay, std::move(cb), tag);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.pop();
  DAS_ASSERT(ev.when >= now_);
  now_ = ev.when;
  ++delivered_;
  ev.action();
  return true;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  DAS_REQUIRE(deadline >= now_);
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
    ++n;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace das::sim
