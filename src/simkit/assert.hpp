// Lightweight contract checks used across the library.
//
// DAS_REQUIRE is always on (it guards simulation invariants whose violation
// would silently corrupt results); DAS_ASSERT compiles out in NDEBUG builds
// and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace das::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace das::detail

#define DAS_REQUIRE(expr)                                                \
  ((expr) ? static_cast<void>(0)                                         \
          : ::das::detail::contract_failure("DAS_REQUIRE", #expr,        \
                                            __FILE__, __LINE__))

#ifdef NDEBUG
#define DAS_ASSERT(expr) static_cast<void>(0)
#else
#define DAS_ASSERT(expr)                                                 \
  ((expr) ? static_cast<void>(0)                                         \
          : ::das::detail::contract_failure("DAS_ASSERT", #expr,         \
                                            __FILE__, __LINE__))
#endif
