#include "simkit/random.hpp"

#include <cmath>

#include "simkit/assert.hpp"

namespace das::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the substream name, mixed into the fork seed.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
}

Rng Rng::fork(std::string_view name) const {
  std::uint64_t seed = state_[0] ^ rotl(state_[2], 17) ^ hash_name(name);
  std::array<std::uint64_t, 4> st{};
  for (auto& s : st) s = splitmix64(seed);
  return Rng(st);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DAS_REQUIRE(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform_real(double lo, double hi) {
  DAS_REQUIRE(lo < hi);
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  DAS_REQUIRE(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

}  // namespace das::sim
