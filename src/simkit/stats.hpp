// Metrics primitives used by the simulated cluster components.
//
// Counters accumulate event counts and byte totals; TimeWeightedGauge tracks
// utilization-style values averaged over simulated time; Histogram records
// sample distributions (latencies, queue depths). A MetricsRegistry owns
// named instances so reports can be assembled generically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simkit/time.hpp"

namespace das::sim {

/// Monotonically increasing count (events, bytes, requests).
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A gauge averaged over simulated time, e.g. NIC utilization or queue depth.
///
/// Call set(now, v) whenever the value changes; the average between updates
/// is weighted by the simulated time the value was held.
class TimeWeightedGauge {
 public:
  void set(SimTime now, double value);

  /// Time-weighted mean over [first update, `now`].
  [[nodiscard]] double average(SimTime now) const;

  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] double maximum() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  double weighted_sum_ = 0.0;  // integral of value over time
  SimTime last_update_ = 0;
  SimTime first_update_ = 0;
  bool started_ = false;
};

/// One-line digest of a histogram; all zeros when the histogram is empty.
struct HistogramSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Sample distribution with exact quantiles (stores all samples).
///
/// Experiments in this repository record at most a few million samples per
/// histogram, so exact storage is affordable and avoids sketch error.
class Histogram {
 public:
  void record(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// q in [0, 1]; nearest-rank quantile, with q == 0 defined as the
  /// minimum (nearest-rank alone would leave rank 0 unspecified).
  /// Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;

  /// count/mean/p50/p95/p99/max in one call; safe on an empty histogram.
  [[nodiscard]] HistogramSummary summary() const;

  /// Fold another histogram's samples into this one (per-node resource
  /// histograms aggregate into one cluster-wide distribution).
  void merge(const Histogram& other);

  void reset();

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Named metrics for one component or one experiment run.
class MetricsRegistry {
 public:
  /// Find-or-create by name. References stay valid for the registry's life.
  Counter& counter(const std::string& name);
  TimeWeightedGauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, TimeWeightedGauge>& gauges()
      const {
    return gauges_;
  }

  /// Render counters and histogram summaries as aligned text lines.
  [[nodiscard]] std::string report(SimTime now) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, TimeWeightedGauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace das::sim
