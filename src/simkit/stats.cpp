#include "simkit/stats.hpp"

#include <cmath>
#include <sstream>

#include "simkit/assert.hpp"

namespace das::sim {

void TimeWeightedGauge::set(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    first_update_ = now;
    last_update_ = now;
    value_ = value;
    max_ = value;
    return;
  }
  DAS_REQUIRE(now >= last_update_);
  weighted_sum_ += value_ * static_cast<double>(now - last_update_);
  last_update_ = now;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedGauge::average(SimTime now) const {
  if (!started_ || now <= first_update_) return value_;
  const double span = static_cast<double>(now - first_update_);
  const double tail = value_ * static_cast<double>(now - last_update_);
  return (weighted_sum_ + tail) / span;
}

void Histogram::record(double sample) {
  samples_.push_back(sample);
  sorted_ = samples_.size() <= 1;
  sum_ += sample;
}

double Histogram::mean() const {
  DAS_REQUIRE(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  ensure_sorted();
  DAS_REQUIRE(!samples_.empty());
  return samples_.front();
}

double Histogram::max() const {
  ensure_sorted();
  DAS_REQUIRE(!samples_.empty());
  return samples_.back();
}

double Histogram::quantile(double q) const {
  DAS_REQUIRE(q >= 0.0 && q <= 1.0);
  DAS_REQUIRE(!samples_.empty());
  ensure_sorted();
  // Nearest-rank leaves q == 0 unspecified (rank 0); define it as the
  // minimum so quantile() spans [min, max] over its whole domain.
  if (q == 0.0) return samples_.front();
  const auto n = samples_.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  return samples_[rank - 1];
}

HistogramSummary Histogram::summary() const {
  if (samples_.empty()) return HistogramSummary{};
  return HistogramSummary{count(),        mean(),          quantile(0.5),
                          quantile(0.95), quantile(0.99),  max()};
}

void Histogram::merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = samples_.size() <= 1;
  sum_ += other.sum_;
}

void Histogram::reset() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

TimeWeightedGauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

std::string MetricsRegistry::report(SimTime now) const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " = " << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " avg=" << g.average(now) << " max=" << g.maximum()
        << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) {
      out << name << " (no samples)\n";
      continue;
    }
    const HistogramSummary s = h.summary();
    out << name << " n=" << s.count << " mean=" << s.mean
        << " p50=" << s.p50 << " p95=" << s.p95 << " p99=" << s.p99
        << " max=" << s.max << '\n';
  }
  return out.str();
}

}  // namespace das::sim
