// Per-run observability and randomness bundle.
//
// The logger, tracer and a scratch RNG stream used to be process-wide
// singletons, which made two Simulators in one process share mutable state —
// harmless while every experiment ran serially, fatal once the sweep runner
// executes independent Simulator instances on a thread pool. A RunContext
// owns one private copy of each channel; the driver that launches a run
// decides whether runs share a context (legacy serial behaviour) or get one
// each (parallel sweeps), and components reach it through their Simulator.
//
// A Simulator that is never given a context falls back to a default one it
// owns, so standalone simulators (unit tests, examples) stay isolated and
// race-free without any setup.
#pragma once

#include <cstdint>

#include "simkit/log.hpp"
#include "simkit/random.hpp"
#include "simkit/trace.hpp"

namespace das::telemetry {
class Plane;
}  // namespace das::telemetry

namespace das::sim {

struct RunContext {
  /// Leveled log for this run. Defaults to warnings on stderr, mirroring
  /// the old global logger.
  Logger log;
  /// Trace buffer for this run; disabled until a driver enables it.
  Tracer tracer;
  /// Scratch random stream for drivers that need per-run randomness not
  /// tied to a model component (components keep their explicit seeds).
  Rng rng;
  /// Telemetry plane for this run, or nullptr when the driver runs without
  /// one. Non-owning (the driver owns the plane); forward-declared so simkit
  /// does not depend on the telemetry library.
  telemetry::Plane* telemetry = nullptr;
  /// Session id stamped on every output of this run (traces, audits, SLO
  /// CSVs, metrics) so they join on one key. 0 when the driver minted none.
  std::uint64_t session = 0;

  RunContext();

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;
};

}  // namespace das::sim
