#include "simkit/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "simkit/assert.hpp"

namespace das::sim {
namespace {

constexpr std::uint32_t kArity = 4;

constexpr EventId make_handle(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | slot;
}

constexpr std::uint32_t handle_slot(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFULL);
}

constexpr std::uint32_t handle_generation(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

}  // namespace

EventId EventQueue::push(SimTime when, InplaceFn<void()> action,
                         const char* tag) {
  std::uint32_t slot;
  if (free_head_ != kNone) {
    slot = free_head_;
    free_head_ = nodes_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(nodes_.size());
    DAS_REQUIRE(slot != kNone && "event pool exhausted");
    nodes_.emplace_back();
  }
  Node& node = nodes_[slot];
  node.when = when;
  node.seq = next_seq_++;
  node.action = std::move(action);
  node.tag = tag;
  node.next_free = kNone;

  const auto heap_index = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  node.heap_index = heap_index;
  sift_up(heap_index);
  return make_handle(node.generation, slot);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = handle_slot(id);
  if (slot >= nodes_.size()) return false;
  Node& node = nodes_[slot];
  if (node.generation != handle_generation(id) || node.heap_index == kNone) {
    return false;  // already fired or already cancelled
  }
  remove_from_heap(node.heap_index);
  release(slot);
  return true;
}

SimTime EventQueue::next_time() const {
  DAS_REQUIRE(!empty());
  return nodes_[heap_.front()].when;
}

Event EventQueue::pop() {
  DAS_REQUIRE(!empty());
  const std::uint32_t slot = heap_.front();
  Node& node = nodes_[slot];
  Event ev{node.when, make_handle(node.generation, slot),
           std::move(node.action), node.tag};
  remove_from_heap(0);
  release(slot);
  return ev;
}

void EventQueue::sift_up(std::uint32_t heap_index) {
  const std::uint32_t slot = heap_[heap_index];
  while (heap_index > 0) {
    const std::uint32_t parent = (heap_index - 1) / kArity;
    if (!before(slot, heap_[parent])) break;
    place(heap_index, heap_[parent]);
    heap_index = parent;
  }
  place(heap_index, slot);
}

void EventQueue::sift_down(std::uint32_t heap_index) {
  const auto count = static_cast<std::uint32_t>(heap_.size());
  const std::uint32_t slot = heap_[heap_index];
  for (;;) {
    const std::uint64_t first_child =
        static_cast<std::uint64_t>(heap_index) * kArity + 1;
    if (first_child >= count) break;
    const std::uint32_t last_child = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(first_child + kArity - 1, count - 1));
    std::uint32_t best = static_cast<std::uint32_t>(first_child);
    for (std::uint32_t c = best + 1; c <= last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], slot)) break;
    place(heap_index, heap_[best]);
    heap_index = best;
  }
  place(heap_index, slot);
}

void EventQueue::remove_from_heap(std::uint32_t heap_index) {
  DAS_ASSERT(heap_index < heap_.size());
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (heap_index == heap_.size()) return;  // removed the tail entry
  place(heap_index, last);
  // The swapped-in tail may violate the heap property in either direction
  // relative to its new neighbourhood; one of the two sifts is a no-op.
  sift_up(heap_index);
  sift_down(nodes_[last].heap_index);
}

void EventQueue::release(std::uint32_t slot) {
  Node& node = nodes_[slot];
  node.action.reset();
  node.tag = "";
  ++node.generation;  // invalidates every outstanding handle to this slot
  node.heap_index = kNone;
  node.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace das::sim
