#include "simkit/event_queue.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::sim {

EventId EventQueue::push(SimTime when, std::function<void()> action,
                         const char* tag) {
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(action), tag});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) > 0; }

void EventQueue::drop_dead() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  DAS_REQUIRE(!empty());
  drop_dead();
  return heap_.top().when;
}

Event EventQueue::pop() {
  DAS_REQUIRE(!empty());
  drop_dead();
  Event ev = heap_.top();
  heap_.pop();
  pending_.erase(ev.id);
  return ev;
}

}  // namespace das::sim
