// Leveled, simulation-time-stamped logging.
//
// Off by default (level = Warn); experiments flip to Debug to trace event
// flow. Formatting cost is avoided entirely when the level is filtered.
#pragma once

#include <atomic>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "simkit/time.hpp"

namespace das::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Logs at or above `level` go to `sink`. The sink must outlive the logger.
  explicit Logger(std::ostream* sink = nullptr,
                  LogLevel level = LogLevel::kWarn)
      : sink_(sink), level_(level) {}

  // Level and sink are atomics so a driver thread may adjust filtering
  // while worker threads run simulations that consult enabled(). Relaxed
  // ordering suffices: filtering is advisory, not a synchronization point.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  void set_sink(std::ostream* sink) {
    sink_.store(sink, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_.load(std::memory_order_relaxed) != nullptr &&
           level >= level_.load(std::memory_order_relaxed);
  }

  /// Emit one line: "[  1.234567s] component: message".
  void log(LogLevel level, SimTime now, std::string_view component,
           std::string_view message);

  /// Stream-building convenience; evaluates `body` only when enabled.
  template <typename Body>
  void log_lazy(LogLevel level, SimTime now, std::string_view component,
                Body&& body) {
    if (!enabled(level)) return;
    std::ostringstream msg;
    body(msg);
    log(level, now, component, msg.str());
  }

  /// A process-wide logger for components not wired to a specific one.
  static Logger& global();

 private:
  std::atomic<std::ostream*> sink_;
  std::atomic<LogLevel> level_;
};

/// Human-readable level name ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level);

/// Parse "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-sensitive, the CLI spelling); nullopt on anything else so callers
/// can reject typos instead of silently filtering everything.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(
    std::string_view name);

}  // namespace das::sim
