// Simulation time representation for the das discrete-event engine.
//
// Simulated time is an integer count of nanoseconds. Integer time keeps the
// simulation deterministic across platforms (no floating-point event-order
// ambiguity) while giving ~292 years of range, far beyond any experiment in
// this repository.
#pragma once

#include <concepts>
#include <cstdint>

namespace das::sim {

/// Simulated time in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// A span of simulated time, also in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;

/// Largest representable time; used as "never" for idle components.
inline constexpr SimTime kTimeInfinity = INT64_MAX;

/// Construct a duration from nanoseconds (identity, for symmetry).
constexpr SimDuration nanoseconds(std::int64_t n) { return n; }

/// Construct a duration from microseconds.
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }

/// Construct a duration from milliseconds.
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }

/// Construct a duration from whole seconds (any integral type).
template <std::integral I>
constexpr SimDuration seconds(I s) {
  return static_cast<SimDuration>(s) * 1'000'000'000;
}

/// Construct a duration from fractional seconds (rounds to nearest ns).
template <std::floating_point F>
constexpr SimDuration seconds(F s) {
  return static_cast<SimDuration>(
      static_cast<double>(s) * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Convert a time/duration to fractional seconds for reporting.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// Convert a time/duration to fractional milliseconds for reporting.
constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) * 1e-6;
}

/// Time to move `bytes` at `bytes_per_second`, rounded up to a whole ns so a
/// nonzero transfer never takes zero simulated time.
constexpr SimDuration transfer_time(std::uint64_t bytes,
                                    double bytes_per_second) {
  if (bytes == 0) return 0;
  const double s = static_cast<double>(bytes) / bytes_per_second;
  const auto ns = static_cast<SimDuration>(s * 1e9);
  return ns > 0 ? ns : 1;
}

}  // namespace das::sim
