// Grid <-> byte-stream conversion.
//
// A grid is stored in the parallel file system as its raw row-major element
// stream (no header): element i of the file is cell (i % W, i / W), which is
// precisely the 1-D abstraction the paper's dependence offsets are written
// against ("a file can be abstracted as a one-dimension array of bytes").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid.hpp"

namespace das::grid {

/// Size in bytes of the serialized form of `g`.
template <typename T>
[[nodiscard]] std::uint64_t serialized_size(const Grid<T>& g) {
  return static_cast<std::uint64_t>(g.size()) * sizeof(T);
}

/// Serialize to raw row-major bytes (native endianness).
[[nodiscard]] std::vector<std::byte> to_bytes(const Grid<float>& g);

/// Reconstruct a width x height float grid from raw bytes.
/// Requires bytes.size() == width * height * sizeof(float).
[[nodiscard]] Grid<float> from_bytes(const std::vector<std::byte>& bytes,
                                     std::uint32_t width,
                                     std::uint32_t height);

}  // namespace das::grid
