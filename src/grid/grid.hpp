// Dense row-major 2-D raster.
//
// This is the in-memory representation of the terrain maps and medical
// images the paper's kernels operate on. In the parallel file system a grid
// is stored as its row-major element stream, so "row width" and "strip size"
// interact exactly as in the paper's Figs. 4-7.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "simkit/assert.hpp"

namespace das::grid {

template <typename T>
class Grid {
 public:
  Grid() = default;

  Grid(std::uint32_t width, std::uint32_t height, T fill_value = T{})
      : width_(width),
        height_(height),
        cells_(static_cast<std::size_t>(width) * height, fill_value) {
    DAS_REQUIRE(width > 0 && height > 0);
  }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  [[nodiscard]] bool in_bounds(std::int64_t x, std::int64_t y) const {
    return x >= 0 && y >= 0 && x < static_cast<std::int64_t>(width_) &&
           y < static_cast<std::int64_t>(height_);
  }

  [[nodiscard]] T& at(std::uint32_t x, std::uint32_t y) {
    DAS_ASSERT(in_bounds(x, y));
    return cells_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const T& at(std::uint32_t x, std::uint32_t y) const {
    DAS_ASSERT(in_bounds(x, y));
    return cells_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Linear (row-major) element access; index < size().
  [[nodiscard]] T& operator[](std::size_t i) {
    DAS_ASSERT(i < cells_.size());
    return cells_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    DAS_ASSERT(i < cells_.size());
    return cells_[i];
  }

  [[nodiscard]] T* data() { return cells_.data(); }
  [[nodiscard]] const T* data() const { return cells_.data(); }

  [[nodiscard]] T* row(std::uint32_t y) {
    DAS_ASSERT(y < height_);
    return cells_.data() + static_cast<std::size_t>(y) * width_;
  }
  [[nodiscard]] const T* row(std::uint32_t y) const {
    DAS_ASSERT(y < height_);
    return cells_.data() + static_cast<std::size_t>(y) * width_;
  }

  void fill(T value) { cells_.assign(cells_.size(), value); }

  /// Copy rows [row_begin, row_end) into a new grid of the same width.
  [[nodiscard]] Grid<T> slice_rows(std::uint32_t row_begin,
                                   std::uint32_t row_end) const {
    DAS_REQUIRE(row_begin < row_end && row_end <= height_);
    Grid<T> out(width_, row_end - row_begin);
    for (std::uint32_t y = row_begin; y < row_end; ++y) {
      const T* src = row(y);
      T* dst = out.row(y - row_begin);
      for (std::uint32_t x = 0; x < width_; ++x) dst[x] = src[x];
    }
    return out;
  }

  /// Overwrite rows [row_begin, row_begin + src.height()) from `src`
  /// (same width).
  void paste_rows(std::uint32_t row_begin, const Grid<T>& src) {
    DAS_REQUIRE(src.width() == width_);
    DAS_REQUIRE(row_begin + src.height() <= height_);
    for (std::uint32_t y = 0; y < src.height(); ++y) {
      const T* s = src.row(y);
      T* d = row(row_begin + y);
      for (std::uint32_t x = 0; x < width_; ++x) d[x] = s[x];
    }
  }

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.cells_ == b.cells_;
  }

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<T> cells_;
};

/// Largest absolute element-wise difference; grids must have equal shape.
template <typename T>
double max_abs_diff(const Grid<T>& a, const Grid<T>& b) {
  DAS_REQUIRE(a.width() == b.width() && a.height() == b.height());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(static_cast<double>(a[i]) -
                               static_cast<double>(b[i]));
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace das::grid
