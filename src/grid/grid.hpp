// Dense row-major 2-D raster.
//
// This is the in-memory representation of the terrain maps and medical
// images the paper's kernels operate on. In the parallel file system a grid
// is stored as its row-major element stream, so "row width" and "strip size"
// interact exactly as in the paper's Figs. 4-7.
//
// Storage is 64-byte aligned (one cache line, one AVX-512 vector) so the
// SIMD kernel paths never straddle a line at row starts, and a grid can
// optionally be allocated with a padded row stride — rows then begin at
// aligned addresses even when the logical width is odd. Padded grids keep
// the same logical contents; only the linear views (data(), operator[])
// are restricted to contiguous grids, because the element stream of a
// padded grid is not the file's element stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "simkit/assert.hpp"

namespace das::grid {

/// Alignment of every grid allocation: one cache line, which is also the
/// widest vector the kernel engine dispatches today.
inline constexpr std::size_t kGridAlignment = 64;

/// Minimal aligned allocator so the backing std::vector honours
/// kGridAlignment regardless of the element type's natural alignment.
template <typename T>
struct GridAllocator {
  using value_type = T;

  GridAllocator() = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor)
  GridAllocator(const GridAllocator<U>&) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kGridAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kGridAlignment});
  }

  template <typename U>
  friend bool operator==(const GridAllocator&, const GridAllocator<U>&) {
    return true;
  }
};

template <typename T>
class Grid {
 public:
  Grid() = default;

  Grid(std::uint32_t width, std::uint32_t height, T fill_value = T{})
      : width_(width),
        height_(height),
        stride_(width),
        cells_(static_cast<std::size_t>(width) * height, fill_value) {
    DAS_REQUIRE(width > 0 && height > 0);
  }

  /// Grid whose row stride is padded up to a kGridAlignment boundary, so
  /// every row starts 64-byte aligned. Logical contents are identical to
  /// the contiguous layout; linear element access is unavailable.
  [[nodiscard]] static Grid padded(std::uint32_t width, std::uint32_t height,
                                   T fill_value = T{}) {
    DAS_REQUIRE(width > 0 && height > 0);
    constexpr std::uint32_t kLane =
        static_cast<std::uint32_t>(kGridAlignment / sizeof(T));
    Grid g;
    g.width_ = width;
    g.height_ = height;
    g.stride_ = (width + kLane - 1) / kLane * kLane;
    g.cells_.assign(static_cast<std::size_t>(g.stride_) * height, fill_value);
    return g;
  }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  /// Elements between consecutive row starts (>= width()).
  [[nodiscard]] std::uint32_t stride() const { return stride_; }
  /// True when the element stream is dense row-major (stride == width);
  /// only then do the linear views below exist.
  [[nodiscard]] bool contiguous() const { return stride_ == width_; }
  /// Logical element count (padding excluded).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(width_) * height_;
  }
  [[nodiscard]] bool empty() const { return cells_.empty(); }

  [[nodiscard]] bool in_bounds(std::int64_t x, std::int64_t y) const {
    return x >= 0 && y >= 0 && x < static_cast<std::int64_t>(width_) &&
           y < static_cast<std::int64_t>(height_);
  }

  [[nodiscard]] T& at(std::uint32_t x, std::uint32_t y) {
    DAS_ASSERT(in_bounds(x, y));
    return cells_[static_cast<std::size_t>(y) * stride_ + x];
  }
  [[nodiscard]] const T& at(std::uint32_t x, std::uint32_t y) const {
    DAS_ASSERT(in_bounds(x, y));
    return cells_[static_cast<std::size_t>(y) * stride_ + x];
  }

  /// Linear (row-major) element access; index < size(). Contiguous grids
  /// only — a padded grid's element stream would include the padding.
  [[nodiscard]] T& operator[](std::size_t i) {
    DAS_ASSERT(contiguous());
    DAS_ASSERT(i < cells_.size());
    return cells_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    DAS_ASSERT(contiguous());
    DAS_ASSERT(i < cells_.size());
    return cells_[i];
  }

  [[nodiscard]] T* data() {
    DAS_ASSERT(contiguous());
    return cells_.data();
  }
  [[nodiscard]] const T* data() const {
    DAS_ASSERT(contiguous());
    return cells_.data();
  }

  [[nodiscard]] T* row(std::uint32_t y) {
    DAS_ASSERT(y < height_);
    return cells_.data() + static_cast<std::size_t>(y) * stride_;
  }
  [[nodiscard]] const T* row(std::uint32_t y) const {
    DAS_ASSERT(y < height_);
    return cells_.data() + static_cast<std::size_t>(y) * stride_;
  }

  void fill(T value) { cells_.assign(cells_.size(), value); }

  /// Copy rows [row_begin, row_end) into a new grid of the same width.
  [[nodiscard]] Grid<T> slice_rows(std::uint32_t row_begin,
                                   std::uint32_t row_end) const {
    DAS_REQUIRE(row_begin < row_end && row_end <= height_);
    Grid<T> out(width_, row_end - row_begin);
    for (std::uint32_t y = row_begin; y < row_end; ++y) {
      const T* src = row(y);
      T* dst = out.row(y - row_begin);
      for (std::uint32_t x = 0; x < width_; ++x) dst[x] = src[x];
    }
    return out;
  }

  /// Overwrite rows [row_begin, row_begin + src.height()) from `src`
  /// (same width).
  void paste_rows(std::uint32_t row_begin, const Grid<T>& src) {
    DAS_REQUIRE(src.width() == width_);
    DAS_REQUIRE(row_begin + src.height() <= height_);
    for (std::uint32_t y = 0; y < src.height(); ++y) {
      const T* s = src.row(y);
      T* d = row(row_begin + y);
      for (std::uint32_t x = 0; x < width_; ++x) d[x] = s[x];
    }
  }

  /// Logical equality: shape and per-row contents (padding never compared,
  /// so a padded grid equals its contiguous twin).
  friend bool operator==(const Grid& a, const Grid& b) {
    if (a.width_ != b.width_ || a.height_ != b.height_) return false;
    if (a.stride_ == b.stride_) return a.cells_ == b.cells_;
    for (std::uint32_t y = 0; y < a.height_; ++y) {
      if (std::memcmp(a.row(y), b.row(y), a.width_ * sizeof(T)) != 0) {
        return false;
      }
    }
    return true;
  }

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::uint32_t stride_ = 0;
  std::vector<T, GridAllocator<T>> cells_;
};

/// Largest absolute element-wise difference; grids must have equal shape.
template <typename T>
double max_abs_diff(const Grid<T>& a, const Grid<T>& b) {
  DAS_REQUIRE(a.width() == b.width() && a.height() == b.height());
  double worst = 0.0;
  for (std::uint32_t y = 0; y < a.height(); ++y) {
    const T* ra = a.row(y);
    const T* rb = b.row(y);
    for (std::uint32_t x = 0; x < a.width(); ++x) {
      const double d = std::fabs(static_cast<double>(ra[x]) -
                                 static_cast<double>(rb[x]));
      if (d > worst) worst = d;
    }
  }
  return worst;
}

}  // namespace das::grid
