#include "grid/serialize.hpp"

#include <cstring>

namespace das::grid {

std::vector<std::byte> to_bytes(const Grid<float>& g) {
  std::vector<std::byte> out(serialized_size(g));
  if (!out.empty()) std::memcpy(out.data(), g.data(), out.size());
  return out;
}

Grid<float> from_bytes(const std::vector<std::byte>& bytes,
                       std::uint32_t width, std::uint32_t height) {
  DAS_REQUIRE(bytes.size() ==
              static_cast<std::size_t>(width) * height * sizeof(float));
  Grid<float> g(width, height);
  std::memcpy(g.data(), bytes.data(), bytes.size());
  return g;
}

}  // namespace das::grid
