// Synthetic medical-image-like rasters for the filter kernels
// (2-D Gaussian, median).
//
// Substitutes for the paper's medical imaging datasets: smooth anatomical
// "structures" (Gaussian blobs) over a background, with additive speckle
// noise — the signal shape a smoothing filter is meant to clean up.
#pragma once

#include <cstdint>

#include "grid/grid.hpp"
#include "simkit/random.hpp"

namespace das::grid {

struct ImageOptions {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  std::uint64_t seed = 7;
  std::uint32_t num_blobs = 12;
  double background = 100.0;
  double blob_intensity = 800.0;
  double noise_stddev = 25.0;
};

/// Blobs + Gaussian speckle noise.
[[nodiscard]] Grid<float> generate_image(const ImageOptions& options);

/// Impulse ("salt and pepper") corrupted constant field: the classic
/// median-filter test pattern with a known answer.
[[nodiscard]] Grid<float> generate_impulse_noise(std::uint32_t width,
                                                 std::uint32_t height,
                                                 float base_value,
                                                 float impulse_value,
                                                 double impulse_rate,
                                                 std::uint64_t seed);

}  // namespace das::grid
