#include "grid/dem.hpp"

#include <algorithm>
#include <cmath>

namespace das::grid {
namespace {

/// Smallest power-of-two-plus-one square that covers (width, height).
std::uint32_t covering_side(std::uint32_t width, std::uint32_t height) {
  std::uint32_t side = 2;
  while (side + 1 < std::max(width, height)) side *= 2;
  return side + 1;
}

void diamond_square(Grid<double>& g, sim::Rng& rng, double roughness,
                    double relief) {
  const std::uint32_t side = g.width();
  g.at(0, 0) = rng.uniform_real(-relief, relief);
  g.at(side - 1, 0) = rng.uniform_real(-relief, relief);
  g.at(0, side - 1) = rng.uniform_real(-relief, relief);
  g.at(side - 1, side - 1) = rng.uniform_real(-relief, relief);

  double amplitude = relief * roughness;
  for (std::uint32_t step = side - 1; step > 1; step /= 2) {
    const std::uint32_t half = step / 2;

    // Diamond phase: centre of each square.
    for (std::uint32_t y = half; y < side; y += step) {
      for (std::uint32_t x = half; x < side; x += step) {
        const double avg = (g.at(x - half, y - half) + g.at(x + half, y - half) +
                            g.at(x - half, y + half) +
                            g.at(x + half, y + half)) /
                           4.0;
        g.at(x, y) = avg + rng.uniform_real(-amplitude, amplitude);
      }
    }

    // Square phase: midpoint of each edge.
    for (std::uint32_t y = 0; y < side; y += half) {
      for (std::uint32_t x = (y / half) % 2 == 0 ? half : 0; x < side;
           x += step) {
        double sum = 0.0;
        int n = 0;
        if (x >= half) { sum += g.at(x - half, y); ++n; }
        if (x + half < side) { sum += g.at(x + half, y); ++n; }
        if (y >= half) { sum += g.at(x, y - half); ++n; }
        if (y + half < side) { sum += g.at(x, y + half); ++n; }
        g.at(x, y) = sum / n + rng.uniform_real(-amplitude, amplitude);
      }
    }

    amplitude *= roughness;
  }
}

}  // namespace

Grid<float> generate_dem(const DemOptions& options) {
  DAS_REQUIRE(options.width >= 2 && options.height >= 2);
  DAS_REQUIRE(options.roughness > 0.0 && options.roughness < 1.0);

  sim::Rng rng(options.seed);
  const std::uint32_t side = covering_side(options.width, options.height);
  Grid<double> fractal(side, side, 0.0);
  diamond_square(fractal, rng, options.roughness, options.relief);

  Grid<float> out(options.width, options.height);
  for (std::uint32_t y = 0; y < options.height; ++y) {
    for (std::uint32_t x = 0; x < options.width; ++x) {
      const double ramp =
          options.ramp * (static_cast<double>(x) + static_cast<double>(y));
      out.at(x, y) = static_cast<float>(fractal.at(x, y) - ramp);
    }
  }
  return out;
}

Grid<float> generate_ramp(std::uint32_t width, std::uint32_t height,
                          double slope_x, double slope_y) {
  Grid<float> out(width, height);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      out.at(x, y) = static_cast<float>(
          -(slope_x * static_cast<double>(x) +
            slope_y * static_cast<double>(y)));
    }
  }
  return out;
}

Grid<float> generate_cone(std::uint32_t width, std::uint32_t height) {
  Grid<float> out(width, height);
  const double cx = (static_cast<double>(width) - 1.0) / 2.0;
  const double cy = (static_cast<double>(height) - 1.0) / 2.0;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      out.at(x, y) = static_cast<float>(std::sqrt(dx * dx + dy * dy));
    }
  }
  return out;
}

}  // namespace das::grid
