#include "grid/image.hpp"

#include <cmath>

namespace das::grid {

Grid<float> generate_image(const ImageOptions& options) {
  DAS_REQUIRE(options.width > 0 && options.height > 0);
  sim::Rng rng(options.seed);

  struct Blob {
    double x, y, sigma, intensity;
  };
  std::vector<Blob> blobs;
  blobs.reserve(options.num_blobs);
  const double min_side = std::min(options.width, options.height);
  for (std::uint32_t i = 0; i < options.num_blobs; ++i) {
    blobs.push_back(Blob{
        rng.uniform_real(0.0, static_cast<double>(options.width)),
        rng.uniform_real(0.0, static_cast<double>(options.height)),
        rng.uniform_real(min_side / 40.0, min_side / 8.0),
        rng.uniform_real(0.3, 1.0) * options.blob_intensity,
    });
  }

  Grid<float> out(options.width, options.height);
  for (std::uint32_t y = 0; y < options.height; ++y) {
    for (std::uint32_t x = 0; x < options.width; ++x) {
      double v = options.background;
      for (const Blob& b : blobs) {
        const double dx = static_cast<double>(x) - b.x;
        const double dy = static_cast<double>(y) - b.y;
        v += b.intensity *
             std::exp(-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma));
      }
      v += rng.normal(0.0, options.noise_stddev);
      out.at(x, y) = static_cast<float>(v);
    }
  }
  return out;
}

Grid<float> generate_impulse_noise(std::uint32_t width, std::uint32_t height,
                                   float base_value, float impulse_value,
                                   double impulse_rate, std::uint64_t seed) {
  DAS_REQUIRE(impulse_rate >= 0.0 && impulse_rate <= 1.0);
  sim::Rng rng(seed);
  Grid<float> out(width, height, base_value);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng.bernoulli(impulse_rate)) out[i] = impulse_value;
  }
  return out;
}

}  // namespace das::grid
