// Synthetic digital elevation models (DEMs) for the terrain-analysis
// workloads (flow-routing, flow-accumulation).
//
// The paper ran on production GIS rasters we do not have; these generators
// produce terrain with the same structural properties the kernels exercise:
// continuous relief, distinct drainage basins, and no flat plateaus (every
// cell has a strictly lower neighbour unless it is a local minimum).
#pragma once

#include <cstdint>

#include "grid/grid.hpp"
#include "simkit/random.hpp"

namespace das::grid {

struct DemOptions {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  std::uint64_t seed = 42;
  /// Fractal roughness in (0, 1); higher = rougher terrain.
  double roughness = 0.55;
  /// Amplitude of the initial corner displacement.
  double relief = 1000.0;
  /// Slope of the deterministic ramp added to break ties/plateaus.
  double ramp = 1e-3;
};

/// Fractal terrain via diamond-square, plus a slight south-east ramp so that
/// steepest-descent directions are unique almost everywhere.
[[nodiscard]] Grid<float> generate_dem(const DemOptions& options);

/// An inclined plane falling toward the south-east corner: every interior
/// cell drains diagonally, giving a closed-form flow-accumulation answer
/// used by the kernel tests.
[[nodiscard]] Grid<float> generate_ramp(std::uint32_t width,
                                        std::uint32_t height,
                                        double slope_x = 1.0,
                                        double slope_y = 1.0);

/// A cone draining radially toward the centre cell.
[[nodiscard]] Grid<float> generate_cone(std::uint32_t width,
                                        std::uint32_t height);

}  // namespace das::grid
