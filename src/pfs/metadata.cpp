#include "pfs/metadata.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::pfs {

MetadataService::MetadataService(sim::Simulator& simulator,
                                 net::Network& network, Pfs& pfs,
                                 net::NodeId home)
    : sim_(simulator), net_(network), pfs_(pfs), home_(home) {
  DAS_REQUIRE(home < network.num_nodes());
}

void MetadataService::lookup(net::NodeId client, FileId file,
                             std::function<void(FileInfo)> cb) {
  DAS_REQUIRE(cb != nullptr);
  // Request to the service, then the (small) reply back to the client. The
  // layout is cloned when the reply is assembled, so a lookup racing a
  // redistribution returns whichever layout is current at service time.
  net_.send_control(
      client, home_, [this, client, file, cb = std::move(cb)]() mutable {
        ++lookups_;
        FileInfo info;
        info.meta = pfs_.meta(file);
        info.layout = pfs_.layout(file).clone();
        net_.send(net::Message{
            home_, client, sizeof(FileMeta), net::TrafficClass::kControl,
            [cb = std::move(cb), info = std::make_shared<FileInfo>(
                                     std::move(info))]() mutable {
              cb(std::move(*info));
            }});
      });
}

MetadataCache::MetadataCache(sim::Simulator& simulator,
                             MetadataService& service, net::NodeId client)
    : sim_(simulator), service_(service), client_(client) {}

void MetadataCache::lookup(FileId file, std::function<void(FileInfo)> cb) {
  if (known_.contains(file)) {
    ++hits_;
    // Local answer: re-resolve from the Pfs directly (the cache models the
    // avoided round trip; it does not snapshot stale layouts).
    sim_.schedule_after(
        0,
        [this, file, cb = std::move(cb)]() mutable {
          FileInfo info;
          info.meta = service_.file_system().meta(file);
          info.layout = service_.file_system().layout(file).clone();
          cb(std::move(info));
        },
        "meta.cache_hit");
    return;
  }
  ++misses_;
  service_.lookup(client_, file,
                  [this, file, cb = std::move(cb)](FileInfo info) mutable {
                    known_.insert(file);
                    cb(std::move(info));
                  });
}

void MetadataCache::invalidate(FileId file) { known_.erase(file); }

}  // namespace das::pfs
