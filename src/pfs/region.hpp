// Noncontiguous region lists: the request vocabulary for list I/O.
//
// A RegionList is an ordered set of disjoint (offset, length) runs over a
// file's byte space. Clients build one per read, the layout math splits it
// into per-strip runs, and servers coalesce per-strip runs into minimal
// disk extents. Two wire encodings exist: an explicit run table (16 bytes
// per run) and a strided descriptor (one 32-byte record for regular
// patterns like column scans and k-row subsampling). Wire costs are modeled
// here so every layer prices a request identically.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/file.hpp"

namespace das::pfs {

/// One contiguous byte run within a file.
struct Run {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const Run&, const Run&) = default;
};

/// How a region list travels on the wire. Strided lists describe the whole
/// pattern in one fixed-size descriptor; explicit lists pay per run.
enum class RegionEncoding : std::uint8_t { kExplicit, kStrided };

/// Modeled wire costs (bytes). The fixed part covers file id, op code and
/// run count; each explicit run costs an (offset, length) pair; a strided
/// descriptor carries (start, run_length, stride, count); each run in a
/// reply is framed with its length so the client can slice the packed
/// payload without echoing offsets.
inline constexpr std::uint64_t kListRequestFixedBytes = 24;
inline constexpr std::uint64_t kListRunDescriptorBytes = 16;
inline constexpr std::uint64_t kListStridedDescriptorBytes = 32;
inline constexpr std::uint64_t kListReplyRunBytes = 8;

/// Ordered, disjoint, ascending run list plus its wire encoding. Instances
/// are immutable after construction; both factories validate and normalize
/// (sort, reject zero-length and overlapping runs) so downstream layers can
/// assume a canonical shape.
class RegionList {
 public:
  RegionList() = default;

  /// Build from explicit runs. Sorts by offset; throws std::invalid_argument
  /// (quoting the offending numbers) on zero-length runs, offset+length
  /// overflow, or overlapping runs.
  static RegionList from_runs(std::vector<Run> runs);

  /// Build a strided pattern: `count` runs of `run_length` bytes, the i-th
  /// starting at start + i*stride. Negative strides are normalized to the
  /// ascending equivalent. |stride| must be >= run_length (else consecutive
  /// runs overlap), and no run may underflow below offset 0 or overflow
  /// uint64. Degenerate counts: count == 0 yields an empty list.
  static RegionList strided(std::uint64_t start, std::uint64_t run_length,
                            std::int64_t stride, std::uint64_t count);

  /// The sub-list covering runs [begin, end). Preserves the encoding class
  /// (a slice of a strided pattern is still strided).
  [[nodiscard]] RegionList subset(std::size_t begin, std::size_t end) const;

  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }
  [[nodiscard]] RegionEncoding encoding() const { return encoding_; }
  [[nodiscard]] bool empty() const { return runs_.empty(); }

  /// Total payload bytes across all runs.
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Modeled request-message size for `num_runs` runs under `encoding`.
  [[nodiscard]] static std::uint64_t request_bytes(RegionEncoding encoding,
                                                  std::size_t num_runs);

  /// Modeled per-run framing added to a reply payload.
  [[nodiscard]] static std::uint64_t reply_framing_bytes(std::size_t num_runs) {
    return kListReplyRunBytes * num_runs;
  }

 private:
  std::vector<Run> runs_;
  std::uint64_t total_bytes_ = 0;
  RegionEncoding encoding_ = RegionEncoding::kExplicit;
};

/// One run clipped to a single strip: what a server actually services.
struct StripRun {
  std::uint64_t strip = 0;
  std::uint64_t offset_in_strip = 0;
  std::uint64_t length = 0;

  friend bool operator==(const StripRun&, const StripRun&) = default;
};

/// Split a region list into per-strip runs, splitting any run that
/// straddles a strip boundary. Order-preserving (ascending offset). Throws
/// std::invalid_argument (with the exact numbers) if any run reaches past
/// the end of the file.
[[nodiscard]] std::vector<StripRun> split_by_strip(const FileMeta& meta,
                                                   const RegionList& list);

/// One contiguous disk extent produced by the server-side coalescer.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const Extent&, const Extent&) = default;
};

/// Merge adjacent and overlapping extents into the minimal sorted cover.
/// The result covers exactly the union of the inputs: every input byte is
/// covered, no byte outside the union is, and no two extents touch.
[[nodiscard]] std::vector<Extent> coalesce_runs(std::vector<Extent> extents);

}  // namespace das::pfs
