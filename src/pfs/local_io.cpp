#include "pfs/local_io.hpp"

#include <algorithm>

#include "simkit/assert.hpp"

namespace das::pfs {

LocalIo::LocalIo(const Pfs& pfs, ServerIndex server_index, FileId file,
                 std::uint64_t wanted_halo)
    : pfs_(pfs), server_(server_index), file_(file) {
  const FileMeta& meta = pfs.meta(file);
  const Layout& layout = pfs.layout(file);
  const std::uint64_t n = meta.num_strips();
  const ServerStore& store = pfs.server(server_index).store();

  const auto primaries = layout.primary_strips(server_index, n);
  for (std::size_t i = 0; i < primaries.size();) {
    LocalRun run;
    run.first_strip = primaries[i];
    std::size_t j = i;
    while (j + 1 < primaries.size() && primaries[j + 1] == primaries[j] + 1) {
      ++j;
    }
    run.last_strip = primaries[j];
    i = j + 1;

    // Classify each wanted halo strip: stored locally (replica) or missing.
    for (std::uint64_t h = 1; h <= wanted_halo; ++h) {
      if (run.first_strip >= h) {
        const std::uint64_t s = run.first_strip - h;
        if (store.has(file, s) && run.missing_pre_halo == 0) {
          ++run.local_pre_halo;
        } else {
          ++run.missing_pre_halo;
        }
      }
      if (run.last_strip + h < n) {
        const std::uint64_t s = run.last_strip + h;
        if (store.has(file, s) && run.missing_post_halo == 0) {
          ++run.local_post_halo;
        } else {
          ++run.missing_post_halo;
        }
      }
    }

    for (std::uint64_t s = run.first_strip; s <= run.last_strip; ++s) {
      local_bytes_ += meta.strip(s).length;
    }
    runs_.push_back(run);
  }
}

std::uint64_t LocalIo::total_missing_halo_strips() const {
  std::uint64_t total = 0;
  for (const LocalRun& r : runs_) {
    total += r.missing_pre_halo + r.missing_post_halo;
  }
  return total;
}

std::uint64_t LocalIo::run_buffer_offset(const LocalRun& run) const {
  const FileMeta& meta = pfs_.meta(file_);
  return meta.strip(run.first_strip - run.local_pre_halo).offset;
}

std::vector<std::byte> LocalIo::read_run(const LocalRun& run) const {
  const FileMeta& meta = pfs_.meta(file_);
  const ServerStore& store = pfs_.server(server_).store();

  const std::uint64_t lo = run.first_strip - run.local_pre_halo;
  const std::uint64_t hi = run.last_strip + run.local_post_halo;
  const std::uint64_t base = meta.strip(lo).offset;
  const StripRef last = meta.strip(hi);
  std::vector<std::byte> out(last.offset + last.length - base);

  for (std::uint64_t s = lo; s <= hi; ++s) {
    const StripRef ref = meta.strip(s);
    const auto bytes = store.bytes(file_, s);
    DAS_REQUIRE(bytes.size() == ref.length);
    std::copy(bytes.begin(), bytes.end(),
              out.begin() + static_cast<std::ptrdiff_t>(ref.offset - base));
  }
  return out;
}

}  // namespace das::pfs
