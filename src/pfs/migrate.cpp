#include "pfs/migrate.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "simkit/assert.hpp"
#include "telemetry/registry.hpp"

namespace das::pfs {

void LayoutMigrator::enroll(telemetry::Registry& registry) const {
  registry.enroll_counter("migrate.migrations", {}, migrations_);
  registry.enroll_counter("migrate.bytes_moved", {}, total_bytes_moved_);
}

void LayoutMigrator::migrate(FileId file, std::unique_ptr<Layout> target,
                             const MigrateOptions& options, DoneFn on_done) {
  DAS_REQUIRE(!busy_);
  DAS_REQUIRE(options.strips_per_round > 0);
  DAS_REQUIRE(options.tenant != net::kNoTenant &&
              "untagged transfers would bypass the fair queues");

  busy_ = true;
  file_ = file;
  options_ = options;
  on_done_ = std::move(on_done);
  stats_ = MigrationStats{};
  stats_.strips_total = pfs_.meta(file).num_strips();
  stats_.started_at = sim_.now();

  pfs_.begin_migration(file, std::move(target));
  start_round();
}

void LayoutMigrator::start_round() {
  const FileMeta& meta = pfs_.meta(file_);
  const std::uint64_t n = meta.num_strips();
  const Layout& target = pfs_.layout(file_);

  // Rounds whose strips are already in place commit immediately; loop
  // instead of recursing so a mostly-in-place file cannot grow the stack.
  for (;;) {
    const std::uint64_t frontier = pfs_.migrate_frontier(file_);
    round_end_ = std::min(frontier + options_.strips_per_round, n);
    ++stats_.rounds;
    issuing_ = true;

    for (std::uint64_t s = frontier; s < round_end_; ++s) {
      const StripRef ref = meta.strip(s);
      bool moved = false;
      for (const ServerIndex holder : target.holders(s, n)) {
        ServerStore& dst_store = pfs_.server(holder).store();
        if (dst_store.has(file_, s)) continue;  // already authoritative
        if (dst_store.readable(file_, s)) {
          // A retired leftover of an earlier migration: reinstate the local
          // copy instead of shipping it across the network again.
          dst_store.put(file_, s, ref.length, dst_store.buffer(file_, s));
          ++stats_.strips_reinstated;
          continue;
        }
        // Ship from the strip's current primary (still resolved under the
        // prior layout — the frontier has not passed this strip yet).
        const ServerIndex source = pfs_.read_primary(file_, s);
        DAS_REQUIRE(source != holder);
        PfsServer& src_server = pfs_.server(source);
        PfsServer& dst_server = pfs_.server(holder);

        moved = true;
        ++stats_.transfers;
        stats_.bytes_moved += ref.length;
        ++outstanding_;

        // Ordinary read-then-write traffic: source disk + both NICs are
        // charged, installed fair queues see the migration tenant, and the
        // destination write invalidates caches through the hub.
        src_server.serve_read(
            file_, s, 0, ref.length, dst_server.node(),
            net::TrafficClass::kServerServer,
            [this, &dst_server, ref](const StripBuffer& payload) {
              const sim::SimTime write_done =
                  dst_server.write_local(file_, ref, StripBuffer(payload));
              sim_.schedule_at(
                  write_done, [this]() { round_transfer_done(); },
                  "pfs.migrate_write");
            },
            options_.tenant);
      }
      if (moved) ++stats_.strips_moved;
    }

    issuing_ = false;
    if (outstanding_ > 0) return;  // finish_migration fires on the last landing

    pfs_.commit_migrated(file_, round_end_);
    if (round_end_ == n) {
      finish_migration();
      return;
    }
  }
}

void LayoutMigrator::round_transfer_done() {
  DAS_REQUIRE(outstanding_ > 0);
  --outstanding_;
  if (outstanding_ == 0 && !issuing_) {
    pfs_.commit_migrated(file_, round_end_);
    if (round_end_ == pfs_.meta(file_).num_strips()) {
      finish_migration();
    } else {
      start_round();
    }
  }
}

void LayoutMigrator::finish_migration() {
  pfs_.end_migration(file_);
  stats_.finished_at = sim_.now();
  ++migrations_;
  total_bytes_moved_ += stats_.bytes_moved;
  busy_ = false;
  if (on_done_) {
    // Move out first: the callback may start the next migration.
    DoneFn done = std::move(on_done_);
    on_done_ = nullptr;
    done(stats_);
  }
}

}  // namespace das::pfs
