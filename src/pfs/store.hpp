// Per-server strip storage.
//
// Holds the actual bytes of each strip a server stores (correctness mode)
// and assigns each strip a position on the server's disk (timing mode).
// Strips are placed on disk in the order they are created, so a server
// scanning its strips in ascending order streams sequentially — matching how
// a PFS server lays out stripe data in practice.
//
// The index is a per-file flat strip table (vector indexed by strip id,
// presized from FileMeta::num_strips() via reserve_file), so the hot
// has/buffer/disk_offset lookups are two array indexings instead of a
// red-black-tree walk over (FileId, strip) pairs. Payloads are shared
// StripBuffer handles: put() publishes a buffer, readers refcount it, and a
// replacement put() swaps the handle without copying bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pfs/file.hpp"
#include "pfs/strip_buffer.hpp"

namespace das::pfs {

class ServerStore {
 public:
  /// Presize the strip table of `file` (idempotent; called by the Pfs when
  /// the file is created). put() grows tables on demand for callers that
  /// use a bare store.
  void reserve_file(FileId file, std::uint64_t num_strips);

  /// Create-or-replace strip data. Assigns a disk position on first insert;
  /// an erased strip that is re-put with its original length gets its old
  /// disk position back (offsets are stable across erase/re-put, so a
  /// re-layout round trip cannot silently defragment the disk model).
  /// `payload` may be empty in timing-only simulations; `length` is the
  /// strip's logical length either way.
  void put(FileId file, std::uint64_t strip, std::uint64_t length,
           StripBuffer payload);

  /// True if this server stores the strip.
  [[nodiscard]] bool has(FileId file, std::uint64_t strip) const;

  /// Shared handle onto the stored payload (empty in timing-only mode).
  /// The handle stays valid — and immutable — even if the strip is later
  /// replaced or erased. Requires has().
  [[nodiscard]] const StripBuffer& buffer(FileId file,
                                          std::uint64_t strip) const;

  /// The stored bytes as a view (empty in timing-only mode). Requires
  /// has(). Valid until the strip is replaced or erased.
  [[nodiscard]] std::span<const std::byte> bytes(FileId file,
                                                 std::uint64_t strip) const;

  /// Disk byte position of the strip on this server. Requires has().
  [[nodiscard]] std::uint64_t disk_offset(FileId file,
                                          std::uint64_t strip) const;

  /// Logical length of the stored strip. Requires has().
  [[nodiscard]] std::uint64_t length(FileId file, std::uint64_t strip) const;

  /// Remove a strip (used when re-laying out a file). Requires has().
  void erase(FileId file, std::uint64_t strip);

  /// Total logical bytes stored (capacity accounting).
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Number of strips stored.
  [[nodiscard]] std::size_t strip_count() const { return strip_count_; }

 private:
  struct StripSlot {
    std::uint64_t length = 0;
    std::uint64_t disk_offset = 0;
    StripBuffer payload;
    bool present = false;
    bool placed = false;  // had a disk offset in an earlier life
  };

  [[nodiscard]] const StripSlot& find(FileId file, std::uint64_t strip) const;
  [[nodiscard]] StripSlot& slot_for(FileId file, std::uint64_t strip);

  std::vector<std::vector<StripSlot>> files_;  // [file][strip]
  std::uint64_t next_disk_offset_ = 0;
  std::uint64_t stored_bytes_ = 0;
  std::size_t strip_count_ = 0;
};

}  // namespace das::pfs
