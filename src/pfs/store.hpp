// Per-server strip storage.
//
// Holds the actual bytes of each strip a server stores (correctness mode)
// and assigns each strip a position on the server's disk (timing mode).
// Strips are placed on disk in the order they are created, so a server
// scanning its strips in ascending order streams sequentially — matching how
// a PFS server lays out stripe data in practice.
//
// The index is a per-file flat strip table (vector indexed by strip id,
// presized from FileMeta::num_strips() via reserve_file), so the hot
// has/buffer/disk_offset lookups are two array indexings instead of a
// red-black-tree walk over (FileId, strip) pairs. Payloads are shared
// StripBuffer handles: put() publishes a buffer, readers refcount it, and a
// replacement put() swaps the handle without copying bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pfs/file.hpp"
#include "pfs/strip_buffer.hpp"

namespace das::pfs {

class ServerStore {
 public:
  /// Presize the strip table of `file` (idempotent; called by the Pfs when
  /// the file is created). put() grows tables on demand for callers that
  /// use a bare store.
  void reserve_file(FileId file, std::uint64_t num_strips);

  /// Create-or-replace strip data. Assigns a disk position on first insert;
  /// an erased strip that is re-put with its original length gets its old
  /// disk position back (offsets are stable across erase/re-put, so a
  /// re-layout round trip cannot silently defragment the disk model).
  /// `payload` may be empty in timing-only simulations; `length` is the
  /// strip's logical length either way.
  void put(FileId file, std::uint64_t strip, std::uint64_t length,
           StripBuffer payload);

  /// True if this server authoritatively stores the strip (retired copies
  /// excluded — this is the post-migration truth planners and executors
  /// place work against).
  [[nodiscard]] bool has(FileId file, std::uint64_t strip) const;

  /// True if this server can still serve the strip's bytes: authoritative
  /// OR retired by a layout migration. In-flight reads that resolved their
  /// holder under the old layout land here after the frontier has passed,
  /// so retired copies stay readable until the slot is erased or re-put.
  [[nodiscard]] bool readable(FileId file, std::uint64_t strip) const;

  /// Demote an authoritative copy to a read-only leftover of a migration:
  /// drops it from stored_bytes()/strip_count() (and from has()) but keeps
  /// the payload readable. A later put() with the same length reinstates
  /// it. Requires has(). Costs no memory of its own — the payload is a
  /// shared StripBuffer view.
  void retire(FileId file, std::uint64_t strip);

  /// Shared handle onto the stored payload (empty in timing-only mode).
  /// The handle stays valid — and immutable — even if the strip is later
  /// replaced or erased. Requires readable().
  [[nodiscard]] const StripBuffer& buffer(FileId file,
                                          std::uint64_t strip) const;

  /// The stored bytes as a view (empty in timing-only mode). Requires
  /// readable(). Valid until the strip is replaced or erased.
  [[nodiscard]] std::span<const std::byte> bytes(FileId file,
                                                 std::uint64_t strip) const;

  /// Disk byte position of the strip on this server. Requires readable().
  [[nodiscard]] std::uint64_t disk_offset(FileId file,
                                          std::uint64_t strip) const;

  /// Logical length of the stored strip. Requires readable().
  [[nodiscard]] std::uint64_t length(FileId file, std::uint64_t strip) const;

  /// Remove a strip (used when re-laying out a file). Requires readable().
  void erase(FileId file, std::uint64_t strip);

  /// Total logical bytes stored (capacity accounting).
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Number of strips stored.
  [[nodiscard]] std::size_t strip_count() const { return strip_count_; }

 private:
  struct StripSlot {
    std::uint64_t length = 0;
    std::uint64_t disk_offset = 0;
    StripBuffer payload;
    bool present = false;
    bool placed = false;   // had a disk offset in an earlier life
    bool retired = false;  // migration leftover: readable, not authoritative
  };

  [[nodiscard]] const StripSlot& find(FileId file, std::uint64_t strip) const;
  [[nodiscard]] StripSlot& slot_for(FileId file, std::uint64_t strip);

  std::vector<std::vector<StripSlot>> files_;  // [file][strip]
  std::uint64_t next_disk_offset_ = 0;
  std::uint64_t stored_bytes_ = 0;
  std::size_t strip_count_ = 0;
};

}  // namespace das::pfs
