// Per-server strip storage.
//
// Holds the actual bytes of each strip a server stores (correctness mode)
// and assigns each strip a position on the server's disk (timing mode).
// Strips are placed on disk in the order they are created, so a server
// scanning its strips in ascending order streams sequentially — matching how
// a PFS server lays out stripe data in practice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "pfs/file.hpp"

namespace das::pfs {

class ServerStore {
 public:
  /// Create-or-replace strip data. Assigns a disk position on first insert.
  /// `bytes` may be empty in timing-only simulations; `length` is the strip's
  /// logical length either way.
  void put(FileId file, std::uint64_t strip, std::uint64_t length,
           std::vector<std::byte> bytes);

  /// True if this server stores the strip.
  [[nodiscard]] bool has(FileId file, std::uint64_t strip) const;

  /// The stored bytes (empty in timing-only mode). Requires has().
  [[nodiscard]] const std::vector<std::byte>& bytes(FileId file,
                                                    std::uint64_t strip) const;

  /// Disk byte position of the strip on this server. Requires has().
  [[nodiscard]] std::uint64_t disk_offset(FileId file,
                                          std::uint64_t strip) const;

  /// Logical length of the stored strip. Requires has().
  [[nodiscard]] std::uint64_t length(FileId file, std::uint64_t strip) const;

  /// Remove a strip (used when re-laying out a file). Requires has().
  void erase(FileId file, std::uint64_t strip);

  /// Total logical bytes stored (capacity accounting).
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }

  /// Number of strips stored.
  [[nodiscard]] std::size_t strip_count() const;

 private:
  struct StripData {
    std::uint64_t length = 0;
    std::uint64_t disk_offset = 0;
    std::vector<std::byte> bytes;
  };

  [[nodiscard]] const StripData& find(FileId file, std::uint64_t strip) const;

  std::map<std::pair<FileId, std::uint64_t>, StripData> strips_;
  std::uint64_t next_disk_offset_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace das::pfs
