// Parallel file system facade.
//
// Owns the storage servers and the catalog of files (metadata + layout),
// loads file contents onto servers according to a layout, and implements
// layout reconfiguration ("Reconfig Parallel File System" in the paper's
// Fig. 3 workflow) with full accounting of the bytes it moves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/strip_cache.hpp"
#include "net/network.hpp"
#include "pfs/file.hpp"
#include "pfs/layout.hpp"
#include "pfs/prefetch.hpp"
#include "pfs/server.hpp"
#include "simkit/simulator.hpp"
#include "storage/disk.hpp"

namespace das::pfs {

class Pfs {
 public:
  /// `server_nodes[i]` is the cluster node hosting server index i; every
  /// server gets the same disk.
  Pfs(sim::Simulator& simulator, net::Network& network,
      std::vector<net::NodeId> server_nodes,
      const storage::DiskConfig& disk_config);

  /// Heterogeneous variant: `disk_configs[i]` equips server index i
  /// (straggler studies). Sizes must match.
  Pfs(sim::Simulator& simulator, net::Network& network,
      std::vector<net::NodeId> server_nodes,
      std::vector<storage::DiskConfig> disk_configs);

  Pfs(const Pfs&) = delete;
  Pfs& operator=(const Pfs&) = delete;

  [[nodiscard]] std::uint32_t num_servers() const {
    return static_cast<std::uint32_t>(servers_.size());
  }
  [[nodiscard]] PfsServer& server(ServerIndex index);
  [[nodiscard]] const PfsServer& server(ServerIndex index) const;
  [[nodiscard]] net::NodeId server_node(ServerIndex index) const;

  /// Returned by server_of_node for nodes that host no server.
  static constexpr ServerIndex kInvalidServer = UINT32_MAX;

  /// Server index hosting `node`, or kInvalidServer.
  [[nodiscard]] ServerIndex server_of_node(net::NodeId node) const;

  /// Register a file and place its strips per `layout`. When `data` is
  /// non-null it must be exactly meta.size_bytes long and each holder
  /// receives a real copy of its strips; when null the placement is
  /// length-only (timing mode). Loading is instantaneous in simulated time
  /// (the experiments start from data at rest, as in the paper).
  FileId create_file(FileMeta meta, std::unique_ptr<Layout> layout,
                     const std::vector<std::byte>* data = nullptr);

  [[nodiscard]] const FileMeta& meta(FileId file) const;

  /// The file's authoritative layout. While an online migration is in
  /// progress this is already the *target* layout (placement decisions and
  /// capacity planning see where the file is going); per-strip read
  /// resolution must go through read_layout()/read_primary()/read_holders()
  /// instead, which honour the migration frontier.
  [[nodiscard]] const Layout& layout(FileId file) const;

  /// The layout strip `strip` of `file` is currently *served* under: the
  /// prior layout while an in-progress migration's frontier has not yet
  /// passed the strip, the authoritative layout otherwise.
  [[nodiscard]] const Layout& read_layout(FileId file,
                                          std::uint64_t strip) const;

  /// Primary holder of `strip` under read_layout(). Guaranteed to be able
  /// to serve the strip's bytes right now.
  [[nodiscard]] ServerIndex read_primary(FileId file,
                                         std::uint64_t strip) const;

  /// Holder set of `strip` under read_layout(), primary first.
  [[nodiscard]] std::vector<ServerIndex> read_holders(
      FileId file, std::uint64_t strip) const;

  /// True while an online migration of `file` is in progress.
  [[nodiscard]] bool migrating(FileId file) const;

  /// Strips below this index resolve under the authoritative layout; at or
  /// above it, under the prior layout. Only meaningful while migrating().
  [[nodiscard]] std::uint64_t migrate_frontier(FileId file) const;

  /// Current layout generation of `file` (see FileMeta::layout_epoch).
  [[nodiscard]] std::uint32_t layout_epoch(FileId file) const;

  // --- Online migration protocol, driven by pfs::LayoutMigrator. ---
  //
  // begin_migration() installs `target` as the authoritative layout and
  // keeps the old one as the read-resolution layout for strips the frontier
  // has not passed. The migrator then copies strips group by group (plain
  // serve_read/write_local traffic) and calls commit_migrated() as each
  // contiguous prefix lands: cached copies of the committed strips are
  // invalidated and copies held only under the prior layout are *retired* —
  // readable for reads already in flight, but no longer authoritative.
  // end_migration() (frontier == num_strips) drops the prior layout into a
  // graveyard (references captured before the migration stay valid for the
  // run's lifetime) and bumps the file's layout epoch through every cache.

  /// Requires no migration in progress. No data moves here.
  void begin_migration(FileId file, std::unique_ptr<Layout> target);

  /// Advance the frontier to `new_frontier` (monotonic): strips in
  /// [frontier, new_frontier) are now served under the target layout.
  /// Requires the target copies of those strips to be in place.
  void commit_migrated(FileId file, std::uint64_t new_frontier);

  /// Requires the frontier to have reached num_strips.
  void end_migration(FileId file);

  /// Replace the layout of `file` offline, physically moving/copying strips
  /// between servers over the network (server-server traffic + disk on both
  /// ends); reads issued while it runs race with the swap, so callers
  /// quiesce the file first (the online path above is the alternative).
  /// Requires no migration in progress. `on_complete` fires when every
  /// transfer has finished. Returns the number of bytes that had to move.
  std::uint64_t redistribute(FileId file, std::unique_ptr<Layout> new_layout,
                             std::function<void()> on_complete);

  /// Reassemble the full contents of `file` from primary strips
  /// (correctness mode; requires data-bearing strips).
  [[nodiscard]] std::vector<std::byte> gather_bytes(FileId file) const;

  /// Total bytes stored across all servers (capacity accounting, includes
  /// replicas).
  [[nodiscard]] std::uint64_t total_stored_bytes() const;

  /// Equip every server with a remote-strip cache of `config` and register
  /// the caches on one invalidation hub. No-op when the config is inactive
  /// (disabled or zero capacity), so byte flows stay bit-identical to the
  /// uncached system. Call at most once, before any traffic.
  void enable_strip_caches(const cache::CacheConfig& config);

  [[nodiscard]] bool caching_enabled() const { return !caches_.empty(); }

  /// Aggregate cache statistics over every server (zeroes when off).
  [[nodiscard]] cache::CacheStats cache_stats() const;

  /// Equip every server with a halo prefetcher of `config`, registered on
  /// the invalidation hub so in-flight fetches of a written/redistributed
  /// strip are dropped on landing. No-op when the config is inactive;
  /// requires active strip caches otherwise (prefetched strips land there).
  /// Call at most once, before any traffic.
  void enable_prefetch(const PrefetchConfig& config);

  [[nodiscard]] bool prefetch_enabled() const { return prefetch_enabled_; }

  /// Aggregate prefetch statistics over every server (zeroes when off).
  [[nodiscard]] PrefetchStats prefetch_stats() const;

 private:
  struct FileEntry {
    FileMeta meta;
    std::unique_ptr<Layout> layout;
    /// Read-resolution layout for strips at or past the migration frontier;
    /// null when no migration is in progress.
    std::unique_ptr<Layout> prior_layout;
    /// First strip still served under prior_layout.
    std::uint64_t migrate_frontier = 0;
    bool migrating = false;
    /// Layouts replaced by completed migrations. Kept alive so `const
    /// Layout&` references captured before a migration never dangle.
    std::vector<std::unique_ptr<Layout>> retired_layouts;
  };

  sim::Simulator& sim_;
  net::Network& net_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<std::unique_ptr<PfsServer>> servers_;
  std::vector<FileEntry> files_;
  std::vector<std::unique_ptr<cache::StripCache>> caches_;
  cache::InvalidationHub cache_hub_;
  bool prefetch_enabled_ = false;
};

}  // namespace das::pfs
