// Parallel-file-system client (compute-node side).
//
// Implements the "normal I/O" path of the paper's architecture (Fig. 2):
// a compute node reads or writes a byte range, and the client fans the
// request out to every server holding an affected strip, gathering the
// responses. Active-storage requests bypass this path (they are handled by
// the Active Storage Client in src/core).
#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"

namespace das::pfs {

class PfsClient {
 public:
  /// `node` is the compute node this client runs on.
  PfsClient(sim::Simulator& simulator, net::Network& network, Pfs& pfs,
            net::NodeId node);

  [[nodiscard]] net::NodeId node() const { return node_; }

  /// Read [offset, offset+length) of `file`. `on_strip` (optional) runs at
  /// this node as each strip's payload arrives; `on_complete` runs once all
  /// data has arrived. Partial strips at the range edges are read exactly
  /// (no over-read).
  void read_range(
      FileId file, std::uint64_t offset, std::uint64_t length,
      std::function<void()> on_complete,
      std::function<void(StripRef, std::vector<std::byte>)> on_strip = {});

  /// Write [offset, offset+data.size()) of `file`. Writes must be
  /// strip-aligned (offset and length multiples of the strip size, except
  /// the final strip). Every holder of a strip (primary + replicas)
  /// receives the update. `data` may be empty in timing-only mode, in which
  /// case `length` gives the logical size.
  void write_range(FileId file, std::uint64_t offset, std::uint64_t length,
                   const std::vector<std::byte>& data,
                   std::function<void()> on_complete);

  /// Total payload bytes this client has received / sent.
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  Pfs& pfs_;
  net::NodeId node_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace das::pfs
