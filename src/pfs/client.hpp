// Parallel-file-system client (compute-node side).
//
// Implements the "normal I/O" path of the paper's architecture (Fig. 2):
// a compute node reads or writes a byte range, and the client fans the
// request out to every server holding an affected strip, gathering the
// responses. Active-storage requests bypass this path (they are handled by
// the Active Storage Client in src/core).
//
// Hot-path plumbing: each in-flight range is a pooled RangeOp record, so
// the request/response callbacks capture a handful of words (always inline
// in the event node) and a write's payload is sliced into shared
// StripBuffer views — one payload block for the whole range, zero copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "pfs/pfs.hpp"
#include "pfs/region.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/inplace_fn.hpp"
#include "simkit/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::pfs {

/// Range-completion callback.
using RangeDoneFn = sim::InplaceFn<void()>;
/// Per-strip delivery callback: the StripRef describes the delivered slice
/// (index, byte offset in the file, length); the buffer is a shared view of
/// the server's stored bytes (empty in timing-only mode).
using RangeStripFn = sim::InplaceFn<void(StripRef, const StripBuffer&)>;
/// Per-run delivery callback for read_regions: the Run names the delivered
/// file-space bytes; the buffer is a zero-copy view into the server's
/// packed reply payload (empty in timing-only mode).
using RegionRunFn = sim::InplaceFn<void(Run, const StripBuffer&)>;

class PfsClient {
 public:
  /// `node` is the compute node this client runs on.
  PfsClient(sim::Simulator& simulator, net::Network& network, Pfs& pfs,
            net::NodeId node);

  PfsClient(const PfsClient&) = delete;
  PfsClient& operator=(const PfsClient&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  /// Read [offset, offset+length) of `file`. `on_strip` (optional) runs at
  /// this node as each strip's payload arrives; `on_complete` runs once all
  /// data has arrived. Partial strips at the range edges are read exactly
  /// (no over-read).
  void read_range(FileId file, std::uint64_t offset, std::uint64_t length,
                  RangeDoneFn on_complete, RangeStripFn on_strip = {});

  /// Scatter-gather list read: fetch exactly the runs of `regions` (see
  /// pfs/region.hpp). The layout math splits the list per strip, groups the
  /// strip-runs by holding server, and sends ONE request message per server
  /// whose wire size is the modeled list header (fixed part + run or
  /// strided descriptors) — contrast read_range's one zero-byte request per
  /// strip. Each server coalesces its runs and replies with one packed
  /// message (payload + per-run framing); wire and disk bytes reflect only
  /// the runs, never the enclosing strips. `on_run` (optional) fires per
  /// run in file order within each server batch with a view into the packed
  /// payload; `on_complete` runs when every batch has arrived. An empty
  /// list completes synchronously without touching the network.
  void read_regions(FileId file, const RegionList& regions,
                    RangeDoneFn on_complete, RegionRunFn on_run = {});

  /// Write [offset, offset+length) of `file`. Writes must be strip-aligned
  /// (offset and length multiples of the strip size, except the final
  /// strip). Every holder of a strip (primary + replicas) receives the
  /// update as a shared view of `data`. `data` may be empty in timing-only
  /// mode, in which case `length` gives the logical size.
  void write_range(FileId file, std::uint64_t offset, std::uint64_t length,
                   StripBuffer data, RangeDoneFn on_complete);

  /// Convenience for callers holding a plain byte vector: copies `data`
  /// into a pooled StripBuffer once, then writes as above.
  void write_range(FileId file, std::uint64_t offset, std::uint64_t length,
                   const std::vector<std::byte>& data,
                   RangeDoneFn on_complete);

  /// Total payload bytes this client has received / sent.
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

  /// Enroll this client's byte counters, labelled with its node.
  void enroll(telemetry::Registry& registry) const;

 private:
  /// One in-flight read_range/write_range: completion state and (for
  /// writes) the whole-range payload the per-strip views slice. Pooled so
  /// the per-strip callbacks capture only {this, op, strip geometry}.
  struct RangeOp {
    FileId file{};
    std::uint64_t base_offset = 0;
    StripBuffer data;  // write payload; empty for reads / timing mode
    std::uint64_t outstanding = 0;
    bool issuing = false;
    RangeDoneFn on_complete;
    RangeStripFn on_strip;
    std::uint64_t span = 0;  // causal span for the whole range; 0 untracked
  };

  /// One server's share of an in-flight read_regions: the strip-runs it
  /// serves (kept client-side to slice the packed reply) and their payload.
  struct ListBatch {
    ServerIndex server = 0;
    std::uint64_t payload = 0;
    std::vector<StripRun> runs;
  };

  /// One in-flight read_regions (pooled like RangeOp; the batch vectors
  /// keep their capacity across recycles).
  struct ListOp {
    FileId file{};
    std::uint64_t strip_size = 0;
    std::uint64_t outstanding = 0;
    RangeDoneFn on_complete;
    RegionRunFn on_run;
    std::uint64_t span = 0;
    std::vector<ListBatch> batches;
  };

  [[nodiscard]] RangeOp* acquire_range_op();
  void release_range_op(RangeOp* op);
  [[nodiscard]] ListOp* acquire_list_op();
  void release_list_op(ListOp* op);
  void finish_list_op(ListOp* op);
  /// Slice batch `b`'s packed payload into per-run views and deliver them.
  void deliver_list_batch(ListOp* op, std::size_t b,
                          const StripBuffer& payload);
  /// Run the op's completion (if any) after recycling the record, so the
  /// callback may start a new range without growing the pool.
  void finish_range_op(RangeOp* op);
  void write_ack(RangeOp* op);

  sim::Simulator& sim_;
  net::Network& net_;
  Pfs& pfs_;
  net::NodeId node_;
  telemetry::Counter bytes_read_;
  telemetry::Counter bytes_written_;
  std::vector<std::unique_ptr<RangeOp>> range_ops_;
  std::vector<RangeOp*> free_range_ops_;
  std::vector<std::unique_ptr<ListOp>> list_ops_;
  std::vector<ListOp*> free_list_ops_;
};

}  // namespace das::pfs
