// Metadata service.
//
// Parallel file systems resolve a file's striping through a metadata server
// before data flows; the paper's Fig. 3 workflow begins with "Get file
// distribution information". This component models that step: it lives on
// one storage node, answers layout queries over the network (one control
// round trip), and lets clients cache the answer — so a job pays the
// metadata latency once, not per strip.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "pfs/pfs.hpp"

namespace das::pfs {

/// The answer to a metadata query.
struct FileInfo {
  FileMeta meta;
  std::unique_ptr<Layout> layout;
};

class MetadataService {
 public:
  /// `home` is the node hosting the service (conventionally server 0).
  MetadataService(sim::Simulator& simulator, net::Network& network, Pfs& pfs,
                  net::NodeId home);

  [[nodiscard]] net::NodeId home() const { return home_; }

  /// Resolve `file` for a caller at `client`: request travels to the
  /// service, the reply (metadata + layout clone) travels back, then `cb`
  /// runs at the client. Queries served over the simulated network.
  void lookup(net::NodeId client, FileId file,
              std::function<void(FileInfo)> cb);

  /// Number of lookups served (cache-effectiveness accounting).
  [[nodiscard]] std::uint64_t lookups_served() const { return lookups_; }

  /// The file system this service fronts.
  [[nodiscard]] Pfs& file_system() { return pfs_; }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  Pfs& pfs_;
  net::NodeId home_;
  std::uint64_t lookups_ = 0;
};

/// Client-side metadata cache: the first lookup per file pays the round
/// trip; repeats answer locally (after a negligible in-memory delay).
class MetadataCache {
 public:
  MetadataCache(sim::Simulator& simulator, MetadataService& service,
                net::NodeId client);

  /// As MetadataService::lookup, but served from cache when possible.
  void lookup(FileId file, std::function<void(FileInfo)> cb);

  /// Drop a cached entry (e.g. after a redistribution invalidates it).
  void invalidate(FileId file);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  sim::Simulator& sim_;
  MetadataService& service_;
  net::NodeId client_;
  std::set<FileId> known_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace das::pfs
