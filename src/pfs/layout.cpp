#include "pfs/layout.hpp"

#include <algorithm>

#include "simkit/assert.hpp"

namespace das::pfs {

std::vector<ServerIndex> Layout::replicas(std::uint64_t /*strip*/,
                                          std::uint64_t /*num_strips*/) const {
  return {};
}

std::vector<ServerIndex> Layout::holders(std::uint64_t strip,
                                         std::uint64_t num_strips) const {
  std::vector<ServerIndex> out;
  out.push_back(primary(strip));
  for (const ServerIndex s : replicas(strip, num_strips)) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

bool Layout::holds(ServerIndex server, std::uint64_t strip,
                   std::uint64_t num_strips) const {
  if (primary(strip) == server) return true;
  const auto reps = replicas(strip, num_strips);
  return std::find(reps.begin(), reps.end(), server) != reps.end();
}

std::vector<std::uint64_t> Layout::primary_strips(
    ServerIndex server, std::uint64_t num_strips) const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = 0; s < num_strips; ++s) {
    if (primary(s) == server) out.push_back(s);
  }
  return out;
}

std::vector<std::uint64_t> Layout::local_strips(
    ServerIndex server, std::uint64_t num_strips) const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = 0; s < num_strips; ++s) {
    if (holds(server, s, num_strips)) out.push_back(s);
  }
  return out;
}

std::uint64_t Layout::stored_bytes(ServerIndex server,
                                   const FileMeta& meta) const {
  std::uint64_t total = 0;
  const std::uint64_t n = meta.num_strips();
  for (const std::uint64_t s : local_strips(server, n)) {
    total += meta.strip(s).length;
  }
  return total;
}

RoundRobinLayout::RoundRobinLayout(std::uint32_t num_servers)
    : d_(num_servers) {
  DAS_REQUIRE(num_servers > 0);
}

ServerIndex RoundRobinLayout::primary(std::uint64_t strip) const {
  return static_cast<ServerIndex>(strip % d_);
}

std::string RoundRobinLayout::name() const {
  return "round-robin(D=" + std::to_string(d_) + ")";
}

std::unique_ptr<Layout> RoundRobinLayout::clone() const {
  return std::make_unique<RoundRobinLayout>(*this);
}

ReplicatedRoundRobinLayout::ReplicatedRoundRobinLayout(
    std::uint32_t num_servers, std::uint32_t copies)
    : d_(num_servers), copies_(std::max(1u, std::min(copies, num_servers))) {
  DAS_REQUIRE(num_servers > 0);
}

ServerIndex ReplicatedRoundRobinLayout::primary(std::uint64_t strip) const {
  return static_cast<ServerIndex>(strip % d_);
}

std::vector<ServerIndex> ReplicatedRoundRobinLayout::replicas(
    std::uint64_t strip, std::uint64_t /*num_strips*/) const {
  std::vector<ServerIndex> out;
  out.reserve(copies_ - 1);
  for (std::uint32_t k = 1; k < copies_; ++k) {
    out.push_back(static_cast<ServerIndex>((strip + k) % d_));
  }
  return out;
}

std::string ReplicatedRoundRobinLayout::name() const {
  return "replicated-rr(D=" + std::to_string(d_) +
         ",copies=" + std::to_string(copies_) + ")";
}

std::unique_ptr<Layout> ReplicatedRoundRobinLayout::clone() const {
  return std::make_unique<ReplicatedRoundRobinLayout>(*this);
}

GroupedLayout::GroupedLayout(std::uint32_t num_servers,
                             std::uint64_t group_size)
    : d_(num_servers), r_(group_size) {
  DAS_REQUIRE(num_servers > 0);
  DAS_REQUIRE(group_size > 0);
}

ServerIndex GroupedLayout::primary(std::uint64_t strip) const {
  return static_cast<ServerIndex>((strip / r_) % d_);
}

std::string GroupedLayout::name() const {
  return "grouped(D=" + std::to_string(d_) + ",r=" + std::to_string(r_) + ")";
}

std::unique_ptr<Layout> GroupedLayout::clone() const {
  return std::make_unique<GroupedLayout>(*this);
}

DasReplicatedLayout::DasReplicatedLayout(std::uint32_t num_servers,
                                         std::uint64_t group_size,
                                         std::uint64_t halo)
    : GroupedLayout(num_servers, group_size), halo_(halo) {
  DAS_REQUIRE(halo >= 1);
  DAS_REQUIRE(2 * halo <= group_size);
}

std::vector<ServerIndex> DasReplicatedLayout::replicas(
    std::uint64_t strip, std::uint64_t num_strips) const {
  std::vector<ServerIndex> out;
  if (d_ == 1) return out;  // one server holds everything; copies are moot

  const std::uint64_t group = strip / r_;
  const std::uint64_t pos = strip % r_;
  const std::uint64_t last_group = (num_strips - 1) / r_;
  const ServerIndex home = primary(strip);

  // First strips of a group also live on the server that owns the previous
  // group (it needs them as the "next" halo of its own data).
  if (pos < halo_ && group > 0) {
    out.push_back(static_cast<ServerIndex>((home + d_ - 1) % d_));
  }
  // Last strips of a group also live on the next group's server.
  if (pos + halo_ >= r_ && group < last_group) {
    const auto next_server = static_cast<ServerIndex>((home + 1) % d_);
    if (std::find(out.begin(), out.end(), next_server) == out.end()) {
      out.push_back(next_server);
    }
  }
  return out;
}

std::string DasReplicatedLayout::name() const {
  return "das-replicated(D=" + std::to_string(d_) +
         ",r=" + std::to_string(r_) + ",halo=" + std::to_string(halo_) + ")";
}

std::unique_ptr<Layout> DasReplicatedLayout::clone() const {
  return std::make_unique<DasReplicatedLayout>(*this);
}

}  // namespace das::pfs
