#include "pfs/server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "pfs/prefetch.hpp"
#include "simkit/assert.hpp"
#include "telemetry/plane.hpp"

namespace das::pfs {

PfsServer::PfsServer(sim::Simulator& simulator, net::Network& network,
                     net::NodeId node,
                     const storage::DiskConfig& disk_config)
    : sim_(simulator), net_(network), node_(node), disk_(disk_config) {
  disk_.set_trace_node(node);
  disk_.set_tracer(&sim_.tracer());
}

PfsServer::~PfsServer() = default;

void PfsServer::attach_prefetcher(std::unique_ptr<HaloPrefetcher> prefetcher) {
  DAS_REQUIRE(prefetcher_ == nullptr);
  DAS_REQUIRE(cache_ != nullptr &&
              "prefetched strips land in the strip cache");
  prefetcher_ = std::move(prefetcher);
}

PfsServer::ReadOp* PfsServer::acquire_read_op() {
  if (free_read_ops_.empty()) {
    read_ops_.push_back(std::make_unique<ReadOp>());
    return read_ops_.back().get();
  }
  ReadOp* op = free_read_ops_.back();
  free_read_ops_.pop_back();
  return op;
}

void PfsServer::release_read_op(ReadOp* op) {
  op->payload.reset();
  op->handler.reset();
  free_read_ops_.push_back(op);
}

PfsServer::AckOp* PfsServer::acquire_ack_op() {
  if (free_ack_ops_.empty()) {
    ack_ops_.push_back(std::make_unique<AckOp>());
    return ack_ops_.back().get();
  }
  AckOp* op = free_ack_ops_.back();
  free_ack_ops_.pop_back();
  return op;
}

void PfsServer::release_ack_op(AckOp* op) {
  op->on_ack.reset();
  free_ack_ops_.push_back(op);
}

void PfsServer::serve_read(FileId file, std::uint64_t strip,
                           std::uint64_t offset_in_strip, std::uint64_t length,
                           net::NodeId requester, net::TrafficClass cls,
                           StripDataFn on_data, net::TenantId tenant,
                           std::uint64_t span) {
  ReadRequest request{file,      strip, offset_in_strip,    length,
                      requester, cls,   tenant,             std::move(on_data),
                      span,      {}};
  if (read_scheduler_ != nullptr && tenant != net::kNoTenant &&
      read_scheduler_->intercept_read(*this, request)) {
    return;
  }
  serve_read_now(std::move(request));
}

void PfsServer::serve_read_list(FileId file, std::vector<StripRun> runs,
                                net::NodeId requester, net::TrafficClass cls,
                                StripDataFn on_data, net::TenantId tenant,
                                std::uint64_t span) {
  DAS_REQUIRE(!runs.empty());
  std::uint64_t payload = 0;
  for (const StripRun& r : runs) payload += r.length;
  // `length` carries the total payload so fair-queue costing and byte
  // accounting see the real transfer size; `strip`/`offset_in_strip` are
  // nominal (the first run) — serve_list_now regroups per strip itself.
  ReadRequest request{file,
                      runs.front().strip,
                      runs.front().offset_in_strip,
                      payload,
                      requester,
                      cls,
                      tenant,
                      std::move(on_data),
                      span,
                      std::move(runs)};
  if (read_scheduler_ != nullptr && tenant != net::kNoTenant &&
      read_scheduler_->intercept_read(*this, request)) {
    return;
  }
  serve_read_now(std::move(request));
}

void PfsServer::serve_read_now(ReadRequest request) {
  if (!request.runs.empty()) {
    serve_list_now(std::move(request));
    return;
  }
  const FileId file = request.file;
  const std::uint64_t strip = request.strip;
  // readable(), not has(): a request that resolved this server as holder
  // under the pre-migration layout may arrive after the frontier passed the
  // strip, at which point the copy is retired but its bytes must still flow.
  DAS_REQUIRE(store_.readable(file, strip));
  DAS_REQUIRE(request.offset_in_strip + request.length <=
              store_.length(file, strip));

  ++remote_reads_served_;
  remote_bytes_served_ += request.length;

  const std::uint64_t disk_off = store_.disk_offset(file, strip);
  const sim::SimTime read_done = disk_.read(
      sim_.now(), disk_off + request.offset_in_strip, request.length);

  if (request.span != 0) {
    if (telemetry::Plane* plane = sim_.context().telemetry) {
      plane->spans().add(request.span, telemetry::Hop::kDisk,
                         read_done - sim_.now());
    }
  }

  // Slice a shared view of the payload now (a later put would swap in a new
  // payload block; this handle keeps the bytes the read observed). No copy.
  ReadOp* op = acquire_read_op();
  const StripBuffer& stored = store_.buffer(file, strip);
  if (!stored.empty()) {
    op->payload = stored.view(request.offset_in_strip, request.length);
  }
  op->handler = std::move(request.on_data);
  op->length = request.length;
  op->requester = request.requester;
  op->cls = request.cls;
  op->tenant = request.tenant;
  op->span = request.span;
  ship_read_op(op, read_done);
}

void PfsServer::serve_list_now(ReadRequest request) {
  const FileId file = request.file;

  ++remote_reads_served_;
  remote_bytes_served_ += request.length;
  ++list_requests_served_;
  list_runs_served_ += request.runs.size();

  // Coalesce and read per strip: runs arrive in ascending file order, so
  // same-strip runs are consecutive. Each strip's runs merge into minimal
  // disk extents; the disk serializes the extent reads, so the last
  // completion is when the whole gather is on the NIC side.
  sim::SimTime read_done = sim_.now();
  std::vector<Extent> extents;
  std::size_t i = 0;
  while (i < request.runs.size()) {
    const std::uint64_t strip = request.runs[i].strip;
    DAS_REQUIRE(store_.readable(file, strip));
    const std::uint64_t stored_len = store_.length(file, strip);
    extents.clear();
    for (; i < request.runs.size() && request.runs[i].strip == strip; ++i) {
      const StripRun& r = request.runs[i];
      DAS_REQUIRE(r.offset_in_strip + r.length <= stored_len);
      extents.push_back(Extent{r.offset_in_strip, r.length});
    }
    const std::vector<Extent> merged = coalesce_runs(std::move(extents));
    extents.clear();
    list_extents_read_ += merged.size();
    const std::uint64_t disk_off = store_.disk_offset(file, strip);
    for (const Extent& e : merged) {
      read_done = std::max(
          read_done, disk_.read(sim_.now(), disk_off + e.offset, e.length));
    }
  }

  if (request.span != 0) {
    if (telemetry::Plane* plane = sim_.context().telemetry) {
      plane->spans().add(request.span, telemetry::Hop::kDisk,
                         read_done - sim_.now());
    }
  }

  // Gather the run bytes into one pooled payload in request order (data
  // mode only). The client slices per-run views of this single buffer, so
  // the whole reply is one allocation end to end.
  ReadOp* op = acquire_read_op();
  if (request.length > 0 &&
      !store_.buffer(file, request.runs.front().strip).empty()) {
    StripBuffer gathered = StripBuffer::allocate(request.length);
    std::uint64_t at = 0;
    for (const StripRun& r : request.runs) {
      const StripBuffer& stored = store_.buffer(file, r.strip);
      DAS_REQUIRE(!stored.empty());
      std::memcpy(gathered.mutable_data() + at,
                  stored.data() + r.offset_in_strip, r.length);
      at += r.length;
    }
    op->payload = std::move(gathered);
  }
  op->handler = std::move(request.on_data);
  // The reply wire size is the gathered payload plus per-run framing — the
  // enclosing strips never travel.
  op->length = request.length + RegionList::reply_framing_bytes(
                                    request.runs.size());
  op->requester = request.requester;
  op->cls = request.cls;
  op->tenant = request.tenant;
  op->span = request.span;
  ship_read_op(op, read_done);
}

void PfsServer::ship_read_op(ReadOp* op, sim::SimTime read_done) {
  sim_.schedule_at(
      read_done,
      [this, op]() {
        if (op->handler) {
          net_.send(net::Message{node_, op->requester, op->length, op->cls,
                                 [this, op]() {
                                   op->handler(op->payload);
                                   release_read_op(op);
                                 },
                                 op->tenant, op->span});
        } else {
          // No receiver-side handler: same message on the wire, but no
          // delivery event is scheduled (Network::send skips empty
          // callbacks), exactly like the pre-buffer code path.
          net_.send(net::Message{node_, op->requester, op->length, op->cls,
                                 nullptr, op->tenant, op->span});
          release_read_op(op);
        }
      },
      "pfs.read_done");
}

void PfsServer::serve_write(FileId file, const StripRef& strip,
                            StripBuffer data, net::NodeId requester,
                            net::TrafficClass cls, net::DeliveryFn on_ack) {
  const sim::SimTime write_done = write_local(file, strip, std::move(data));
  AckOp* op = acquire_ack_op();
  op->on_ack = std::move(on_ack);
  op->requester = requester;
  op->cls = cls;
  sim_.schedule_at(
      write_done,
      [this, op]() {
        net_.send(net::Message{node_, op->requester, 0, op->cls,
                               std::move(op->on_ack)});
        release_ack_op(op);
      },
      "pfs.write_done");
}

void PfsServer::enroll(telemetry::Registry& registry) const {
  const telemetry::Labels labels{telemetry::label("server", node_)};
  registry.enroll_counter("pfs.remote_reads", labels, remote_reads_served_);
  registry.enroll_counter("pfs.remote_bytes", labels, remote_bytes_served_);
  registry.enroll_counter("pfs.list_requests", labels, list_requests_served_);
  registry.enroll_counter("pfs.list_runs", labels, list_runs_served_);
  registry.enroll_counter("pfs.list_extents", labels, list_extents_read_);
  registry.enroll_gauge("disk.bytes_read", labels, [this]() {
    return static_cast<double>(disk_.bytes_read());
  });
  registry.enroll_gauge("disk.busy_s", labels, [this]() {
    return sim::to_seconds(disk_.busy_time());
  });
  if (cache_ != nullptr) cache_->enroll(registry, node_);
  if (prefetcher_ != nullptr) {
    const PrefetchStats& stats = prefetcher_->stats();
    registry.enroll_counter("prefetch.issued", labels, &stats.issued);
    registry.enroll_counter("prefetch.issued_bytes", labels,
                            &stats.issued_bytes);
    registry.enroll_counter("prefetch.dropped_stale", labels,
                            &stats.dropped_stale);
  }
}

sim::SimTime PfsServer::read_local(FileId file, std::uint64_t strip) {
  DAS_REQUIRE(store_.readable(file, strip));
  return disk_.read(sim_.now(), store_.disk_offset(file, strip),
                    store_.length(file, strip));
}

sim::SimTime PfsServer::write_local(FileId file, const StripRef& strip,
                                    StripBuffer data) {
  if (hub_ != nullptr) hub_->invalidate(cache::CacheKey{file, strip.index});
  store_.put(file, strip.index, strip.length, std::move(data));
  return disk_.write(sim_.now(), store_.disk_offset(file, strip.index),
                     strip.length);
}

}  // namespace das::pfs
