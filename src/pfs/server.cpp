#include "pfs/server.hpp"

#include <utility>

#include "pfs/prefetch.hpp"
#include "simkit/assert.hpp"

namespace das::pfs {

PfsServer::PfsServer(sim::Simulator& simulator, net::Network& network,
                     net::NodeId node,
                     const storage::DiskConfig& disk_config)
    : sim_(simulator), net_(network), node_(node), disk_(disk_config) {
  disk_.set_trace_node(node);
  disk_.set_tracer(&sim_.tracer());
}

PfsServer::~PfsServer() = default;

void PfsServer::attach_prefetcher(std::unique_ptr<HaloPrefetcher> prefetcher) {
  DAS_REQUIRE(prefetcher_ == nullptr);
  DAS_REQUIRE(cache_ != nullptr &&
              "prefetched strips land in the strip cache");
  prefetcher_ = std::move(prefetcher);
}

void PfsServer::serve_read(
    FileId file, std::uint64_t strip, std::uint64_t offset_in_strip,
    std::uint64_t length, net::NodeId requester, net::TrafficClass cls,
    std::function<void(std::vector<std::byte>)> on_data) {
  DAS_REQUIRE(store_.has(file, strip));
  DAS_REQUIRE(offset_in_strip + length <= store_.length(file, strip));

  ++remote_reads_served_;
  remote_bytes_served_ += length;

  const std::uint64_t disk_off = store_.disk_offset(file, strip);
  const sim::SimTime read_done =
      disk_.read(sim_.now(), disk_off + offset_in_strip, length);

  // Slice out the payload now (store contents may change later).
  std::vector<std::byte> payload;
  const auto& stored = store_.bytes(file, strip);
  if (!stored.empty()) {
    payload.assign(stored.begin() + static_cast<std::ptrdiff_t>(offset_in_strip),
                   stored.begin() +
                       static_cast<std::ptrdiff_t>(offset_in_strip + length));
  }

  sim_.schedule_at(
      read_done,
      [this, length, requester, cls, payload = std::move(payload),
       on_data = std::move(on_data)]() mutable {
        net_.send(net::Message{
            node_, requester, length, cls,
            on_data ? std::function<void()>(
                          [payload = std::move(payload),
                           on_data = std::move(on_data)]() mutable {
                            on_data(std::move(payload));
                          })
                    : std::function<void()>()});
      },
      "pfs.read_done");
}

void PfsServer::serve_write(FileId file, const StripRef& strip,
                            std::vector<std::byte> data,
                            net::NodeId requester, net::TrafficClass cls,
                            std::function<void()> on_ack) {
  const sim::SimTime write_done = write_local(file, strip, std::move(data));
  sim_.schedule_at(
      write_done,
      [this, requester, cls, on_ack = std::move(on_ack)]() mutable {
        net_.send(net::Message{node_, requester, 0, cls, std::move(on_ack)});
      },
      "pfs.write_done");
}

sim::SimTime PfsServer::read_local(FileId file, std::uint64_t strip) {
  DAS_REQUIRE(store_.has(file, strip));
  return disk_.read(sim_.now(), store_.disk_offset(file, strip),
                    store_.length(file, strip));
}

sim::SimTime PfsServer::write_local(FileId file, const StripRef& strip,
                                    std::vector<std::byte> data) {
  if (hub_ != nullptr) hub_->invalidate(cache::CacheKey{file, strip.index});
  store_.put(file, strip.index, strip.length, std::move(data));
  return disk_.write(sim_.now(), store_.disk_offset(file, strip.index),
                     strip.length);
}

}  // namespace das::pfs
