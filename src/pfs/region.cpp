#include "pfs/region.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace das::pfs {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("RegionList: " + what);
}

}  // namespace

RegionList RegionList::from_runs(std::vector<Run> runs) {
  std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
    return a.offset < b.offset;
  });
  RegionList list;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    if (r.length == 0) {
      reject("zero-length run at offset " + std::to_string(r.offset) +
             " (run " + std::to_string(i) + " of " +
             std::to_string(runs.size()) + ")");
    }
    if (r.length > std::numeric_limits<std::uint64_t>::max() - r.offset) {
      reject("run at offset " + std::to_string(r.offset) + " with length " +
             std::to_string(r.length) + " overflows the byte space");
    }
    if (i > 0) {
      const Run& prev = runs[i - 1];
      if (r.offset < prev.offset + prev.length) {
        reject("run [" + std::to_string(r.offset) + ", " +
               std::to_string(r.offset + r.length) + ") overlaps run [" +
               std::to_string(prev.offset) + ", " +
               std::to_string(prev.offset + prev.length) + ")");
      }
    }
    list.total_bytes_ += r.length;
  }
  list.runs_ = std::move(runs);
  list.encoding_ = RegionEncoding::kExplicit;
  return list;
}

RegionList RegionList::strided(std::uint64_t start, std::uint64_t run_length,
                               std::int64_t stride, std::uint64_t count) {
  if (count == 0) return RegionList{};
  if (run_length == 0) {
    reject("strided pattern with zero run_length (start " +
           std::to_string(start) + ", count " + std::to_string(count) + ")");
  }
  const std::uint64_t abs_stride =
      stride < 0 ? static_cast<std::uint64_t>(-(stride + 1)) + 1
                 : static_cast<std::uint64_t>(stride);
  if (count > 1 && abs_stride < run_length) {
    reject("stride " + std::to_string(stride) + " smaller than run_length " +
           std::to_string(run_length) + ": consecutive runs overlap");
  }
  // Normalize a descending sweep to its ascending equivalent: the i-th run
  // of a negative-stride pattern starts at start - i*|stride|, so the whole
  // set is the ascending pattern anchored at the lowest start.
  std::uint64_t lo = start;
  if (stride < 0 && count > 1) {
    const std::uint64_t span = abs_stride * (count - 1);
    if (abs_stride != 0 && span / abs_stride != count - 1) {
      reject("stride " + std::to_string(stride) + " x count " +
             std::to_string(count) + " overflows the byte space");
    }
    if (span > start) {
      reject("negative stride " + std::to_string(stride) + " underflows: run " +
             std::to_string(count - 1) + " would start at " +
             std::to_string(start) + " - " + std::to_string(span));
    }
    lo = start - span;
  }
  if (count > 1 && abs_stride != 0) {
    const std::uint64_t span = abs_stride * (count - 1);
    if (span / abs_stride != count - 1 ||
        lo > std::numeric_limits<std::uint64_t>::max() - span) {
      reject("strided pattern (start " + std::to_string(lo) + ", stride " +
             std::to_string(abs_stride) + ", count " + std::to_string(count) +
             ") overflows the byte space");
    }
  }
  RegionList list;
  list.runs_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t off = lo + i * abs_stride;
    if (run_length > std::numeric_limits<std::uint64_t>::max() - off) {
      reject("strided run at offset " + std::to_string(off) + " with length " +
             std::to_string(run_length) + " overflows the byte space");
    }
    list.runs_.push_back(Run{off, run_length});
  }
  list.total_bytes_ = run_length * count;
  list.encoding_ = RegionEncoding::kStrided;
  return list;
}

RegionList RegionList::subset(std::size_t begin, std::size_t end) const {
  DAS_REQUIRE(begin <= end);
  DAS_REQUIRE(end <= runs_.size());
  RegionList list;
  list.runs_.assign(runs_.begin() + static_cast<std::ptrdiff_t>(begin),
                    runs_.begin() + static_cast<std::ptrdiff_t>(end));
  for (const Run& r : list.runs_) list.total_bytes_ += r.length;
  list.encoding_ = encoding_;
  return list;
}

std::uint64_t RegionList::request_bytes(RegionEncoding encoding,
                                        std::size_t num_runs) {
  if (num_runs == 0) return kListRequestFixedBytes;
  if (encoding == RegionEncoding::kStrided) {
    return kListRequestFixedBytes + kListStridedDescriptorBytes;
  }
  return kListRequestFixedBytes + kListRunDescriptorBytes * num_runs;
}

std::vector<StripRun> split_by_strip(const FileMeta& meta,
                                     const RegionList& list) {
  DAS_REQUIRE(meta.strip_size > 0);
  std::vector<StripRun> out;
  out.reserve(list.runs().size());
  for (const Run& r : list.runs()) {
    if (r.offset + r.length > meta.size_bytes) {
      throw std::invalid_argument(
          "RegionList: run [" + std::to_string(r.offset) + ", " +
          std::to_string(r.offset + r.length) + ") reaches past the end of " +
          meta.name + " (" + std::to_string(meta.size_bytes) + " bytes)");
    }
    std::uint64_t off = r.offset;
    std::uint64_t left = r.length;
    while (left > 0) {
      const std::uint64_t strip = off / meta.strip_size;
      const std::uint64_t within = off - strip * meta.strip_size;
      const std::uint64_t take = std::min(left, meta.strip_size - within);
      out.push_back(StripRun{strip, within, take});
      off += take;
      left -= take;
    }
  }
  return out;
}

std::vector<Extent> coalesce_runs(std::vector<Extent> extents) {
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset;
            });
  std::vector<Extent> out;
  for (const Extent& e : extents) {
    if (e.length == 0) continue;
    if (!out.empty() && e.offset <= out.back().offset + out.back().length) {
      const std::uint64_t end =
          std::max(out.back().offset + out.back().length, e.offset + e.length);
      out.back().length = end - out.back().offset;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace das::pfs
