#include "pfs/prefetch.hpp"

#include <string>
#include <utility>

#include "net/network.hpp"
#include "pfs/server.hpp"
#include "simkit/assert.hpp"
#include "simkit/simulator.hpp"
#include "simkit/trace.hpp"

namespace das::pfs {

namespace {

void trace_prefetch(sim::Tracer& tracer, net::NodeId node, const char* name,
                    const cache::CacheKey& key, std::uint64_t length) {
  if (!tracer.enabled()) return;
  tracer.instant_now(node, sim::TraceTrack::kPrefetch, name, "prefetch",
                     "{\"file\":" + std::to_string(key.file) +
                         ",\"strip\":" + std::to_string(key.strip) +
                         ",\"bytes\":" + std::to_string(length) + "}");
}

}  // namespace

PrefetchStats& PrefetchStats::operator+=(const PrefetchStats& other) {
  issued += other.issued;
  issued_bytes += other.issued_bytes;
  coalesced += other.coalesced;
  coalesced_bytes += other.coalesced_bytes;
  dropped_stale += other.dropped_stale;
  skipped += other.skipped;
  return *this;
}

PrefetchStats& PrefetchStats::operator-=(const PrefetchStats& other) {
  DAS_REQUIRE(issued >= other.issued && issued_bytes >= other.issued_bytes);
  issued -= other.issued;
  issued_bytes -= other.issued_bytes;
  coalesced -= other.coalesced;
  coalesced_bytes -= other.coalesced_bytes;
  dropped_stale -= other.dropped_stale;
  skipped -= other.skipped;
  return *this;
}

HaloPrefetcher::HaloPrefetcher(sim::Simulator& simulator,
                               net::Network& network, PfsServer& owner,
                               const PrefetchConfig& config, PeerResolver peer)
    : sim_(simulator),
      net_(network),
      owner_(owner),
      config_(config),
      peer_(std::move(peer)) {
  DAS_REQUIRE(config.active());
  DAS_REQUIRE(peer_ != nullptr);
}

void HaloPrefetcher::enqueue(std::vector<PrefetchItem> plan) {
  for (PrefetchItem& item : plan) queue_.push_back(item);
  pump();
}

bool HaloPrefetcher::demand_fetch(const PrefetchItem& item,
                                  DataHandler on_data) {
  const cache::CacheKey key{item.file, item.strip};
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    ++stats_.coalesced;
    stats_.coalesced_bytes += item.length;
    trace_prefetch(sim_.tracer(), owner_.node(), "prefetch.coalesce", key,
                   item.length);
    DAS_REQUIRE(it->second.length == item.length);
    it->second.waiters.push_back(std::move(on_data));
    if (it->second.prefetch_initiated) {
      // The sweep caught up with this prefetch: it is demand traffic now.
      // Release its depth slot so the lookahead window stays ahead of the
      // demand frontier instead of shrinking to meet it.
      it->second.prefetch_initiated = false;
      DAS_REQUIRE(prefetches_in_flight_ > 0);
      --prefetches_in_flight_;
      schedule_pump();
    }
    return false;
  }
  issue(item, /*prefetch_initiated=*/false, std::move(on_data));
  return true;
}

void HaloPrefetcher::invalidate(const cache::CacheKey& key) {
  if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
    it->second.stale = true;
  }
}

void HaloPrefetcher::invalidate_file(std::uint64_t file) {
  for (auto it = in_flight_.lower_bound(cache::CacheKey{file, 0});
       it != in_flight_.end() && it->first.file == file; ++it) {
    it->second.stale = true;
  }
}

void HaloPrefetcher::schedule_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  sim_.schedule_at(sim_.now(),
                   [this]() {
                     pump_scheduled_ = false;
                     pump();
                   },
                   "prefetch.pump");
}

void HaloPrefetcher::pump() {
  while (prefetches_in_flight_ < config_.depth && !queue_.empty()) {
    const PrefetchItem item = queue_.front();
    queue_.pop_front();
    const cache::CacheKey key{item.file, item.strip};
    const cache::StripCache* cached = owner_.strip_cache();
    if (in_flight_.contains(key) ||
        owner_.store().has(static_cast<FileId>(item.file), item.strip) ||
        (cached != nullptr && cached->contains(key))) {
      ++stats_.skipped;
      continue;
    }
    issue(item, /*prefetch_initiated=*/true, nullptr);
  }
}

HaloPrefetcher::InFlight& HaloPrefetcher::track(const cache::CacheKey& key) {
  if (spare_flights_.empty()) {
    const auto [it, inserted] = in_flight_.try_emplace(key);
    DAS_REQUIRE(inserted);
    return it->second;
  }
  auto nh = std::move(spare_flights_.back());
  spare_flights_.pop_back();
  nh.key() = key;
  const auto result = in_flight_.insert(std::move(nh));
  DAS_REQUIRE(result.inserted);
  return result.position->second;
}

void HaloPrefetcher::issue(const PrefetchItem& item, bool prefetch_initiated,
                           DataHandler waiter) {
  const cache::CacheKey key{item.file, item.strip};
  InFlight& flight = track(key);
  flight.length = item.length;
  flight.prefetch_initiated = prefetch_initiated;
  if (waiter) flight.waiters.push_back(std::move(waiter));
  if (prefetch_initiated) {
    ++prefetches_in_flight_;
    ++stats_.issued;
    stats_.issued_bytes += item.length;
    trace_prefetch(sim_.tracer(), owner_.node(), "prefetch.issue", key,
                   item.length);
  }

  // Same wire protocol as the demand path: a control message to the strip's
  // primary, which serves the read back over the server-server class.
  PfsServer& source = peer_(item.source);
  net_.send_control(
      owner_.node(), source.node(), [this, item, key, &source]() {
        source.serve_read(static_cast<FileId>(item.file), item.strip, 0,
                          item.length, owner_.node(),
                          net::TrafficClass::kServerServer,
                          [this, key](const StripBuffer& payload) {
                            land(key, payload);
                          });
      });
}

void HaloPrefetcher::land(const cache::CacheKey& key,
                          const StripBuffer& payload) {
  const auto it = in_flight_.find(key);
  DAS_REQUIRE(it != in_flight_.end());
  // Detach the record before touching the cache or waiters (either may
  // re-enter the prefetcher); the node is recycled at the end.
  auto nh = in_flight_.extract(it);
  InFlight& flight = nh.mapped();
  if (flight.prefetch_initiated) {
    DAS_REQUIRE(prefetches_in_flight_ > 0);
    --prefetches_in_flight_;
  }

  if (flight.stale) {
    ++stats_.dropped_stale;
    trace_prefetch(sim_.tracer(), owner_.node(), "prefetch.stale_drop", key,
                   flight.length);
  } else if (cache::StripCache* cached = owner_.strip_cache()) {
    // Admit before waking waiters so anything they trigger sees the strip
    // resident. A fetch the sweep never asked for is a true prefetch; one
    // with demand waiters is accounted as an ordinary (miss-driven) insert.
    // The cache shares the landed payload block — no copy either way.
    if (flight.prefetch_initiated && flight.waiters.empty()) {
      cached->admit_prefetched(key, flight.length, StripBuffer(payload));
    } else {
      cached->insert(key, flight.length, StripBuffer(payload));
    }
  }

  for (DataHandler& waiter : flight.waiters) waiter(payload);

  flight.waiters.clear();  // keeps capacity for the node's next flight
  flight.stale = false;
  flight.prefetch_initiated = false;
  flight.length = 0;
  spare_flights_.push_back(std::move(nh));
  schedule_pump();
}

}  // namespace das::pfs
