// Local I/O API (paper §III-A): "abstracts local strips as a file and reads
// local data for Processing Kernels".
//
// A server's share of a file is a set of strips; under a grouped layout they
// form contiguous runs (one per group owned by the server). A processing
// kernel works run by run: each run is a contiguous slab of the logical
// file, optionally extended by halo strips that — under the DAS layout —
// are locally-stored replicas. LocalIo never touches the network: if a halo
// strip is not stored locally, it reports so, and the caller (the NAS
// executor) must fetch it remotely.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/pfs.hpp"

namespace das::pfs {

/// A maximal contiguous range of strips whose primary copy lives on one
/// server, plus how much locally-stored halo surrounds it.
struct LocalRun {
  std::uint64_t first_strip = 0;
  std::uint64_t last_strip = 0;  // inclusive
  /// Halo strips below first_strip / above last_strip that exist in the file
  /// AND are stored locally (replicas under the DAS layout; 0 otherwise).
  std::uint64_t local_pre_halo = 0;
  std::uint64_t local_post_halo = 0;
  /// Halo strips that exist in the file but are NOT stored locally; these
  /// are what a dependence-unaware active storage must fetch remotely.
  std::uint64_t missing_pre_halo = 0;
  std::uint64_t missing_post_halo = 0;

  [[nodiscard]] std::uint64_t strip_count() const {
    return last_strip - first_strip + 1;
  }

  friend bool operator==(const LocalRun&, const LocalRun&) = default;
};

class LocalIo {
 public:
  /// View of `file` from server `server_index`; `wanted_halo` is how many
  /// strips of halo the kernel's dependence pattern requires on each side.
  LocalIo(const Pfs& pfs, ServerIndex server_index, FileId file,
          std::uint64_t wanted_halo);

  /// The server's primary strips grouped into contiguous runs, ascending.
  [[nodiscard]] const std::vector<LocalRun>& runs() const { return runs_; }

  /// Total bytes in primary strips (the server's share of the file).
  [[nodiscard]] std::uint64_t local_size() const { return local_bytes_; }

  /// Total halo strips that would have to be fetched remotely across all
  /// runs. Zero exactly when the layout satisfies the dependence locally.
  [[nodiscard]] std::uint64_t total_missing_halo_strips() const;

  /// Read one run plus its locally available halo into a contiguous buffer
  /// (correctness mode; strips must carry data). The buffer covers strips
  /// [first_strip - local_pre_halo, last_strip + local_post_halo].
  [[nodiscard]] std::vector<std::byte> read_run(const LocalRun& run) const;

  /// Byte offset within the logical file where read_run's buffer begins.
  [[nodiscard]] std::uint64_t run_buffer_offset(const LocalRun& run) const;

 private:
  const Pfs& pfs_;
  ServerIndex server_;
  FileId file_;
  std::vector<LocalRun> runs_;
  std::uint64_t local_bytes_ = 0;
};

}  // namespace das::pfs
