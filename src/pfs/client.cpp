#include "pfs/client.hpp"

#include <algorithm>
#include <utility>

#include "simkit/assert.hpp"
#include "telemetry/plane.hpp"

namespace das::pfs {

PfsClient::PfsClient(sim::Simulator& simulator, net::Network& network,
                     Pfs& pfs, net::NodeId node)
    : sim_(simulator), net_(network), pfs_(pfs), node_(node) {}

PfsClient::RangeOp* PfsClient::acquire_range_op() {
  if (free_range_ops_.empty()) {
    range_ops_.push_back(std::make_unique<RangeOp>());
    return range_ops_.back().get();
  }
  RangeOp* op = free_range_ops_.back();
  free_range_ops_.pop_back();
  return op;
}

void PfsClient::release_range_op(RangeOp* op) {
  op->data.reset();
  op->on_complete.reset();
  op->on_strip.reset();
  op->outstanding = 0;
  op->issuing = false;
  op->span = 0;
  free_range_ops_.push_back(op);
}

void PfsClient::finish_range_op(RangeOp* op) {
  if (op->span != 0) {
    if (telemetry::Plane* plane = sim_.context().telemetry) {
      plane->spans().end(op->span, sim_.now(), node_);
    }
  }
  RangeDoneFn done = std::move(op->on_complete);
  release_range_op(op);
  if (done) done();
}

void PfsClient::write_ack(RangeOp* op) {
  DAS_REQUIRE(op->outstanding > 0);
  if (--op->outstanding == 0 && !op->issuing) finish_range_op(op);
}

void PfsClient::read_range(FileId file, std::uint64_t offset,
                           std::uint64_t length, RangeDoneFn on_complete,
                           RangeStripFn on_strip) {
  const FileMeta& meta = pfs_.meta(file);
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(offset + length <= meta.size_bytes);

  const std::uint64_t first = meta.strip_of_byte(offset);
  const std::uint64_t last = meta.strip_of_byte(offset + length - 1);

  RangeOp* op = acquire_range_op();
  op->file = file;
  op->outstanding = last - first + 1;
  op->on_complete = std::move(on_complete);
  op->on_strip = std::move(on_strip);
  if (telemetry::Plane* plane = sim_.context().telemetry) {
    op->span = plane->spans().begin(net::kNoTenant, sim_.now(), node_);
  }

  bytes_read_ += length;

  for (std::uint64_t s = first; s <= last; ++s) {
    const StripRef ref = meta.strip(s);
    const std::uint64_t lo = std::max(offset, ref.offset);
    const std::uint64_t hi = std::min(offset + length, ref.offset + ref.length);
    const std::uint64_t within = lo - ref.offset;
    const std::uint64_t want = hi - lo;

    // Per-strip resolution: during an online migration the strip's primary
    // is whoever currently serves it (prior layout past the frontier).
    const ServerIndex holder = pfs_.read_primary(file, s);
    PfsServer& server = pfs_.server(holder);

    // Request message travels to the server, then the server reads and ships
    // the payload back.
    net_.send(net::Message{
        node_, server.node(), 0, net::TrafficClass::kControl,
        [this, &server, op, s, within, want, lo]() {
          server.serve_read(
              op->file, s, within, want, node_,
              net::TrafficClass::kClientServer,
              [this, op, s, lo, want](const StripBuffer& payload) {
                if (op->on_strip) op->on_strip(StripRef{s, lo, want}, payload);
                DAS_REQUIRE(op->outstanding > 0);
                if (--op->outstanding == 0) finish_range_op(op);
              },
              net::kNoTenant, op->span);
        },
        net::kNoTenant, op->span});
  }
}

PfsClient::ListOp* PfsClient::acquire_list_op() {
  if (free_list_ops_.empty()) {
    list_ops_.push_back(std::make_unique<ListOp>());
    return list_ops_.back().get();
  }
  ListOp* op = free_list_ops_.back();
  free_list_ops_.pop_back();
  return op;
}

void PfsClient::release_list_op(ListOp* op) {
  op->on_complete.reset();
  op->on_run.reset();
  op->outstanding = 0;
  op->span = 0;
  for (ListBatch& b : op->batches) {
    b.runs.clear();  // keeps capacity for the next read_regions
    b.payload = 0;
  }
  free_list_ops_.push_back(op);
}

void PfsClient::finish_list_op(ListOp* op) {
  if (op->span != 0) {
    if (telemetry::Plane* plane = sim_.context().telemetry) {
      plane->spans().end(op->span, sim_.now(), node_);
    }
  }
  RangeDoneFn done = std::move(op->on_complete);
  release_list_op(op);
  if (done) done();
}

void PfsClient::deliver_list_batch(ListOp* op, std::size_t b,
                                   const StripBuffer& payload) {
  if (!op->on_run) return;
  std::uint64_t at = 0;
  for (const StripRun& r : op->batches[b].runs) {
    const Run run{r.strip * op->strip_size + r.offset_in_strip, r.length};
    // Each delivered run is a view of the one packed reply payload — the
    // gather never copies on the client side.
    op->on_run(run, payload.empty() ? StripBuffer{}
                                    : payload.view(at, r.length));
    at += r.length;
  }
}

void PfsClient::read_regions(FileId file, const RegionList& regions,
                             RangeDoneFn on_complete, RegionRunFn on_run) {
  const FileMeta& meta = pfs_.meta(file);
  if (regions.empty()) {
    // Degenerate but legal (a client's share of a partitioned list can be
    // empty): nothing to fetch, complete in place.
    if (on_complete) on_complete();
    return;
  }

  ListOp* op = acquire_list_op();
  op->file = file;
  op->strip_size = meta.strip_size;
  op->on_complete = std::move(on_complete);
  op->on_run = std::move(on_run);
  if (telemetry::Plane* plane = sim_.context().telemetry) {
    op->span = plane->spans().begin(net::kNoTenant, sim_.now(), node_);
  }

  bytes_read_ += regions.total_bytes();

  // Split at strip boundaries, then group the strip-runs by the server
  // currently holding each strip (first-touch batch order, run order
  // preserved within a batch).
  static constexpr std::size_t kNoBatch = SIZE_MAX;
  std::vector<std::size_t> batch_of(pfs_.num_servers(), kNoBatch);
  std::size_t used = 0;
  for (const StripRun& r : split_by_strip(meta, regions)) {
    const ServerIndex holder = pfs_.read_primary(file, r.strip);
    std::size_t& b = batch_of[holder];
    if (b == kNoBatch) {
      b = used++;
      if (op->batches.size() < used) op->batches.emplace_back();
      op->batches[b].server = holder;
    }
    op->batches[b].runs.push_back(r);
    op->batches[b].payload += r.length;
  }

  op->outstanding = used;
  for (std::size_t b = 0; b < used; ++b) {
    const ListBatch& batch = op->batches[b];
    PfsServer& server = pfs_.server(batch.server);
    // The request message itself costs real wire bytes: the fixed list
    // header plus this server's run (or strided) descriptors. It travels
    // client->server, so it lands in the same byte ledger as the replies.
    const std::uint64_t request_bytes =
        RegionList::request_bytes(regions.encoding(), batch.runs.size());
    net_.send(net::Message{
        node_, server.node(), request_bytes,
        net::TrafficClass::kClientServer,
        [this, &server, op, b]() {
          server.serve_read_list(
              op->file, op->batches[b].runs, node_,
              net::TrafficClass::kClientServer,
              [this, op, b](const StripBuffer& payload) {
                deliver_list_batch(op, b, payload);
                DAS_REQUIRE(op->outstanding > 0);
                if (--op->outstanding == 0) finish_list_op(op);
              },
              net::kNoTenant, op->span);
        },
        net::kNoTenant, op->span});
  }
}

void PfsClient::write_range(FileId file, std::uint64_t offset,
                            std::uint64_t length, StripBuffer data,
                            RangeDoneFn on_complete) {
  const FileMeta& meta = pfs_.meta(file);
  const Layout& layout = pfs_.layout(file);
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(offset % meta.strip_size == 0);
  DAS_REQUIRE(offset + length <= meta.size_bytes);
  DAS_REQUIRE(offset + length == meta.size_bytes ||
              (offset + length) % meta.strip_size == 0);
  DAS_REQUIRE(data.empty() || data.size() == length);

  const std::uint64_t first = meta.strip_of_byte(offset);
  const std::uint64_t last = meta.strip_of_byte(offset + length - 1);
  const std::uint64_t num_strips = meta.num_strips();

  RangeOp* op = acquire_range_op();
  op->file = file;
  op->base_offset = offset;
  op->data = std::move(data);
  op->issuing = true;
  op->on_complete = std::move(on_complete);
  if (telemetry::Plane* plane = sim_.context().telemetry) {
    op->span = plane->spans().begin(net::kNoTenant, sim_.now(), node_);
  }

  bytes_written_ += length;

  for (std::uint64_t s = first; s <= last; ++s) {
    const StripRef ref = meta.strip(s);
    // Under an online migration a strip past the frontier is still *served*
    // from its old holders, so a write must land on the union of both
    // holder sets or readers would see stale bytes until the frontier
    // passes.
    std::vector<ServerIndex> holders = layout.holders(s, num_strips);
    if (pfs_.migrating(file)) {
      for (const ServerIndex h : pfs_.read_holders(file, s)) {
        if (std::find(holders.begin(), holders.end(), h) == holders.end()) {
          holders.push_back(h);
        }
      }
    }
    for (const ServerIndex holder : holders) {
      PfsServer& server = pfs_.server(holder);
      ++op->outstanding;
      net_.send(net::Message{
          node_, server.node(), ref.length, net::TrafficClass::kClientServer,
          [this, &server, op, ref]() {
            StripBuffer payload;
            if (!op->data.empty()) {
              payload = op->data.view(ref.offset - op->base_offset, ref.length);
            }
            server.serve_write(op->file, ref, std::move(payload), node_,
                               net::TrafficClass::kControl,
                               [this, op]() { write_ack(op); });
          },
          net::kNoTenant, op->span});
    }
  }

  op->issuing = false;
  if (op->outstanding == 0) {
    if (op->on_complete) {
      // Same no-op completion event as always (keeps event counts, and
      // therefore traces, identical whether or not anything was written).
      sim_.schedule_after(net_.config().wire_latency,
                          [this, op]() { finish_range_op(op); },
                          "pfs.write_noop");
    } else {
      release_range_op(op);
    }
  }
}

void PfsClient::enroll(telemetry::Registry& registry) const {
  const telemetry::Labels labels{telemetry::label("node", node_)};
  registry.enroll_counter("client.bytes_read", labels, bytes_read_);
  registry.enroll_counter("client.bytes_written", labels, bytes_written_);
}

void PfsClient::write_range(FileId file, std::uint64_t offset,
                            std::uint64_t length,
                            const std::vector<std::byte>& data,
                            RangeDoneFn on_complete) {
  write_range(file, offset, length, StripBuffer::copy_of(data),
              std::move(on_complete));
}

}  // namespace das::pfs
