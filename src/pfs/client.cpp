#include "pfs/client.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "simkit/assert.hpp"

namespace das::pfs {

PfsClient::PfsClient(sim::Simulator& simulator, net::Network& network,
                     Pfs& pfs, net::NodeId node)
    : sim_(simulator), net_(network), pfs_(pfs), node_(node) {}

void PfsClient::read_range(
    FileId file, std::uint64_t offset, std::uint64_t length,
    std::function<void()> on_complete,
    std::function<void(StripRef, std::vector<std::byte>)> on_strip) {
  const FileMeta& meta = pfs_.meta(file);
  const Layout& layout = pfs_.layout(file);
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(offset + length <= meta.size_bytes);

  const std::uint64_t first = meta.strip_of_byte(offset);
  const std::uint64_t last = meta.strip_of_byte(offset + length - 1);
  auto outstanding = std::make_shared<std::uint64_t>(last - first + 1);
  auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
  auto strip_cb = std::make_shared<
      std::function<void(StripRef, std::vector<std::byte>)>>(
      std::move(on_strip));

  bytes_read_ += length;

  for (std::uint64_t s = first; s <= last; ++s) {
    const StripRef ref = meta.strip(s);
    const std::uint64_t lo = std::max(offset, ref.offset);
    const std::uint64_t hi = std::min(offset + length, ref.offset + ref.length);
    const std::uint64_t within = lo - ref.offset;
    const std::uint64_t want = hi - lo;

    const ServerIndex holder = layout.primary(s);
    PfsServer& server = pfs_.server(holder);

    // Request message travels to the server, then the server reads and ships
    // the payload back.
    net_.send_control(
        node_, server.node(),
        [this, &server, file, s, within, want, ref, lo, outstanding, done,
         strip_cb]() {
          server.serve_read(
              file, s, within, want, node_, net::TrafficClass::kClientServer,
              [ref, lo, want, outstanding, done,
               strip_cb](std::vector<std::byte> payload) {
                if (*strip_cb) {
                  (*strip_cb)(StripRef{ref.index, lo, want},
                              std::move(payload));
                }
                DAS_REQUIRE(*outstanding > 0);
                if (--*outstanding == 0 && *done) (*done)();
              });
        });
  }
}

void PfsClient::write_range(FileId file, std::uint64_t offset,
                            std::uint64_t length,
                            const std::vector<std::byte>& data,
                            std::function<void()> on_complete) {
  const FileMeta& meta = pfs_.meta(file);
  const Layout& layout = pfs_.layout(file);
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(offset % meta.strip_size == 0);
  DAS_REQUIRE(offset + length <= meta.size_bytes);
  DAS_REQUIRE(offset + length == meta.size_bytes ||
              (offset + length) % meta.strip_size == 0);
  DAS_REQUIRE(data.empty() || data.size() == length);

  const std::uint64_t first = meta.strip_of_byte(offset);
  const std::uint64_t last = meta.strip_of_byte(offset + length - 1);
  const std::uint64_t num_strips = meta.num_strips();

  auto outstanding = std::make_shared<std::uint64_t>(0);
  auto issuing = std::make_shared<bool>(true);
  auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
  auto ack = [outstanding, issuing, done]() {
    DAS_REQUIRE(*outstanding > 0);
    if (--*outstanding == 0 && !*issuing && *done) (*done)();
  };

  bytes_written_ += length;

  for (std::uint64_t s = first; s <= last; ++s) {
    const StripRef ref = meta.strip(s);
    std::vector<std::byte> payload;
    if (!data.empty()) {
      const std::uint64_t rel = ref.offset - offset;
      payload.assign(data.begin() + static_cast<std::ptrdiff_t>(rel),
                     data.begin() +
                         static_cast<std::ptrdiff_t>(rel + ref.length));
    }

    for (const ServerIndex holder : layout.holders(s, num_strips)) {
      PfsServer& server = pfs_.server(holder);
      ++*outstanding;
      net_.send(net::Message{
          node_, server.node(), ref.length, net::TrafficClass::kClientServer,
          [&server, file, ref, payload, this, ack]() mutable {
            server.serve_write(file, ref, std::move(payload), node_,
                               net::TrafficClass::kControl, ack);
          }});
    }
  }

  *issuing = false;
  if (*outstanding == 0 && *done) {
    sim_.schedule_after(net_.config().wire_latency, [done]() { (*done)(); },
                        "pfs.write_noop");
  }
}

}  // namespace das::pfs
