// Ref-counted immutable strip payload with a size-classed recycling pool.
//
// Every strip that flows server -> cache -> prefetcher -> client used to be
// a fresh std::vector<std::byte> copy at each hop, so one halo fetch in
// correctness mode touched the same bytes three or four times in host RAM —
// the data-movement tax the paper argues against, paid a second time by the
// simulator itself. A StripBuffer is a cheap handle (pointer + offset +
// length) onto a shared immutable payload: handing a strip to the cache, a
// demand waiter, and the wire message refcounts one allocation instead of
// copying it. Payload allocations come from a thread-local size-classed
// pool that recycles freed payloads, so the steady-state halo path performs
// no heap allocation at all.
//
// Concurrency model: one simulation runs entirely on one thread (the sweep
// runner gives each cell a worker thread), so refcounts are plain integers
// and the pool is thread_local. A buffer must not be shared across threads.
//
// Ownership rule (DESIGN §10): any component may hold a StripBuffer across
// simulated time; the payload stays alive and immutable until the last
// handle drops. Writers never mutate a published payload — ServerStore::put
// swaps in a new buffer, and readers holding the old handle keep the bytes
// they observed (exactly the snapshot semantics the old copy-out gave).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "simkit/assert.hpp"

namespace das::pfs {

/// Allocation statistics of the thread-local payload pool. `fresh_allocs`
/// counts real heap allocations; a steady-state halo path must drive it to
/// zero (the bench_dataplane regression gate).
struct BufferPoolStats {
  std::uint64_t fresh_allocs = 0;    // payloads obtained from operator new
  std::uint64_t pool_hits = 0;       // payloads recycled from a free list
  std::uint64_t recycles = 0;        // payloads returned to a free list
  std::uint64_t oversize_allocs = 0; // payloads too large for any class
  std::uint64_t live_payloads = 0;   // currently referenced payloads
};

namespace detail {

/// Payload header; the bytes follow it in the same allocation.
struct PayloadBlock {
  std::uint32_t refs = 1;
  std::int32_t size_class = -1;  // -1: oversize, freed directly
  std::uint64_t capacity = 0;

  [[nodiscard]] std::byte* data() {
    return reinterpret_cast<std::byte*>(this + 1);
  }
  [[nodiscard]] const std::byte* data() const {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

/// Thread-local size-classed free lists. Classes are powers of two from
/// kMinClassBytes up to kMaxClassBytes; a request is rounded up to its
/// class so a 64 KiB strip and its short EOF tail recycle the same slabs.
class BufferPool {
 public:
  static constexpr std::uint64_t kMinClassBytes = 4 * 1024;
  static constexpr std::uint64_t kMaxClassBytes = 64ULL * 1024 * 1024;
  static constexpr int kNumClasses = 15;  // 4 KiB .. 64 MiB

  static BufferPool& local() {
    thread_local BufferPool pool;
    return pool;
  }

  [[nodiscard]] static int class_of(std::uint64_t bytes) {
    std::uint64_t cap = kMinClassBytes;
    for (int c = 0; c < kNumClasses; ++c, cap <<= 1) {
      if (bytes <= cap) return c;
    }
    return -1;  // oversize
  }

  [[nodiscard]] PayloadBlock* acquire(std::uint64_t length) {
    const int cls = class_of(length);
    ++stats_.live_payloads;
    if (cls >= 0 && !free_[static_cast<std::size_t>(cls)].empty()) {
      PayloadBlock* block = free_[static_cast<std::size_t>(cls)].back();
      free_[static_cast<std::size_t>(cls)].pop_back();
      block->refs = 1;
      ++stats_.pool_hits;
      return block;
    }
    const std::uint64_t capacity =
        cls >= 0 ? (kMinClassBytes << cls) : length;
    auto* block = static_cast<PayloadBlock*>(
        ::operator new(sizeof(PayloadBlock) + capacity));
    block->refs = 1;
    block->size_class = cls;
    block->capacity = capacity;
    if (cls >= 0) {
      ++stats_.fresh_allocs;
    } else {
      ++stats_.oversize_allocs;
    }
    return block;
  }

  void release(PayloadBlock* block) {
    DAS_ASSERT(stats_.live_payloads > 0);
    --stats_.live_payloads;
    if (block->size_class < 0) {
      ::operator delete(block);
      return;
    }
    ++stats_.recycles;
    free_[static_cast<std::size_t>(block->size_class)].push_back(block);
  }

  /// Free every pooled payload (tests / RSS trimming).
  void trim() {
    for (auto& list : free_) {
      for (PayloadBlock* block : list) ::operator delete(block);
      list.clear();
    }
  }

  [[nodiscard]] const BufferPoolStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BufferPoolStats{.live_payloads = stats_.live_payloads}; }

  ~BufferPool() { trim(); }

 private:
  std::vector<PayloadBlock*> free_[kNumClasses];
  BufferPoolStats stats_;
};

}  // namespace detail

/// Shared immutable view of a strip payload: payload pointer + byte offset
/// + length. Copying a StripBuffer bumps a refcount; the payload returns to
/// the pool when the last handle drops. An empty (default) buffer carries
/// no payload — the timing-only mode of the stores and caches.
class StripBuffer {
 public:
  StripBuffer() = default;

  /// A writable payload of `length` bytes (zero-filled). Fill through
  /// mutable_data() before sharing; once a second handle exists the
  /// contents are frozen by convention.
  [[nodiscard]] static StripBuffer allocate(std::uint64_t length) {
    DAS_REQUIRE(length > 0);
    detail::PayloadBlock* block = detail::BufferPool::local().acquire(length);
    std::memset(block->data(), 0, length);
    return StripBuffer(block, 0, length);
  }

  /// A payload holding a copy of `bytes`. Empty input gives an empty buffer.
  [[nodiscard]] static StripBuffer copy_of(std::span<const std::byte> bytes) {
    if (bytes.empty()) return StripBuffer{};
    StripBuffer buffer = allocate(bytes.size());
    std::memcpy(buffer.payload_->data(), bytes.data(), bytes.size());
    return buffer;
  }

  [[nodiscard]] static StripBuffer copy_of(
      const std::vector<std::byte>& bytes) {
    return copy_of(std::span<const std::byte>(bytes));
  }

  StripBuffer(const StripBuffer& other) noexcept
      : payload_(other.payload_),
        offset_(other.offset_),
        length_(other.length_) {
    if (payload_ != nullptr) ++payload_->refs;
  }

  StripBuffer& operator=(const StripBuffer& other) noexcept {
    if (this != &other) {
      StripBuffer copy(other);
      swap(copy);
    }
    return *this;
  }

  StripBuffer(StripBuffer&& other) noexcept
      : payload_(std::exchange(other.payload_, nullptr)),
        offset_(std::exchange(other.offset_, 0)),
        length_(std::exchange(other.length_, 0)) {}

  StripBuffer& operator=(StripBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      payload_ = std::exchange(other.payload_, nullptr);
      offset_ = std::exchange(other.offset_, 0);
      length_ = std::exchange(other.length_, 0);
    }
    return *this;
  }

  ~StripBuffer() { reset(); }

  void reset() {
    if (payload_ != nullptr) {
      if (--payload_->refs == 0) detail::BufferPool::local().release(payload_);
      payload_ = nullptr;
    }
    offset_ = 0;
    length_ = 0;
  }

  void swap(StripBuffer& other) noexcept {
    std::swap(payload_, other.payload_);
    std::swap(offset_, other.offset_);
    std::swap(length_, other.length_);
  }

  /// True when a payload is attached (data-carrying mode).
  [[nodiscard]] explicit operator bool() const { return payload_ != nullptr; }
  [[nodiscard]] bool empty() const { return payload_ == nullptr; }

  [[nodiscard]] std::uint64_t size() const { return length_; }

  [[nodiscard]] const std::byte* data() const {
    DAS_ASSERT(payload_ != nullptr);
    return payload_->data() + offset_;
  }

  [[nodiscard]] std::span<const std::byte> span() const {
    return payload_ == nullptr
               ? std::span<const std::byte>{}
               : std::span<const std::byte>(data(), length_);
  }

  /// Writable pointer; only legal while this handle is the sole owner of
  /// the payload (fill-before-publish).
  [[nodiscard]] std::byte* mutable_data() {
    DAS_ASSERT(payload_ != nullptr);
    DAS_ASSERT(payload_->refs == 1);
    return payload_->data() + offset_;
  }

  /// A sub-view [view_offset, view_offset + view_length) of this buffer,
  /// sharing the payload. No bytes move.
  [[nodiscard]] StripBuffer view(std::uint64_t view_offset,
                                 std::uint64_t view_length) const {
    DAS_REQUIRE(view_offset + view_length <= length_);
    if (payload_ == nullptr) return StripBuffer{};
    ++payload_->refs;
    return StripBuffer(payload_, offset_ + view_offset, view_length);
  }

  /// Handles (including views) currently sharing the payload; 0 when empty.
  [[nodiscard]] std::uint32_t use_count() const {
    return payload_ == nullptr ? 0 : payload_->refs;
  }

  /// Materialize the view into an owned vector (tests, gather paths).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    const auto bytes = span();
    return std::vector<std::byte>(bytes.begin(), bytes.end());
  }

  /// Payload-pool statistics of this thread (see BufferPoolStats).
  [[nodiscard]] static const BufferPoolStats& pool_stats() {
    return detail::BufferPool::local().stats();
  }
  static void reset_pool_stats() { detail::BufferPool::local().reset_stats(); }
  static void trim_pool() { detail::BufferPool::local().trim(); }

  /// Byte-wise equality of the viewed contents (tests).
  friend bool operator==(const StripBuffer& a, const StripBuffer& b) {
    const auto sa = a.span();
    const auto sb = b.span();
    return sa.size() == sb.size() &&
           (sa.empty() || std::memcmp(sa.data(), sb.data(), sa.size()) == 0);
  }

 private:
  StripBuffer(detail::PayloadBlock* payload, std::uint64_t offset,
              std::uint64_t length)
      : payload_(payload), offset_(offset), length_(length) {}

  detail::PayloadBlock* payload_ = nullptr;
  std::uint64_t offset_ = 0;
  std::uint64_t length_ = 0;
};

}  // namespace das::pfs
