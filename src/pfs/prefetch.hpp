// Halo-strip prefetcher for the active-storage servers.
//
// PR 1's strip cache only amortizes remote halo fetches across *repeat*
// passes; the first pass still serializes fetch-then-compute. A server that
// is admitted a NAS/DAS request knows — from the kernel's dependence offsets
// and the layout's location math — exactly which remote strips its compute
// sweep will touch and in which order. The prefetcher walks that plan ahead
// of the sweep with a bounded number of fetches in flight, lands the strips
// in the existing StripCache (so InvalidationHub coherence applies
// unchanged), and coalesces against demand fetches so no strip ever crosses
// the wire twice. Prefetching moves the same server-to-server bytes as the
// demand path — it hides latency, it does not reduce traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "cache/eviction.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/inplace_fn.hpp"

namespace das::net {
class Network;
}
namespace das::sim {
class Simulator;
}

namespace das::pfs {

class PfsServer;

struct PrefetchConfig {
  /// Master switch; an inactive prefetcher is never attached, so every
  /// byte flow and event ordering reproduces the unprefetched system.
  bool enabled = false;
  /// Lookahead bound: how many strips the prefetcher keeps in flight ahead
  /// of the demand sweep. A prefetch the sweep catches up with (coalesces
  /// onto) stops counting against the bound, so depth measures lookahead
  /// beyond the demand frontier, not total outstanding transfers.
  std::uint32_t depth = 0;

  [[nodiscard]] bool active() const { return enabled && depth > 0; }
};

struct PrefetchStats {
  std::uint64_t issued = 0;        // prefetch fetches put on the wire
  std::uint64_t issued_bytes = 0;
  std::uint64_t coalesced = 0;     // fetches absorbed by an in-flight one
  std::uint64_t coalesced_bytes = 0;
  std::uint64_t dropped_stale = 0;  // landed after an invalidation
  std::uint64_t skipped = 0;        // plan entries already local/cached

  PrefetchStats& operator+=(const PrefetchStats& other);
  PrefetchStats& operator-=(const PrefetchStats& other);
};

/// One remote strip the compute sweep will need, in sweep order.
struct PrefetchItem {
  std::uint64_t file = 0;
  std::uint64_t strip = 0;
  std::uint64_t length = 0;
  std::uint32_t source = 0;  // ServerIndex of the strip's primary holder
};

/// Per-server prefetch engine. Owned by the PfsServer it serves; peers are
/// resolved through a callback so the pfs facade stays the only component
/// that knows every server.
class HaloPrefetcher {
 public:
  using PeerResolver = std::function<PfsServer&(std::uint32_t)>;
  /// Demand-waiter callback; receives a shared view of the landed strip
  /// (empty in timing-only mode). Move-only and inline-stored — a waiter
  /// costs no allocation beyond its slot in the in-flight record.
  using DataHandler = sim::InplaceFn<void(const StripBuffer&)>;

  HaloPrefetcher(sim::Simulator& simulator, net::Network& network,
                 PfsServer& owner, const PrefetchConfig& config,
                 PeerResolver peer);

  HaloPrefetcher(const HaloPrefetcher&) = delete;
  HaloPrefetcher& operator=(const HaloPrefetcher&) = delete;

  /// Append the ordered fetch plan of an admitted request and start pulling
  /// it with up to `depth` fetches in flight. Entries that are already
  /// local, cached, or in flight are skipped when they reach the head.
  void enqueue(std::vector<PrefetchItem> plan);

  /// Fetch `item` for the compute sweep right now. If the strip is already
  /// in flight (prefetch or earlier demand), the request coalesces onto it
  /// and `on_data` runs when that fetch lands — no second wire transfer.
  /// Returns true when a new fetch was put on the wire.
  bool demand_fetch(const PrefetchItem& item, DataHandler on_data);

  /// A write or redistribution made `key` stale: any in-flight fetch of it
  /// is marked so its payload is dropped on landing (demand waiters still
  /// complete — the sweep that asked consumes pre-write data by design,
  /// exactly as the unprefetched demand path would).
  void invalidate(const cache::CacheKey& key);
  void invalidate_file(std::uint64_t file);

  [[nodiscard]] bool in_flight(const cache::CacheKey& key) const {
    return in_flight_.contains(key);
  }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] const PrefetchConfig& config() const { return config_; }

 private:
  struct InFlight {
    std::uint64_t length = 0;
    bool prefetch_initiated = false;  // counts against the depth bound
    bool stale = false;
    std::vector<DataHandler> waiters;  // demand fetches coalesced onto this
  };

  using FlightMap = std::map<cache::CacheKey, InFlight>;

  void pump();
  /// Refill the lookahead window on the next event-loop tick, after every
  /// reservation made in the current callback. NIC bandwidth is granted in
  /// send() order, so pumping synchronously from inside a demand sweep would
  /// let lookahead strips cut in front of the sweep's own critical fetches.
  void schedule_pump();
  void issue(const PrefetchItem& item, bool prefetch_initiated,
             DataHandler waiter);
  void land(const cache::CacheKey& key, const StripBuffer& payload);
  /// Insert a fresh in-flight record for `key`, reusing a recycled map node
  /// (and its waiters vector's capacity) when one is available.
  [[nodiscard]] InFlight& track(const cache::CacheKey& key);

  sim::Simulator& sim_;
  net::Network& net_;
  PfsServer& owner_;
  PrefetchConfig config_;
  PeerResolver peer_;
  std::deque<PrefetchItem> queue_;
  FlightMap in_flight_;
  std::vector<FlightMap::node_type> spare_flights_;  // recycled map nodes
  std::uint32_t prefetches_in_flight_ = 0;
  bool pump_scheduled_ = false;
  PrefetchStats stats_;
};

}  // namespace das::pfs
