// Strip-to-server placement policies.
//
// Three layouts model the paper's spectrum:
//  * RoundRobinLayout  — PVFS2/Lustre default (paper Fig. 5): strip s on
//    server s mod D.
//  * GroupedLayout     — r successive strips per server (paper Fig. 7,
//    Eq. 14 denominator r * strip_size): strip s on server (s / r) mod D.
//  * DasReplicatedLayout — GroupedLayout plus halo replication (paper
//    Fig. 9): the first `halo` strips of each group are also stored on the
//    preceding server and the last `halo` strips on the following server, so
//    stencil dependences that reach at most `halo` strips never cross
//    servers. Capacity overhead is 2*halo/r (the paper's "2/r" for halo=1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pfs/file.hpp"

namespace das::pfs {

/// Index of a storage server within the file system (0 .. D-1). The cluster
/// maps these to physical node ids.
using ServerIndex = std::uint32_t;

class Layout {
 public:
  virtual ~Layout() = default;

  /// D: number of storage servers data is spread over.
  [[nodiscard]] virtual std::uint32_t num_servers() const = 0;

  /// The server owning the authoritative copy of `strip`.
  [[nodiscard]] virtual ServerIndex primary(std::uint64_t strip) const = 0;

  /// Servers holding extra copies of `strip`. `num_strips` bounds the file so
  /// edge groups do not replicate past the ends. Default: none.
  [[nodiscard]] virtual std::vector<ServerIndex> replicas(
      std::uint64_t strip, std::uint64_t num_strips) const;

  /// All servers holding `strip` (primary first).
  [[nodiscard]] std::vector<ServerIndex> holders(
      std::uint64_t strip, std::uint64_t num_strips) const;

  /// True if `server` holds `strip` (as primary or replica).
  [[nodiscard]] bool holds(ServerIndex server, std::uint64_t strip,
                           std::uint64_t num_strips) const;

  /// Strips whose primary copy is on `server`, ascending.
  [[nodiscard]] std::vector<std::uint64_t> primary_strips(
      ServerIndex server, std::uint64_t num_strips) const;

  /// All strips present on `server` (primary + replica), ascending.
  [[nodiscard]] std::vector<std::uint64_t> local_strips(
      ServerIndex server, std::uint64_t num_strips) const;

  /// Bytes stored on `server` for a file with metadata `meta`.
  [[nodiscard]] std::uint64_t stored_bytes(ServerIndex server,
                                           const FileMeta& meta) const;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Layout> clone() const = 0;
};

/// PVFS2/Lustre default placement: strip s -> server s mod D.
class RoundRobinLayout final : public Layout {
 public:
  explicit RoundRobinLayout(std::uint32_t num_servers);

  [[nodiscard]] std::uint32_t num_servers() const override { return d_; }
  [[nodiscard]] ServerIndex primary(std::uint64_t strip) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Layout> clone() const override;

 private:
  std::uint32_t d_;
};

/// r successive strips per server: strip s -> server (s / r) mod D.
class GroupedLayout : public Layout {
 public:
  GroupedLayout(std::uint32_t num_servers, std::uint64_t group_size);

  [[nodiscard]] std::uint32_t num_servers() const override { return d_; }
  [[nodiscard]] ServerIndex primary(std::uint64_t strip) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Layout> clone() const override;

  [[nodiscard]] std::uint64_t group_size() const { return r_; }

 protected:
  std::uint32_t d_;
  std::uint64_t r_;
};

/// Round-robin placement with `copies` full replicas of every strip on the
/// following servers: strip s lives on (s + k) mod D for k in [0, copies).
/// This is the layout the multi-tenant traffic engine gives its shared
/// datasets so a straggler-aware client can re-route or hedge a slow strip
/// read to a healthy holder (Tavakoli et al., client-side straggler-aware
/// scheduling). Capacity overhead is (copies - 1)x.
class ReplicatedRoundRobinLayout final : public Layout {
 public:
  /// `copies` = total holders per strip (primary included); clamped to D.
  ReplicatedRoundRobinLayout(std::uint32_t num_servers, std::uint32_t copies);

  [[nodiscard]] std::uint32_t num_servers() const override { return d_; }
  [[nodiscard]] ServerIndex primary(std::uint64_t strip) const override;
  [[nodiscard]] std::vector<ServerIndex> replicas(
      std::uint64_t strip, std::uint64_t num_strips) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Layout> clone() const override;

  [[nodiscard]] std::uint32_t copies() const { return copies_; }

 private:
  std::uint32_t d_;
  std::uint32_t copies_;
};

/// GroupedLayout + halo replication onto neighbouring servers (DAS layout).
class DasReplicatedLayout final : public GroupedLayout {
 public:
  /// `halo` = strips replicated at each group edge; must satisfy
  /// 2 * halo <= group_size so the copies fit within the neighbour groups.
  DasReplicatedLayout(std::uint32_t num_servers, std::uint64_t group_size,
                      std::uint64_t halo = 1);

  [[nodiscard]] std::vector<ServerIndex> replicas(
      std::uint64_t strip, std::uint64_t num_strips) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Layout> clone() const override;

  [[nodiscard]] std::uint64_t halo() const { return halo_; }

  /// Capacity overhead relative to un-replicated placement (paper: 2/r).
  [[nodiscard]] double capacity_overhead() const {
    return 2.0 * static_cast<double>(halo_) / static_cast<double>(r_);
  }

 private:
  std::uint64_t halo_;
};

}  // namespace das::pfs
