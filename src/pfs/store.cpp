#include "pfs/store.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::pfs {

void ServerStore::reserve_file(FileId file, std::uint64_t num_strips) {
  if (file >= files_.size()) files_.resize(file + 1);
  if (files_[file].size() < num_strips) files_[file].resize(num_strips);
}

ServerStore::StripSlot& ServerStore::slot_for(FileId file,
                                              std::uint64_t strip) {
  if (file >= files_.size()) files_.resize(file + 1);
  auto& table = files_[file];
  if (strip >= table.size()) table.resize(strip + 1);
  return table[strip];
}

void ServerStore::put(FileId file, std::uint64_t strip, std::uint64_t length,
                      StripBuffer payload) {
  DAS_REQUIRE(payload.empty() || payload.size() == length);
  StripSlot& slot = slot_for(file, strip);
  if (!slot.present) {
    // A slot that held this strip before keeps its disk position (stable
    // across erase/re-put); a genuinely new strip is appended to the disk.
    if (!slot.placed) {
      slot.disk_offset = next_disk_offset_;
      next_disk_offset_ += length;
      slot.placed = true;
    } else {
      DAS_REQUIRE(slot.length == length);
    }
    slot.length = length;
    slot.present = true;
    stored_bytes_ += length;
    ++strip_count_;
  } else {
    DAS_REQUIRE(slot.length == length);
    if (slot.retired) {
      // A retired migration leftover written again is authoritative once
      // more (the strip migrated back); restore its accounting.
      slot.retired = false;
      stored_bytes_ += length;
      ++strip_count_;
    }
  }
  slot.payload = std::move(payload);
}

bool ServerStore::has(FileId file, std::uint64_t strip) const {
  return file < files_.size() && strip < files_[file].size() &&
         files_[file][strip].present && !files_[file][strip].retired;
}

bool ServerStore::readable(FileId file, std::uint64_t strip) const {
  return file < files_.size() && strip < files_[file].size() &&
         files_[file][strip].present;
}

void ServerStore::retire(FileId file, std::uint64_t strip) {
  DAS_REQUIRE(has(file, strip));
  StripSlot& slot = files_[file][strip];
  DAS_REQUIRE(stored_bytes_ >= slot.length);
  stored_bytes_ -= slot.length;
  --strip_count_;
  slot.retired = true;
  // payload stays: in-flight reads that resolved here under the old layout
  // must still find the bytes.
}

const ServerStore::StripSlot& ServerStore::find(FileId file,
                                                std::uint64_t strip) const {
  DAS_REQUIRE(readable(file, strip));
  return files_[file][strip];
}

const StripBuffer& ServerStore::buffer(FileId file,
                                       std::uint64_t strip) const {
  return find(file, strip).payload;
}

std::span<const std::byte> ServerStore::bytes(FileId file,
                                              std::uint64_t strip) const {
  return find(file, strip).payload.span();
}

std::uint64_t ServerStore::disk_offset(FileId file,
                                       std::uint64_t strip) const {
  return find(file, strip).disk_offset;
}

std::uint64_t ServerStore::length(FileId file, std::uint64_t strip) const {
  return find(file, strip).length;
}

void ServerStore::erase(FileId file, std::uint64_t strip) {
  DAS_REQUIRE(readable(file, strip));
  StripSlot& slot = files_[file][strip];
  if (!slot.retired) {
    DAS_REQUIRE(stored_bytes_ >= slot.length);
    stored_bytes_ -= slot.length;
    --strip_count_;
  }
  slot.present = false;
  slot.retired = false;
  slot.payload.reset();
  // length/disk_offset stay: a re-put of the same strip reuses them.
}

}  // namespace das::pfs
