#include "pfs/store.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::pfs {

void ServerStore::put(FileId file, std::uint64_t strip, std::uint64_t length,
                      std::vector<std::byte> bytes) {
  DAS_REQUIRE(bytes.empty() || bytes.size() == length);
  const auto key = std::make_pair(file, strip);
  auto it = strips_.find(key);
  if (it == strips_.end()) {
    StripData data;
    data.length = length;
    data.disk_offset = next_disk_offset_;
    data.bytes = std::move(bytes);
    next_disk_offset_ += length;
    stored_bytes_ += length;
    strips_.emplace(key, std::move(data));
  } else {
    DAS_REQUIRE(it->second.length == length);
    it->second.bytes = std::move(bytes);
  }
}

bool ServerStore::has(FileId file, std::uint64_t strip) const {
  return strips_.contains(std::make_pair(file, strip));
}

const ServerStore::StripData& ServerStore::find(FileId file,
                                                std::uint64_t strip) const {
  const auto it = strips_.find(std::make_pair(file, strip));
  DAS_REQUIRE(it != strips_.end());
  return it->second;
}

const std::vector<std::byte>& ServerStore::bytes(FileId file,
                                                 std::uint64_t strip) const {
  return find(file, strip).bytes;
}

std::uint64_t ServerStore::disk_offset(FileId file,
                                       std::uint64_t strip) const {
  return find(file, strip).disk_offset;
}

std::uint64_t ServerStore::length(FileId file, std::uint64_t strip) const {
  return find(file, strip).length;
}

void ServerStore::erase(FileId file, std::uint64_t strip) {
  const auto it = strips_.find(std::make_pair(file, strip));
  DAS_REQUIRE(it != strips_.end());
  stored_bytes_ -= it->second.length;
  strips_.erase(it);
}

std::size_t ServerStore::strip_count() const { return strips_.size(); }

}  // namespace das::pfs
