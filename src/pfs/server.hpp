// One parallel-file-system storage server.
//
// Owns a disk and the store of strips placed on this node, and serves strip
// read/write requests that arrive over the network. In the active-storage
// schemes the same node also runs processing kernels; the extra load a
// server takes on when *other* servers fetch dependent strips from it (the
// first NAS penalty identified in the paper, §IV-B1) shows up here as disk
// and NIC reservations that delay the node's own work.
//
// Hot-path plumbing: read/write completions are pooled operation records
// (ReadOp/AckOp) so the event callbacks capture only {this, op} — 16 bytes,
// always inline in the event node — and the payload travels as a shared
// StripBuffer view of the store's bytes, never a copy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/strip_cache.hpp"
#include "net/network.hpp"
#include "pfs/file.hpp"
#include "pfs/region.hpp"
#include "pfs/store.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/simulator.hpp"
#include "storage/disk.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::pfs {

class HaloPrefetcher;

/// Callback delivering a strip payload at the requester (empty buffer in
/// timing-only mode).
using StripDataFn = sim::InplaceFn<void(const StripBuffer&)>;

class PfsServer;

/// A remote strip read that has arrived at a server but not yet reserved
/// the disk — the unit a disk scheduler reorders.
struct ReadRequest {
  FileId file = kInvalidFile;
  std::uint64_t strip = 0;
  std::uint64_t offset_in_strip = 0;
  std::uint64_t length = 0;
  net::NodeId requester = net::kInvalidNode;
  net::TrafficClass cls = net::TrafficClass::kControl;
  net::TenantId tenant = net::kNoTenant;
  StripDataFn on_data;
  /// Causal span the read belongs to; 0 when untracked. Disk service time
  /// is charged to it, and the payload reply carries it onto the wire.
  std::uint64_t span = 0;
  /// Noncontiguous runs within this strip. Empty = classic contiguous read
  /// over [offset_in_strip, offset_in_strip + length). Non-empty = list
  /// I/O: `length` is the total payload across the runs (what fair-queue
  /// costing sees), the server coalesces the runs into minimal disk
  /// extents, and the reply adds per-run framing on the wire.
  std::vector<StripRun> runs;
};

/// Disk scheduling hook at the server's read service point (traffic
/// engine's weighted fair queue). Tenant-tagged reads are offered to the
/// scheduler before reserving the disk; the scheduler either declines (the
/// read is served immediately) or takes ownership and releases it later
/// through PfsServer::serve_read_now(). Untagged reads always bypass the
/// hook, keeping the classic paths bit-identical.
class ReadScheduler {
 public:
  virtual ~ReadScheduler() = default;

  /// Return true to take ownership of `request` (serve it later via
  /// serve_read_now()); false to let the server serve it now.
  virtual bool intercept_read(PfsServer& server, ReadRequest& request) = 0;
};

class PfsServer {
 public:
  PfsServer(sim::Simulator& simulator, net::Network& network,
            net::NodeId node, const storage::DiskConfig& disk_config);
  ~PfsServer();

  PfsServer(const PfsServer&) = delete;
  PfsServer& operator=(const PfsServer&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] ServerStore& store() { return store_; }
  [[nodiscard]] const ServerStore& store() const { return store_; }
  [[nodiscard]] storage::Disk& disk() { return disk_; }
  [[nodiscard]] const storage::Disk& disk() const { return disk_; }

  /// Serve a read request that has already arrived at this server: read
  /// `length` bytes starting `offset_in_strip` into the strip from disk,
  /// then ship them to `requester`. `on_data` (optional) runs at the
  /// requester when the data has fully arrived, receiving a shared view of
  /// the stored bytes (empty in timing-only mode).
  /// Tenant-tagged reads (`tenant != net::kNoTenant`) are offered to an
  /// installed ReadScheduler first and carry the tag on the payload reply.
  void serve_read(FileId file, std::uint64_t strip,
                  std::uint64_t offset_in_strip, std::uint64_t length,
                  net::NodeId requester, net::TrafficClass cls,
                  StripDataFn on_data,
                  net::TenantId tenant = net::kNoTenant,
                  std::uint64_t span = 0);

  /// Serve a scatter-gather list read: `runs` are disjoint ascending runs
  /// over strips of `file` stored on this server. Per strip, the server
  /// coalesces runs into minimal disk extents and reads only those extents;
  /// the run bytes are gathered in request order into one pooled payload
  /// (data mode) and shipped as a single packed message of payload +
  /// per-run framing bytes. Goes through the same ReadScheduler intercept
  /// as serve_read() when tenant-tagged.
  void serve_read_list(FileId file, std::vector<StripRun> runs,
                       net::NodeId requester, net::TrafficClass cls,
                       StripDataFn on_data,
                       net::TenantId tenant = net::kNoTenant,
                       std::uint64_t span = 0);

  /// Serve `request` now, bypassing any installed read scheduler: reserve
  /// the disk and ship the payload. Schedulers call this to release reads
  /// they queued; everyone else calls serve_read(). List requests
  /// (non-empty `request.runs`) branch to the coalescing path.
  void serve_read_now(ReadRequest request);

  /// Install (or remove, with nullptr) the disk scheduling hook. The
  /// scheduler must outlive the server's use of it.
  void set_read_scheduler(ReadScheduler* scheduler) {
    read_scheduler_ = scheduler;
  }

  /// Serve a write whose payload has already arrived: write to disk, store
  /// the bytes, then deliver a zero-payload ack to `requester`.
  /// `on_ack` (optional) runs at the requester when the ack arrives.
  void serve_write(FileId file, const StripRef& strip, StripBuffer data,
                   net::NodeId requester, net::TrafficClass cls,
                   net::DeliveryFn on_ack);

  /// Local (no-network) strip read for the active-storage path.
  /// Reserves the disk and returns the completion time.
  sim::SimTime read_local(FileId file, std::uint64_t strip);

  /// Local strip write (creates the strip if new). Invalidates the strip in
  /// every attached remote-strip cache — peers may hold a stale halo copy.
  sim::SimTime write_local(FileId file, const StripRef& strip,
                           StripBuffer data);

  /// Attach this server's remote-strip cache and the PFS-wide invalidation
  /// hub (both owned by the Pfs; either may be null = caching off).
  void attach_cache(cache::StripCache* strip_cache,
                    cache::InvalidationHub* hub) {
    cache_ = strip_cache;
    hub_ = hub;
  }

  /// The remote-strip cache on this server, or nullptr when caching is off.
  [[nodiscard]] cache::StripCache* strip_cache() { return cache_; }
  [[nodiscard]] const cache::StripCache* strip_cache() const { return cache_; }

  /// Give this server a halo prefetcher (requires an attached cache for the
  /// fetched strips to land in). Owned by the server; at most once.
  void attach_prefetcher(std::unique_ptr<HaloPrefetcher> prefetcher);

  /// The halo prefetcher, or nullptr when prefetching is off.
  [[nodiscard]] HaloPrefetcher* prefetcher() { return prefetcher_.get(); }
  [[nodiscard]] const HaloPrefetcher* prefetcher() const {
    return prefetcher_.get();
  }

  /// Requests served on behalf of other nodes (the NAS service load).
  [[nodiscard]] std::uint64_t remote_reads_served() const {
    return remote_reads_served_;
  }
  [[nodiscard]] std::uint64_t remote_bytes_served() const {
    return remote_bytes_served_;
  }

  /// List-I/O service counters: requests handled, runs they carried, and
  /// the coalesced disk extents actually read. extents <= runs always; the
  /// ratio is the coalescing factor the decision engine prices.
  [[nodiscard]] std::uint64_t list_requests_served() const {
    return list_requests_served_;
  }
  [[nodiscard]] std::uint64_t list_runs_served() const {
    return list_runs_served_;
  }
  [[nodiscard]] std::uint64_t list_extents_read() const {
    return list_extents_read_;
  }

  /// Enroll this server's instruments (served reads/bytes, disk queue,
  /// cache and prefetcher stats when attached) in the telemetry registry.
  void enroll(telemetry::Registry& registry) const;

 private:
  /// One in-flight remote read: the sliced payload view and the requester's
  /// handler, parked here so the disk-done and delivery events capture only
  /// {this, op}. Recycled through a free list — steady state allocates
  /// nothing.
  struct ReadOp {
    StripBuffer payload;
    StripDataFn handler;
    std::uint64_t length = 0;
    net::NodeId requester = net::kInvalidNode;
    net::TrafficClass cls = net::TrafficClass::kControl;
    net::TenantId tenant = net::kNoTenant;
    std::uint64_t span = 0;
  };

  /// One pending write ack (same pooling idea as ReadOp).
  struct AckOp {
    net::DeliveryFn on_ack;
    net::NodeId requester = net::kInvalidNode;
    net::TrafficClass cls = net::TrafficClass::kControl;
  };

  [[nodiscard]] ReadOp* acquire_read_op();
  void release_read_op(ReadOp* op);
  [[nodiscard]] AckOp* acquire_ack_op();
  void release_ack_op(AckOp* op);

  /// Coalescing service path for a list request (request.runs non-empty).
  void serve_list_now(ReadRequest request);

  /// Schedule the payload reply for `op` at `read_done` (shared by the
  /// contiguous and list paths; `op->length` is the wire size).
  void ship_read_op(ReadOp* op, sim::SimTime read_done);

  sim::Simulator& sim_;
  net::Network& net_;
  net::NodeId node_;
  storage::Disk disk_;
  ServerStore store_;
  telemetry::Counter remote_reads_served_;
  telemetry::Counter remote_bytes_served_;
  telemetry::Counter list_requests_served_;
  telemetry::Counter list_runs_served_;
  telemetry::Counter list_extents_read_;
  cache::StripCache* cache_ = nullptr;
  cache::InvalidationHub* hub_ = nullptr;
  ReadScheduler* read_scheduler_ = nullptr;
  std::unique_ptr<HaloPrefetcher> prefetcher_;
  std::vector<std::unique_ptr<ReadOp>> read_ops_;
  std::vector<ReadOp*> free_read_ops_;
  std::vector<std::unique_ptr<AckOp>> ack_ops_;
  std::vector<AckOp*> free_ack_ops_;
};

}  // namespace das::pfs
