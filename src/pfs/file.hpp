// File metadata and strip arithmetic.
//
// A file is a 1-D byte array divided into fixed-size strips (PVFS2 calls
// them "strips"/"stripes"; default 64 KB). Strip arithmetic here implements
// the paper's Eq. 1 (strip(i) = i*E / strip_size) and the offset/length
// bookkeeping every other module builds on.
#pragma once

#include <cstdint>
#include <string>

#include "simkit/assert.hpp"

namespace das::pfs {

/// Identifies a file within one Pfs instance.
using FileId = std::uint32_t;

inline constexpr FileId kInvalidFile = UINT32_MAX;

/// One strip of a file: its index and the byte range it covers.
struct StripRef {
  std::uint64_t index = 0;
  std::uint64_t offset = 0;  // byte offset of the strip within the file
  std::uint64_t length = 0;  // bytes in this strip (< strip_size only at EOF)

  friend bool operator==(const StripRef&, const StripRef&) = default;
};

struct FileMeta {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::uint32_t element_size = 4;  // E in the paper; float rasters by default
  std::uint64_t strip_size = 64 * 1024;  // PVFS2 default

  /// Grid geometry carried with the file so dependence offsets expressed in
  /// elements can be related to rows. Zero when the file is not a raster.
  std::uint32_t raster_width = 0;
  std::uint32_t raster_height = 0;

  /// Layout generation, bumped each time an online migration of this file
  /// completes. Caches tag entries with the epoch they were inserted under,
  /// so anything cached against a prior placement drops out lazily even if
  /// a per-strip invalidation raced with an in-flight fill.
  std::uint32_t layout_epoch = 0;

  [[nodiscard]] std::uint64_t num_elements() const {
    DAS_REQUIRE(element_size > 0);
    return size_bytes / element_size;
  }

  [[nodiscard]] std::uint64_t num_strips() const {
    DAS_REQUIRE(strip_size > 0);
    return (size_bytes + strip_size - 1) / strip_size;
  }

  /// Paper Eq. 1: the strip holding element `i`. The product is 64-bit but
  /// only meaningful for elements inside the file, so out-of-range indexes
  /// (which would silently map past EOF) are rejected.
  [[nodiscard]] std::uint64_t strip_of_element(std::uint64_t i) const {
    DAS_REQUIRE(i < num_elements());
    return i * element_size / strip_size;
  }

  /// The strip holding byte `offset`.
  [[nodiscard]] std::uint64_t strip_of_byte(std::uint64_t offset) const {
    DAS_REQUIRE(offset < size_bytes);
    return offset / strip_size;
  }

  /// Full description of strip `index`.
  [[nodiscard]] StripRef strip(std::uint64_t index) const {
    DAS_REQUIRE(index < num_strips());
    const std::uint64_t off = index * strip_size;
    const std::uint64_t len =
        off + strip_size <= size_bytes ? strip_size : size_bytes - off;
    return StripRef{index, off, len};
  }

  /// Elements wholly contained in strip `index`.
  [[nodiscard]] std::uint64_t elements_in_strip(std::uint64_t index) const {
    const StripRef s = strip(index);
    return s.length / element_size;
  }
};

}  // namespace das::pfs
