#include "pfs/pfs.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "simkit/assert.hpp"

namespace das::pfs {

Pfs::Pfs(sim::Simulator& simulator, net::Network& network,
         std::vector<net::NodeId> server_nodes,
         const storage::DiskConfig& disk_config)
    : Pfs(simulator, network, std::move(server_nodes),
          std::vector<storage::DiskConfig>(1, disk_config)) {}

Pfs::Pfs(sim::Simulator& simulator, net::Network& network,
         std::vector<net::NodeId> server_nodes,
         std::vector<storage::DiskConfig> disk_configs)
    : sim_(simulator), net_(network), server_nodes_(std::move(server_nodes)) {
  DAS_REQUIRE(!server_nodes_.empty());
  DAS_REQUIRE(disk_configs.size() == 1 ||
              disk_configs.size() == server_nodes_.size());
  servers_.reserve(server_nodes_.size());
  for (std::size_t i = 0; i < server_nodes_.size(); ++i) {
    const net::NodeId node = server_nodes_[i];
    DAS_REQUIRE(node < network.num_nodes());
    servers_.push_back(std::make_unique<PfsServer>(
        simulator, network, node,
        disk_configs.size() == 1 ? disk_configs[0] : disk_configs[i]));
  }
}

PfsServer& Pfs::server(ServerIndex index) {
  DAS_REQUIRE(index < servers_.size());
  return *servers_[index];
}

const PfsServer& Pfs::server(ServerIndex index) const {
  DAS_REQUIRE(index < servers_.size());
  return *servers_[index];
}

net::NodeId Pfs::server_node(ServerIndex index) const {
  DAS_REQUIRE(index < server_nodes_.size());
  return server_nodes_[index];
}

ServerIndex Pfs::server_of_node(net::NodeId node) const {
  const auto it =
      std::find(server_nodes_.begin(), server_nodes_.end(), node);
  if (it == server_nodes_.end()) return kInvalidServer;
  return static_cast<ServerIndex>(it - server_nodes_.begin());
}

FileId Pfs::create_file(FileMeta meta, std::unique_ptr<Layout> layout,
                        const std::vector<std::byte>* data) {
  DAS_REQUIRE(layout != nullptr);
  DAS_REQUIRE(layout->num_servers() == num_servers());
  DAS_REQUIRE(meta.size_bytes > 0);
  DAS_REQUIRE(meta.strip_size > 0);
  DAS_REQUIRE(data == nullptr || data->size() == meta.size_bytes);

  const auto file = static_cast<FileId>(files_.size());
  const std::uint64_t n = meta.num_strips();
  // One payload block for the whole file; every holder's strip is a shared
  // view into it (replicas share bytes with the primary — loading a
  // data-bearing file costs one copy total, not one per placed strip).
  StripBuffer contents;
  if (data != nullptr) contents = StripBuffer::copy_of(*data);
  for (const auto& server : servers_) server->store().reserve_file(file, n);
  for (std::uint64_t s = 0; s < n; ++s) {
    const StripRef ref = meta.strip(s);
    for (const ServerIndex holder : layout->holders(s, n)) {
      StripBuffer bytes;
      if (!contents.empty()) bytes = contents.view(ref.offset, ref.length);
      servers_[holder]->store().put(file, s, ref.length, std::move(bytes));
    }
  }
  FileEntry entry;
  entry.meta = std::move(meta);
  entry.layout = std::move(layout);
  files_.push_back(std::move(entry));
  return file;
}

const FileMeta& Pfs::meta(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  return files_[file].meta;
}

const Layout& Pfs::layout(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  return *files_[file].layout;
}

const Layout& Pfs::read_layout(FileId file, std::uint64_t strip) const {
  DAS_REQUIRE(file < files_.size());
  const FileEntry& entry = files_[file];
  if (entry.migrating && strip >= entry.migrate_frontier) {
    return *entry.prior_layout;
  }
  return *entry.layout;
}

ServerIndex Pfs::read_primary(FileId file, std::uint64_t strip) const {
  return read_layout(file, strip).primary(strip);
}

std::vector<ServerIndex> Pfs::read_holders(FileId file,
                                           std::uint64_t strip) const {
  return read_layout(file, strip)
      .holders(strip, files_[file].meta.num_strips());
}

bool Pfs::migrating(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  return files_[file].migrating;
}

std::uint64_t Pfs::migrate_frontier(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  return files_[file].migrate_frontier;
}

std::uint32_t Pfs::layout_epoch(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  return files_[file].meta.layout_epoch;
}

void Pfs::begin_migration(FileId file, std::unique_ptr<Layout> target) {
  DAS_REQUIRE(file < files_.size());
  DAS_REQUIRE(target != nullptr);
  DAS_REQUIRE(target->num_servers() == num_servers());
  FileEntry& entry = files_[file];
  DAS_REQUIRE(!entry.migrating);
  entry.prior_layout = std::move(entry.layout);
  entry.layout = std::move(target);
  entry.migrate_frontier = 0;
  entry.migrating = true;
}

void Pfs::commit_migrated(FileId file, std::uint64_t new_frontier) {
  DAS_REQUIRE(file < files_.size());
  FileEntry& entry = files_[file];
  DAS_REQUIRE(entry.migrating);
  DAS_REQUIRE(new_frontier >= entry.migrate_frontier);
  const std::uint64_t n = entry.meta.num_strips();
  DAS_REQUIRE(new_frontier <= n);

  for (std::uint64_t s = entry.migrate_frontier; s < new_frontier; ++s) {
    // From this point reads of strip s resolve under the target layout;
    // any cached copy is invalidated so no cache serves across the flip.
    cache_hub_.invalidate(cache::CacheKey{file, s});
    const auto old_holders = entry.prior_layout->holders(s, n);
    const auto new_holders = entry.layout->holders(s, n);
    for (const ServerIndex holder : old_holders) {
      if (std::find(new_holders.begin(), new_holders.end(), holder) !=
          new_holders.end()) {
        continue;  // still a holder under the target layout
      }
      // Demote, don't erase: reads already in flight toward this holder
      // (issued under the prior layout) must still find the bytes.
      ServerStore& store = servers_[holder]->store();
      if (store.has(file, s)) store.retire(file, s);
    }
    for (const ServerIndex holder : new_holders) {
      DAS_REQUIRE(servers_[holder]->store().has(file, s) &&
                  "commit_migrated before the target copy landed");
    }
  }
  entry.migrate_frontier = new_frontier;
}

void Pfs::end_migration(FileId file) {
  DAS_REQUIRE(file < files_.size());
  FileEntry& entry = files_[file];
  DAS_REQUIRE(entry.migrating);
  DAS_REQUIRE(entry.migrate_frontier == entry.meta.num_strips());
  // Into the graveyard, not destroyed: holder snapshots and layout
  // references captured before the migration stay valid.
  entry.retired_layouts.push_back(std::move(entry.prior_layout));
  entry.migrating = false;
  entry.migrate_frontier = 0;
  ++entry.meta.layout_epoch;
  cache_hub_.advance_file_epoch(file, entry.meta.layout_epoch);
}

std::uint64_t Pfs::redistribute(FileId file,
                                std::unique_ptr<Layout> new_layout,
                                std::function<void()> on_complete) {
  DAS_REQUIRE(file < files_.size());
  DAS_REQUIRE(new_layout != nullptr);
  DAS_REQUIRE(new_layout->num_servers() == num_servers());

  FileEntry& entry = files_[file];
  DAS_REQUIRE(!entry.migrating &&
              "offline redistribute during an online migration");
  const std::uint64_t n = entry.meta.num_strips();
  std::uint64_t bytes_moved = 0;

  // The file's placement is about to change wholesale: any cached copy of
  // its strips may soon disagree with the authoritative holders.
  cache_hub_.invalidate_file(file);

  // Completion bookkeeping shared by all in-flight transfers.
  auto outstanding = std::make_shared<std::uint64_t>(0);
  auto finished_issuing = std::make_shared<bool>(false);
  auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
  auto transfer_finished = [outstanding, finished_issuing, done]() {
    DAS_REQUIRE(*outstanding > 0);
    --*outstanding;
    if (*outstanding == 0 && *finished_issuing && *done) (*done)();
  };

  for (std::uint64_t s = 0; s < n; ++s) {
    const StripRef ref = entry.meta.strip(s);
    const auto old_holders = entry.layout->holders(s, n);
    const auto new_holders = new_layout->holders(s, n);
    const ServerIndex source = old_holders.front();  // primary copy

    for (const ServerIndex target : new_holders) {
      if (std::find(old_holders.begin(), old_holders.end(), target) !=
          old_holders.end()) {
        continue;  // already present
      }
      bytes_moved += ref.length;
      ++*outstanding;

      // Take a shared handle on the payload now: a later erase drops only
      // the store's reference, not the block this transfer carries.
      StripBuffer payload = servers_[source]->store().buffer(file, s);
      const net::NodeId src_node = server_nodes_[source];
      const net::NodeId dst_node = server_nodes_[target];
      PfsServer& src_server = *servers_[source];
      PfsServer& dst_server = *servers_[target];

      const sim::SimTime read_done = src_server.read_local(file, s);
      sim_.schedule_at(
          read_done,
          [this, &dst_server, file, ref, src_node, dst_node,
           payload = std::move(payload), transfer_finished]() mutable {
            net_.send(net::Message{
                src_node, dst_node, ref.length,
                net::TrafficClass::kServerServer,
                [&dst_server, file, ref, payload = std::move(payload),
                 transfer_finished]() mutable {
                  dst_server.write_local(file, ref, std::move(payload));
                  transfer_finished();
                }});
          },
          "pfs.redistribute");
    }

    // Drop copies no longer called for by the new layout (no time cost:
    // deletion is metadata-only).
    for (const ServerIndex holder : old_holders) {
      if (std::find(new_holders.begin(), new_holders.end(), holder) ==
          new_holders.end()) {
        servers_[holder]->store().erase(file, s);
      }
    }
  }

  *finished_issuing = true;
  if (*outstanding == 0 && *done) {
    // Nothing moved; complete after a metadata round-trip.
    sim_.schedule_after(net_.config().wire_latency,
                        [done]() { (*done)(); }, "pfs.redistribute_noop");
  }
  entry.layout = std::move(new_layout);
  return bytes_moved;
}

std::vector<std::byte> Pfs::gather_bytes(FileId file) const {
  DAS_REQUIRE(file < files_.size());
  const FileEntry& entry = files_[file];
  std::vector<std::byte> out(entry.meta.size_bytes);
  const std::uint64_t n = entry.meta.num_strips();
  for (std::uint64_t s = 0; s < n; ++s) {
    const StripRef ref = entry.meta.strip(s);
    // Per-strip resolution: during a migration the primary of a strip the
    // frontier has not passed is still the prior layout's.
    const ServerIndex holder = read_layout(file, s).primary(s);
    const auto bytes = servers_[holder]->store().bytes(file, s);
    DAS_REQUIRE(bytes.size() == ref.length);
    std::copy(bytes.begin(), bytes.end(),
              out.begin() + static_cast<std::ptrdiff_t>(ref.offset));
  }
  return out;
}

std::uint64_t Pfs::total_stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_) total += s->store().stored_bytes();
  return total;
}

void Pfs::enable_strip_caches(const cache::CacheConfig& config) {
  DAS_REQUIRE(caches_.empty());
  if (!config.active()) return;
  caches_.reserve(servers_.size());
  for (const auto& server : servers_) {
    caches_.push_back(std::make_unique<cache::StripCache>(config));
    caches_.back()->set_trace_node(server->node());
    caches_.back()->set_tracer(&sim_.tracer());
    cache_hub_.attach(caches_.back().get());
    server->attach_cache(caches_.back().get(), &cache_hub_);
  }
}

cache::CacheStats Pfs::cache_stats() const {
  cache::CacheStats total;
  for (const auto& c : caches_) total += c->stats();
  return total;
}

void Pfs::enable_prefetch(const PrefetchConfig& config) {
  DAS_REQUIRE(!prefetch_enabled_);
  if (!config.active()) return;
  DAS_REQUIRE(caching_enabled() &&
              "halo prefetch requires active strip caches");
  prefetch_enabled_ = true;
  for (const auto& server : servers_) {
    server->attach_prefetcher(std::make_unique<HaloPrefetcher>(
        sim_, net_, *server, config,
        [this](std::uint32_t index) -> PfsServer& {
          return this->server(index);
        }));
    HaloPrefetcher* prefetcher = server->prefetcher();
    cache_hub_.attach_listener(cache::InvalidationHub::Listener{
        [prefetcher](const cache::CacheKey& key) {
          prefetcher->invalidate(key);
        },
        [prefetcher](std::uint64_t file) {
          prefetcher->invalidate_file(file);
        }});
  }
}

PrefetchStats Pfs::prefetch_stats() const {
  PrefetchStats total;
  for (const auto& server : servers_) {
    if (const HaloPrefetcher* prefetcher = server->prefetcher()) {
      total += prefetcher->stats();
    }
  }
  return total;
}

}  // namespace das::pfs
