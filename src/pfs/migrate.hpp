// Online layout migration: re-stripe a live file group by group.
//
// The migrator drives the Pfs migration protocol (begin/commit/end, see
// pfs.hpp): it copies every strip the target layout places on a new holder
// from the strip's current primary, as ordinary serve_read/write_local
// traffic — the bytes ride the source's disk, both NICs, any installed
// fair-queue scheduler, and the invalidation hub, so migration competes for
// (and is charged to) the same resources as everything else. The frontier
// advances one strip group at a time; reads keep flowing throughout,
// resolving against the layout each strip is currently served under.
//
// Transfers carry kMigrationTenant so a weighted fair queue can deprioritise
// them below tenant traffic (low-weight background class). Without a
// scheduler installed the tag is inert and the transfers are plain
// server-to-server messages.
#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"
#include "simkit/time.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::pfs {

/// Tenant tag carried by migration transfers. Distinct from net::kNoTenant
/// so the transfers DO ride installed NIC/disk fair queues (where a low
/// weight keeps them in the background); reserved here so no tenant
/// generator ever collides with it.
inline constexpr net::TenantId kMigrationTenant = UINT32_MAX - 1;

struct MigrateOptions {
  /// Strips committed per frontier advance. Smaller rounds bound how much
  /// of the file is ever double-resident; larger rounds amortise commit
  /// overhead.
  std::uint64_t strips_per_round = 16;
  net::TenantId tenant = kMigrationTenant;
};

struct MigrationStats {
  std::uint64_t strips_total = 0;
  /// Strips that needed at least one network transfer.
  std::uint64_t strips_moved = 0;
  /// Strips whose target copy was a retired local leftover, reinstated
  /// without network traffic (a migration moving back).
  std::uint64_t strips_reinstated = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t rounds = 0;
  sim::SimTime started_at = 0;
  sim::SimTime finished_at = 0;
};

class LayoutMigrator {
 public:
  using DoneFn = std::function<void(const MigrationStats&)>;

  LayoutMigrator(sim::Simulator& simulator, Pfs& pfs)
      : sim_(simulator), pfs_(pfs) {}

  LayoutMigrator(const LayoutMigrator&) = delete;
  LayoutMigrator& operator=(const LayoutMigrator&) = delete;

  /// Re-stripe `file` onto `target` while it keeps serving reads. One
  /// migration at a time per migrator. `on_done` (optional) fires after
  /// end_migration, when every copy has landed and the epoch has advanced.
  void migrate(FileId file, std::unique_ptr<Layout> target,
               const MigrateOptions& options, DoneFn on_done);

  [[nodiscard]] bool busy() const { return busy_; }

  /// Stats of the migration in progress, or of the last completed one.
  [[nodiscard]] const MigrationStats& stats() const { return stats_; }

  /// Totals across every migration this migrator has run.
  [[nodiscard]] std::uint64_t total_migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t total_bytes_moved() const {
    return total_bytes_moved_;
  }

  /// Enroll migration totals so the time series shows when rounds move
  /// bytes (the srv-srv byte-rate shift during a phase change).
  void enroll(telemetry::Registry& registry) const;

 private:
  void start_round();
  void round_transfer_done();
  void finish_migration();

  sim::Simulator& sim_;
  Pfs& pfs_;

  FileId file_ = kInvalidFile;
  MigrateOptions options_;
  DoneFn on_done_;
  std::uint64_t round_end_ = 0;
  std::uint64_t outstanding_ = 0;
  bool issuing_ = false;
  bool busy_ = false;
  MigrationStats stats_;
  telemetry::Counter migrations_;
  telemetry::Counter total_bytes_moved_;
};

}  // namespace das::pfs
