// Minimal command-line flag parsing for the example binaries:
// --name=value or --name value; unknown flags are reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace das::runner {

class Args {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Value lookups with defaults. get_bool accepts true/false, 1/0,
  /// yes/no, and on/off; anything else throws (a typo like --prefetch=of
  /// silently reading as false would defeat the disabled==baseline check).
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names that were parsed but never looked up (typo detection).
  [[nodiscard]] std::string unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace das::runner
