#include "runner/paper.hpp"

#include <cstdio>
#include <sstream>

#include "simkit/assert.hpp"

namespace das::runner {

std::vector<std::string> paper_kernels() {
  return {"flow-routing", "flow-accumulation", "gaussian-2d"};
}

core::ClusterConfig paper_cluster(std::uint32_t total_nodes) {
  DAS_REQUIRE(total_nodes >= 2 && total_nodes % 2 == 0);
  core::ClusterConfig cfg;
  cfg.storage_nodes = total_nodes / 2;
  cfg.compute_nodes = total_nodes / 2;
  return cfg;
}

core::WorkloadSpec paper_workload(const std::string& kernel,
                                  std::uint64_t gib) {
  core::WorkloadSpec spec;
  spec.kernel_name = kernel;
  spec.data_bytes = gib << 30;
  spec.strip_size = 1ULL << 20;
  spec.element_size = 4;
  // One raster row is one element short of a strip, so the 8-neighbour
  // reach (imgWidth + 1 elements) is exactly one strip: the dependence halo
  // is a single strip per side, as in the paper's Figs. 4-9.
  spec.raster_width =
      static_cast<std::uint32_t>(spec.strip_size / spec.element_size) - 1;
  spec.with_data = false;
  return spec;
}

core::RunReport run_cell(core::Scheme scheme, const std::string& kernel,
                         std::uint64_t gib, std::uint32_t total_nodes) {
  core::SchemeRunOptions options;
  options.scheme = scheme;
  options.workload = paper_workload(kernel, gib);
  options.cluster = paper_cluster(total_nodes);
  return core::run_scheme(options);
}

std::string format_checks(const std::vector<ShapeCheck>& checks) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line, "%-52s %-34s %10s %s\n", "check",
                "paper", "measured", "holds");
  out << line;
  for (const ShapeCheck& c : checks) {
    std::snprintf(line, sizeof line, "%-52s %-34s %10.3f %s\n",
                  c.what.c_str(), c.paper.c_str(), c.measured,
                  c.holds ? "yes" : "NO");
    out << line;
  }
  return out.str();
}

}  // namespace das::runner
