// Paper-experiment helpers: the exact configurations of the paper's
// evaluation (§IV-A) and sweep/reporting utilities shared by the bench
// binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/scheme.hpp"

namespace das::runner {

/// The paper's Table-I kernels, in its order.
[[nodiscard]] std::vector<std::string> paper_kernels();

/// Cluster of `total_nodes` with the paper's default 1:1 storage:compute
/// split (experiments used 24-60 nodes).
[[nodiscard]] core::ClusterConfig paper_cluster(std::uint32_t total_nodes);

/// Workload of `gib` gibibytes on `kernel` with the paper-scale geometry
/// (1 MiB strips, 4-byte elements, one raster row per strip).
[[nodiscard]] core::WorkloadSpec paper_workload(const std::string& kernel,
                                                std::uint64_t gib);

/// Run one (scheme, kernel, size, nodes) cell of the evaluation.
[[nodiscard]] core::RunReport run_cell(core::Scheme scheme,
                                       const std::string& kernel,
                                       std::uint64_t gib,
                                       std::uint32_t total_nodes);

/// One paper-vs-measured check line for EXPERIMENTS.md.
struct ShapeCheck {
  std::string what;       // e.g. "DAS vs TS speedup, flow-routing, 24 GB"
  std::string paper;      // the paper's qualitative/quantitative claim
  double measured = 0.0;  // our value
  bool holds = false;     // does the measured value match the claim's shape
};

[[nodiscard]] std::string format_checks(const std::vector<ShapeCheck>& checks);

}  // namespace das::runner
