// Thread-pool sweep runner: execute N independent simulation cells
// concurrently.
//
// A parameter sweep (kernels x schemes x trials) is embarrassingly parallel:
// every cell builds its own Cluster, its own Simulator, and — via
// sim::RunContext — its own logger/tracer/rng, so cells share no mutable
// state. The runner hands cell indices to a fixed pool of worker threads;
// the caller stores results into a pre-sized vector slot per index and
// prints everything afterwards in index order, which keeps sweep output
// byte-identical for any --jobs value.
#pragma once

#include <cstddef>
#include <functional>

namespace das::runner {

/// Run `body(0) .. body(count-1)`, each exactly once, on up to `jobs`
/// threads. jobs <= 1 runs everything inline on the calling thread (the
/// serial path — no threads are created). Blocks until all calls return.
/// If any call throws, the first exception (in thread-observation order) is
/// rethrown on the calling thread after every worker has drained.
///
/// `body` must be safe to call concurrently from different threads for
/// different indices; indices are claimed in order but may complete in any
/// order, so bodies must not depend on each other.
void parallel_for_indexed(unsigned jobs, std::size_t count,
                          const std::function<void(std::size_t)>& body);

/// Hardware concurrency with a floor of 1 (the --jobs=0 "auto" value).
[[nodiscard]] unsigned default_jobs();

}  // namespace das::runner
