#include "runner/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace das::runner {

unsigned default_jobs() {
  return std::max(1U, std::thread::hardware_concurrency());
}

void parallel_for_indexed(unsigned jobs, std::size_t count,
                          const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t threads =
      std::min<std::size_t>(jobs, count);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace das::runner
