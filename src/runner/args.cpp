#include "runner/args.hpp"

#include <stdexcept>

namespace das::runner {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  touched_[name] = true;
  return values_.contains(name);
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Args::get_double(const std::string& name, double fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + " expects a boolean, got: " + v);
}

std::string Args::unused() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!touched_.contains(name)) {
      if (!out.empty()) out += ", ";
      out += name;
    }
  }
  return out;
}

}  // namespace das::runner
