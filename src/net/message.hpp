// Message types exchanged over the simulated cluster fabric.
#pragma once

#include <cstdint>

#include "simkit/inplace_fn.hpp"

namespace das::net {

/// Identifies a cluster node (compute or storage). Dense, 0-based.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Identifies a traffic-engine tenant. Messages issued by the classic
/// single-job paths carry kNoTenant and are invisible to any installed
/// tenant scheduler, so those paths stay bit-identical to the untagged
/// system.
using TenantId = std::uint32_t;

inline constexpr TenantId kNoTenant = UINT32_MAX;

/// Traffic accounting categories. The DAS paper's argument is entirely about
/// which of these categories bytes fall into, so the network attributes every
/// byte to one of them.
enum class TrafficClass : std::uint8_t {
  kClientServer = 0,  // compute node <-> storage node (normal I/O path)
  kServerServer = 1,  // storage node <-> storage node (dependence traffic)
  kControl = 2,       // requests, acks, offload commands
};

inline constexpr std::size_t kNumTrafficClasses = 3;

/// Human-readable class name for reports.
constexpr const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kClientServer: return "client-server";
    case TrafficClass::kServerServer: return "server-server";
    case TrafficClass::kControl: return "control";
  }
  return "?";
}

/// Callback type carried by messages and the PFS data plane. Inline up to
/// kInplaceFnStorage bytes, so a delivery callback costs no heap allocation;
/// move-only, which makes Message move-only too.
using DeliveryFn = sim::InplaceFn<void()>;

/// One message in flight. `on_delivered` runs at the receiver once the last
/// byte has cleared the receiving NIC.
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t bytes = 0;
  TrafficClass cls = TrafficClass::kControl;
  DeliveryFn on_delivered;
  /// Tenant the bytes are moved for (traffic engine); kNoTenant otherwise.
  TenantId tenant = kNoTenant;
  /// Causal span the message belongs to; 0 when the request is untracked.
  /// The network charges queue wait and wire time to this span.
  std::uint64_t span = 0;
};

}  // namespace das::net
