// Star-topology cluster fabric.
//
// Every node connects to a non-blocking switch through its own full-duplex
// NIC; the NICs are the bandwidth bottleneck (as on the paper's testbed,
// where the per-node link, not the switch backplane, limits transfers).
// A message experiences: sender egress serialization -> wire latency ->
// receiver ingress serialization -> delivery callback.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "simkit/simulator.hpp"
#include "simkit/stats.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::net {

struct NetworkConfig {
  std::uint32_t num_nodes = 0;
  double nic_bandwidth_bps = 600.0 * 1024 * 1024;  // 600 MiB/s full duplex
  sim::SimDuration wire_latency = sim::microseconds(50);
  /// Bytes charged for a zero-payload control message (headers, RPC frame).
  std::uint64_t control_overhead_bytes = 256;
};

/// Egress scheduling hook (traffic engine's weighted fair queue).
///
/// When installed, tenant-tagged messages are offered to the scheduler
/// before touching the sender's NIC; the scheduler either declines (the
/// message transmits immediately) or takes ownership and releases it later
/// through Network::transmit(). Untagged messages always bypass the hook,
/// so the classic single-job paths are bit-identical with or without an
/// installed scheduler.
class SendScheduler {
 public:
  virtual ~SendScheduler() = default;

  /// Return true to take ownership of `msg` (release it via transmit()
  /// later); false to let the network transmit it now.
  virtual bool intercept(Message& msg) = 0;
};

class Network {
 public:
  Network(sim::Simulator& simulator, const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Queue `msg` for transmission at the current simulated time.
  /// Messages between a node and itself are delivered after the wire latency
  /// only (loopback does not consume NIC bandwidth). Tenant-tagged messages
  /// are offered to the installed SendScheduler first (see above).
  void send(Message msg);

  /// Transmit `msg` now, bypassing any installed scheduler: reserve the
  /// sender egress / receiver ingress and schedule delivery. Schedulers call
  /// this to release messages they queued; everyone else calls send().
  void transmit(Message msg);

  /// Install (or remove, with nullptr) the egress scheduling hook. The
  /// scheduler must outlive the network's use of it.
  void set_send_scheduler(SendScheduler* scheduler) {
    scheduler_ = scheduler;
  }

  /// Convenience: send a small control message (request/ack).
  void send_control(NodeId src, NodeId dst, DeliveryFn on_delivered);

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nics_.size());
  }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] const Nic& nic(NodeId node) const;

  /// Total payload bytes delivered in each traffic class.
  [[nodiscard]] std::uint64_t bytes_delivered(TrafficClass cls) const {
    return bytes_by_class_[static_cast<std::size_t>(cls)];
  }

  /// Count of messages delivered in each traffic class.
  [[nodiscard]] std::uint64_t messages_delivered(TrafficClass cls) const {
    return msgs_by_class_[static_cast<std::size_t>(cls)];
  }

  /// End-to-end latency samples (seconds), all classes.
  [[nodiscard]] const sim::Histogram& latency_histogram() const {
    return latency_;
  }

  /// Per-message NIC queue wait (seconds): time spent behind earlier
  /// transfers at the sender's egress plus the receiver's ingress.
  [[nodiscard]] const sim::Histogram& queue_wait_histogram() const {
    return queue_wait_;
  }

  /// Per-message wire time (seconds): serialization both ends + latency,
  /// i.e. end-to-end minus the queue wait.
  [[nodiscard]] const sim::Histogram& wire_histogram() const { return wire_; }

  /// Enroll per-class byte/message counters and the latency histograms in
  /// the run's telemetry registry.
  void enroll(telemetry::Registry& registry) const;

 private:
  sim::Simulator& sim_;
  NetworkConfig config_;
  SendScheduler* scheduler_ = nullptr;
  std::vector<Nic> nics_;
  telemetry::Counter bytes_by_class_[kNumTrafficClasses];
  telemetry::Counter msgs_by_class_[kNumTrafficClasses];
  sim::Histogram latency_;
  sim::Histogram queue_wait_;
  sim::Histogram wire_;
};

}  // namespace das::net
