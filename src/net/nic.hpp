// Full-duplex network interface model.
//
// Each direction (egress/ingress) is a serial resource: transfers reserve it
// back-to-back, so concurrent senders to one receiver queue behind each other
// at the receiving NIC (incast), and one sender's messages serialize at its
// own egress. Reservation uses "next free time" bookkeeping rather than
// per-byte events, keeping large simulations cheap.
#pragma once

#include <cstdint>

#include "simkit/time.hpp"

namespace das::net {

class Nic {
 public:
  /// `bandwidth_bps` applies independently to each direction (full duplex).
  explicit Nic(double bandwidth_bps);

  /// Reserve the egress path for `bytes` starting no earlier than `now`.
  /// Returns the simulated time the last byte leaves this NIC.
  sim::SimTime reserve_egress(sim::SimTime now, std::uint64_t bytes);

  /// Reserve the ingress path for `bytes` starting no earlier than `arrival`.
  /// Returns the simulated time the last byte has been received.
  sim::SimTime reserve_ingress(sim::SimTime arrival, std::uint64_t bytes);

  [[nodiscard]] double bandwidth_bps() const { return bandwidth_bps_; }

  /// Accumulated busy time per direction (for utilization reporting).
  [[nodiscard]] sim::SimDuration egress_busy() const { return egress_busy_; }
  [[nodiscard]] sim::SimDuration ingress_busy() const { return ingress_busy_; }

  /// Bytes moved per direction.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

  /// Earliest time a new egress/ingress transfer could start.
  [[nodiscard]] sim::SimTime egress_free_at() const { return egress_free_at_; }
  [[nodiscard]] sim::SimTime ingress_free_at() const {
    return ingress_free_at_;
  }

 private:
  double bandwidth_bps_;
  sim::SimTime egress_free_at_ = 0;
  sim::SimTime ingress_free_at_ = 0;
  sim::SimDuration egress_busy_ = 0;
  sim::SimDuration ingress_busy_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace das::net
