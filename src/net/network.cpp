#include "net/network.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::net {

Network::Network(sim::Simulator& simulator, const NetworkConfig& config)
    : sim_(simulator), config_(config) {
  DAS_REQUIRE(config.num_nodes > 0);
  nics_.reserve(config.num_nodes);
  for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
    nics_.emplace_back(config.nic_bandwidth_bps);
  }
}

const Nic& Network::nic(NodeId node) const {
  DAS_REQUIRE(node < nics_.size());
  return nics_[node];
}

void Network::send(Message msg) {
  DAS_REQUIRE(msg.src < nics_.size());
  DAS_REQUIRE(msg.dst < nics_.size());

  const sim::SimTime sent_at = sim_.now();
  const auto cls_index = static_cast<std::size_t>(msg.cls);
  bytes_by_class_[cls_index] += msg.bytes;
  msgs_by_class_[cls_index] += 1;

  sim::SimTime delivered_at;
  if (msg.src == msg.dst) {
    delivered_at = sent_at + config_.wire_latency;
  } else {
    const std::uint64_t wire_bytes = msg.bytes + config_.control_overhead_bytes;
    const sim::SimTime egress_done =
        nics_[msg.src].reserve_egress(sent_at, wire_bytes);
    const sim::SimTime arrival = egress_done + config_.wire_latency;
    delivered_at = nics_[msg.dst].reserve_ingress(arrival, wire_bytes);
  }

  latency_.record(sim::to_seconds(delivered_at - sent_at));

  if (msg.on_delivered) {
    sim_.schedule_at(delivered_at,
                     [cb = std::move(msg.on_delivered)]() { cb(); },
                     "net.deliver");
  }
}

void Network::send_control(NodeId src, NodeId dst,
                           std::function<void()> on_delivered) {
  send(Message{src, dst, 0, TrafficClass::kControl, std::move(on_delivered)});
}

}  // namespace das::net
