#include "net/network.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"
#include "telemetry/plane.hpp"

namespace das::net {

Network::Network(sim::Simulator& simulator, const NetworkConfig& config)
    : sim_(simulator), config_(config) {
  DAS_REQUIRE(config.num_nodes > 0);
  nics_.reserve(config.num_nodes);
  for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
    nics_.emplace_back(config.nic_bandwidth_bps);
  }
}

const Nic& Network::nic(NodeId node) const {
  DAS_REQUIRE(node < nics_.size());
  return nics_[node];
}

void Network::send(Message msg) {
  // Loopback never contends for a NIC, so it is not worth scheduling.
  if (scheduler_ != nullptr && msg.tenant != kNoTenant &&
      msg.src != msg.dst && scheduler_->intercept(msg)) {
    return;
  }
  transmit(std::move(msg));
}

void Network::transmit(Message msg) {
  DAS_REQUIRE(msg.src < nics_.size());
  DAS_REQUIRE(msg.dst < nics_.size());

  const sim::SimTime sent_at = sim_.now();
  const auto cls_index = static_cast<std::size_t>(msg.cls);
  bytes_by_class_[cls_index] += msg.bytes;
  msgs_by_class_[cls_index] += 1;

  sim::Tracer& tracer = sim_.tracer();
  sim::SimTime delivered_at;
  sim::SimDuration queue_wait = 0;
  if (msg.src == msg.dst) {
    delivered_at = sent_at + config_.wire_latency;
  } else {
    const std::uint64_t wire_bytes = msg.bytes + config_.control_overhead_bytes;
    // The spans each direction actually occupies: [max(now, free), done].
    const sim::SimTime egress_start =
        std::max(sent_at, nics_[msg.src].egress_free_at());
    const sim::SimTime egress_done =
        nics_[msg.src].reserve_egress(sent_at, wire_bytes);
    const sim::SimTime arrival = egress_done + config_.wire_latency;
    const sim::SimTime ingress_start =
        std::max(arrival, nics_[msg.dst].ingress_free_at());
    delivered_at = nics_[msg.dst].reserve_ingress(arrival, wire_bytes);
    queue_wait = (egress_start - sent_at) + (ingress_start - arrival);
    if (tracer.enabled()) {
      const std::string args = "{\"bytes\":" + std::to_string(msg.bytes) +
                               ",\"peer\":" + std::to_string(msg.dst) + "}";
      tracer.complete(egress_start, egress_done, msg.src,
                      sim::TraceTrack::kNicEgress, "net.tx", "net", args);
      tracer.complete(ingress_start, delivered_at, msg.dst,
                      sim::TraceTrack::kNicIngress, "net.rx", "net",
                      "{\"bytes\":" + std::to_string(msg.bytes) +
                          ",\"peer\":" + std::to_string(msg.src) + "}");
    }
  }

  latency_.record(sim::to_seconds(delivered_at - sent_at));
  queue_wait_.record(sim::to_seconds(queue_wait));
  wire_.record(sim::to_seconds((delivered_at - sent_at) - queue_wait));

  if (msg.span != 0) {
    if (telemetry::Plane* plane = sim_.context().telemetry) {
      if (msg.cls == TrafficClass::kControl) {
        // Request/ack RPC legs are charged whole to the control hop; the
        // queue/wire split only matters for payload transfers.
        plane->spans().add(msg.span, telemetry::Hop::kControl,
                           delivered_at - sent_at);
      } else {
        plane->spans().add(msg.span, telemetry::Hop::kNetQueue, queue_wait);
        plane->spans().add(msg.span, telemetry::Hop::kNetWire,
                           (delivered_at - sent_at) - queue_wait);
      }
    }
  }

  if (msg.on_delivered) {
    // The callback is already the event engine's callable type: hand it to
    // the queue as-is instead of wrapping it in another capturing closure.
    sim_.schedule_at(delivered_at, std::move(msg.on_delivered), "net.deliver");
  }
}

void Network::send_control(NodeId src, NodeId dst, DeliveryFn on_delivered) {
  send(Message{src, dst, 0, TrafficClass::kControl, std::move(on_delivered)});
}

void Network::enroll(telemetry::Registry& registry) const {
  for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
    const char* cls = to_string(static_cast<TrafficClass>(c));
    registry.enroll_counter("net.bytes", {telemetry::label("class", cls)},
                            bytes_by_class_[c]);
    registry.enroll_counter("net.msgs", {telemetry::label("class", cls)},
                            msgs_by_class_[c]);
  }
  registry.enroll_histogram("net.latency_s", {}, &latency_);
  registry.enroll_histogram("net.queue_wait_s", {}, &queue_wait_);
}

}  // namespace das::net
