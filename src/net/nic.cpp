#include "net/nic.hpp"

#include <algorithm>

#include "simkit/assert.hpp"

namespace das::net {

Nic::Nic(double bandwidth_bps) : bandwidth_bps_(bandwidth_bps) {
  DAS_REQUIRE(bandwidth_bps > 0.0);
}

sim::SimTime Nic::reserve_egress(sim::SimTime now, std::uint64_t bytes) {
  const sim::SimTime start = std::max(now, egress_free_at_);
  const sim::SimDuration span = sim::transfer_time(bytes, bandwidth_bps_);
  egress_free_at_ = start + span;
  egress_busy_ += span;
  bytes_sent_ += bytes;
  return egress_free_at_;
}

sim::SimTime Nic::reserve_ingress(sim::SimTime arrival, std::uint64_t bytes) {
  const sim::SimTime start = std::max(arrival, ingress_free_at_);
  const sim::SimDuration span = sim::transfer_time(bytes, bandwidth_bps_);
  ingress_free_at_ = start + span;
  ingress_busy_ += span;
  bytes_received_ += bytes;
  return ingress_free_at_;
}

}  // namespace das::net
