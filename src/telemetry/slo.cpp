#include "telemetry/slo.hpp"

#include <algorithm>
#include <vector>

#include "simkit/assert.hpp"

namespace das::telemetry {

SloMonitor::SloMonitor(SloConfig config) : config_(config) {
  window_ns_ = sim::seconds(config_.window_s > 0.0 ? config_.window_s : 1.0);
}

SloMonitor::Window& SloMonitor::window_for(std::uint32_t tenant) {
  DAS_REQUIRE(tenant < config_.max_tenants);
  if (tenant >= windows_.size()) {
    windows_.resize(tenant + 1);
    alerted_.resize(tenant + 1, false);
  }
  return windows_[tenant];
}

void SloMonitor::prune(Window& window, sim::SimTime now) const {
  const sim::SimTime horizon = now - window_ns_;
  while (!window.empty() && window.front().at < horizon) window.pop_front();
}

void SloMonitor::record(std::uint32_t tenant, sim::SimTime now,
                        double latency_s) {
  if (!enabled()) return;
  Window& window = window_for(tenant);
  prune(window, now);
  window.push_back({now, latency_s});
  if (alerted_[tenant] || window.size() < kMinAlertSamples) return;
  const double burn = burn_rate(tenant);
  if (burn >= 1.0) {
    alerted_[tenant] = true;
    ++alerts_fired_;
    if (on_alert_) on_alert_(tenant, now, burn);
  }
}

void SloMonitor::refresh(sim::SimTime now) {
  for (Window& window : windows_) prune(window, now);
}

double SloMonitor::burn_rate(std::uint32_t tenant) const {
  if (tenant >= windows_.size()) return 0.0;
  const Window& window = windows_[tenant];
  if (window.empty()) return 0.0;
  std::size_t violations = 0;
  for (const Sample& s : window) {
    if (s.latency_s > config_.target_s) ++violations;
  }
  const double fraction =
      static_cast<double>(violations) / static_cast<double>(window.size());
  const double budget = config_.budget > 0.0 ? config_.budget : 0.01;
  return fraction / budget;
}

double SloMonitor::window_p99_s(std::uint32_t tenant) const {
  if (tenant >= windows_.size()) return 0.0;
  const Window& window = windows_[tenant];
  if (window.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(window.size());
  for (const Sample& s : window) latencies.push_back(s.latency_s);
  std::sort(latencies.begin(), latencies.end());
  // Nearest-rank p99, matching sim::Histogram::quantile.
  const auto rank = static_cast<std::size_t>(
      0.99 * static_cast<double>(latencies.size() - 1) + 0.5);
  return latencies[std::min(rank, latencies.size() - 1)];
}

}  // namespace das::telemetry
