// MetricsRegistry: the enrollment table behind the telemetry plane.
//
// Subsystems do not push values into the registry; they enroll *sources* —
// the address of a counter cell they keep incrementing, a closure that
// computes a gauge, or a simkit Histogram they keep recording into — and
// the sampler pulls a consistent snapshot whenever it ticks. Enrollment
// happens once at run setup, so the instrument hot paths stay exactly what
// they were before the registry existed: a plain integer increment.
//
// Series order is enrollment order, which is deterministic (component
// construction order is fixed by the cluster builder), so the exported
// column order and Prometheus text are byte-stable across runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkit/stats.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {

/// What kind of source backs a series (drives exposition formatting).
enum class SeriesKind : std::uint8_t {
  kCounter,    // monotone integer, read from a uint64_t cell
  kGauge,      // instantaneous value, read from a closure
  kHistCount,  // histogram sample count (monotone)
  kHistSum,    // histogram sample sum (monotone)
};

class Registry {
 public:
  using GaugeFn = std::function<double()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Enroll a counter cell. The cell must outlive the registry's last read.
  void enroll_counter(std::string name, Labels labels,
                      const std::uint64_t* cell);
  void enroll_counter(std::string name, Labels labels, const Counter& c) {
    enroll_counter(std::move(name), std::move(labels), c.cell());
  }

  /// Enroll a gauge closure (evaluated at each sample; not hot-path code).
  void enroll_gauge(std::string name, Labels labels, GaugeFn read);

  /// Enroll a histogram: exposes `<name>.count` and `<name>.sum` columns in
  /// the time series (both O(1) reads) and a quantile summary in the
  /// Prometheus exposition (quantiles computed once, at export time).
  void enroll_histogram(std::string name, Labels labels,
                        const sim::Histogram* histogram);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

  /// Column header cell for series `i`: `name{k=v;k=v}` — no commas, so the
  /// CSV exporter needs no quoting.
  [[nodiscard]] const std::string& series_name(std::size_t i) const {
    return series_[i].column;
  }
  [[nodiscard]] SeriesKind series_kind(std::size_t i) const {
    return series_[i].kind;
  }

  /// Current value of series `i`.
  [[nodiscard]] double read(std::size_t i) const;

  /// Append the current value of every series to `out`, in series order.
  /// The sampler's per-tick snapshot path.
  void sample_into(std::vector<double>& out) const;

  /// Prometheus text exposition of every series (current values), with
  /// histogram quantile summaries. Deterministic for equal runs.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  struct Series {
    std::string name;    // instrument name, e.g. "net.bytes"
    std::string column;  // formatted "name{k=v;k=v}"
    Labels labels;
    SeriesKind kind = SeriesKind::kCounter;
    const std::uint64_t* cell = nullptr;          // kCounter
    GaugeFn gauge;                                // kGauge
    const sim::Histogram* histogram = nullptr;    // kHistCount / kHistSum
  };

  void push(Series series);
  [[nodiscard]] static double read_series(const Series& s);

  std::vector<Series> series_;
};

}  // namespace das::telemetry
