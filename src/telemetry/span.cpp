#include "telemetry/span.hpp"

#include <cstdio>
#include <utility>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::telemetry {

namespace {
// Rendered as -1 in JSON so tooling can tell "no tenant" from tenant 0.
constexpr std::uint32_t kNoTenantSentinel = UINT32_MAX;
}  // namespace

const char* to_string(Hop hop) {
  switch (hop) {
    case Hop::kAdmission: return "admission";
    case Hop::kControl: return "control";
    case Hop::kNetQueue: return "net-queue";
    case Hop::kNetWire: return "net-wire";
    case Hop::kDisk: return "disk";
    case Hop::kCache: return "cache";
    case Hop::kCompute: return "compute";
  }
  return "unknown";
}

void SpanTracker::grow() {
  // Double until every open entry lands in a private slot under the new
  // mask (open ids span a bounded range, so a large enough table is always
  // collision-free).
  std::size_t size = slots_.size();
  for (;;) {
    size *= 2;
    std::vector<OpenSpan> bigger(size);
    bool clean = true;
    for (const OpenSpan& open : slots_) {
      if (open.record.id == 0) continue;
      OpenSpan& slot = bigger[open.record.id & (size - 1)];
      if (slot.record.id != 0) {
        clean = false;
        break;
      }
      slot = open;
    }
    if (clean) {
      slots_ = std::move(bigger);
      return;
    }
  }
}

std::uint64_t SpanTracker::id_hash(std::uint64_t id) {
  std::uint64_t h = 14695981039346656037ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (id >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t SpanTracker::begin(std::uint32_t tenant, sim::SimTime now,
                                 std::uint32_t node) {
  if (!enabled_) return 0;
  // Mint unconditionally so the sampled subset depends only on request
  // order (deterministic per simulation), then gate on the id hash: the
  // counter itself would sample a biased, phase-locked subset of periodic
  // workloads, the hash spreads the picks uniformly.
  const std::uint64_t id = ++next_id_;
  if (sample_every_ > 1 && id_hash(id) % sample_every_ != 0) return 0;
  while (slots_[id & (slots_.size() - 1)].record.id != 0) grow();
  OpenSpan& open = slots_[id & (slots_.size() - 1)];
  open.record = SpanRecord{};
  open.record.id = id;
  open.record.tenant = tenant;
  open.record.begin = now;
  open.node = node;
  ++open_count_;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_begin(now, node, id, "request", "span");
  }
  return id;
}

void SpanTracker::add(std::uint64_t span, Hop hop, sim::SimDuration elapsed) {
  if (span == 0) return;
  OpenSpan* open = find_open(span);
  if (open == nullptr) return;  // already retired (late ack, hedge loser)
  DAS_ASSERT(elapsed >= 0);
  const auto h = static_cast<std::size_t>(hop);
  open->record.hop_ns[h] += elapsed;
  ++open->record.hop_count[h];
}

void SpanTracker::end(std::uint64_t span, sim::SimTime now,
                      std::uint32_t node) {
  if (span == 0) return;
  OpenSpan* open = find_open(span);
  if (open == nullptr) return;
  open->record.end = now;
  for (std::size_t h = 0; h < kNumHops; ++h) {
    hop_totals_[h] += open->record.hop_ns[h];
    hop_events_[h] += open->record.hop_count[h];
  }
  ++finished_;
  if (ring_capacity_ > 0) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(open->record);
    } else {
      ring_[ring_next_] = open->record;
      ring_next_ = (ring_next_ + 1) % ring_capacity_;
    }
  }
  open->record.id = 0;  // free the slot
  --open_count_;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->async_end(now, node, span, "request", "span");
  }
}

std::vector<SpanRecord> SpanTracker::recent() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: once full, the overwrite cursor points at the oldest.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::string SpanTracker::ring_json() const {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& r : recent()) {
    if (!first) out += ",";
    first = false;
    char head[160];
    const long long tenant =
        r.tenant == kNoTenantSentinel ? -1LL
                                      : static_cast<long long>(r.tenant);
    std::snprintf(head, sizeof head,
                  "\n  {\"span\": %llu, \"tenant\": %lld, \"begin_ns\": %lld, "
                  "\"end_ns\": %lld, \"hops\": {",
                  static_cast<unsigned long long>(r.id), tenant,
                  static_cast<long long>(r.begin),
                  static_cast<long long>(r.end));
    out += head;
    bool first_hop = true;
    for (std::size_t h = 0; h < kNumHops; ++h) {
      if (r.hop_count[h] == 0) continue;
      if (!first_hop) out += ", ";
      first_hop = false;
      char hop[96];
      std::snprintf(hop, sizeof hop, "\"%s\": {\"ns\": %lld, \"n\": %u}",
                    to_string(static_cast<Hop>(h)),
                    static_cast<long long>(r.hop_ns[h]), r.hop_count[h]);
      out += hop;
    }
    out += "}}";
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace das::telemetry
