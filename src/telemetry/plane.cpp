#include "telemetry/plane.hpp"

#include <cstdio>

#include "simkit/simulator.hpp"

namespace das::telemetry {

std::uint64_t session_hash(std::string_view canonical) {
  // FNV-1a, 64-bit. Deterministic across platforms and runs by design.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string session_hex(std::uint64_t session) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(session));
  return buf;
}

Plane::Plane(PlaneConfig config)
    : config_(config),
      sampler_(registry_, config.sample_period),
      spans_(config.flight_capacity),
      slo_(config.slo) {
  spans_.set_enabled(config_.spans);
  spans_.set_sample_every(config_.span_sample);
  sampler_.set_pre_sample_hook([this](sim::SimTime now) { slo_.refresh(now); });
  slo_.set_alert_hook(
      [this](std::uint32_t tenant, sim::SimTime now, double burn) {
        // Cap stored alerts: the flight recorder explains the first breaches;
        // a run melting down across every tenant should not balloon memory.
        if (alerts_.size() >= 16) return;
        Alert alert;
        alert.tenant = tenant;
        alert.at = now;
        alert.burn_rate = burn;
        alert.spans_json = spans_.ring_json();
        alerts_.push_back(std::move(alert));
      });
}

void Plane::enroll_slo_gauges(std::uint32_t tenants) {
  if (!slo_.enabled()) return;
  // Cap enrolled tenants: gauge evaluation is per-sample work, and runs with
  // thousands of tenants only chart the first few anyway.
  const std::uint32_t n = tenants < 32 ? tenants : 32;
  for (std::uint32_t t = 0; t < n; ++t) {
    registry_.enroll_gauge("slo.burn_rate", {label("tenant", t)},
                           [this, t]() { return slo_.burn_rate(t); });
    registry_.enroll_gauge("slo.window_p99_s", {label("tenant", t)},
                           [this, t]() { return slo_.window_p99_s(t); });
  }
}

void Plane::start(sim::Simulator& sim) {
  if (config_.spans) spans_.set_tracer(&sim.tracer());
  if (config_.metrics) sampler_.start(sim);
}

void Plane::finish(sim::SimTime now) {
  if (config_.metrics) sampler_.finish(now);
  if (config_.prometheus) prometheus_snapshot_ = registry_.prometheus_text();
}

std::string Plane::flight_json(std::uint64_t session) const {
  std::string out = "{\n\"session\": \"" + session_hex(session) + "\",\n";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "\"spans_finished\": %llu,\n\"alerts\": [",
                static_cast<unsigned long long>(spans_.spans_finished()));
  out += buf;
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const Alert& a = alerts_[i];
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf,
                  "\n {\"tenant\": %u, \"at_s\": %.6f, \"burn_rate\": %.4f, "
                  "\"spans\": ",
                  a.tenant, sim::to_seconds(a.at), a.burn_rate);
    out += buf;
    out += a.spans_json;
    out += "}";
  }
  out += alerts_.empty() ? "]\n}\n" : "\n]\n}\n";
  return out;
}

}  // namespace das::telemetry
