#include "telemetry/sampler.hpp"

#include <cstdio>

#include "simkit/assert.hpp"
#include "simkit/simulator.hpp"

namespace das::telemetry {

void Sampler::start(sim::Simulator& sim) {
  DAS_REQUIRE(period_ > 0);
  ++ticks_;
  sim.schedule_after(
      period_, [this, &sim]() { tick(sim); }, "telemetry.sample");
}

void Sampler::tick(sim::Simulator& sim) {
  sample(sim.now());
  // Reschedule only while real work remains: a drained queue means the run
  // is over, and finish() takes the closing snapshot.
  if (sim.pending_events() > 0) {
    ++ticks_;
    sim.schedule_after(
        period_, [this, &sim]() { tick(sim); }, "telemetry.sample");
  }
}

void Sampler::finish(sim::SimTime now) { sample(now); }

void Sampler::sample(sim::SimTime now) {
  if (pre_sample_) pre_sample_(now);
  times_.push_back(now);
  registry_.sample_into(values_);
}

std::string Sampler::csv() const {
  std::string out = "time_s";
  const std::size_t n = registry_.series_count();
  for (std::size_t i = 0; i < n; ++i) {
    out += ',';
    out += registry_.series_name(i);
  }
  out += '\n';
  char buf[64];
  for (std::size_t row = 0; row < times_.size(); ++row) {
    std::snprintf(buf, sizeof buf, "%.6f", sim::to_seconds(times_[row]));
    out += buf;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = values_[row * n + i];
      if (registry_.series_kind(i) == SeriesKind::kGauge) {
        std::snprintf(buf, sizeof buf, ",%.9g", v);
      } else {
        std::snprintf(buf, sizeof buf, ",%.0f", v);
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace das::telemetry
