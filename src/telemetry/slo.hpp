// Per-tenant SLO burn-rate monitoring over sliding windows.
//
// Each completed request reports its end-to-end latency to the monitor. Over
// a sliding window of simulated time, the monitor computes the fraction of
// requests that violated the latency target; dividing that fraction by the
// error budget gives the burn rate (burn 1.0 = consuming budget exactly as
// fast as allotted, >1.0 = on pace to exhaust it early). When a tenant's
// burn rate first crosses 1.0 with enough window samples to be meaningful,
// the monitor fires its alert hook once — the telemetry Plane uses that to
// snapshot the span flight recorder.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "simkit/time.hpp"

namespace das::telemetry {

struct SloConfig {
  /// Latency target in seconds; <= 0 disables the monitor entirely.
  double target_s = 0.0;
  /// Error budget: allowed violation fraction (0.01 = 99% of requests in
  /// target).
  double budget = 0.01;
  /// Sliding window length in simulated seconds.
  double window_s = 1.0;
  /// Upper bound on tracked tenants (runs size this from --tenants).
  std::uint32_t max_tenants = 64;
};

class SloMonitor {
 public:
  using AlertFn = std::function<void(std::uint32_t tenant, sim::SimTime now,
                                     double burn_rate)>;

  explicit SloMonitor(SloConfig config);

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  [[nodiscard]] bool enabled() const { return config_.target_s > 0.0; }
  [[nodiscard]] const SloConfig& config() const { return config_; }

  /// Invoked at most once per tenant, when its burn rate first reaches 1.0.
  void set_alert_hook(AlertFn hook) { on_alert_ = std::move(hook); }

  /// Record one completed request for `tenant`. May fire the alert hook.
  void record(std::uint32_t tenant, sim::SimTime now, double latency_s);

  /// Drop window entries older than `now - window`. Called before each
  /// telemetry sample so exported burn rates reflect the current window.
  void refresh(sim::SimTime now);

  /// Current burn rate for `tenant` (violation fraction / budget).
  [[nodiscard]] double burn_rate(std::uint32_t tenant) const;

  /// p99 latency over the tenant's current window, 0 when empty.
  [[nodiscard]] double window_p99_s(std::uint32_t tenant) const;

  [[nodiscard]] std::uint32_t tenants() const {
    return static_cast<std::uint32_t>(windows_.size());
  }
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_fired_; }
  [[nodiscard]] bool alerted(std::uint32_t tenant) const {
    return tenant < alerted_.size() && alerted_[tenant];
  }

 private:
  struct Sample {
    sim::SimTime at = 0;
    double latency_s = 0.0;
  };
  using Window = std::deque<Sample>;

  /// Minimum window samples before the burn rate is trusted enough to alert
  /// (a single slow request in a near-empty window is noise, not a breach).
  static constexpr std::size_t kMinAlertSamples = 8;

  Window& window_for(std::uint32_t tenant);
  void prune(Window& window, sim::SimTime now) const;

  SloConfig config_;
  sim::SimDuration window_ns_ = 0;
  AlertFn on_alert_;
  std::vector<Window> windows_;  // indexed by tenant, grown on demand
  std::vector<bool> alerted_;
  std::uint64_t alerts_fired_ = 0;
};

}  // namespace das::telemetry
