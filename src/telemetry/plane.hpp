// The unified telemetry plane: one object bundling the metrics registry,
// the time-series sampler, the causal span tracker, and the SLO monitor.
//
// A driver (das_sim, a test, a bench) builds one Plane per run, hands its
// address to the RunContext, and components self-enroll their instruments
// during cluster construction. The plane is strictly observational: with
// every feature disabled, components see a null plane pointer (or disabled
// sub-objects) and their hot paths are exactly the pre-telemetry code.
//
// The SLO monitor's alert hook is wired here: the first burn-rate breach per
// tenant snapshots the span flight-recorder ring, and flight_json() renders
// the alerts plus their captured spans for --flight-record=FILE.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simkit/time.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/span.hpp"

namespace das::sim {
class Simulator;
}  // namespace das::sim

namespace das::telemetry {

/// FNV-1a hash of the run's canonical configuration string. The canonical
/// string is built from *semantic* options only — never --jobs, output file
/// paths, or telemetry flags — so the session id is stable across worker
/// counts and across telemetry on/off reruns of the same experiment.
[[nodiscard]] std::uint64_t session_hash(std::string_view canonical);

/// Render a session id the way every output stamps it: 16 hex digits.
[[nodiscard]] std::string session_hex(std::uint64_t session);

struct PlaneConfig {
  bool metrics = false;  // sample the registry into a time series
  /// Freeze a Prometheus exposition at finish(). Opt-in separately from
  /// `metrics` because rendering it computes exact quantiles over every
  /// enrolled histogram — a full sort of each sample vector, easily many
  /// milliseconds on a long run — which a CSV-only run never needs.
  bool prometheus = false;
  bool spans = false;  // mint + track causal request spans
  /// Track only 1-in-N spans (--span-sample=N; <= 1 tracks every request).
  /// Deterministic: the pick hashes the span mint counter, so the sampled
  /// subset is identical across --jobs. Hop totals scale by ~N.
  std::uint32_t span_sample = 1;
  sim::SimDuration sample_period = sim::milliseconds(50);
  SloConfig slo;  // slo.target_s <= 0 leaves the monitor off
  std::size_t flight_capacity = 256;
};

class Plane {
 public:
  struct Alert {
    std::uint32_t tenant = 0;
    sim::SimTime at = 0;
    double burn_rate = 0.0;
    std::string spans_json;  // flight ring captured at alert time
  };

  explicit Plane(PlaneConfig config);

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  [[nodiscard]] const PlaneConfig& config() const { return config_; }
  [[nodiscard]] bool metrics_enabled() const { return config_.metrics; }
  [[nodiscard]] bool spans_enabled() const { return config_.spans; }

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] Sampler& sampler() { return sampler_; }
  [[nodiscard]] SpanTracker& spans() { return spans_; }
  [[nodiscard]] SloMonitor& slo() { return slo_; }
  [[nodiscard]] const SpanTracker& spans() const { return spans_; }
  [[nodiscard]] const SloMonitor& slo() const { return slo_; }

  /// Enroll slo.burn_rate / slo.window_p99_s gauges for tenants [0, n).
  /// Called by the traffic engine once the tenant count is known.
  void enroll_slo_gauges(std::uint32_t tenants);

  /// Bind the run's tracer (spans mirror into it as async scopes) and begin
  /// periodic sampling when metrics are enabled.
  void start(sim::Simulator& sim);

  /// Closing snapshot after the simulation drains. When config.prometheus
  /// is set this also freezes the Prometheus exposition: gauges may
  /// reference components that die with the run, so the text is rendered
  /// now, not at file-write time.
  void finish(sim::SimTime now);

  /// Prometheus exposition captured by finish(). Empty before finish()
  /// and empty unless config.prometheus was set.
  [[nodiscard]] const std::string& prometheus_snapshot() const {
    return prometheus_snapshot_;
  }

  /// Sampler tick events added to the queue (0 when metrics are off);
  /// subtract from reported event counts.
  [[nodiscard]] std::uint64_t sampler_ticks() const {
    return config_.metrics ? sampler_.ticks() : 0;
  }

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }

  /// The --flight-record document: session id, fired alerts, and the span
  /// ring captured when each alert fired.
  [[nodiscard]] std::string flight_json(std::uint64_t session) const;

 private:
  PlaneConfig config_;
  Registry registry_;
  Sampler sampler_;
  SpanTracker spans_;
  SloMonitor slo_;
  std::vector<Alert> alerts_;
  std::string prometheus_snapshot_;
};

}  // namespace das::telemetry
