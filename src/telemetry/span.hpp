// Causal request spans with per-hop latency attribution.
//
// A span is minted when a request is issued (client read, traffic job,
// server-server halo fetch) and its id rides along the request through every
// component it touches: admission control, network queues and wires, disks,
// caches, compute reservations. Each component charges the time the request
// spent in it to a Hop bucket, so when the span ends the tracker knows not
// just the end-to-end latency but *where* it went — the critical-path
// attribution rolled into RunReport and the flight recorder.
//
// Span id 0 means "not tracked": every record call takes one branch and
// returns, so untracked runs pay nothing beyond carrying a zero uint64.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simkit/time.hpp"

namespace das::sim {
class Tracer;
}  // namespace das::sim

namespace das::telemetry {

/// Where a request's wall time can be charged. One bucket per hop class the
/// simulated data path distinguishes.
enum class Hop : std::uint8_t {
  kAdmission = 0,  // waiting in the token-bucket admission queue
  kControl = 1,    // control-message RPC issue latency
  kNetQueue = 2,   // NIC fair-queue / serialization wait
  kNetWire = 3,    // wire propagation + ingress
  kDisk = 4,       // storage service time
  kCache = 5,      // cache-hit copy service
  kCompute = 6,    // compute reservation on the strip kernel
};

inline constexpr std::size_t kNumHops = 7;

[[nodiscard]] const char* to_string(Hop hop);

/// One finished span, as kept in the flight-recorder ring.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;  // net::kNoTenant when the run is tenant-less
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  std::array<sim::SimDuration, kNumHops> hop_ns{};
  std::array<std::uint32_t, kNumHops> hop_count{};
};

/// Mints span ids, accumulates per-hop charges while spans are open, and
/// retires finished spans into a bounded ring plus running per-hop totals.
class SpanTracker {
 public:
  explicit SpanTracker(std::size_t ring_capacity = 256)
      : ring_capacity_(ring_capacity) {}

  SpanTracker(const SpanTracker&) = delete;
  SpanTracker& operator=(const SpanTracker&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Track only 1-in-`n` spans (--span-sample=N): every begin() still mints
  /// an id, but an unsampled request gets id 0 — the untracked sentinel —
  /// so its whole data path pays only the zero-branch. The choice hashes
  /// the mint counter (FNV-1a), not simulated time or randomness, so the
  /// sampled subset is identical across --jobs and across reruns. Hop
  /// totals then represent ~1/n of the traffic; multiply by n to estimate
  /// whole-run attribution (EXPERIMENTS.md). n <= 1 tracks everything.
  void set_sample_every(std::uint32_t n) { sample_every_ = n; }
  [[nodiscard]] std::uint32_t sample_every() const { return sample_every_; }

  /// Mirror spans into this tracer as linked async scopes (cat "span").
  /// Optional; spans accumulate attribution either way.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Open a span. Returns 0 (the "untracked" id) when spans are disabled.
  [[nodiscard]] std::uint64_t begin(std::uint32_t tenant, sim::SimTime now,
                                    std::uint32_t node);

  /// Charge `elapsed` on `hop` to an open span. No-op for span id 0.
  void add(std::uint64_t span, Hop hop, sim::SimDuration elapsed);

  /// Close a span: retire it into the ring and the per-hop totals.
  void end(std::uint64_t span, sim::SimTime now, std::uint32_t node);

  [[nodiscard]] std::uint64_t spans_started() const { return next_id_; }
  [[nodiscard]] std::uint64_t spans_finished() const { return finished_; }
  [[nodiscard]] std::size_t open_spans() const { return open_count_; }

  /// Total time charged to `hop` across all *finished* spans.
  [[nodiscard]] sim::SimDuration hop_total(Hop hop) const {
    return hop_totals_[static_cast<std::size_t>(hop)];
  }
  [[nodiscard]] std::uint64_t hop_events(Hop hop) const {
    return hop_events_[static_cast<std::size_t>(hop)];
  }

  /// The flight-recorder ring: the most recent finished spans, oldest
  /// first. Materializes a copy — export/debug use, not hot-path.
  [[nodiscard]] std::vector<SpanRecord> recent() const;

  /// Render the ring as a JSON array of span objects (used by the flight
  /// recorder dump). Tenant net::kNoTenant renders as -1.
  [[nodiscard]] std::string ring_json() const;

 private:
  struct OpenSpan {
    SpanRecord record;  // record.id == 0 marks a free slot
    std::uint32_t node = 0;
  };

  /// Open spans live in a direct-mapped slot table indexed by
  /// `id & (slots_.size() - 1)`: span ids are sequential and spans are
  /// short-lived, so the table stays collision-free at a modest size and
  /// every add/end is one array access instead of a hash lookup — the
  /// charge calls sit on the per-message hot path. The table doubles (and
  /// rehashes the open entries) on the rare insert collision.
  [[nodiscard]] OpenSpan* find_open(std::uint64_t span) {
    OpenSpan& slot = slots_[span & (slots_.size() - 1)];
    return slot.record.id == span ? &slot : nullptr;
  }
  void grow();

  /// FNV-1a of the eight id bytes; the sampling gate for set_sample_every.
  [[nodiscard]] static std::uint64_t id_hash(std::uint64_t id);

  bool enabled_ = false;
  std::uint32_t sample_every_ = 1;
  sim::Tracer* tracer_ = nullptr;
  std::uint64_t next_id_ = 0;
  std::uint64_t finished_ = 0;
  std::size_t ring_capacity_;
  std::size_t open_count_ = 0;
  std::vector<OpenSpan> slots_{64};
  /// Circular buffer of the most recent finished spans: grows to
  /// ring_capacity_ then overwrites in place (no per-span allocation or
  /// shifting — retirement is on the request completion path).
  std::vector<SpanRecord> ring_;
  std::size_t ring_next_ = 0;  // overwrite cursor once the ring is full
  std::array<sim::SimDuration, kNumHops> hop_totals_{};
  std::array<std::uint64_t, kNumHops> hop_events_{};
};

}  // namespace das::telemetry
