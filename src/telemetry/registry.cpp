#include "telemetry/registry.hpp"

#include <cstdio>
#include <utility>

#include "simkit/assert.hpp"

namespace das::telemetry {
namespace {

/// `name{k=v;k=v}` — the CSV/column spelling (no commas, no quotes).
std::string format_column(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ';';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

/// Prometheus metric name: dots become underscores, prefixed `das_`.
std::string prom_name(const std::string& name, const char* suffix = "") {
  std::string out = "das_";
  for (const char c : name) out += c == '.' || c == '-' ? '_' : c;
  out += suffix;
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

std::string prom_labels_with_quantile(const Labels& labels, const char* q) {
  std::string out = "{";
  for (const Label& l : labels) {
    out += l.first;
    out += "=\"";
    out += l.second;
    out += "\",";
  }
  out += "quantile=\"";
  out += q;
  out += "\"}";
  return out;
}

std::string fixed(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

void Registry::push(Series series) {
  series.column = format_column(series.name, series.labels);
  series_.push_back(std::move(series));
}

void Registry::enroll_counter(std::string name, Labels labels,
                              const std::uint64_t* cell) {
  DAS_REQUIRE(cell != nullptr);
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = SeriesKind::kCounter;
  s.cell = cell;
  push(std::move(s));
}

void Registry::enroll_gauge(std::string name, Labels labels, GaugeFn read) {
  DAS_REQUIRE(read != nullptr);
  Series s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = SeriesKind::kGauge;
  s.gauge = std::move(read);
  push(std::move(s));
}

void Registry::enroll_histogram(std::string name, Labels labels,
                                const sim::Histogram* histogram) {
  DAS_REQUIRE(histogram != nullptr);
  Series count;
  count.name = name + ".count";
  count.labels = labels;
  count.kind = SeriesKind::kHistCount;
  count.histogram = histogram;
  push(std::move(count));

  Series sum;
  sum.name = std::move(name) + ".sum";
  sum.labels = std::move(labels);
  sum.kind = SeriesKind::kHistSum;
  sum.histogram = histogram;
  push(std::move(sum));
}

double Registry::read_series(const Series& s) {
  switch (s.kind) {
    case SeriesKind::kCounter: return static_cast<double>(*s.cell);
    case SeriesKind::kGauge: return s.gauge();
    case SeriesKind::kHistCount:
      return static_cast<double>(s.histogram->count());
    case SeriesKind::kHistSum: return s.histogram->sum();
  }
  return 0.0;
}

double Registry::read(std::size_t i) const { return read_series(series_[i]); }

void Registry::sample_into(std::vector<double>& out) const {
  // One pass over the table: the sampler calls this every tick, and an
  // indexed read() per series costs an extra call + bounds math each.
  for (const Series& s : series_) out.push_back(read_series(s));
}

std::string Registry::prometheus_text() const {
  std::string out;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    switch (s.kind) {
      case SeriesKind::kCounter:
        out += "# TYPE " + prom_name(s.name) + " counter\n";
        out += prom_name(s.name) + prom_labels(s.labels) + ' ' +
               std::to_string(*s.cell) + '\n';
        break;
      case SeriesKind::kGauge:
        out += "# TYPE " + prom_name(s.name) + " gauge\n";
        out += prom_name(s.name) + prom_labels(s.labels) + ' ' +
               fixed(s.gauge()) + '\n';
        break;
      case SeriesKind::kHistCount: {
        // The matching kHistSum follows immediately; emit the full summary
        // here and skip it there.
        const std::string base =
            prom_name(s.name.substr(0, s.name.size() - 6));
        out += "# TYPE " + base + " summary\n";
        const sim::HistogramSummary summary = s.histogram->summary();
        out += base + prom_labels_with_quantile(s.labels, "0.5") + ' ' +
               fixed(summary.p50) + '\n';
        out += base + prom_labels_with_quantile(s.labels, "0.95") + ' ' +
               fixed(summary.p95) + '\n';
        out += base + prom_labels_with_quantile(s.labels, "0.99") + ' ' +
               fixed(summary.p99) + '\n';
        out += base + "_count" + prom_labels(s.labels) + ' ' +
               std::to_string(s.histogram->count()) + '\n';
        out += base + "_sum" + prom_labels(s.labels) + ' ' +
               fixed(s.histogram->sum()) + '\n';
        break;
      }
      case SeriesKind::kHistSum: break;  // folded into kHistCount above
    }
  }
  return out;
}

}  // namespace das::telemetry
