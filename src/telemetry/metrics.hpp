// Instrument primitives for the unified telemetry plane.
//
// A telemetry::Counter is a drop-in replacement for the raw `uint64_t`
// counters the subsystems used to own: the hot path still executes a single
// integer increment (no branch, no indirection, no atomics — simulations
// are single-threaded per run), but the cell's address can be enrolled in a
// Registry so the sampler reads it over time. Labels identify one series of
// a named instrument (tenant, server, traffic class, scheme); they are
// formatted once at enrollment, never on the sample path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace das::telemetry {

/// Monotone event/byte count. Layout-compatible with the raw uint64_t it
/// replaces; the implicit conversion keeps existing read sites
/// (`report.x = server.remote_reads_served();`) compiling unchanged.
class Counter {
 public:
  constexpr Counter() = default;

  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t delta) {
    value_ += delta;
    return *this;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): reads as a plain integer.
  constexpr operator std::uint64_t() const { return value_; }
  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

  /// Address of the underlying cell, for Registry enrollment. Stable for
  /// the counter's lifetime (instruments outlive the registry's last read).
  [[nodiscard]] const std::uint64_t* cell() const { return &value_; }

  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// One series label, e.g. {"tenant", "3"} or {"class", "server-server"}.
/// Values never contain commas, quotes or braces (numeric ids and fixed
/// enum spellings), which keeps every exporter quoting-free.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Convenience label builders.
[[nodiscard]] inline Label label(std::string key, std::string value) {
  return {std::move(key), std::move(value)};
}
[[nodiscard]] inline Label label(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value)};
}

}  // namespace das::telemetry
