// TelemetrySampler: turns the registry's instruments into a time series.
//
// The sampler is an ordinary simulation component: it schedules itself on
// the event queue every `period` of simulated time and snapshots every
// registry series into an in-memory columnar table. The tick only
// reschedules while other events are still pending, so the sampler never
// keeps a drained simulation alive; `finish()` takes one last sample at the
// run's end so the series always covers the full run.
//
// Sampling adds events to the queue, and several reports print the
// simulator's delivered-event count — callers subtract `ticks()` from those
// counts so enabling telemetry never changes a reported number.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkit/time.hpp"
#include "telemetry/registry.hpp"

namespace das::sim {
class Simulator;
}  // namespace das::sim

namespace das::telemetry {

class Sampler {
 public:
  using PreSampleFn = std::function<void(sim::SimTime)>;

  explicit Sampler(const Registry& registry,
                   sim::SimDuration period = sim::milliseconds(50))
      : registry_(registry), period_(period) {}

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  [[nodiscard]] sim::SimDuration period() const { return period_; }

  /// Called just before each snapshot (the Plane prunes SLO windows here so
  /// exported burn rates reflect the window ending at the sample time).
  void set_pre_sample_hook(PreSampleFn hook) { pre_sample_ = std::move(hook); }

  /// Begin periodic sampling: first snapshot lands one period after start.
  void start(sim::Simulator& sim);

  /// Take the closing snapshot (call once, after the simulation drains).
  void finish(sim::SimTime now);

  /// Snapshot immediately at `now` (also used by the periodic tick).
  void sample(sim::SimTime now);

  /// Number of tick events the sampler added to the queue so far.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  [[nodiscard]] std::size_t rows() const { return times_.size(); }
  [[nodiscard]] sim::SimTime row_time(std::size_t row) const {
    return times_[row];
  }
  [[nodiscard]] double value(std::size_t row, std::size_t series) const {
    return values_[row * registry_.series_count() + series];
  }

  /// Columnar CSV: `time_s,<series...>` header then one row per snapshot.
  /// Counter-family values print as integers, gauges with %.9g.
  [[nodiscard]] std::string csv() const;

 private:
  void tick(sim::Simulator& sim);

  const Registry& registry_;
  sim::SimDuration period_;
  PreSampleFn pre_sample_;
  std::uint64_t ticks_ = 0;
  std::vector<sim::SimTime> times_;
  std::vector<double> values_;  // rows * series_count, row-major
};

}  // namespace das::telemetry
