#include "core/active_executor.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <utility>

#include "cache/strip_cache.hpp"
#include "pfs/prefetch.hpp"
#include "simkit/assert.hpp"
#include "simkit/context.hpp"
#include "simkit/time.hpp"
#include "simkit/trace.hpp"
#include "telemetry/plane.hpp"

namespace das::core {

HaloFetchTotals& HaloFetchTotals::operator+=(const ActiveExecutor& executor) {
  strips_fetched += executor.halo_strips_fetched();
  bytes_fetched += executor.halo_bytes_fetched();
  cache_hits += executor.halo_cache_hits();
  cache_hit_bytes += executor.halo_cache_hit_bytes();
  return *this;
}

struct ActiveExecutor::RunState {
  pfs::LocalRun run;
  /// Strip coverage of the assembled buffer, inclusive: the run's strips,
  /// its locally stored halo, plus whatever halo was fetched remotely.
  std::uint64_t buf_lo = 0, buf_hi = 0;
  /// Input slab incl. halo rows, assembled in place as strips arrive and
  /// read directly by the kernel (data mode only; empty otherwise).
  grid::Grid<float> buffer;
  /// Kernel output slab; local writes and replica messages carry views of
  /// this one block (data mode only).
  pfs::StripBuffer out;
  std::uint64_t inputs_pending = 0;
  std::uint64_t trace_id = 0;  // async scope; 0 when tracing is off
  bool started = false;
  bool finished = false;
};

struct ActiveExecutor::ServerTask {
  pfs::ServerIndex server = 0;
  net::NodeId node = net::kInvalidNode;
  pfs::FileId input = pfs::kInvalidFile;
  pfs::FileId output = pfs::kInvalidFile;
  std::vector<RunState> runs;
  std::size_t next_run = 0;
  std::size_t running = 0;
  BarrierPtr barrier;  // one arrival per completed run
};

namespace {

/// Byte pointer `rel` bytes into a run's input slab.
std::byte* slab_at(grid::Grid<float>& buffer, std::uint64_t rel) {
  return reinterpret_cast<std::byte*>(buffer.data()) + rel;
}

}  // namespace

ActiveExecutor::ActiveExecutor(Cluster& cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  DAS_REQUIRE(options.kernel != nullptr);
  DAS_REQUIRE(!(options.data_mode && options.kernel->is_reduction()));
  cost_factor_ = cluster.config().compute_cost.factor_for(
      options.kernel->name(), options.kernel->cost_factor());
}

ActiveExecutor::~ActiveExecutor() = default;

void ActiveExecutor::start(pfs::FileId input, pfs::FileId output,
                           std::function<void()> on_done) {
  // Reductions produce no output file; raster kernels need one of the same
  // size as the input.
  DAS_REQUIRE(options_.kernel->is_reduction() ||
              cluster_.pfs().meta(output).size_bytes ==
                  cluster_.pfs().meta(input).size_bytes);
  const BarrierPtr barrier = make_barrier(as_callback(std::move(on_done)));
  for (pfs::ServerIndex s = 0; s < cluster_.pfs().num_servers(); ++s) {
    start_server(s, input, output, barrier);
  }
  barrier->seal();
}

void ActiveExecutor::start_server(pfs::ServerIndex server, pfs::FileId input,
                                  pfs::FileId output,
                                  const BarrierPtr& barrier) {
  const pfs::LocalIo lio(cluster_.pfs(), server, input,
                         options_.halo_strips);
  if (lio.runs().empty()) return;

  auto owned = std::make_unique<ServerTask>();
  ServerTask* task = owned.get();
  task->server = server;
  task->node = cluster_.storage_node(server);
  task->input = input;
  task->output = output;
  task->barrier = barrier;
  task->runs.reserve(lio.runs().size());
  for (const pfs::LocalRun& run : lio.runs()) {
    RunState rs;
    rs.run = run;
    task->runs.push_back(std::move(rs));
  }
  barrier->add(task->runs.size());
  tasks_.push_back(std::move(owned));

  // Hand the server's prefetcher the ordered list of remote strips this
  // request will touch — the same buffer-coverage walk start_run performs,
  // deduplicated (adjacent runs want the same halo strips) but order
  // preserving so fetches land in sweep order.
  if (pfs::HaloPrefetcher* prefetcher =
          cluster_.pfs().server(server).prefetcher()) {
    const pfs::FileMeta& meta = cluster_.pfs().meta(input);
    const pfs::PfsServer& self = cluster_.pfs().server(server);
    const std::uint64_t num_strips = meta.num_strips();
    const std::uint64_t wanted = options_.halo_strips;
    std::vector<pfs::PrefetchItem> plan;
    std::set<std::uint64_t> planned;
    for (const pfs::LocalRun& run : lio.runs()) {
      const std::uint64_t lo =
          run.first_strip >= wanted ? run.first_strip - wanted : 0;
      const std::uint64_t hi =
          std::min(num_strips - 1, run.last_strip + wanted);
      for (std::uint64_t s = lo; s <= hi; ++s) {
        if (self.store().has(input, s) || !planned.insert(s).second) continue;
        // read_primary, not layout().primary: under an in-progress
        // migration the strip is fetched from whoever serves it right now.
        plan.push_back(
            pfs::PrefetchItem{input, s, meta.strip(s).length,
                              cluster_.pfs().read_primary(input, s)});
      }
    }
    prefetcher->enqueue(std::move(plan));
  }

  pump(task);
}

void ActiveExecutor::pump(ServerTask* task) {
  const std::uint32_t window = cluster_.config().pipeline_window;
  while (task->running < window && task->next_run < task->runs.size()) {
    start_run(task, task->next_run++);
  }
}

void ActiveExecutor::on_input(ServerTask* task, std::size_t index) {
  RunState& rs = task->runs[index];
  DAS_REQUIRE(rs.inputs_pending > 0);
  if (--rs.inputs_pending == 0) compute_and_write(task, index);
}

void ActiveExecutor::start_run(ServerTask* task, std::size_t index) {
  RunState& rs = task->runs[index];
  DAS_REQUIRE(!rs.started);
  rs.started = true;
  ++task->running;

  const pfs::FileMeta& meta = cluster_.pfs().meta(task->input);
  const std::uint64_t num_strips = meta.num_strips();
  pfs::PfsServer& self = cluster_.pfs().server(task->server);
  sim::Simulator& simulator = cluster_.simulator();

  // Buffer coverage: run strips + every halo strip that exists in the file
  // (local replicas read from disk; the rest fetched from remote servers).
  const pfs::LocalRun& run = rs.run;
  const std::uint64_t wanted = options_.halo_strips;
  rs.buf_lo = run.first_strip >= wanted ? run.first_strip - wanted : 0;
  rs.buf_hi = std::min(num_strips - 1, run.last_strip + wanted);

  const std::uint64_t base = meta.strip(rs.buf_lo).offset;
  if (options_.data_mode) {
    const pfs::StripRef buf_last = meta.strip(rs.buf_hi);
    const std::uint64_t buf_bytes = buf_last.offset + buf_last.length - base;
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
    DAS_REQUIRE(base % row_bytes == 0);
    DAS_REQUIRE(buf_bytes % row_bytes == 0);
    // The slab the kernel will read, zero-filled like any fresh grid;
    // arriving strips are copied straight into it.
    rs.buffer = grid::Grid<float>(
        meta.raster_width, static_cast<std::uint32_t>(buf_bytes / row_bytes));
  }

  // One pending input per strip in the buffer.
  rs.inputs_pending = rs.buf_hi - rs.buf_lo + 1;

  sim::Tracer& tracer = cluster_.simulator().tracer();
  if (tracer.enabled()) {
    rs.trace_id = tracer.next_scope_id();
    tracer.async_begin(simulator.now(), task->node, rs.trace_id, "as.run",
                       "request",
                       "{\"first\":" + std::to_string(run.first_strip) +
                           ",\"last\":" + std::to_string(run.last_strip) +
                           "}");
  }

  for (std::uint64_t s = rs.buf_lo; s <= rs.buf_hi; ++s) {
    const pfs::StripRef ref = meta.strip(s);
    if (self.store().has(task->input, s)) {
      // Local strip (own or replica): one disk read.
      const sim::SimTime done = self.read_local(task->input, s);
      if (options_.data_mode) {
        const auto bytes = self.store().bytes(task->input, s);
        DAS_REQUIRE(bytes.size() == ref.length);
        std::memcpy(slab_at(rs.buffer, ref.offset - base), bytes.data(),
                    bytes.size());
      }
      simulator.schedule_at(
          done, [this, task, index]() { on_input(task, index); },
          "as.local_read");
    } else if (const cache::CachedStrip* hit =
                   self.strip_cache() == nullptr
                       ? nullptr
                       : self.strip_cache()->lookup(
                             cache::CacheKey{task->input, s});
               hit != nullptr) {
      // Remote halo strip already cached from an earlier fetch: serve it
      // from server RAM — no NIC transfer, no service load on the peer.
      ++halo_cache_hits_;
      halo_cache_hit_bytes_ += ref.length;
      if (options_.data_mode) {
        DAS_REQUIRE(hit->bytes.size() == ref.length);
        std::memcpy(slab_at(rs.buffer, ref.offset - base), hit->bytes.data(),
                    hit->bytes.size());
      }
      const sim::SimTime copied =
          simulator.now() +
          sim::transfer_time(ref.length,
                             self.strip_cache()->config().hit_bandwidth_bps);
      // Span the RAM copy so cache-served halo shows up under the cache hop
      // instead of silently vanishing from critical-path attribution.
      std::uint64_t span = 0;
      if (telemetry::Plane* plane = simulator.context().telemetry) {
        span =
            plane->spans().begin(net::kNoTenant, simulator.now(), task->node);
        plane->spans().add(span, telemetry::Hop::kCache,
                           copied - simulator.now());
      }
      simulator.schedule_at(
          copied,
          [this, task, index, span]() {
            if (span != 0) {
              sim::Simulator& sim = cluster_.simulator();
              sim.context().telemetry->spans().end(span, sim.now(),
                                                   task->node);
            }
            on_input(task, index);
          },
          "as.cache_hit");
    } else if (pfs::HaloPrefetcher* prefetcher = self.prefetcher()) {
      // Remote halo strip with prefetching on: route through the
      // prefetcher's in-flight table so a demand fetch and a prefetch of
      // the same strip coalesce into one wire transfer.
      const pfs::ServerIndex source =
          cluster_.pfs().read_primary(task->input, s);
      DAS_REQUIRE(source != task->server);
      const bool issued = prefetcher->demand_fetch(
          pfs::PrefetchItem{task->input, s, ref.length, source},
          [this, task, index, s](const pfs::StripBuffer& payload) {
            if (options_.data_mode) {
              const pfs::FileMeta& in_meta = cluster_.pfs().meta(task->input);
              const pfs::StripRef strip = in_meta.strip(s);
              RunState& state = task->runs[index];
              DAS_REQUIRE(payload.size() == strip.length);
              std::memcpy(
                  slab_at(state.buffer,
                          strip.offset - in_meta.strip(state.buf_lo).offset),
                  payload.data(), payload.size());
            }
            on_input(task, index);
          });
      if (issued) {
        ++halo_strips_fetched_;
        halo_bytes_fetched_ += ref.length;
      }
    } else {
      // Remote halo strip: request it from its primary server. This is the
      // dependence traffic (and the service load on the peer) that NAS pays.
      ++halo_strips_fetched_;
      halo_bytes_fetched_ += ref.length;
      const pfs::ServerIndex source =
          cluster_.pfs().read_primary(task->input, s);
      DAS_REQUIRE(source != task->server);
      pfs::PfsServer& peer = cluster_.pfs().server(source);
      // Span the request → disk → payload chain; the network and the peer's
      // disk charge their hops, this side closes the span on delivery.
      std::uint64_t span = 0;
      if (telemetry::Plane* plane = simulator.context().telemetry) {
        span =
            plane->spans().begin(net::kNoTenant, simulator.now(), task->node);
      }
      cluster_.network().send_control(
          task->node, peer.node(), [this, task, index, &peer, s, span]() {
            const pfs::StripRef request =
                cluster_.pfs().meta(task->input).strip(s);
            peer.serve_read(
                task->input, s, 0, request.length, task->node,
                net::TrafficClass::kServerServer,
                [this, task, index, s,
                 span](const pfs::StripBuffer& payload) {
                  const pfs::FileMeta& in_meta =
                      cluster_.pfs().meta(task->input);
                  const pfs::StripRef strip = in_meta.strip(s);
                  if (options_.data_mode) {
                    RunState& state = task->runs[index];
                    DAS_REQUIRE(payload.size() == strip.length);
                    std::memcpy(slab_at(state.buffer,
                                        strip.offset -
                                            in_meta.strip(state.buf_lo).offset),
                                payload.data(), payload.size());
                  }
                  if (cache::StripCache* receiver = cluster_.pfs()
                                                        .server(task->server)
                                                        .strip_cache()) {
                    // The cache shares the delivered block — no copy.
                    receiver->insert(cache::CacheKey{task->input, s},
                                     strip.length, pfs::StripBuffer(payload));
                  }
                  if (span != 0) {
                    sim::Simulator& sim = cluster_.simulator();
                    sim.context().telemetry->spans().end(span, sim.now(),
                                                         task->node);
                  }
                  on_input(task, index);
                },
                net::kNoTenant, span);
          });
    }
  }
}

void ActiveExecutor::compute_and_write(ServerTask* task, std::size_t index) {
  RunState& rs = task->runs[index];
  const pfs::FileMeta& meta = cluster_.pfs().meta(task->input);
  sim::Simulator& simulator = cluster_.simulator();

  // Processing cost covers the run's own strips.
  std::uint64_t own_bytes = 0;
  for (std::uint64_t s = rs.run.first_strip; s <= rs.run.last_strip; ++s) {
    own_bytes += meta.strip(s).length;
  }
  const sim::SimTime computed = cluster_.engine(task->node).execute(
      simulator.now(), own_bytes, cost_factor_);

  if (options_.kernel->is_reduction()) {
    // Ship the partial result (a few dozen bytes) to the requesting client;
    // the run completes when it arrives.
    simulator.schedule_at(
        computed,
        [this, task, index]() {
          cluster_.network().send(net::Message{
              task->node, cluster_.compute_node(0),
              options_.kernel->reduction_result_bytes(),
              net::TrafficClass::kClientServer,
              [this, task, index]() { finish_run(task, index); }});
        },
        "as.reduce_result");
    return;
  }

  simulator.schedule_at(
      computed, [this, task, index]() { write_output(task, index); },
      "as.compute");
}

void ActiveExecutor::write_output(ServerTask* task, std::size_t index) {
  RunState& rs = task->runs[index];
  const pfs::FileMeta& meta = cluster_.pfs().meta(task->input);
  const pfs::FileMeta& out_meta = cluster_.pfs().meta(task->output);
  const pfs::Layout& out_layout = cluster_.pfs().layout(task->output);
  const std::uint64_t out_strips = out_meta.num_strips();
  pfs::PfsServer& self = cluster_.pfs().server(task->server);
  const std::uint64_t own_begin = out_meta.strip(rs.run.first_strip).offset;

  // Produce the output slab in data mode: the kernel reads the assembled
  // input grid in place and its result is copied once into a pooled buffer
  // that every write below slices by view.
  if (options_.data_mode) {
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
    const std::uint64_t base = meta.strip(rs.buf_lo).offset;
    const pfs::StripRef own_last = meta.strip(rs.run.last_strip);
    DAS_REQUIRE(own_begin % row_bytes == 0);
    DAS_REQUIRE((own_last.offset + own_last.length) % row_bytes == 0);

    const auto buf_row0 = static_cast<std::uint32_t>(base / row_bytes);
    const auto out_row0 = static_cast<std::uint32_t>(own_begin / row_bytes);
    const auto out_row1 = static_cast<std::uint32_t>(
        (own_last.offset + own_last.length) / row_bytes);

    grid::Grid<float> out(meta.raster_width, out_row1 - out_row0);
    options_.kernel->run_tile(rs.buffer, buf_row0, meta.raster_height,
                              out_row0, out_row1, out);
    const std::uint64_t out_len = out.size() * sizeof(float);
    rs.out = pfs::StripBuffer::allocate(out_len);
    std::memcpy(rs.out.mutable_data(), out.data(), out_len);
  }

  // Completion of this run: local writes + every replica propagation.
  auto run_done = make_barrier([this, task, index]() {
    finish_run(task, index);
  });

  sim::SimTime last_local_write = cluster_.simulator().now();
  for (std::uint64_t s = rs.run.first_strip; s <= rs.run.last_strip; ++s) {
    const pfs::StripRef ref = out_meta.strip(s);
    pfs::StripBuffer payload;
    if (!rs.out.empty()) {
      payload = rs.out.view(ref.offset - own_begin, ref.length);
    }
    last_local_write =
        std::max(last_local_write,
                 self.write_local(task->output, ref, std::move(payload)));

    // Output halo replicas travel to the neighbouring servers.
    for (const pfs::ServerIndex rep : out_layout.replicas(s, out_strips)) {
      if (rep == task->server) continue;
      pfs::PfsServer& peer = cluster_.pfs().server(rep);
      run_done->add();
      cluster_.network().send(net::Message{
          task->node, peer.node(), ref.length,
          net::TrafficClass::kServerServer,
          [this, &peer, task, index, s, run_done]() {
            const pfs::FileMeta& om = cluster_.pfs().meta(task->output);
            const pfs::StripRef strip = om.strip(s);
            RunState& state = task->runs[index];
            pfs::StripBuffer copy;
            if (!state.out.empty()) {
              // Another view of the run's output block (state.out lives
              // until run_done fires, which waits for this very write).
              copy = state.out.view(
                  strip.offset - om.strip(state.run.first_strip).offset,
                  strip.length);
            }
            const sim::SimTime written =
                peer.write_local(task->output, strip, std::move(copy));
            cluster_.simulator().schedule_at(
                written, [run_done]() { run_done->arrive(); },
                "as.replica_write");
          }});
    }
  }

  run_done->add();
  cluster_.simulator().schedule_at(
      last_local_write, [run_done]() { run_done->arrive(); },
      "as.local_write");
  run_done->seal();
}

void ActiveExecutor::finish_run(ServerTask* task, std::size_t index) {
  RunState& rs = task->runs[index];
  DAS_REQUIRE(!rs.finished);
  rs.finished = true;
  if (rs.trace_id != 0) {
    cluster_.simulator().tracer().async_end(cluster_.simulator().now(),
                                            task->node, rs.trace_id, "as.run",
                                            "request");
  }
  rs.buffer = grid::Grid<float>();  // release the input slab
  rs.out.reset();                   // return the output block to its pool
  DAS_REQUIRE(task->running > 0);
  --task->running;
  task->barrier->arrive();
  pump(task);
}

}  // namespace das::core
