// Active Storage Client — the public entry point applications use
// (paper Fig. 2: "Applications interact with ... the Active Storage Client
// [which] responds to active storage I/O requests").
//
// submit() runs the full Fig. 3 workflow: look up the operator's Kernel
// Features, predict the bandwidth cost under the file's current layout,
// optionally re-lay-out the file (charging the redistribution traffic), and
// then either offload the kernel to the storage servers or serve the request
// as normal I/O on the compute nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/active_executor.hpp"
#include "core/cluster.hpp"
#include "core/decision.hpp"
#include "core/ts_executor.hpp"
#include "kernels/catalog.hpp"
#include "kernels/registry.hpp"

namespace das::core {

struct ActiveRequest {
  pfs::FileId input = pfs::kInvalidFile;
  std::string kernel_name;
  /// Output size; 0 means "same as input" (true for all Table-I kernels).
  std::uint64_t output_bytes = 0;
  /// Successive operations expected to reuse the dependence pattern
  /// (paper: flow-routing is always followed by flow-accumulation).
  std::uint32_t pipeline_length = 1;
  /// How many times the whole request is re-run over the same input
  /// (recurring analyses of a hot dataset). Repeats past the first can be
  /// served from the servers' strip caches when those are enabled.
  std::uint32_t repeat_count = 1;
  /// Permit the engine to re-lay-out the file before offloading.
  bool allow_redistribution = true;
  /// Carry real bytes end to end (correctness mode).
  bool data_mode = false;
};

struct SubmissionResult {
  Decision decision;
  pfs::FileId output = pfs::kInvalidFile;
  bool offloaded = false;
  bool redistributed = false;
  std::uint64_t redistribution_bytes = 0;
};

class ActiveStorageClient {
 public:
  ActiveStorageClient(Cluster& cluster,
                      const kernels::KernelRegistry& registry,
                      const DistributionConfig& distribution);

  /// Serve one request. Creates the output file (named
  /// "<input-name>.<kernel>"), decides, optionally redistributes, and runs
  /// the appropriate executor. `on_done` fires at completion.
  SubmissionResult submit(const ActiveRequest& request,
                          std::function<void()> on_done);

  /// The active executor of the most recent offloaded submission (for halo
  /// fetch statistics); nullptr if the last request was served as normal.
  [[nodiscard]] const ActiveExecutor* last_active_executor() const;

  /// Halo-acquisition counters summed over every offloaded pass this client
  /// has run (all passes of all submissions) — the observed side of the
  /// decision audit.
  [[nodiscard]] HaloFetchTotals halo_totals() const;

  [[nodiscard]] const DecisionEngine& engine() const { return engine_; }

  /// Install a Kernel Features catalog (paper §III-B). Records in the
  /// catalog override the kernels' built-in dependence patterns; the
  /// catalog must outlive this client. Pass nullptr to remove.
  void set_features_catalog(const kernels::FeaturesCatalog* catalog) {
    catalog_ = catalog;
  }

 private:
  Cluster& cluster_;
  const kernels::KernelRegistry& registry_;
  DecisionEngine engine_;
  const kernels::FeaturesCatalog* catalog_ = nullptr;
  // Keep executors and kernels alive for the duration of the simulation.
  std::vector<std::unique_ptr<ActiveExecutor>> active_executors_;
  std::vector<std::unique_ptr<TsExecutor>> ts_executors_;
  std::vector<kernels::KernelPtr> kernels_;
  const ActiveExecutor* last_active_ = nullptr;
};

}  // namespace das::core
