// Decision-audit record: predicted vs observed, per admitted request.
//
// The offload decision (DAS) and the static scheme configurations (TS/NAS)
// rest on the analytical bandwidth model's predictions: how many halo bytes
// a run will pull from peers, what fraction of halo lookups a warm strip
// cache will absorb, and how much of the remaining fetch traffic the
// prefetcher will overlap with compute. The audit closes the loop by
// recording each prediction next to the value the simulated run actually
// produced, with signed residuals (observed - predicted), so model drift is
// measurable instead of anecdotal. `das_sim --audit=FILE` emits one CSV row
// per run.
#pragma once

#include <cstdint>
#include <string>

namespace das::core {

struct RunReport;

struct DecisionAudit {
  /// False until a scheme run fills the record (keeps accidental zero rows
  /// out of the audit CSV).
  bool valid = false;

  /// Decision taken: DAS's OffloadAction spelling ("offload",
  /// "offload-after-redistribution", "serve-normal"), or "static-offload" /
  /// "static-normal" for the fixed NAS / TS schemes.
  std::string action;

  /// Configuration the predictions were made against.
  std::uint32_t repeats = 1;
  std::uint32_t prefetch_depth = 0;
  std::uint64_t cache_capacity_bytes = 0;

  /// Halo traffic per pass over the input: the model's
  /// active_strip_fetch_bytes vs the bytes the executors actually requested
  /// from peers (network fetches + cache hits + coalesced demand waiters),
  /// averaged over passes. Zero for schemes that fetch no halo (TS).
  std::uint64_t predicted_halo_bytes = 0;
  double observed_halo_bytes = 0.0;

  /// Steady-state cache hit-rate prediction vs the run's observed rate.
  /// `observed_warm` excludes the (necessarily cold) first pass from the
  /// denominator — an estimate comparable to the steady-state prediction;
  /// equal to the raw rate when repeats == 1.
  double predicted_cache_hit_rate = 0.0;
  double observed_cache_hit_rate = 0.0;
  double observed_warm_cache_hit_rate = 0.0;

  /// Fraction of halo fetches hidden from the demand path (prefetcher hits
  /// plus coalesced waiters over all halo strip acquisitions) vs the
  /// depth/(depth+1) pipeline-overlap model.
  double predicted_overlap = 0.0;
  double observed_overlap = 0.0;

  /// Signed residuals, observed - predicted.
  [[nodiscard]] double halo_bytes_residual() const {
    return observed_halo_bytes - static_cast<double>(predicted_halo_bytes);
  }
  /// Compares the warm-adjusted rate: the prediction is steady-state, so
  /// the cold first pass would otherwise bias every multi-pass residual.
  [[nodiscard]] double cache_hit_rate_residual() const {
    return observed_warm_cache_hit_rate - predicted_cache_hit_rate;
  }
  [[nodiscard]] double overlap_residual() const {
    return observed_overlap - predicted_overlap;
  }
};

/// Audit CSV emission (header + one line per report; fields never contain
/// commas — action strings are fixed spellings). The trailing `session`
/// column joins audit rows with traces, SLO CSVs and metrics files.
[[nodiscard]] std::string audit_csv_header();
[[nodiscard]] std::string audit_to_csv(const RunReport& report);

}  // namespace das::core
