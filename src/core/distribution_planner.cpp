#include "core/distribution_planner.hpp"

#include <algorithm>
#include <cmath>

#include "simkit/assert.hpp"

namespace das::core {

std::optional<PlacementSpec> DistributionPlanner::plan(
    const pfs::FileMeta& meta, const std::vector<std::int64_t>& offsets,
    std::uint32_t num_servers) const {
  DAS_REQUIRE(num_servers > 0);
  const std::uint64_t num_strips = meta.num_strips();

  const std::uint64_t halo =
      required_halo_strips(offsets, meta.element_size, meta.strip_size);
  if (halo == 0) {
    // No cross-strip dependence; the default striping is already ideal.
    return PlacementSpec{num_servers, 1, 0};
  }

  // Layout feasibility: a group must absorb both halos (2*halo <= r).
  // Capacity: overhead 2*halo/r must fit the budget.
  // Parallelism: every server should own at least one group.
  std::uint64_t r_min = 2 * halo;
  if (config_.max_capacity_overhead > 0.0) {
    const auto r_capacity = static_cast<std::uint64_t>(
        std::ceil(2.0 * static_cast<double>(halo) /
                  config_.max_capacity_overhead));
    r_min = std::max(r_min, r_capacity);
  }
  const std::uint64_t r_max = num_strips / num_servers;
  if (r_max < r_min) return std::nullopt;

  const std::uint64_t r =
      std::clamp<std::uint64_t>(config_.group_size, r_min, r_max);
  return PlacementSpec{num_servers, r, halo};
}

}  // namespace das::core
