#include "core/audit.hpp"

#include <sstream>

#include "core/metrics.hpp"
#include "telemetry/plane.hpp"

namespace das::core {

std::string audit_csv_header() {
  return "scheme,kernel,data_bytes,storage_nodes,repeats,action,"
         "cache_capacity_bytes,prefetch_depth,exec_seconds,"
         "predicted_halo_bytes_per_pass,observed_halo_bytes_per_pass,"
         "halo_bytes_residual,predicted_cache_hit_rate,"
         "observed_cache_hit_rate,observed_warm_cache_hit_rate,"
         "cache_hit_rate_residual,predicted_overlap,observed_overlap,"
         "overlap_residual,session";
}

std::string audit_to_csv(const RunReport& r) {
  const DecisionAudit& a = r.audit;
  std::ostringstream out;
  out << r.scheme << ',' << r.kernel << ',' << r.data_bytes << ','
      << r.storage_nodes << ',' << a.repeats << ',' << a.action << ','
      << a.cache_capacity_bytes << ',' << a.prefetch_depth << ','
      << r.exec_seconds << ',' << a.predicted_halo_bytes << ','
      << a.observed_halo_bytes << ',' << a.halo_bytes_residual() << ','
      << a.predicted_cache_hit_rate << ',' << a.observed_cache_hit_rate << ','
      << a.observed_warm_cache_hit_rate << ',' << a.cache_hit_rate_residual()
      << ',' << a.predicted_overlap << ',' << a.observed_overlap << ','
      << a.overlap_residual() << ','
      << telemetry::session_hex(r.session_id);
  return out.str();
}

}  // namespace das::core
