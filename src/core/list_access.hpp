// Sparse access patterns and list-I/O pricing.
//
// The list-I/O request plane (pfs/region.hpp, DESIGN §15) lets a client
// fetch exactly the bytes a sparse analysis touches. This module maps the
// CLI-visible access patterns (every-k-th-row subsampling, column scans,
// region-list trace files) onto RegionLists that include the stencil halo
// each sampled row needs, and teaches the decision layer to price a list
// request — runs per request, coalescing factor, header overhead — so the
// TS-vs-DAS choice responds to access sparsity: a dense pattern still
// favors moving the computation, a sparse one favors moving only the runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/decision.hpp"
#include "pfs/file.hpp"
#include "pfs/region.hpp"

namespace das::core {

/// Which sparse pattern a run reads (kNone = the classic full sweep).
struct AccessSpec {
  enum class Mode { kNone, kStrided, kColumn, kTrace };

  Mode mode = Mode::kNone;
  /// kStrided: sample every `stride`-th row (k >= 1; 1 = every row).
  std::uint32_t stride = 1;
  /// kTrace: file of "offset length" lines ('#' comments allowed).
  std::string trace_path;

  [[nodiscard]] bool active() const { return mode != Mode::kNone; }

  /// Parse "strided:K", "column", or "trace:FILE". Throws
  /// std::invalid_argument (quoting the input) on anything else.
  [[nodiscard]] static AccessSpec parse(const std::string& text);

  /// Canonical rendering ("strided:8", "column", "trace:FILE").
  [[nodiscard]] std::string label() const;
};

/// Rows of halo the widest dependence offset reaches (ceil(max|o|/width));
/// 0 for pointwise kernels or non-raster files.
[[nodiscard]] std::uint32_t halo_rows_for(
    const pfs::FileMeta& meta, const std::vector<std::int64_t>& offsets);

/// Build the region list `spec` touches over `meta`, including `halo_rows`
/// of stencil halo around every sampled row (so a fetched run is exactly
/// what the kernel needs to produce its sampled outputs):
///  * strided:k — rows [i-halo, i+halo] for each sampled row i; a regular
///    pattern uses the strided wire encoding, overlapping samples merge
///    into explicit runs (k <= 2*halo degenerates to the dense sweep);
///  * column — the middle column +- halo columns, one short run per row
///    (strided encoding, header-dominated by design);
///  * trace — the file's runs verbatim (halo is the caller's business).
[[nodiscard]] pfs::RegionList build_access_regions(const pfs::FileMeta& meta,
                                                   const AccessSpec& spec,
                                                   std::uint32_t halo_rows);

/// What one list request sweep costs, before any simulation: the inputs of
/// the pricing model and of the bytes-moved metric (EXPERIMENTS.md).
struct ListStats {
  std::uint64_t runs = 0;
  std::uint64_t payload_bytes = 0;
  /// Modeled request-message bytes, summed over the per-server requests.
  std::uint64_t request_header_bytes = 0;
  /// Per-run reply framing bytes (kListReplyRunBytes each).
  std::uint64_t reply_framing_bytes = 0;
  /// Disk extents after server-side coalescing (<= runs).
  std::uint64_t coalesced_extents = 0;
  std::uint64_t touched_strips = 0;

  /// Every byte the list sweep puts on the client-server wire.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return payload_bytes + request_header_bytes + reply_framing_bytes;
  }

  /// Runs per coalesced extent (1.0 when nothing coalesces).
  [[nodiscard]] double coalescing_factor() const {
    return coalesced_extents > 0 ? static_cast<double>(runs) /
                                       static_cast<double>(coalesced_extents)
                                 : 1.0;
  }
};

/// Predict the stats of issuing `regions` against `meta` striped over
/// `num_servers` round-robin (mirrors the client's per-server batching and
/// the server's per-strip coalescer exactly).
[[nodiscard]] ListStats list_stats(const pfs::FileMeta& meta,
                                   const pfs::RegionList& regions,
                                   std::uint32_t num_servers);

/// Kernel-output bytes the access's consumer actually keeps — the offload
/// path's return traffic. Smaller than the list payload by the halo (inputs
/// fetched only to feed the stencil produce no kept output): strided:k
/// keeps one output row per sample, column keeps one output column, trace
/// keeps outputs for the traced fraction of the file.
/// `full_output_bytes` is kernel->output_bytes over the whole sweep.
[[nodiscard]] std::uint64_t access_output_bytes(
    const pfs::FileMeta& meta, const AccessSpec& spec,
    std::uint32_t halo_rows, std::uint64_t full_output_bytes);

/// The list-aware scheme decision and the rates behind it.
struct ListDecision {
  OffloadAction action = OffloadAction::kServeNormal;
  /// Serve as list I/O: runs to the clients, kernel on the clients.
  double normal_seconds = 0.0;
  /// Offload: full sweep on the servers (active storage computes every
  /// output, so it cannot exploit output sparsity), sampled rows back.
  double active_seconds = 0.0;
  std::string rationale;
};

/// Price list-served normal I/O against a full offloaded sweep. The normal
/// path moves stats.wire_bytes() through min(servers, clients) NICs, reads
/// the payload off the server disks, and computes over the payload on the
/// clients; the offload path streams the whole file off the disks, computes
/// it on the servers (plus halo exchange from the bandwidth model), and
/// ships only `returned_bytes` — the sampled outputs, access_output_bytes —
/// back. Sparser access shrinks the normal path's terms while the offload
/// path stays near-constant — the flip the acceptance gate checks.
/// `output_bytes` is the full-sweep output (halo-forecast input).
[[nodiscard]] ListDecision decide_list_access(
    const pfs::FileMeta& meta, const std::vector<std::int64_t>& offsets,
    const ListStats& stats, const ClusterConfig& cluster,
    const DistributionConfig& distribution, double kernel_cost_factor,
    std::uint64_t output_bytes, std::uint64_t returned_bytes);

}  // namespace das::core
