#include "core/ts_executor.hpp"

#include <cstring>
#include <string>
#include <utility>

#include "core/completion.hpp"
#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::core {

struct TsExecutor::NodeTask {
  std::uint32_t client_index = 0;
  net::NodeId node = net::kInvalidNode;
  std::uint64_t own_lo = 0, own_hi = 0;    // owned strips [lo, hi)
  std::uint64_t read_lo = 0, read_hi = 0;  // owned + halo strips [lo, hi)

  // Data mode: contiguous buffer over the read strips and the computed
  // output slab (filled once all input strips have arrived).
  std::vector<std::byte> buffer;
  std::vector<std::byte> output_bytes;
  std::uint64_t strips_pending = 0;
  bool slab_ready = false;

  // Bounded-outstanding read issuance (a real PFS client pipelines a few
  // strip reads, it does not flood the servers with the whole slab's
  // requests at once — and flooding would serialize service per client).
  std::uint64_t next_read = 0;   // next strip index to request
  std::uint32_t in_flight = 0;
  std::function<void()> issue_reads;

  // Per owned strip: gate of 2 in data mode (compute done + slab ready),
  // 1 otherwise; the write is issued when the gate reaches zero.
  std::vector<std::uint32_t> write_gate;

  // Async trace scope over this node's whole share of the request;
  // `acks_pending` counts the owned-strip completions left before it ends.
  std::uint64_t trace_id = 0;
  std::uint64_t acks_pending = 0;
};

TsExecutor::TsExecutor(Cluster& cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  DAS_REQUIRE(options.kernel != nullptr);
  DAS_REQUIRE(!(options.data_mode && options.kernel->is_reduction()));
}

void TsExecutor::start(pfs::FileId input, pfs::FileId output,
                       std::function<void()> on_done) {
  const BarrierPtr barrier = make_barrier(std::move(on_done));
  for (std::uint32_t c = 0; c < cluster_.config().compute_nodes; ++c) {
    start_node(c, input, output, barrier);
  }
  barrier->seal();
}

void TsExecutor::start_node(std::uint32_t client_index, pfs::FileId input,
                            pfs::FileId output, const BarrierPtr& barrier) {
  const pfs::FileMeta& meta = cluster_.pfs().meta(input);
  const bool reduction = options_.kernel->is_reduction();
  // Reductions keep their (tiny) result on the compute node: no output file.
  const pfs::FileMeta out_meta =
      reduction ? meta : cluster_.pfs().meta(output);
  DAS_REQUIRE(out_meta.size_bytes == meta.size_bytes);
  const std::uint64_t num_strips = meta.num_strips();
  const std::uint32_t num_clients = cluster_.config().compute_nodes;

  auto task = std::make_shared<NodeTask>();
  task->client_index = client_index;
  task->node = cluster_.compute_node(client_index);
  task->own_lo = client_index * num_strips / num_clients;
  task->own_hi = (client_index + 1) * num_strips / num_clients;
  if (task->own_lo >= task->own_hi) return;  // more nodes than strips

  const std::uint64_t halo = options_.halo_strips;
  task->read_lo = task->own_lo >= halo ? task->own_lo - halo : 0;
  task->read_hi = std::min(num_strips, task->own_hi + halo);
  task->strips_pending = task->read_hi - task->read_lo;
  task->write_gate.assign(task->own_hi - task->own_lo,
                          options_.data_mode ? 2U : 1U);
  tasks_.push_back(task);

  const std::uint64_t buf_begin = meta.strip(task->read_lo).offset;
  if (options_.data_mode) {
    const pfs::StripRef last = meta.strip(task->read_hi - 1);
    task->buffer.assign(last.offset + last.length - buf_begin, std::byte{0});
  }

  barrier->add(task->own_hi - task->own_lo);  // one write ack per owned strip
  task->acks_pending = task->own_hi - task->own_lo;

  const double cost = options_.kernel->cost_factor();
  Cluster& cluster = cluster_;
  pfs::PfsClient& client = cluster_.client(client_index);
  const kernels::ProcessingKernel* kernel = options_.kernel;
  const bool data_mode = options_.data_mode;

  sim::Tracer& tracer = cluster_.simulator().tracer();
  if (tracer.enabled()) {
    task->trace_id = tracer.next_scope_id();
    tracer.async_begin(cluster_.simulator().now(), task->node, task->trace_id,
                       "ts.node", "request",
                       "{\"own_lo\":" + std::to_string(task->own_lo) +
                           ",\"own_hi\":" + std::to_string(task->own_hi) +
                           "}");
  }

  // One owned-strip completion; ends the node's trace scope on the last.
  auto node_ack = [task = task.get(), &cluster, barrier]() {
    DAS_REQUIRE(task->acks_pending > 0);
    if (--task->acks_pending == 0 && task->trace_id != 0) {
      cluster.simulator().tracer().async_end(cluster.simulator().now(),
                                             task->node, task->trace_id,
                                             "ts.node", "request");
    }
    barrier->arrive();
  };

  // Issues the write of owned strip `s` once its gate reaches zero
  // (reductions skip the write: the partial result stays on this node).
  auto gate_arrive = [task = task.get(), &client, output, out_meta, node_ack,
                      data_mode, reduction](std::uint64_t s) {
    auto& gate = task->write_gate[s - task->own_lo];
    DAS_REQUIRE(gate > 0);
    if (--gate != 0) return;
    if (reduction) {
      node_ack();
      return;
    }
    const pfs::StripRef ref = out_meta.strip(s);
    std::vector<std::byte> payload;
    if (data_mode) {
      DAS_REQUIRE(task->slab_ready);
      const std::uint64_t own_begin =
          out_meta.strip(task->own_lo).offset;
      payload.assign(
          task->output_bytes.begin() +
              static_cast<std::ptrdiff_t>(ref.offset - own_begin),
          task->output_bytes.begin() +
              static_cast<std::ptrdiff_t>(ref.offset - own_begin +
                                          ref.length));
    }
    client.write_range(output, ref.offset, ref.length, payload,
                       [node_ack]() { node_ack(); });
  };

  // Runs the kernel over the whole slab (host-level) once every input strip
  // has arrived, then releases the slab gate of every owned strip.
  auto complete_slab = [task = task.get(), kernel, meta, gate_arrive]() {
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
    const std::uint64_t slab_begin = meta.strip(task->read_lo).offset;
    const std::uint64_t own_begin = meta.strip(task->own_lo).offset;
    const pfs::StripRef own_last = meta.strip(task->own_hi - 1);
    DAS_REQUIRE(slab_begin % row_bytes == 0);
    DAS_REQUIRE(own_begin % row_bytes == 0);
    DAS_REQUIRE((own_last.offset + own_last.length) % row_bytes == 0);
    DAS_REQUIRE(task->buffer.size() % row_bytes == 0);

    const auto buf_row0 = static_cast<std::uint32_t>(slab_begin / row_bytes);
    const auto out_row0 = static_cast<std::uint32_t>(own_begin / row_bytes);
    const auto out_row1 = static_cast<std::uint32_t>(
        (own_last.offset + own_last.length) / row_bytes);
    const auto buf_rows =
        static_cast<std::uint32_t>(task->buffer.size() / row_bytes);

    grid::Grid<float> buf(meta.raster_width, buf_rows);
    std::memcpy(buf.data(), task->buffer.data(), task->buffer.size());
    grid::Grid<float> out(meta.raster_width, out_row1 - out_row0);
    kernel->run_tile(buf, buf_row0, meta.raster_height, out_row0, out_row1,
                     out);
    task->output_bytes.resize(out.size() * sizeof(float));
    std::memcpy(task->output_bytes.data(), out.data(),
                task->output_bytes.size());
    task->slab_ready = true;
    for (std::uint64_t s = task->own_lo; s < task->own_hi; ++s) {
      gate_arrive(s);
    }
  };

  task->next_read = task->read_lo;

  // Issue up to pipeline_window single-strip reads; each completion pulls
  // the next request, so requests from all clients interleave at the
  // servers instead of arriving as one per-client burst.
  auto on_strip = [task = task.get(), &cluster, cost, data_mode, gate_arrive,
                   complete_slab, buf_begin](
                      pfs::StripRef ref, std::vector<std::byte> payload) {
    if (data_mode) {
      DAS_REQUIRE(payload.size() == ref.length);
      std::memcpy(task->buffer.data() + (ref.offset - buf_begin),
                  payload.data(), payload.size());
    }
    const bool owned = ref.index >= task->own_lo && ref.index < task->own_hi;
    if (owned) {
      // The processing cost of this strip, on this compute node.
      const sim::SimTime done = cluster.engine(task->node).execute(
          cluster.simulator().now(), ref.length, cost);
      cluster.simulator().schedule_at(
          done, [gate_arrive, s = ref.index]() { gate_arrive(s); },
          "ts.compute");
    }
    DAS_REQUIRE(task->in_flight > 0);
    --task->in_flight;
    task->issue_reads();
    DAS_REQUIRE(task->strips_pending > 0);
    if (--task->strips_pending == 0 && data_mode) complete_slab();
  };

  const pfs::FileMeta in_meta = meta;
  task->issue_reads = [task = task.get(), &client, &cluster, input, in_meta,
                       on_strip]() {
    const std::uint32_t window = cluster.config().pipeline_window;
    while (task->in_flight < window && task->next_read < task->read_hi) {
      const pfs::StripRef ref = in_meta.strip(task->next_read++);
      ++task->in_flight;
      client.read_range(input, ref.offset, ref.length, nullptr, on_strip);
    }
  };
  task->issue_reads();
}

}  // namespace das::core
