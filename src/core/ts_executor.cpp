#include "core/ts_executor.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "grid/grid.hpp"
#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::core {

struct TsExecutor::NodeTask {
  std::uint32_t client_index = 0;
  net::NodeId node = net::kInvalidNode;
  pfs::FileId input = pfs::kInvalidFile;
  pfs::FileId output = pfs::kInvalidFile;
  std::uint64_t own_lo = 0, own_hi = 0;    // owned strips [lo, hi)
  std::uint64_t read_lo = 0, read_hi = 0;  // owned + halo strips [lo, hi)
  std::uint64_t buf_begin = 0;             // file offset of the slab buffer

  // Data mode: the slab the kernel reads (assembled in place as strips
  // arrive) and the computed output block (sliced into per-strip views for
  // the write-back).
  grid::Grid<float> buffer;
  pfs::StripBuffer out;
  std::uint64_t strips_pending = 0;
  bool slab_ready = false;

  // Bounded-outstanding read issuance (a real PFS client pipelines a few
  // strip reads, it does not flood the servers with the whole slab's
  // requests at once — and flooding would serialize service per client).
  std::uint64_t next_read = 0;  // next strip index to request
  std::uint32_t in_flight = 0;

  // Per owned strip: gate of 2 in data mode (compute done + slab ready),
  // 1 otherwise; the write is issued when the gate reaches zero.
  std::vector<std::uint32_t> write_gate;

  // Async trace scope over this node's whole share of the request;
  // `acks_pending` counts the owned-strip completions left before it ends.
  std::uint64_t trace_id = 0;
  std::uint64_t acks_pending = 0;
  BarrierPtr barrier;
};

TsExecutor::TsExecutor(Cluster& cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  DAS_REQUIRE(options.kernel != nullptr);
  DAS_REQUIRE(!(options.data_mode && options.kernel->is_reduction()));
  cost_factor_ = cluster.config().compute_cost.factor_for(
      options.kernel->name(), options.kernel->cost_factor());
}

TsExecutor::~TsExecutor() = default;

void TsExecutor::start(pfs::FileId input, pfs::FileId output,
                       std::function<void()> on_done) {
  const BarrierPtr barrier = make_barrier(as_callback(std::move(on_done)));
  for (std::uint32_t c = 0; c < cluster_.config().compute_nodes; ++c) {
    start_node(c, input, output, barrier);
  }
  barrier->seal();
}

void TsExecutor::start_node(std::uint32_t client_index, pfs::FileId input,
                            pfs::FileId output, const BarrierPtr& barrier) {
  const pfs::FileMeta& meta = cluster_.pfs().meta(input);
  const bool reduction = options_.kernel->is_reduction();
  // Reductions keep their (tiny) result on the compute node: no output file.
  if (!reduction) {
    DAS_REQUIRE(cluster_.pfs().meta(output).size_bytes == meta.size_bytes);
  }
  const std::uint64_t num_strips = meta.num_strips();
  const std::uint32_t num_clients = cluster_.config().compute_nodes;

  auto owned = std::make_unique<NodeTask>();
  NodeTask* task = owned.get();
  task->client_index = client_index;
  task->node = cluster_.compute_node(client_index);
  task->input = input;
  task->output = output;
  task->own_lo = client_index * num_strips / num_clients;
  task->own_hi = (client_index + 1) * num_strips / num_clients;
  if (task->own_lo >= task->own_hi) return;  // more nodes than strips

  const std::uint64_t halo = options_.halo_strips;
  task->read_lo = task->own_lo >= halo ? task->own_lo - halo : 0;
  task->read_hi = std::min(num_strips, task->own_hi + halo);
  task->strips_pending = task->read_hi - task->read_lo;
  task->write_gate.assign(task->own_hi - task->own_lo,
                          options_.data_mode ? 2U : 1U);
  task->barrier = barrier;
  tasks_.push_back(std::move(owned));

  task->buf_begin = meta.strip(task->read_lo).offset;
  if (options_.data_mode) {
    const pfs::StripRef last = meta.strip(task->read_hi - 1);
    const std::uint64_t buf_bytes =
        last.offset + last.length - task->buf_begin;
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
    DAS_REQUIRE(task->buf_begin % row_bytes == 0);
    DAS_REQUIRE(buf_bytes % row_bytes == 0);
    // The slab the kernel will read, zero-filled like any fresh grid.
    task->buffer = grid::Grid<float>(
        meta.raster_width, static_cast<std::uint32_t>(buf_bytes / row_bytes));
  }

  barrier->add(task->own_hi - task->own_lo);  // one write ack per owned strip
  task->acks_pending = task->own_hi - task->own_lo;

  sim::Tracer& tracer = cluster_.simulator().tracer();
  if (tracer.enabled()) {
    task->trace_id = tracer.next_scope_id();
    tracer.async_begin(cluster_.simulator().now(), task->node, task->trace_id,
                       "ts.node", "request",
                       "{\"own_lo\":" + std::to_string(task->own_lo) +
                           ",\"own_hi\":" + std::to_string(task->own_hi) +
                           "}");
  }

  task->next_read = task->read_lo;
  issue_reads(task);
}

// Issue up to pipeline_window single-strip reads; each completion pulls
// the next request, so requests from all clients interleave at the
// servers instead of arriving as one per-client burst.
void TsExecutor::issue_reads(NodeTask* task) {
  const std::uint32_t window = cluster_.config().pipeline_window;
  const pfs::FileMeta& meta = cluster_.pfs().meta(task->input);
  pfs::PfsClient& client = cluster_.client(task->client_index);
  while (task->in_flight < window && task->next_read < task->read_hi) {
    const pfs::StripRef ref = meta.strip(task->next_read++);
    ++task->in_flight;
    client.read_range(task->input, ref.offset, ref.length, nullptr,
                      [this, task](pfs::StripRef strip,
                                   const pfs::StripBuffer& payload) {
                        on_strip(task, strip, payload);
                      });
  }
}

void TsExecutor::on_strip(NodeTask* task, pfs::StripRef ref,
                          const pfs::StripBuffer& payload) {
  if (options_.data_mode) {
    DAS_REQUIRE(payload.size() == ref.length);
    std::memcpy(reinterpret_cast<std::byte*>(task->buffer.data()) +
                    (ref.offset - task->buf_begin),
                payload.data(), payload.size());
  }
  const bool owned = ref.index >= task->own_lo && ref.index < task->own_hi;
  if (owned) {
    // The processing cost of this strip, on this compute node.
    const sim::SimTime done = cluster_.engine(task->node).execute(
        cluster_.simulator().now(), ref.length, cost_factor_);
    cluster_.simulator().schedule_at(
        done, [this, task, s = ref.index]() { gate_arrive(task, s); },
        "ts.compute");
  }
  DAS_REQUIRE(task->in_flight > 0);
  --task->in_flight;
  issue_reads(task);
  DAS_REQUIRE(task->strips_pending > 0);
  if (--task->strips_pending == 0 && options_.data_mode) complete_slab(task);
}

// Runs the kernel over the whole slab (host-level) once every input strip
// has arrived, then releases the slab gate of every owned strip.
void TsExecutor::complete_slab(NodeTask* task) {
  const pfs::FileMeta& meta = cluster_.pfs().meta(task->input);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
  const std::uint64_t own_begin = meta.strip(task->own_lo).offset;
  const pfs::StripRef own_last = meta.strip(task->own_hi - 1);
  DAS_REQUIRE(own_begin % row_bytes == 0);
  DAS_REQUIRE((own_last.offset + own_last.length) % row_bytes == 0);

  const auto buf_row0 =
      static_cast<std::uint32_t>(task->buf_begin / row_bytes);
  const auto out_row0 = static_cast<std::uint32_t>(own_begin / row_bytes);
  const auto out_row1 = static_cast<std::uint32_t>(
      (own_last.offset + own_last.length) / row_bytes);

  grid::Grid<float> out(meta.raster_width, out_row1 - out_row0);
  options_.kernel->run_tile(task->buffer, buf_row0, meta.raster_height,
                            out_row0, out_row1, out);
  const std::uint64_t out_len = out.size() * sizeof(float);
  task->out = pfs::StripBuffer::allocate(out_len);
  std::memcpy(task->out.mutable_data(), out.data(), out_len);
  task->slab_ready = true;
  for (std::uint64_t s = task->own_lo; s < task->own_hi; ++s) {
    gate_arrive(task, s);
  }
}

// Issues the write of owned strip `s` once its gate reaches zero
// (reductions skip the write: the partial result stays on this node).
void TsExecutor::gate_arrive(NodeTask* task, std::uint64_t strip) {
  auto& gate = task->write_gate[strip - task->own_lo];
  DAS_REQUIRE(gate > 0);
  if (--gate != 0) return;
  if (options_.kernel->is_reduction()) {
    node_ack(task);
    return;
  }
  const pfs::FileMeta& out_meta = cluster_.pfs().meta(task->output);
  const pfs::StripRef ref = out_meta.strip(strip);
  pfs::StripBuffer payload;
  if (options_.data_mode) {
    DAS_REQUIRE(task->slab_ready);
    const std::uint64_t own_begin = out_meta.strip(task->own_lo).offset;
    payload = task->out.view(ref.offset - own_begin, ref.length);
  }
  cluster_.client(task->client_index)
      .write_range(task->output, ref.offset, ref.length, std::move(payload),
                   [this, task]() { node_ack(task); });
}

// One owned-strip completion; ends the node's trace scope on the last.
void TsExecutor::node_ack(NodeTask* task) {
  DAS_REQUIRE(task->acks_pending > 0);
  if (--task->acks_pending == 0 && task->trace_id != 0) {
    cluster_.simulator().tracer().async_end(cluster_.simulator().now(),
                                            task->node, task->trace_id,
                                            "ts.node", "request");
  }
  task->barrier->arrive();
}

}  // namespace das::core
