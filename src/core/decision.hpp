// Offload decision engine — the paper's Fig. 3 workflow.
//
// For an incoming active-storage request the engine:
//  1. gets the dependence pattern (Kernel Features),
//  2. gets the file's current distribution from the PFS,
//  3. predicts the bandwidth cost of offloading under the current layout
//     and of serving the request as normal I/O,
//  4. when a successive operation is expected (or the request allows it),
//     finds a reasonable data distribution and weighs the one-time
//     redistribution cost against the per-operation savings,
//  5. accepts the request (as-is or after redistribution) or rejects it
//     (serve as normal I/O), choosing the plan that moves the fewest bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/bandwidth_model.hpp"
#include "core/config.hpp"
#include "core/distribution_planner.hpp"
#include "kernels/features.hpp"
#include "pfs/file.hpp"
#include "pfs/layout.hpp"

namespace das::core {

enum class OffloadAction {
  kOffload,                    // accept under the current layout
  kOffloadAfterRedistribution, // accept after re-laying-out the file
  kServeNormal,                // reject: serve as a normal I/O request
};

[[nodiscard]] constexpr const char* to_string(OffloadAction a) {
  switch (a) {
    case OffloadAction::kOffload: return "offload";
    case OffloadAction::kOffloadAfterRedistribution:
      return "offload-after-redistribution";
    case OffloadAction::kServeNormal: return "serve-normal";
  }
  return "?";
}

struct Decision {
  OffloadAction action = OffloadAction::kServeNormal;
  /// Forecast under the file's current layout.
  TrafficForecast current_forecast;
  /// Target placement and its forecast (set when redistribution is chosen
  /// or at least evaluated successfully).
  std::optional<PlacementSpec> target;
  TrafficForecast target_forecast;
  std::uint64_t redistribution_bytes = 0;
  /// Predicted total bytes moved by the chosen plan over the whole pipeline.
  std::uint64_t predicted_bytes = 0;
  /// Predicted steady-state strip-cache hit rate under the chosen placement
  /// (0 whenever server-side caching is disabled).
  double predicted_hit_rate = 0.0;
  std::string rationale;
};

class DecisionEngine {
 public:
  /// `cache` describes the per-server strip caches and `prefetch` the halo
  /// prefetcher (defaults: disabled, in which case every prediction reduces
  /// exactly to the uncached/unprefetched model). `network_bandwidth_bps`
  /// (the NIC rate) prices cache hits honestly: a hit still costs the RAM
  /// copy at the cache's hit bandwidth, so with a perfect hit rate the warm
  /// passes cost fetch_bytes * (nic/hit_bw) instead of zero. Left at 0 the
  /// hit cost vanishes, preserving the PR 1 cost model for callers that
  /// never supply it.
  explicit DecisionEngine(const DistributionConfig& config,
                          const cache::CacheConfig& cache = {},
                          const pfs::PrefetchConfig& prefetch = {},
                          double network_bandwidth_bps = 0.0)
      : planner_(config),
        cache_(cache),
        prefetch_(prefetch),
        hit_cost_ratio_(cache.active() && network_bandwidth_bps > 0.0
                            ? network_bandwidth_bps / cache.hit_bandwidth_bps
                            : 0.0) {}

  /// Decide how to serve one operator (with `pipeline_length` successive
  /// operations expected to reuse the same dependence pattern and layout,
  /// and the whole request repeated `repeat_count` times over the same
  /// file — recurring analyses of a hot dataset). Repeats past the first
  /// pay only the cache-miss share of the dependence traffic.
  [[nodiscard]] Decision decide(const pfs::FileMeta& meta,
                                const pfs::Layout& current_layout,
                                const kernels::KernelFeatures& features,
                                std::uint64_t output_bytes,
                                std::uint32_t pipeline_length = 1,
                                std::uint32_t repeat_count = 1) const;

  [[nodiscard]] const DistributionPlanner& planner() const { return planner_; }

 private:
  DistributionPlanner planner_;
  cache::CacheConfig cache_;
  pfs::PrefetchConfig prefetch_;
  double hit_cost_ratio_ = 0.0;
};

/// Exact redistribution cost: bytes that must move to turn `from` into `to`
/// for a file with metadata `meta` (strips gaining a holder are shipped from
/// their current primary).
[[nodiscard]] std::uint64_t redistribution_bytes(const pfs::FileMeta& meta,
                                                 const pfs::Layout& from,
                                                 const pfs::Layout& to);

/// Effective number of full-cost dependence passes out of `repeats`: the
/// first pass is all misses (warmup, so repeats == 1 contributes exactly one
/// cold pass); every later pass misses only the (1 - h) share the cache
/// could not retain. h == 0 degenerates to `repeats` full passes — the
/// exact uncached model.
[[nodiscard]] double warm_passes(std::uint32_t repeats, double hit_rate);

/// Offload cost over the pipeline, in critical-path byte equivalents.
/// Strip fetches pay the cache-miss passes, discounted by the prefetch
/// `overlap` (prefetched bytes cost bandwidth, not critical-path latency);
/// cache hits on the warm passes pay the RAM copy, priced at
/// `hit_cost_ratio` NIC-byte equivalents per byte so a hit rate of 1.0
/// never makes the later passes free. Replica writes are invalidated by
/// every pass's output and pay all of them. Exactly
/// pipeline * active_total * repeats when h == 0 and overlap == 0.
[[nodiscard]] std::uint64_t offload_cost(const TrafficForecast& forecast,
                                         std::uint32_t pipeline,
                                         std::uint32_t repeats,
                                         double hit_rate, double overlap,
                                         double hit_cost_ratio);

}  // namespace das::core
