// Completion barrier for fan-out/fan-in event patterns.
//
// Executors issue many concurrent operations whose completions arrive as
// events; the barrier fires its callback when every registered operation has
// arrived AND seal() has been called (so registrations racing with early
// completions cannot fire the callback prematurely).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "simkit/assert.hpp"
#include "simkit/inplace_fn.hpp"

namespace das::core {

class CompletionBarrier {
 public:
  explicit CompletionBarrier(sim::InplaceFn<void()> on_done)
      : on_done_(std::move(on_done)) {}

  /// Register `n` more expected completions.
  void add(std::uint64_t n = 1) {
    DAS_REQUIRE(!sealed_ || outstanding_ > 0);
    outstanding_ += n;
  }

  /// One completion arrived.
  void arrive() {
    DAS_REQUIRE(outstanding_ > 0);
    --outstanding_;
    maybe_fire();
  }

  /// No further add() calls will follow; fire now if nothing is pending.
  void seal() {
    sealed_ = true;
    maybe_fire();
  }

  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }

 private:
  void maybe_fire() {
    if (sealed_ && outstanding_ == 0 && on_done_) {
      // Move out first: the callback may destroy this barrier.
      auto cb = std::move(on_done_);
      on_done_ = nullptr;
      cb();
    }
  }

  sim::InplaceFn<void()> on_done_;
  std::uint64_t outstanding_ = 0;
  bool sealed_ = false;
};

using BarrierPtr = std::shared_ptr<CompletionBarrier>;

inline BarrierPtr make_barrier(sim::InplaceFn<void()> on_done) {
  return std::make_shared<CompletionBarrier>(std::move(on_done));
}

/// An empty std::function means "no callback"; translate it to a null
/// InplaceFn instead of wrapping a callable that throws bad_function_call.
[[nodiscard]] inline sim::InplaceFn<void()> as_callback(
    std::function<void()> fn) {
  return fn ? sim::InplaceFn<void()>(std::move(fn)) : sim::InplaceFn<void()>();
}

}  // namespace das::core
