#include "core/workload.hpp"

#include <stdexcept>

#include "grid/dem.hpp"
#include "grid/image.hpp"
#include "kernels/flow_routing.hpp"
#include "simkit/assert.hpp"

namespace das::core {

bool WorkloadSpec::geometry_aligned() const {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(width()) * element_size;
  if (data_bytes % row_bytes != 0) return false;
  return strip_size % row_bytes == 0 || row_bytes % strip_size == 0;
}

void WorkloadSpec::require_aligned() const {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(width()) * element_size;
  if (data_bytes % row_bytes != 0) {
    throw std::invalid_argument(
        "workload geometry misaligned: data_bytes=" +
        std::to_string(data_bytes) + " is not a whole number of rows (" +
        std::to_string(width()) + " elements x " +
        std::to_string(element_size) + " B = " + std::to_string(row_bytes) +
        " B/row, remainder " + std::to_string(data_bytes % row_bytes) +
        " B would be silently dropped)");
  }
  if (!geometry_aligned()) {
    throw std::invalid_argument(
        "workload geometry misaligned: row length " +
        std::to_string(row_bytes) + " B does not align with strip_size " +
        std::to_string(strip_size) +
        " B (one must divide the other for strips to cover whole rows)");
  }
}

pfs::FileMeta WorkloadSpec::make_meta(std::string name) const {
  DAS_REQUIRE(data_bytes > 0);
  DAS_REQUIRE(strip_size > 0);
  DAS_REQUIRE(element_size > 0);
  pfs::FileMeta meta;
  meta.name = std::move(name);
  meta.size_bytes = data_bytes;
  meta.element_size = element_size;
  meta.strip_size = strip_size;
  meta.raster_width = width();
  meta.raster_height = height();
  return meta;
}

grid::Grid<float> make_input(const WorkloadSpec& spec,
                             const kernels::ProcessingKernel& kernel) {
  spec.require_aligned();
  const std::uint32_t w = spec.width();
  const std::uint32_t h = spec.height();

  if (kernel.name() == "flow-routing" || kernel.name() == "surface-slope") {
    grid::DemOptions opt;
    opt.width = w;
    opt.height = h;
    opt.seed = spec.seed;
    return grid::generate_dem(opt);
  }
  if (kernel.name() == "flow-accumulation") {
    grid::DemOptions opt;
    opt.width = w;
    opt.height = h;
    opt.seed = spec.seed;
    const grid::Grid<float> dem = grid::generate_dem(opt);
    return kernels::FlowRoutingKernel{}.run_reference(dem);
  }
  grid::ImageOptions opt;
  opt.width = w;
  opt.height = h;
  opt.seed = spec.seed;
  return grid::generate_image(opt);
}

grid::Grid<float> make_reference_output(
    const WorkloadSpec& spec, const kernels::ProcessingKernel& kernel) {
  return kernel.run_reference(make_input(spec, kernel));
}

}  // namespace das::core
