#include "core/migration_planner.hpp"

#include <string>

#include "core/decision.hpp"
#include "simkit/assert.hpp"

namespace das::core {
namespace {

/// PlacementSpec of `layout` when it is expressible as one; nullopt for
/// layout families the bandwidth model does not parameterise (e.g. the
/// traffic engine's ReplicatedRoundRobinLayout).
std::optional<PlacementSpec> spec_of(const pfs::Layout& layout) {
  if (dynamic_cast<const pfs::DasReplicatedLayout*>(&layout) != nullptr ||
      dynamic_cast<const pfs::GroupedLayout*>(&layout) != nullptr ||
      dynamic_cast<const pfs::RoundRobinLayout*>(&layout) != nullptr) {
    return PlacementSpec::from_layout(layout);
  }
  return std::nullopt;
}

}  // namespace

std::optional<MigrationPlan> MigrationPlanner::observe(
    const pfs::FileMeta& meta, const pfs::Layout& current_layout,
    const std::vector<std::int64_t>& offsets,
    std::uint64_t observed_halo_bytes, std::uint32_t remaining_passes) {
  if (!config_.enabled || launched_) return std::nullopt;
  if (observed_halo_bytes < config_.min_observed_bytes) {
    streak_ = 0;
    return std::nullopt;
  }

  const std::optional<PlacementSpec> best =
      planner_.plan(meta, offsets, current_layout.num_servers());
  if (!best) {
    // No placement makes this pattern local within budget; nothing to
    // migrate toward.
    streak_ = 0;
    return std::nullopt;
  }
  if (const std::optional<PlacementSpec> current = spec_of(current_layout);
      current && *current == *best) {
    // Already on the best placement: the observed traffic is what this
    // pattern costs, not a layout mismatch.
    streak_ = 0;
    return std::nullopt;
  }

  const TrafficForecast forecast =
      forecast_traffic(meta, offsets, *best, /*output_bytes=*/0);
  const std::uint64_t predicted = forecast.active_strip_fetch_bytes;
  if (static_cast<double>(observed_halo_bytes) <=
      config_.divergence_threshold * static_cast<double>(predicted)) {
    streak_ = 0;
    return std::nullopt;
  }

  // Divergent pass: the layout is demonstrably wrong for the observed
  // pattern. Require a streak before acting.
  ++streak_;
  if (streak_ < config_.hysteresis_passes) return std::nullopt;

  // Cost model: the one-time move must pay for itself over the remaining
  // passes. Savings per pass is what the mismatch costs above the best
  // placement's own traffic.
  const std::unique_ptr<pfs::Layout> target = best->make_layout();
  const std::uint64_t move_bytes =
      redistribution_bytes(meta, current_layout, *target);
  const double savings_per_pass =
      static_cast<double>(observed_halo_bytes - predicted);
  if (savings_per_pass * static_cast<double>(remaining_passes) <=
      static_cast<double>(move_bytes)) {
    // Streak is kept: remaining_passes only shrinks from here, so if the
    // move does not pay now it will not pay later — but a caller with a
    // longer horizon (new request over the same file) may re-observe.
    return std::nullopt;
  }

  MigrationPlan plan;
  plan.target = *best;
  plan.predicted_halo_bytes = predicted;
  plan.move_bytes = move_bytes;
  plan.rationale =
      "observed " + std::to_string(observed_halo_bytes) + " B/pass vs " +
      std::to_string(predicted) + " B/pass under r=" +
      std::to_string(best->group_size) + ",halo=" +
      std::to_string(best->halo) + "; move " + std::to_string(move_bytes) +
      " B pays back over " + std::to_string(remaining_passes) + " passes";
  return plan;
}

}  // namespace das::core
