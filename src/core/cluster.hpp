// Simulated cluster assembly: storage nodes [0, S), compute nodes
// [S, S + C), one network, one parallel file system over the storage nodes,
// and a compute engine on every node (the paper's configuration gives NAS,
// DAS and TS "the same computation capability").
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "net/network.hpp"
#include "pfs/client.hpp"
#include "pfs/metadata.hpp"
#include "pfs/pfs.hpp"
#include "simkit/simulator.hpp"
#include "storage/compute_engine.hpp"

namespace das::core {

class Cluster {
 public:
  /// `context` is the run's logger/tracer/rng bundle; null gives the
  /// cluster's simulator its private default context. The context must
  /// outlive the cluster.
  explicit Cluster(const ClusterConfig& config,
                   sim::RunContext* context = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] pfs::Pfs& pfs() { return *pfs_; }

  /// Node id of storage server index i (identity by construction).
  [[nodiscard]] net::NodeId storage_node(pfs::ServerIndex index) const;

  /// Node id of the i-th compute node.
  [[nodiscard]] net::NodeId compute_node(std::uint32_t index) const;

  /// The processing engine on any node (storage or compute).
  [[nodiscard]] storage::ComputeEngine& engine(net::NodeId node);

  /// The PFS client running on the i-th compute node.
  [[nodiscard]] pfs::PfsClient& client(std::uint32_t index);

  /// The metadata service (hosted on storage node 0).
  [[nodiscard]] pfs::MetadataService& metadata();

  /// The metadata cache of the i-th compute node.
  [[nodiscard]] pfs::MetadataCache& metadata_cache(std::uint32_t index);

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<pfs::Pfs> pfs_;
  std::vector<storage::ComputeEngine> engines_;
  std::vector<std::unique_ptr<pfs::PfsClient>> clients_;
  std::unique_ptr<pfs::MetadataService> metadata_;
  std::vector<std::unique_ptr<pfs::MetadataCache>> metadata_caches_;
};

}  // namespace das::core
