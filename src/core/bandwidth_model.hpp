// Bandwidth analysis and prediction (paper §III-C and §III-D).
//
// Given an operator's dependence offsets, the element size E, the strip
// size, and the placement (D servers, group size r, replicated halo), this
// model predicts how many dependent accesses cross servers and what the
// resulting data movement is, so the Active Storage Client can decide
// whether offloading beats normal I/O (the paper's Fig. 3 workflow).
//
// The paper's equations appear as:
//  * strip_of_element / location_of_element      — Eqs. 1-4 (and 14-16 with
//    group size r),
//  * remote_access_fraction                      — the exact a_j of Eq. 5,
//    extended from the paper's element-position argument to account for the
//    fraction of elements sitting close enough to a group boundary for
//    their dependents to cross it,
//  * bwcost_per_element                          — Eq. 5,
//  * paper_locality_criterion                    — Eq. 17's literal
//    "(stride*E)/(r*strip_size) mod D == 0" test.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/file.hpp"
#include "pfs/layout.hpp"

namespace das::core {

/// Placement parameters the predictor reasons about. group_size == 1 and
/// halo == 0 describes the default round-robin layout.
struct PlacementSpec {
  std::uint32_t num_servers = 1;  // D
  std::uint64_t group_size = 1;   // r
  std::uint64_t halo = 0;         // strips replicated at each group edge

  /// Recover the spec from a concrete layout object.
  [[nodiscard]] static PlacementSpec from_layout(const pfs::Layout& layout);

  /// Instantiate the concrete layout for this spec.
  [[nodiscard]] std::unique_ptr<pfs::Layout> make_layout() const;

  friend bool operator==(const PlacementSpec&, const PlacementSpec&) = default;
};

/// Paper Eq. 1 (and the Eq. 14 variant): strip/group of element i.
[[nodiscard]] std::uint64_t strip_of_element(std::uint64_t i,
                                             std::uint32_t element_size,
                                             std::uint64_t strip_size);

/// Paper Eqs. 2/14: server index of element i under `placement`.
[[nodiscard]] std::uint32_t location_of_element(std::uint64_t i,
                                                std::uint32_t element_size,
                                                std::uint64_t strip_size,
                                                const PlacementSpec& placement);

/// Exact fraction of (interior) elements whose dependent at `offset`
/// elements away resides on a different server with no local replica.
/// Derived in closed form; see bandwidth_model.cpp.
[[nodiscard]] double remote_access_fraction(std::int64_t offset,
                                            std::uint32_t element_size,
                                            std::uint64_t strip_size,
                                            const PlacementSpec& placement);

/// Brute-force counterpart of remote_access_fraction for validation:
/// evaluates elements [begin, end) directly via location_of_element and the
/// layout's replica sets.
[[nodiscard]] double measure_remote_fraction(std::int64_t offset,
                                             std::uint32_t element_size,
                                             std::uint64_t strip_size,
                                             const PlacementSpec& placement,
                                             std::uint64_t begin,
                                             std::uint64_t end);

/// Paper Eq. 5: expected remote bytes that must move to process one element.
[[nodiscard]] double bwcost_per_element(const std::vector<std::int64_t>& offsets,
                                        std::uint32_t element_size,
                                        std::uint64_t strip_size,
                                        const PlacementSpec& placement);

/// Paper Eq. 17: (stride*E) / (r*strip_size) mod D == 0.
/// `stride` is in elements and may be negative (the -W family of stencil
/// offsets). The division and modulus are *floored*, not C++-truncated: a
/// dependent even one byte before its element's group sits one group away,
/// so truncation toward zero would misclassify every backward offset
/// shorter than a group as local. The paper uses this as its offload
/// criterion; remote_access_fraction is the exact version (Eq. 17 ignores
/// the boundary-crossing fraction that halo replication exists to absorb).
[[nodiscard]] bool paper_locality_criterion(std::int64_t stride,
                                            std::uint32_t element_size,
                                            std::uint64_t strip_size,
                                            std::uint64_t group_size,
                                            std::uint32_t num_servers);

/// Predicted data movement for serving one operator invocation.
struct TrafficForecast {
  /// Server-to-server bytes if offloaded and dependents are fetched exactly
  /// (Eq. 5 summed over the file).
  double active_exact_bytes = 0.0;
  /// Server-to-server bytes if offloaded with strip-granular halo fetches
  /// (what a real active-storage server does; >= active_exact_bytes).
  std::uint64_t active_strip_fetch_bytes = 0;
  /// Server-to-server bytes spent propagating output halo replicas.
  std::uint64_t replica_write_bytes = 0;
  /// Client-server bytes if served as normal I/O (input out + output back).
  std::uint64_t normal_io_bytes = 0;
  /// Critical-path bytes of normal I/O: input and output travel opposite
  /// directions over full-duplex links, so the slower direction governs.
  std::uint64_t normal_critical_bytes = 0;

  /// Total movement if offloaded (strip-fetch policy). Every one of these
  /// bytes leaves one storage server and enters another, loading the server
  /// pool's NICs in both directions at once.
  [[nodiscard]] std::uint64_t active_total_bytes() const {
    return active_strip_fetch_bytes + replica_write_bytes;
  }

  /// The accept/reject test of the paper's Fig. 3 workflow: offload iff the
  /// dependence traffic underruns the normal path's critical direction.
  [[nodiscard]] bool offload_beneficial() const {
    return active_total_bytes() < normal_critical_bytes;
  }
};

/// Forecast the traffic for one operator over `meta` under `placement`.
/// `offsets` are the resolved dependence offsets (elements); `output_bytes`
/// the size of the operator's output (all Table-I kernels: same as input).
[[nodiscard]] TrafficForecast forecast_traffic(
    const pfs::FileMeta& meta, const std::vector<std::int64_t>& offsets,
    const PlacementSpec& placement, std::uint64_t output_bytes);

/// Halo strips a run needs on each side to cover the widest offset.
[[nodiscard]] std::uint64_t required_halo_strips(
    const std::vector<std::int64_t>& offsets, std::uint32_t element_size,
    std::uint64_t strip_size);

/// Predicted steady-state hit rate of the per-server remote-strip cache
/// when the operator is re-run over the same file. Each server's working
/// set is its share of the strip-fetch traffic (`forecast`); the cache
/// retains min(capacity, working set) of it between passes, so repeated
/// passes hit at capacity / working-set (clamped to 1). Returns 0 when the
/// placement produces no remote fetches or the cache holds nothing.
[[nodiscard]] double predicted_cache_hit_rate(const TrafficForecast& forecast,
                                              const PlacementSpec& placement,
                                              std::uint64_t capacity_bytes);

/// Fraction of remote-fetch latency a halo prefetcher of the given depth
/// hides from the critical path. With `depth` fetches in flight ahead of
/// the sweep, depth of every depth+1 strip round-trips overlaps compute,
/// so the exposed share is 1/(depth+1). Prefetched bytes still cost
/// bandwidth — only their critical-path latency shrinks. 0 at depth 0.
[[nodiscard]] double prefetch_overlap_fraction(std::uint32_t depth);

}  // namespace das::core
