#include "core/bandwidth_model.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "simkit/assert.hpp"

namespace das::core {

PlacementSpec PlacementSpec::from_layout(const pfs::Layout& layout) {
  PlacementSpec spec;
  spec.num_servers = layout.num_servers();
  if (const auto* das = dynamic_cast<const pfs::DasReplicatedLayout*>(&layout)) {
    spec.group_size = das->group_size();
    spec.halo = das->halo();
  } else if (const auto* grouped =
                 dynamic_cast<const pfs::GroupedLayout*>(&layout)) {
    spec.group_size = grouped->group_size();
    spec.halo = 0;
  } else if (dynamic_cast<const pfs::RoundRobinLayout*>(&layout) != nullptr) {
    spec.group_size = 1;
    spec.halo = 0;
  } else {
    DAS_REQUIRE(false && "unknown layout type");
  }
  return spec;
}

std::unique_ptr<pfs::Layout> PlacementSpec::make_layout() const {
  if (halo > 0) {
    return std::make_unique<pfs::DasReplicatedLayout>(num_servers, group_size,
                                                      halo);
  }
  if (group_size == 1) {
    return std::make_unique<pfs::RoundRobinLayout>(num_servers);
  }
  return std::make_unique<pfs::GroupedLayout>(num_servers, group_size);
}

std::uint64_t strip_of_element(std::uint64_t i, std::uint32_t element_size,
                               std::uint64_t strip_size) {
  DAS_REQUIRE(strip_size > 0);
  return i * element_size / strip_size;
}

std::uint32_t location_of_element(std::uint64_t i, std::uint32_t element_size,
                                  std::uint64_t strip_size,
                                  const PlacementSpec& placement) {
  const std::uint64_t strip = strip_of_element(i, element_size, strip_size);
  return static_cast<std::uint32_t>((strip / placement.group_size) %
                                    placement.num_servers);
}

// Derivation. Let G = r * strip_size be the bytes per group and z = |offset|
// * E the dependence distance in bytes. The byte position of an element
// within its group is (for interior elements) uniform over the group, so the
// dependent lands delta = q groups away with probability (G - rem) / G and
// delta = q + 1 groups away with probability rem / G, where q = z / G and
// rem = z % G. Writing d for the dependent's distance past the *near* edge
// of its group (the edge facing the element):
//   delta = q:     d = phi + rem,       uniform over [rem, G)
//   delta = q + 1: d = phi - (G - rem), uniform over [0, rem)
// A dependent delta groups away is locally available iff one of:
//   * delta mod D == 0        — same server again;
//   * (delta - 1) mod D == 0 and d < H        — we own the group *before*
//     the dependent's, so its first `halo` strips are replicated to us;
//   * (delta + 1) mod D == 0 and d >= G - H   — we own the group *after*
//     it, so its last `halo` strips are replicated to us
// with H = halo * strip_size. (For D == 2 the two replica cases coincide on
// the same peer and both apply.) Negative offsets mirror exactly.
double remote_access_fraction(std::int64_t offset, std::uint32_t element_size,
                              std::uint64_t strip_size,
                              const PlacementSpec& placement) {
  if (offset == 0 || placement.num_servers == 1) return 0.0;
  DAS_REQUIRE(element_size > 0 && strip_size > 0);
  DAS_REQUIRE(placement.halo == 0 ||
              2 * placement.halo <= placement.group_size);

  const std::uint64_t group_bytes = placement.group_size * strip_size;
  const std::uint64_t z = static_cast<std::uint64_t>(
                              offset < 0 ? -offset : offset) *
                          element_size;
  const std::uint64_t q = z / group_bytes;
  const std::uint64_t rem = z % group_bytes;
  const double g = static_cast<double>(group_bytes);
  const double halo_bytes =
      static_cast<double>(placement.halo) * static_cast<double>(strip_size);
  const std::uint32_t servers = placement.num_servers;

  const auto overlap = [](double a, double b, double lo, double hi) {
    return std::max(0.0, std::min(b, hi) - std::max(a, lo));
  };

  // Remote probability of one delta branch given d uniform on [a, b).
  const auto branch_remote = [&](std::uint64_t delta, double a, double b) {
    if (delta == 0 || delta % servers == 0) return 0.0;
    double local = 0.0;
    if ((delta - 1) % servers == 0) local += overlap(a, b, 0.0, halo_bytes);
    if ((delta + 1) % servers == 0) {
      local += overlap(a, b, g - halo_bytes, g);
    }
    const double len = b - a;
    return (len - std::min(local, len)) / len;
  };

  double remote = 0.0;
  if (group_bytes > rem) {
    remote += (g - static_cast<double>(rem)) / g *
              branch_remote(q, static_cast<double>(rem), g);
  }
  if (rem > 0) {
    remote += static_cast<double>(rem) / g *
              branch_remote(q + 1, 0.0, static_cast<double>(rem));
  }
  return remote;
}

double measure_remote_fraction(std::int64_t offset,
                               std::uint32_t element_size,
                               std::uint64_t strip_size,
                               const PlacementSpec& placement,
                               std::uint64_t begin, std::uint64_t end) {
  DAS_REQUIRE(begin < end);
  const auto layout = placement.make_layout();
  // Enough strips that no sampled dependent is suppressed as a file edge.
  const std::uint64_t margin =
      static_cast<std::uint64_t>(std::abs(offset)) + 1;
  const std::uint64_t num_strips =
      strip_of_element(end + margin, element_size, strip_size) +
      2 * placement.group_size + 2;

  std::uint64_t remote = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    const std::int64_t dep = static_cast<std::int64_t>(i) + offset;
    DAS_REQUIRE(dep >= 0);
    const std::uint64_t dep_strip = strip_of_element(
        static_cast<std::uint64_t>(dep), element_size, strip_size);
    const auto server = static_cast<pfs::ServerIndex>(
        location_of_element(i, element_size, strip_size, placement));
    if (!layout->holds(server, dep_strip, num_strips)) ++remote;
  }
  return static_cast<double>(remote) / static_cast<double>(end - begin);
}

double bwcost_per_element(const std::vector<std::int64_t>& offsets,
                          std::uint32_t element_size,
                          std::uint64_t strip_size,
                          const PlacementSpec& placement) {
  double cost = 0.0;
  for (const std::int64_t off : offsets) {
    cost += static_cast<double>(element_size) *
            remote_access_fraction(off, element_size, strip_size, placement);
  }
  return cost;
}

bool paper_locality_criterion(std::int64_t stride,
                              std::uint32_t element_size,
                              std::uint64_t strip_size,
                              std::uint64_t group_size,
                              std::uint32_t num_servers) {
  DAS_REQUIRE(strip_size > 0 && group_size > 0 && num_servers > 0);
  const auto group_bytes =
      static_cast<std::int64_t>(group_size * strip_size);
  const std::int64_t z = stride * static_cast<std::int64_t>(element_size);
  // Floored division: C++'s `/` truncates toward zero, which would place a
  // dependent anywhere in the previous group "0 groups away" and pass the
  // mod-D test on every (D, r) combination.
  std::int64_t groups_away = z / group_bytes;
  if (z % group_bytes != 0 && z < 0) --groups_away;
  const auto servers = static_cast<std::int64_t>(num_servers);
  return ((groups_away % servers) + servers) % servers == 0;
}

std::uint64_t required_halo_strips(const std::vector<std::int64_t>& offsets,
                                   std::uint32_t element_size,
                                   std::uint64_t strip_size) {
  std::uint64_t reach_bytes = 0;
  for (const std::int64_t off : offsets) {
    const auto z = static_cast<std::uint64_t>(off < 0 ? -off : off) *
                   element_size;
    reach_bytes = std::max(reach_bytes, z);
  }
  return (reach_bytes + strip_size - 1) / strip_size;
}

TrafficForecast forecast_traffic(const pfs::FileMeta& meta,
                                 const std::vector<std::int64_t>& offsets,
                                 const PlacementSpec& placement,
                                 std::uint64_t output_bytes) {
  TrafficForecast out;
  out.normal_io_bytes = meta.size_bytes + output_bytes;
  out.normal_critical_bytes = std::max(meta.size_bytes, output_bytes);
  out.active_exact_bytes =
      bwcost_per_element(offsets, meta.element_size, meta.strip_size,
                         placement) *
      static_cast<double>(meta.num_elements());

  const std::uint64_t num_strips = meta.num_strips();
  const std::uint64_t needed =
      required_halo_strips(offsets, meta.element_size, meta.strip_size);
  const std::uint64_t missing =
      needed > placement.halo ? needed - placement.halo : 0;

  if (placement.num_servers > 1) {
    const std::uint64_t r = placement.group_size;
    const std::uint64_t num_groups = (num_strips + r - 1) / r;

    // Strip-granular fetches: each group (run) fetches its missing halo
    // strips from the neighbouring servers, clipped at the file edges.
    if (missing > 0) {
      for (std::uint64_t g = 0; g < num_groups; ++g) {
        const std::uint64_t lo = g * r;
        const std::uint64_t hi = std::min(num_strips, lo + r) - 1;
        for (std::uint64_t m = 1; m <= missing; ++m) {
          const std::uint64_t pre_wanted = placement.halo + m;
          if (lo >= pre_wanted) {
            out.active_strip_fetch_bytes +=
                meta.strip(lo - pre_wanted).length;
          }
          if (hi + pre_wanted < num_strips) {
            out.active_strip_fetch_bytes +=
                meta.strip(hi + pre_wanted).length;
          }
        }
      }
    }

    // Output replica propagation: the output inherits the placement, so the
    // halo strips of every group are copied to the neighbouring server.
    if (placement.halo > 0 && output_bytes > 0) {
      pfs::FileMeta out_meta = meta;
      out_meta.size_bytes = output_bytes;
      const std::uint64_t out_strips = out_meta.num_strips();
      const auto layout = placement.make_layout();
      for (std::uint64_t s = 0; s < out_strips; ++s) {
        const auto reps = layout->replicas(s, out_strips);
        out.replica_write_bytes +=
            reps.size() * out_meta.strip(s).length;
      }
    }
  }

  return out;
}

double predicted_cache_hit_rate(const TrafficForecast& forecast,
                                const PlacementSpec& placement,
                                std::uint64_t capacity_bytes) {
  if (capacity_bytes == 0 || forecast.active_strip_fetch_bytes == 0) {
    return 0.0;
  }
  // Fetches are spread evenly over the servers (every group needs the same
  // halo), so each server's steady-state working set is its share.
  const double working_set =
      static_cast<double>(forecast.active_strip_fetch_bytes) /
      static_cast<double>(placement.num_servers);
  if (working_set <= 0.0) return 0.0;
  return std::min(1.0, static_cast<double>(capacity_bytes) / working_set);
}

double prefetch_overlap_fraction(std::uint32_t depth) {
  if (depth == 0) return 0.0;
  return static_cast<double>(depth) / (static_cast<double>(depth) + 1.0);
}

}  // namespace das::core
