#include "core/decision.hpp"

#include <algorithm>
#include <sstream>

#include "simkit/assert.hpp"

namespace das::core {

std::uint64_t redistribution_bytes(const pfs::FileMeta& meta,
                                   const pfs::Layout& from,
                                   const pfs::Layout& to) {
  DAS_REQUIRE(from.num_servers() == to.num_servers());
  const std::uint64_t n = meta.num_strips();
  std::uint64_t moved = 0;
  for (std::uint64_t s = 0; s < n; ++s) {
    const auto old_holders = from.holders(s, n);
    for (const pfs::ServerIndex target : to.holders(s, n)) {
      if (std::find(old_holders.begin(), old_holders.end(), target) ==
          old_holders.end()) {
        moved += meta.strip(s).length;
      }
    }
  }
  return moved;
}

Decision DecisionEngine::decide(const pfs::FileMeta& meta,
                                const pfs::Layout& current_layout,
                                const kernels::KernelFeatures& features,
                                std::uint64_t output_bytes,
                                std::uint32_t pipeline_length) const {
  DAS_REQUIRE(pipeline_length >= 1);
  DAS_REQUIRE(meta.raster_width > 0);

  Decision decision;
  const auto offsets = features.resolve(meta.raster_width);
  const PlacementSpec current = PlacementSpec::from_layout(current_layout);
  decision.current_forecast =
      forecast_traffic(meta, offsets, current, output_bytes);

  // Costs are critical-path bytes per the comparison in
  // TrafficForecast::offload_beneficial, totalled over the pipeline.
  const std::uint64_t pipeline = pipeline_length;
  const std::uint64_t cost_normal =
      decision.current_forecast.normal_critical_bytes * pipeline;
  const std::uint64_t cost_offload_asis =
      decision.current_forecast.active_total_bytes() * pipeline;

  std::uint64_t cost_redistribute = UINT64_MAX;
  const auto target =
      planner_.plan(meta, offsets, current_layout.num_servers());
  if (target.has_value() && *target != current) {
    decision.target = target;
    decision.target_forecast =
        forecast_traffic(meta, offsets, *target, output_bytes);
    decision.redistribution_bytes = redistribution_bytes(
        meta, current_layout, *target->make_layout());
    cost_redistribute =
        decision.redistribution_bytes +
        decision.target_forecast.active_total_bytes() * pipeline;
  }

  std::ostringstream why;
  why << "per-element bwcost=" << decision.current_forecast.active_exact_bytes /
             std::max<double>(1.0, static_cast<double>(meta.num_elements()))
      << "B; normal=" << cost_normal << "B, offload=" << cost_offload_asis
      << "B, redistribute=";
  if (cost_redistribute == UINT64_MAX) {
    why << "n/a";
  } else {
    why << cost_redistribute << "B";
  }
  why << " (pipeline x" << pipeline << ")";

  if (cost_offload_asis <= cost_normal &&
      cost_offload_asis <= cost_redistribute) {
    decision.action = OffloadAction::kOffload;
    decision.predicted_bytes = cost_offload_asis;
  } else if (cost_redistribute <= cost_normal) {
    decision.action = OffloadAction::kOffloadAfterRedistribution;
    decision.predicted_bytes = cost_redistribute;
  } else {
    decision.action = OffloadAction::kServeNormal;
    decision.predicted_bytes = cost_normal;
  }
  decision.rationale = why.str();
  return decision;
}

}  // namespace das::core
