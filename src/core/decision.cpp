#include "core/decision.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "simkit/assert.hpp"

namespace das::core {

std::uint64_t redistribution_bytes(const pfs::FileMeta& meta,
                                   const pfs::Layout& from,
                                   const pfs::Layout& to) {
  DAS_REQUIRE(from.num_servers() == to.num_servers());
  const std::uint64_t n = meta.num_strips();
  std::uint64_t moved = 0;
  for (std::uint64_t s = 0; s < n; ++s) {
    const auto old_holders = from.holders(s, n);
    for (const pfs::ServerIndex target : to.holders(s, n)) {
      if (std::find(old_holders.begin(), old_holders.end(), target) ==
          old_holders.end()) {
        moved += meta.strip(s).length;
      }
    }
  }
  return moved;
}

double warm_passes(std::uint32_t repeats, double hit_rate) {
  return 1.0 + (static_cast<double>(repeats) - 1.0) * (1.0 - hit_rate);
}

std::uint64_t offload_cost(const TrafficForecast& forecast,
                           std::uint32_t pipeline, std::uint32_t repeats,
                           double hit_rate, double overlap,
                           double hit_cost_ratio) {
  const double fetch =
      static_cast<double>(forecast.active_strip_fetch_bytes) *
      (warm_passes(repeats, hit_rate) * (1.0 - overlap) +
       (static_cast<double>(repeats) - 1.0) * hit_rate * hit_cost_ratio);
  const double replica = static_cast<double>(forecast.replica_write_bytes) *
                         static_cast<double>(repeats);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(pipeline) * (fetch + replica)));
}

Decision DecisionEngine::decide(const pfs::FileMeta& meta,
                                const pfs::Layout& current_layout,
                                const kernels::KernelFeatures& features,
                                std::uint64_t output_bytes,
                                std::uint32_t pipeline_length,
                                std::uint32_t repeat_count) const {
  DAS_REQUIRE(pipeline_length >= 1);
  DAS_REQUIRE(repeat_count >= 1);
  DAS_REQUIRE(meta.raster_width > 0);

  Decision decision;
  const auto offsets = features.resolve(meta.raster_width);
  const PlacementSpec current = PlacementSpec::from_layout(current_layout);
  decision.current_forecast =
      forecast_traffic(meta, offsets, current, output_bytes);

  // Costs are critical-path bytes per the comparison in
  // TrafficForecast::offload_beneficial, totalled over the pipeline and the
  // repeated invocations. With caching off (hit rate 0) and repeat_count 1
  // every formula reduces to the original uncached model bit for bit.
  const std::uint64_t pipeline = pipeline_length;
  const std::uint64_t repeats = repeat_count;
  const double hit_current =
      cache_.active() ? predicted_cache_hit_rate(decision.current_forecast,
                                                 current,
                                                 cache_.capacity_bytes)
                      : 0.0;
  const double overlap = cache_.active() && prefetch_.active()
                             ? prefetch_overlap_fraction(prefetch_.depth)
                             : 0.0;
  const std::uint64_t cost_normal =
      decision.current_forecast.normal_critical_bytes * pipeline * repeats;
  const std::uint64_t cost_offload_asis =
      offload_cost(decision.current_forecast, pipeline_length, repeat_count,
                   hit_current, overlap, hit_cost_ratio_);

  std::uint64_t cost_redistribute = UINT64_MAX;
  double hit_target = 0.0;
  const auto target =
      planner_.plan(meta, offsets, current_layout.num_servers());
  if (target.has_value() && *target != current) {
    decision.target = target;
    decision.target_forecast =
        forecast_traffic(meta, offsets, *target, output_bytes);
    decision.redistribution_bytes = redistribution_bytes(
        meta, current_layout, *target->make_layout());
    hit_target =
        cache_.active() ? predicted_cache_hit_rate(decision.target_forecast,
                                                   *target,
                                                   cache_.capacity_bytes)
                        : 0.0;
    cost_redistribute =
        decision.redistribution_bytes +
        offload_cost(decision.target_forecast, pipeline_length, repeat_count,
                     hit_target, overlap, hit_cost_ratio_);
  }

  std::ostringstream why;
  why << "per-element bwcost=" << decision.current_forecast.active_exact_bytes /
             std::max<double>(1.0, static_cast<double>(meta.num_elements()))
      << "B; normal=" << cost_normal << "B, offload=" << cost_offload_asis
      << "B, redistribute=";
  if (cost_redistribute == UINT64_MAX) {
    why << "n/a";
  } else {
    why << cost_redistribute << "B";
  }
  why << " (pipeline x" << pipeline << ")";
  if (repeats > 1) why << " (repeats x" << repeats << ")";
  if (cache_.active()) {
    why << " (cache hit-rate current=" << hit_current;
    if (decision.target.has_value()) why << ", target=" << hit_target;
    if (hit_cost_ratio_ > 0.0) why << ", hit-cost=" << hit_cost_ratio_;
    why << ")";
  }
  if (overlap > 0.0) {
    why << " (prefetch depth=" << prefetch_.depth << " overlap=" << overlap
        << ")";
  }

  if (cost_offload_asis <= cost_normal &&
      cost_offload_asis <= cost_redistribute) {
    decision.action = OffloadAction::kOffload;
    decision.predicted_bytes = cost_offload_asis;
    decision.predicted_hit_rate = hit_current;
  } else if (cost_redistribute <= cost_normal) {
    decision.action = OffloadAction::kOffloadAfterRedistribution;
    decision.predicted_bytes = cost_redistribute;
    decision.predicted_hit_rate = hit_target;
  } else {
    decision.action = OffloadAction::kServeNormal;
    decision.predicted_bytes = cost_normal;
    decision.predicted_hit_rate = 0.0;
  }
  decision.rationale = why.str();
  return decision;
}

}  // namespace das::core
