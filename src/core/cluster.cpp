#include "core/cluster.hpp"

#include <string>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::core {

Cluster::Cluster(const ClusterConfig& config, sim::RunContext* context)
    : config_(config) {
  DAS_REQUIRE(config.storage_nodes > 0);
  DAS_REQUIRE(config.compute_nodes > 0);
  DAS_REQUIRE(config.straggler_count <= config.storage_nodes);
  DAS_REQUIRE(config.straggler_slowdown >= 1.0);

  // Attach the run context before any component captures &sim_.tracer().
  sim_.set_context(context);

  network_ = std::make_unique<net::Network>(sim_, config.network_config());

  std::vector<net::NodeId> server_nodes;
  std::vector<storage::DiskConfig> disk_configs;
  server_nodes.reserve(config.storage_nodes);
  disk_configs.reserve(config.storage_nodes);
  for (std::uint32_t i = 0; i < config.storage_nodes; ++i) {
    server_nodes.push_back(i);
    storage::DiskConfig disk = config.disk_config();
    if (i < config.straggler_count) {
      disk.bandwidth_bps /= config.straggler_slowdown;
    }
    disk.jitter = config.disk_jitter;
    disk.seed = config.seed + i;
    disk_configs.push_back(disk);
  }
  pfs_ = std::make_unique<pfs::Pfs>(sim_, *network_, std::move(server_nodes),
                                    std::move(disk_configs));
  pfs_->enable_strip_caches(config.server_cache);
  pfs_->enable_prefetch(config.prefetch);
  metadata_ = std::make_unique<pfs::MetadataService>(sim_, *network_, *pfs_,
                                                     storage_node(0));

  engines_.reserve(config.total_nodes());
  for (std::uint32_t i = 0; i < config.total_nodes(); ++i) {
    storage::ComputeConfig engine = config.compute_config();
    if (i < config.straggler_count && i < config.storage_nodes) {
      engine.rate_bps /= config.straggler_slowdown;
    }
    engines_.emplace_back(engine);
    engines_.back().set_trace_node(i);
    engines_.back().set_tracer(&sim_.tracer());
  }

  // Bind the run tracer's clock to this cluster's simulator and name every
  // node and track. The tracer belongs to the run context, so concurrent
  // clusters in one process each stamp against their own clock.
  sim::Tracer& tracer = sim_.tracer();
  tracer.set_clock([this]() { return sim_.now(); });
  if (tracer.enabled()) {
    for (std::uint32_t i = 0; i < config.total_nodes(); ++i) {
      const bool is_server = i < config.storage_nodes;
      tracer.set_process_name(
          i, is_server ? "server" + std::to_string(i)
                       : "client" + std::to_string(i - config.storage_nodes));
      for (std::uint32_t t = 0; t < sim::kNumTraceTracks; ++t) {
        tracer.set_track_name(i, static_cast<sim::TraceTrack>(t),
                              sim::to_string(static_cast<sim::TraceTrack>(t)));
      }
    }
  }

  clients_.reserve(config.compute_nodes);
  metadata_caches_.reserve(config.compute_nodes);
  for (std::uint32_t i = 0; i < config.compute_nodes; ++i) {
    clients_.push_back(std::make_unique<pfs::PfsClient>(
        sim_, *network_, *pfs_, compute_node(i)));
    metadata_caches_.push_back(std::make_unique<pfs::MetadataCache>(
        sim_, *metadata_, compute_node(i)));
  }
}

net::NodeId Cluster::storage_node(pfs::ServerIndex index) const {
  DAS_REQUIRE(index < config_.storage_nodes);
  return index;
}

net::NodeId Cluster::compute_node(std::uint32_t index) const {
  DAS_REQUIRE(index < config_.compute_nodes);
  return config_.storage_nodes + index;
}

storage::ComputeEngine& Cluster::engine(net::NodeId node) {
  DAS_REQUIRE(node < engines_.size());
  return engines_[node];
}

pfs::PfsClient& Cluster::client(std::uint32_t index) {
  DAS_REQUIRE(index < clients_.size());
  return *clients_[index];
}

pfs::MetadataService& Cluster::metadata() { return *metadata_; }

pfs::MetadataCache& Cluster::metadata_cache(std::uint32_t index) {
  DAS_REQUIRE(index < metadata_caches_.size());
  return *metadata_caches_[index];
}

}  // namespace das::core
