// Workload specification: what data a run processes and with which kernel.
//
// The paper's rasters have rows whose byte length equals the strip size by
// default — the worst case for round-robin striping, because every cell's
// vertical neighbours then live in adjacent strips on adjacent servers.
// Timing runs use paper-scale sizes (24-60 GB) with length-only strips;
// correctness runs use small rasters with real bytes.
#pragma once

#include <cstdint>
#include <string>

#include "grid/grid.hpp"
#include "kernels/kernel.hpp"
#include "pfs/file.hpp"

namespace das::core {

struct WorkloadSpec {
  std::string kernel_name = "flow-routing";
  std::uint64_t data_bytes = 24ULL << 30;
  std::uint64_t strip_size = 1ULL << 20;
  std::uint32_t element_size = 4;
  /// Raster width in elements; 0 derives strip_size / element_size (one row
  /// per strip, the paper's geometry).
  std::uint32_t raster_width = 0;
  /// Generate and carry real bytes (correctness mode; small sizes only).
  bool with_data = false;
  std::uint64_t seed = 42;

  [[nodiscard]] std::uint32_t width() const {
    return raster_width != 0
               ? raster_width
               : static_cast<std::uint32_t>(strip_size / element_size);
  }

  [[nodiscard]] std::uint32_t height() const {
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(width()) * element_size;
    return static_cast<std::uint32_t>(data_bytes / row_bytes);
  }

  /// True when data_bytes is a whole number of rows and rows align with
  /// strips (required for correctness mode).
  [[nodiscard]] bool geometry_aligned() const;

  /// Throw std::invalid_argument with the offending numbers when the
  /// geometry is misaligned. Correctness-mode entry points call this so a
  /// bad size fails loudly instead of height() silently dropping the
  /// trailing partial row. (Timing-only runs never call it: paper-scale
  /// sweeps legitimately truncate.)
  void require_aligned() const;

  [[nodiscard]] pfs::FileMeta make_meta(std::string name) const;
};

/// Generate the input raster for `kernel` under `spec`: a synthetic DEM for
/// flow-routing, the routed direction raster for flow-accumulation, and a
/// synthetic image for the filters.
[[nodiscard]] grid::Grid<float> make_input(
    const WorkloadSpec& spec, const kernels::ProcessingKernel& kernel);

/// The expected (sequential-reference) output for verification.
[[nodiscard]] grid::Grid<float> make_reference_output(
    const WorkloadSpec& spec, const kernels::ProcessingKernel& kernel);

}  // namespace das::core
