// Per-run result record and report formatting.
//
// A RunReport captures everything the paper's evaluation plots: execution
// time, bytes moved per traffic class, sustained bandwidth, and — in
// correctness mode — whether the distributed output matched the sequential
// reference bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"

namespace das::core {

/// p50/p95/p99 of one per-request latency component (seconds).
struct LatencyQuantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct RunReport {
  std::string scheme;       // "TS" / "NAS" / "DAS"
  std::string kernel;
  std::uint64_t data_bytes = 0;
  std::uint32_t storage_nodes = 0;
  std::uint32_t compute_nodes = 0;

  double exec_seconds = 0.0;

  /// Host-side cost of producing this report: real (wall-clock) seconds the
  /// simulation took and discrete events it delivered. Diagnostics only —
  /// machine-dependent, so deliberately excluded from to_csv(). Trended
  /// across PRs via the --diag sidecar instead.
  double wall_seconds = 0.0;
  std::uint64_t sim_events = 0;

  /// Run session id (0 when the driver minted none). Stamped into traces,
  /// audits, SLO CSVs, metrics and diag files; excluded from to_csv() so
  /// the scheme CSV schema is unchanged.
  std::uint64_t session_id = 0;

  /// Causal-span critical-path attribution: total seconds charged to each
  /// hop across finished request spans, and the span count. All zero unless
  /// the run tracked spans (--spans).
  std::uint64_t spans_finished = 0;
  double span_hop_seconds[7] = {};  // indexed by telemetry::Hop

  std::uint64_t client_server_bytes = 0;
  std::uint64_t server_server_bytes = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t redistribution_bytes = 0;  // subset of server_server_bytes

  bool offloaded = false;
  bool redistributed = false;
  std::string decision_note;

  bool data_mode = false;
  bool output_verified = false;
  double output_max_error = 0.0;

  /// Server-side strip-cache counters, summed over all servers (all zero
  /// when caching is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_hit_bytes = 0;

  /// Halo-prefetcher counters, summed over all servers (all zero when
  /// prefetching is disabled). `prefetch_hits` is the subset of cache_hits
  /// served out of a not-yet-consumed prefetched entry, as opposed to
  /// cross-pass reuse hits.
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_issued_bytes = 0;
  std::uint64_t prefetch_coalesced = 0;
  std::uint64_t prefetch_dropped_stale = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_hit_bytes = 0;

  /// Online layout migrations the run launched, and the one-time bytes they
  /// moved server-to-server (zero unless migration is enabled and fired).
  std::uint64_t migrations = 0;
  std::uint64_t migration_bytes = 0;

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(lookups)
               : 0.0;
  }

  /// Per-request latency breakdown over the whole run: where a byte's
  /// journey spends its time. `net_queue_wait` is time behind earlier
  /// transfers in NIC queues, `net_wire` the serialization + propagation
  /// remainder, `disk_service` and `compute_service` the reserved spans on
  /// those resources (all in seconds, merged across every node).
  LatencyQuantiles net_queue_wait;
  LatencyQuantiles net_wire;
  LatencyQuantiles disk_service;
  LatencyQuantiles compute_service;

  /// Predicted-vs-observed decision audit (valid only when a scheme run
  /// filled it; emitted separately via audit_to_csv, not in to_csv).
  DecisionAudit audit;

  /// Mean busy fraction of each resource class over the whole run (0..1),
  /// averaged across the nodes of that class.
  double server_disk_utilization = 0.0;
  double server_nic_utilization = 0.0;     // mean of egress/ingress halves
  double server_compute_utilization = 0.0;
  double client_compute_utilization = 0.0;

  /// Application-visible sustained bandwidth: input bytes processed per
  /// second of end-to-end execution (the metric of the paper's Fig. 14).
  [[nodiscard]] double sustained_bandwidth_bps() const {
    return exec_seconds > 0.0
               ? static_cast<double>(data_bytes) / exec_seconds
               : 0.0;
  }
};

/// Aligned text table over the given reports.
[[nodiscard]] std::string format_report_table(
    const std::vector<RunReport>& reports);

/// CSV emission (header + one line per report).
[[nodiscard]] std::string report_csv_header();
[[nodiscard]] std::string to_csv(const RunReport& report);

/// "24 GB" / "512 MB" style rendering used in tables.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace das::core
