#include "core/as_client.hpp"

#include <string>
#include <utility>

#include "core/bandwidth_model.hpp"
#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::core {

ActiveStorageClient::ActiveStorageClient(
    Cluster& cluster, const kernels::KernelRegistry& registry,
    const DistributionConfig& distribution)
    : cluster_(cluster),
      registry_(registry),
      engine_(distribution, cluster.config().server_cache,
              cluster.config().prefetch, cluster.config().nic_bandwidth_bps) {}

const ActiveExecutor* ActiveStorageClient::last_active_executor() const {
  return last_active_;
}

HaloFetchTotals ActiveStorageClient::halo_totals() const {
  HaloFetchTotals totals;
  for (const auto& executor : active_executors_) totals += *executor;
  return totals;
}

SubmissionResult ActiveStorageClient::submit(const ActiveRequest& request,
                                             std::function<void()> on_done) {
  DAS_REQUIRE(request.input != pfs::kInvalidFile);
  pfs::Pfs& pfs = cluster_.pfs();
  const pfs::FileMeta meta = pfs.meta(request.input);

  kernels_.push_back(registry_.create(request.kernel_name));
  kernels::ProcessingKernel& kernel = *kernels_.back();
  // The Kernel Features catalog (paper §III-B) takes precedence over the
  // pattern compiled into the kernel.
  kernels::KernelFeatures features = kernel.features();
  if (catalog_ != nullptr) {
    if (auto record = catalog_->lookup(request.kernel_name)) {
      features = std::move(*record);
    }
  }
  const std::uint64_t output_bytes =
      request.output_bytes != 0 ? request.output_bytes
                                : kernel.output_bytes(meta.size_bytes);
  DAS_REQUIRE(kernel.is_reduction() || output_bytes == meta.size_bytes);

  SubmissionResult result;
  result.decision =
      engine_.decide(meta, pfs.layout(request.input), features, output_bytes,
                     request.pipeline_length, request.repeat_count);
  if (!request.allow_redistribution &&
      result.decision.action == OffloadAction::kOffloadAfterRedistribution) {
    // Without permission to move data, fall back to the cheaper of the two
    // remaining plans.
    result.decision.action =
        result.decision.current_forecast.offload_beneficial()
            ? OffloadAction::kOffload
            : OffloadAction::kServeNormal;
  }
  const OffloadAction action = result.decision.action;
  result.offloaded = action != OffloadAction::kServeNormal;
  result.redistributed =
      action == OffloadAction::kOffloadAfterRedistribution;

  sim::Tracer& tracer = cluster_.simulator().tracer();
  if (tracer.enabled()) {
    tracer.instant_now(
        cluster_.compute_node(0), sim::TraceTrack::kRequest, "decision",
        "request",
        "{\"action\":\"" + std::string(to_string(action)) +
            "\",\"predicted_bytes\":" +
            std::to_string(result.decision.predicted_bytes) +
            ",\"predicted_hit_rate\":" +
            std::to_string(result.decision.predicted_hit_rate) + "}");
  }

  // The output inherits the input's *final* layout, so successive
  // operations find their halos local (the paper's flow-routing ->
  // flow-accumulation argument). Reductions keep their summary on the
  // client: no output file.
  if (!kernel.is_reduction()) {
    pfs::FileMeta out_meta = meta;
    out_meta.name = meta.name + "." + kernel.name();
    out_meta.size_bytes = output_bytes;
    std::unique_ptr<pfs::Layout> out_layout =
        result.redistributed ? result.decision.target->make_layout()
                             : pfs.layout(request.input).clone();
    result.output =
        pfs.create_file(std::move(out_meta), std::move(out_layout), nullptr);
  }

  const auto offsets = features.resolve(meta.raster_width);
  const std::uint64_t halo_strips =
      required_halo_strips(offsets, meta.element_size, meta.strip_size);

  // Executors hold per-start state, so every repeat pass gets a fresh
  // instance; passes run back to back, chained through their completions.
  DAS_REQUIRE(request.repeat_count >= 1);
  auto run_pass = std::make_shared<std::function<void(std::uint32_t)>>();
  *run_pass = [this, input = request.input, output = result.output,
               data_mode = request.data_mode, &kernel, halo_strips,
               offload = result.offloaded, repeats = request.repeat_count,
               on_done = std::move(on_done), run_pass](std::uint32_t pass) {
    std::function<void()> pass_done;
    if (pass + 1 < repeats) {
      pass_done = [run_pass, pass]() { (*run_pass)(pass + 1); };
    } else {
      pass_done = [run_pass, on_done]() {
        if (on_done) on_done();
        *run_pass = nullptr;  // release the self-reference
      };
    }
    if (offload) {
      ActiveExecutor::Options opt;
      opt.kernel = &kernel;
      opt.halo_strips = halo_strips;
      opt.data_mode = data_mode;
      active_executors_.push_back(
          std::make_unique<ActiveExecutor>(cluster_, opt));
      last_active_ = active_executors_.back().get();
      active_executors_.back()->start(input, output, std::move(pass_done));
    } else {
      TsExecutor::Options opt;
      opt.kernel = &kernel;
      opt.halo_strips = halo_strips;
      opt.data_mode = data_mode;
      ts_executors_.push_back(std::make_unique<TsExecutor>(cluster_, opt));
      last_active_ = nullptr;
      ts_executors_.back()->start(input, output, std::move(pass_done));
    }
  };
  auto launch = [run_pass]() { (*run_pass)(0); };

  // Fig. 3, first steps: fetch the file's distribution information from the
  // metadata service (one round trip, cached per client), then either move
  // the strips (server-server traffic, charged) or start right away.
  if (result.redistributed) {
    result.redistribution_bytes = result.decision.redistribution_bytes;
  }
  auto continuation = std::make_shared<decltype(launch)>(std::move(launch));
  cluster_.metadata_cache(0).lookup(
      request.input,
      [this, continuation, redistribute = result.redistributed,
       input = request.input,
       target = result.decision.target](pfs::FileInfo) {
        if (redistribute) {
          cluster_.pfs().redistribute(input, target->make_layout(),
                                      [continuation]() { (*continuation)(); });
        } else {
          (*continuation)();
        }
      });
  return result;
}

}  // namespace das::core
