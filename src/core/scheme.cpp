#include "core/scheme.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "cache/strip_cache.hpp"
#include "core/as_client.hpp"
#include "core/bandwidth_model.hpp"
#include "core/cluster.hpp"
#include "core/distribution_planner.hpp"
#include "grid/serialize.hpp"
#include "kernels/registry.hpp"
#include "pfs/migrate.hpp"
#include "simkit/assert.hpp"
#include "simkit/context.hpp"
#include "telemetry/plane.hpp"

namespace das::core {
namespace {

/// Snapshot of the network counters, for per-stage attribution.
struct TrafficSnapshot {
  std::uint64_t client_server = 0;
  std::uint64_t server_server = 0;
  std::uint64_t control = 0;

  static TrafficSnapshot take(const net::Network& network) {
    return TrafficSnapshot{
        network.bytes_delivered(net::TrafficClass::kClientServer),
        network.bytes_delivered(net::TrafficClass::kServerServer),
        network.messages_delivered(net::TrafficClass::kControl)};
  }
};

/// Choose the input layout for a run.
std::unique_ptr<pfs::Layout> choose_input_layout(
    const SchemeRunOptions& options, const pfs::FileMeta& meta,
    const std::vector<std::int64_t>& offsets) {
  const std::uint32_t servers = options.cluster.storage_nodes;
  if (options.scheme == Scheme::kDAS && options.pre_distributed) {
    const DistributionPlanner planner(options.distribution);
    if (const auto spec = planner.plan(meta, offsets, servers)) {
      return spec->make_layout();
    }
  }
  return std::make_unique<pfs::RoundRobinLayout>(servers);
}

RunReport make_base_report(const SchemeRunOptions& options,
                           const std::string& kernel_name) {
  RunReport report;
  report.scheme = to_string(options.scheme);
  report.kernel = kernel_name;
  report.data_bytes = options.workload.data_bytes;
  report.storage_nodes = options.cluster.storage_nodes;
  report.compute_nodes = options.cluster.compute_nodes;
  report.data_mode = options.workload.with_data;
  return report;
}

/// Snapshot of the cache + prefetch counters, for per-stage attribution
/// (hub totals are cumulative, so stage rows must diff around each stage).
struct CacheSnapshot {
  cache::CacheStats cache;
  pfs::PrefetchStats prefetch;

  static CacheSnapshot take(Cluster& cluster) {
    return CacheSnapshot{cluster.pfs().cache_stats(),
                         cluster.pfs().prefetch_stats()};
  }
};

void fill_cache_stats(RunReport& report, Cluster& cluster,
                      const CacheSnapshot& before = {}) {
  cache::CacheStats stats = cluster.pfs().cache_stats();
  stats -= before.cache;
  report.cache_hits = stats.hits;
  report.cache_misses = stats.misses;
  report.cache_evictions = stats.evictions;
  report.cache_hit_bytes = stats.hit_bytes;
  report.prefetch_hits = stats.prefetch_hits;
  report.prefetch_hit_bytes = stats.prefetch_hit_bytes;

  pfs::PrefetchStats prefetch = cluster.pfs().prefetch_stats();
  prefetch -= before.prefetch;
  report.prefetch_issued = prefetch.issued;
  report.prefetch_issued_bytes = prefetch.issued_bytes;
  report.prefetch_coalesced = prefetch.coalesced;
  report.prefetch_dropped_stale = prefetch.dropped_stale;
}

/// Per-pass migration hook for the NAS repeated-pass path. After each pass
/// the just-finished executor's halo counters are the observed side of the
/// planner's divergence test; on a recommendation the layout migrator
/// re-stripes the input in the background while subsequent passes keep
/// reading it (per-strip frontier resolution in Pfs). At most one migration
/// per run.
class MigrationDriver {
 public:
  MigrationDriver(Cluster& cluster, const MigrationConfig& config,
                  const DistributionConfig& distribution, pfs::FileId input,
                  std::vector<std::int64_t> offsets, std::uint32_t repeats)
      : cluster_(cluster),
        planner_(distribution, config),
        migrator_(cluster.simulator(), cluster.pfs()),
        input_(input),
        offsets_(std::move(offsets)),
        repeats_(repeats) {}

  /// Feed the pass that just completed. Launches the migrator when the
  /// planner recommends; later passes then resolve reads per strip against
  /// the advancing frontier.
  void on_pass_done(const ActiveExecutor& exec) {
    ++pass_;
    if (pass_ >= repeats_ || migrator_.busy() || planner_.launched()) return;
    HaloFetchTotals totals;
    totals += exec;
    const std::uint64_t observed =
        totals.bytes_fetched + totals.cache_hit_bytes;
    const std::optional<MigrationPlan> plan = planner_.observe(
        cluster_.pfs().meta(input_), cluster_.pfs().layout(input_), offsets_,
        observed, repeats_ - pass_);
    if (!plan) return;
    planner_.notify_launched();
    pfs::MigrateOptions opt;
    opt.strips_per_round = planner_.config().strips_per_round;
    migrator_.migrate(input_, plan->target.make_layout(), opt, nullptr);
  }

  [[nodiscard]] const pfs::LayoutMigrator& migrator() const {
    return migrator_;
  }

 private:
  Cluster& cluster_;
  MigrationPlanner planner_;
  pfs::LayoutMigrator migrator_;
  pfs::FileId input_;
  std::vector<std::int64_t> offsets_;
  std::uint32_t repeats_;
  std::uint32_t pass_ = 0;
};

/// Start `repeats` back-to-back passes of one operation. `start_pass` must
/// launch a fresh executor and invoke its argument when the pass completes
/// (executors hold per-start state, so instances cannot be restarted).
void run_repeated(std::uint32_t repeats,
                  std::function<void(std::function<void()>)> start_pass,
                  std::function<void()> on_done) {
  DAS_REQUIRE(repeats >= 1);
  auto run = std::make_shared<std::function<void(std::uint32_t)>>();
  *run = [run, repeats, start_pass = std::move(start_pass),
          on_done = std::move(on_done)](std::uint32_t pass) {
    std::function<void()> pass_done;
    if (pass + 1 < repeats) {
      pass_done = [run, pass]() { (*run)(pass + 1); };
    } else {
      pass_done = [run, on_done]() {
        if (on_done) on_done();
        *run = nullptr;  // release the self-reference
      };
    }
    start_pass(std::move(pass_done));
  };
  (*run)(0);
}

void fill_traffic(RunReport& report, const net::Network& network,
                  const TrafficSnapshot& before) {
  const TrafficSnapshot after = TrafficSnapshot::take(network);
  report.client_server_bytes = after.client_server - before.client_server;
  report.server_server_bytes = after.server_server - before.server_server;
  report.control_messages = after.control - before.control;
}

/// Resource busy fractions over [0, finish], averaged per node class.
void fill_utilization(RunReport& report, Cluster& cluster,
                      sim::SimTime finish) {
  if (finish <= 0) return;
  const double span = sim::to_seconds(finish);
  const std::uint32_t servers = cluster.config().storage_nodes;
  const std::uint32_t clients = cluster.config().compute_nodes;

  double disk = 0.0, nic = 0.0, server_compute = 0.0, client_compute = 0.0;
  for (pfs::ServerIndex s = 0; s < servers; ++s) {
    const net::NodeId node = cluster.storage_node(s);
    disk += sim::to_seconds(cluster.pfs().server(s).disk().busy_time());
    nic += (sim::to_seconds(cluster.network().nic(node).egress_busy()) +
            sim::to_seconds(cluster.network().nic(node).ingress_busy())) /
           2.0;
    server_compute += sim::to_seconds(cluster.engine(node).busy_time());
  }
  for (std::uint32_t c = 0; c < clients; ++c) {
    client_compute +=
        sim::to_seconds(cluster.engine(cluster.compute_node(c)).busy_time());
  }
  report.server_disk_utilization = disk / (span * servers);
  report.server_nic_utilization = nic / (span * servers);
  report.server_compute_utilization = server_compute / (span * servers);
  report.client_compute_utilization = client_compute / (span * clients);
}

LatencyQuantiles quantiles_of(const sim::Histogram& histogram) {
  const sim::HistogramSummary s = histogram.summary();
  return LatencyQuantiles{s.p50, s.p95, s.p99};
}

/// Merge the per-resource wait/service histograms across nodes and surface
/// their quantiles: where a request's time went (NIC queue vs wire vs disk
/// vs compute), over everything the run moved.
void fill_latency_breakdown(RunReport& report, Cluster& cluster) {
  report.net_queue_wait =
      quantiles_of(cluster.network().queue_wait_histogram());
  report.net_wire = quantiles_of(cluster.network().wire_histogram());

  sim::Histogram disk;
  sim::Histogram compute;
  for (pfs::ServerIndex s = 0; s < cluster.config().storage_nodes; ++s) {
    disk.merge(cluster.pfs().server(s).disk().service_histogram());
  }
  for (net::NodeId n = 0; n < cluster.config().total_nodes(); ++n) {
    compute.merge(cluster.engine(n).service_histogram());
  }
  report.disk_service = quantiles_of(disk);
  report.compute_service = quantiles_of(compute);
}

/// Fill the predicted-vs-observed decision audit for a single-operator run.
/// DAS predictions come from the decision the engine actually took; NAS
/// (static offload) is audited against the model's forecast under the
/// file's layout, so the same residuals are comparable across schemes.
void fill_audit(RunReport& report, const SchemeRunOptions& options,
                Cluster& cluster, const pfs::FileMeta& meta,
                const std::vector<std::int64_t>& offsets,
                const kernels::ProcessingKernel& kernel, pfs::FileId input,
                const SubmissionResult& das_result,
                const ActiveStorageClient* asc,
                const std::vector<std::unique_ptr<ActiveExecutor>>&
                    nas_execs) {
  DecisionAudit& audit = report.audit;
  audit.valid = true;
  audit.repeats = options.repeat_count;
  const cache::CacheConfig& cache = options.cluster.server_cache;
  const pfs::PrefetchConfig& prefetch_cfg = options.cluster.prefetch;
  audit.cache_capacity_bytes = cache.active() ? cache.capacity_bytes : 0;
  audit.prefetch_depth = prefetch_cfg.active() ? prefetch_cfg.depth : 0;
  const bool prefetching = cache.active() && prefetch_cfg.active();

  // Predicted side.
  switch (options.scheme) {
    case Scheme::kTS:
      audit.action = "static-normal";
      break;
    case Scheme::kNAS: {
      audit.action = "static-offload";
      const PlacementSpec placement =
          PlacementSpec::from_layout(cluster.pfs().layout(input));
      const TrafficForecast forecast = forecast_traffic(
          meta, offsets, placement, kernel.output_bytes(meta.size_bytes));
      audit.predicted_halo_bytes = forecast.active_strip_fetch_bytes;
      if (cache.active()) {
        audit.predicted_cache_hit_rate = predicted_cache_hit_rate(
            forecast, placement, cache.capacity_bytes);
      }
      if (prefetching) {
        audit.predicted_overlap =
            prefetch_overlap_fraction(prefetch_cfg.depth);
      }
      break;
    }
    case Scheme::kDAS: {
      audit.action = to_string(das_result.decision.action);
      if (das_result.offloaded) {
        const TrafficForecast& forecast =
            das_result.redistributed ? das_result.decision.target_forecast
                                     : das_result.decision.current_forecast;
        audit.predicted_halo_bytes = forecast.active_strip_fetch_bytes;
        if (prefetching) {
          audit.predicted_overlap =
              prefetch_overlap_fraction(prefetch_cfg.depth);
        }
      }
      audit.predicted_cache_hit_rate = das_result.decision.predicted_hit_rate;
      break;
    }
  }

  // Observed side. Halo acquisitions = network fetches + cache hits +
  // demand waiters coalesced onto in-flight fetches, averaged per pass.
  HaloFetchTotals totals;
  if (options.scheme == Scheme::kDAS && asc != nullptr) {
    totals = asc->halo_totals();
  }
  for (const auto& exec : nas_execs) totals += *exec;
  const pfs::PrefetchStats prefetch = cluster.pfs().prefetch_stats();
  audit.observed_halo_bytes =
      static_cast<double>(totals.bytes_fetched + totals.cache_hit_bytes +
                          prefetch.coalesced_bytes) /
      static_cast<double>(audit.repeats);

  const std::uint64_t lookups = report.cache_hits + report.cache_misses;
  audit.observed_cache_hit_rate = report.cache_hit_rate();
  if (audit.repeats <= 1 || lookups == 0) {
    audit.observed_warm_cache_hit_rate = audit.observed_cache_hit_rate;
  } else {
    // Steady-state estimate: drop the (necessarily cold) first pass from
    // the denominator and the prefetcher-served hits from the numerator,
    // leaving cross-pass retention — what the prediction models.
    const double warm_lookups =
        static_cast<double>(lookups) -
        static_cast<double>(lookups) / static_cast<double>(audit.repeats);
    const double warm_hits = static_cast<double>(
        report.cache_hits - std::min(report.cache_hits, report.prefetch_hits));
    audit.observed_warm_cache_hit_rate =
        warm_lookups > 0.0 ? std::clamp(warm_hits / warm_lookups, 0.0, 1.0)
                           : 0.0;
  }

  const double overlap_denominator = static_cast<double>(
      totals.strips_fetched + totals.cache_hits + prefetch.coalesced);
  audit.observed_overlap =
      overlap_denominator > 0.0
          ? std::min(1.0, static_cast<double>(report.prefetch_hits +
                                              prefetch.coalesced) /
                              overlap_denominator)
          : 0.0;
}

/// Verify a produced output file against the sequential reference.
void verify_output(RunReport& report, Cluster& cluster, pfs::FileId output,
                   const WorkloadSpec& workload,
                   const kernels::ProcessingKernel& kernel) {
  if (output == pfs::kInvalidFile) return;
  if (!workload.with_data || !kernel.tile_exact()) return;
  const auto bytes = cluster.pfs().gather_bytes(output);
  const grid::Grid<float> produced =
      grid::from_bytes(bytes, workload.width(), workload.height());
  const grid::Grid<float> reference =
      make_reference_output(workload, kernel);
  report.output_max_error = grid::max_abs_diff(produced, reference);
  report.output_verified = produced == reference;
}

/// Expand a region list to the whole strips it touches (adjacent strips
/// merge into one run) — the pre-list-I/O fetch shape.
pfs::RegionList expand_to_strips(const pfs::FileMeta& meta,
                                 const pfs::RegionList& regions) {
  std::vector<pfs::Run> runs;
  std::uint64_t prev_strip = UINT64_MAX;
  for (const pfs::StripRun& r : split_by_strip(meta, regions)) {
    if (r.strip == prev_strip) continue;
    prev_strip = r.strip;
    const pfs::StripRef ref = meta.strip(r.strip);
    if (!runs.empty() && runs.back().offset + runs.back().length == ref.offset) {
      runs.back().length += ref.length;
    } else {
      runs.push_back(pfs::Run{ref.offset, ref.length});
    }
  }
  return pfs::RegionList::from_runs(std::move(runs));
}

}  // namespace

RunReport run_scheme(const SchemeRunOptions& options) {
  Cluster cluster(options.cluster, options.context);
  const kernels::KernelRegistry registry = kernels::standard_registry();
  const kernels::KernelPtr kernel =
      registry.create(options.workload.kernel_name);
  const WorkloadSpec& workload = options.workload;

  pfs::FileMeta meta = workload.make_meta("input");
  const auto offsets = kernel->features().resolve(meta.raster_width);
  const std::uint64_t halo_strips =
      required_halo_strips(offsets, meta.element_size, meta.strip_size);

  std::optional<std::vector<std::byte>> data;
  if (workload.with_data) {
    data = grid::to_bytes(make_input(workload, *kernel));
  }

  const pfs::FileId input = cluster.pfs().create_file(
      meta, choose_input_layout(options, meta, offsets),
      data ? &*data : nullptr);

  RunReport report = make_base_report(options, kernel->name());
  const TrafficSnapshot before = TrafficSnapshot::take(cluster.network());

  sim::SimTime finish = -1;
  auto on_done = [&cluster, &finish]() { finish = cluster.simulator().now(); };

  std::vector<std::unique_ptr<TsExecutor>> ts_execs;
  std::vector<std::unique_ptr<ActiveExecutor>> active_execs;
  std::unique_ptr<ActiveStorageClient> asc;
  std::unique_ptr<MigrationDriver> migration;
  if (options.migration.active() && options.scheme == Scheme::kNAS) {
    migration = std::make_unique<MigrationDriver>(
        cluster, options.migration, options.distribution, input, offsets,
        options.repeat_count);
  }
  pfs::FileId output = pfs::kInvalidFile;
  SubmissionResult das_result;
  const std::uint32_t repeats = options.repeat_count;

  // Enroll every component's counters with the telemetry plane before any
  // event runs, so the first sample already has the full column set.
  telemetry::Plane* plane =
      options.context != nullptr ? options.context->telemetry : nullptr;
  if (plane != nullptr) {
    cluster.network().enroll(plane->registry());
    for (pfs::ServerIndex s = 0; s < cluster.pfs().num_servers(); ++s) {
      cluster.pfs().server(s).enroll(plane->registry());
    }
    for (std::uint32_t c = 0; c < options.cluster.compute_nodes; ++c) {
      cluster.client(c).enroll(plane->registry());
    }
    if (migration != nullptr) {
      migration->migrator().enroll(plane->registry());
    }
    plane->start(cluster.simulator());
  }

  switch (options.scheme) {
    case Scheme::kTS: {
      if (!kernel->is_reduction()) {
        pfs::FileMeta out_meta = meta;
        out_meta.name = "output";
        output = cluster.pfs().create_file(
            std::move(out_meta),
            std::make_unique<pfs::RoundRobinLayout>(
                options.cluster.storage_nodes),
            nullptr);
      }
      TsExecutor::Options opt{kernel.get(), halo_strips, workload.with_data};
      cluster.simulator().schedule_at(
          options.cluster.job_startup,
          [&cluster, &ts_execs, opt, input, output, on_done, repeats]() {
            cluster.metadata_cache(0).lookup(
                input, [&cluster, &ts_execs, opt, input, output, on_done,
                        repeats](pfs::FileInfo) {
                  run_repeated(
                      repeats,
                      [&cluster, &ts_execs, opt, input,
                       output](std::function<void()> pass_done) {
                        ts_execs.push_back(
                            std::make_unique<TsExecutor>(cluster, opt));
                        ts_execs.back()->start(input, output,
                                               std::move(pass_done));
                      },
                      on_done);
                });
          },
          "job.start");
      break;
    }
    case Scheme::kNAS: {
      if (!kernel->is_reduction()) {
        pfs::FileMeta out_meta = meta;
        out_meta.name = "output";
        output = cluster.pfs().create_file(
            std::move(out_meta), cluster.pfs().layout(input).clone(),
            nullptr);
      }
      ActiveExecutor::Options opt{kernel.get(), halo_strips,
                                  workload.with_data};
      cluster.simulator().schedule_at(
          options.cluster.job_startup,
          [&cluster, &active_execs, opt, input, output, on_done, repeats,
           mig = migration.get()]() {
            cluster.metadata_cache(0).lookup(
                input, [&cluster, &active_execs, opt, input, output, on_done,
                        repeats, mig](pfs::FileInfo) {
                  run_repeated(
                      repeats,
                      [&cluster, &active_execs, opt, input, output,
                       mig](std::function<void()> pass_done) {
                        active_execs.push_back(
                            std::make_unique<ActiveExecutor>(cluster, opt));
                        ActiveExecutor* exec = active_execs.back().get();
                        if (mig != nullptr) {
                          pass_done = [mig, exec,
                                       pass_done = std::move(pass_done)]() {
                            mig->on_pass_done(*exec);
                            pass_done();
                          };
                        }
                        exec->start(input, output, std::move(pass_done));
                      },
                      on_done);
                });
          },
          "job.start");
      report.offloaded = true;
      break;
    }
    case Scheme::kDAS: {
      asc = std::make_unique<ActiveStorageClient>(cluster, registry,
                                                  options.distribution);
      cluster.simulator().schedule_at(
          options.cluster.job_startup,
          [&asc, &das_result, &workload, input, on_done,
           pipeline = options.pipeline_length, repeats]() {
            ActiveRequest request;
            request.input = input;
            request.kernel_name = workload.kernel_name;
            request.pipeline_length = pipeline;
            request.repeat_count = repeats;
            request.data_mode = workload.with_data;
            das_result = asc->submit(request, on_done);
          },
          "job.start");
      break;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.simulator().run();
  const auto wall_end = std::chrono::steady_clock::now();
  DAS_REQUIRE(finish >= 0 && "scheme run did not complete");
  if (plane != nullptr) plane->finish(cluster.simulator().now());

  report.exec_seconds = sim::to_seconds(finish);
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  // Sampler ticks are observational scaffolding, not workload events; netting
  // them out keeps the reported event count identical with telemetry on/off.
  report.sim_events =
      cluster.simulator().events_delivered() -
      (plane != nullptr ? plane->sampler_ticks() : 0);
  if (options.context != nullptr) report.session_id = options.context->session;
  if (plane != nullptr) {
    report.spans_finished = plane->spans().spans_finished();
    for (std::size_t h = 0; h < telemetry::kNumHops; ++h) {
      report.span_hop_seconds[h] = sim::to_seconds(
          plane->spans().hop_total(static_cast<telemetry::Hop>(h)));
    }
  }
  fill_traffic(report, cluster.network(), before);
  fill_utilization(report, cluster, finish);
  fill_cache_stats(report, cluster);
  fill_latency_breakdown(report, cluster);

  if (options.scheme == Scheme::kDAS) {
    output = das_result.output;
    report.offloaded = das_result.offloaded;
    report.redistributed = das_result.redistributed;
    report.redistribution_bytes = das_result.redistribution_bytes;
    report.decision_note = das_result.decision.rationale;
  }
  if (migration != nullptr) {
    report.migrations = migration->migrator().total_migrations();
    report.migration_bytes = migration->migrator().total_bytes_moved();
  }
  fill_audit(report, options, cluster, meta, offsets, *kernel, input,
             das_result, asc.get(), active_execs);

  verify_output(report, cluster, output, workload, *kernel);
  return report;
}

std::vector<RunReport> run_pipeline(
    const SchemeRunOptions& options,
    const std::vector<std::string>& kernel_chain) {
  DAS_REQUIRE(!kernel_chain.empty());
  Cluster cluster(options.cluster, options.context);
  const kernels::KernelRegistry registry = kernels::standard_registry();
  const WorkloadSpec& workload = options.workload;

  std::vector<kernels::KernelPtr> chain;
  chain.reserve(kernel_chain.size());
  for (std::size_t i = 0; i < kernel_chain.size(); ++i) {
    chain.push_back(registry.create(kernel_chain[i]));
    // A reduction has no raster output to feed a successor.
    DAS_REQUIRE(!chain.back()->is_reduction() ||
                i + 1 == kernel_chain.size());
  }

  pfs::FileMeta meta = workload.make_meta("input");
  const auto offsets0 = chain.front()->features().resolve(meta.raster_width);

  std::optional<std::vector<std::byte>> data;
  if (workload.with_data) {
    data = grid::to_bytes(make_input(workload, *chain.front()));
  }
  const pfs::FileId input = cluster.pfs().create_file(
      meta, choose_input_layout(options, meta, offsets0),
      data ? &*data : nullptr);

  // Shared pipeline state driven by completion callbacks.
  struct Stage {
    RunReport report;
    pfs::FileId output = pfs::kInvalidFile;
    sim::SimTime finish = -1;
    TrafficSnapshot before;
    CacheSnapshot cache_before;
  };
  auto stages = std::make_shared<std::vector<Stage>>(kernel_chain.size());
  for (std::size_t i = 0; i < kernel_chain.size(); ++i) {
    (*stages)[i].report = make_base_report(options, kernel_chain[i]);
  }

  auto asc = std::make_unique<ActiveStorageClient>(cluster, registry,
                                                   options.distribution);
  auto ts_execs = std::make_shared<std::vector<std::unique_ptr<TsExecutor>>>();
  auto active_execs =
      std::make_shared<std::vector<std::unique_ptr<ActiveExecutor>>>();

  // Recursive stage launcher. Callbacks hold a raw pointer: the function
  // object outlives the simulation run because `launch` stays in scope.
  auto launch = std::make_shared<std::function<void(std::size_t, pfs::FileId)>>();
  auto* launch_raw = launch.get();
  *launch = [&, stages, ts_execs, active_execs, launch_raw](std::size_t i,
                                                            pfs::FileId in) {
    Stage& stage = (*stages)[i];
    stage.before = TrafficSnapshot::take(cluster.network());
    stage.cache_before = CacheSnapshot::take(cluster);
    const kernels::ProcessingKernel& kernel = *chain[i];
    const pfs::FileMeta in_meta = cluster.pfs().meta(in);
    const auto offs = kernel.features().resolve(in_meta.raster_width);
    const std::uint64_t halo = required_halo_strips(
        offs, in_meta.element_size, in_meta.strip_size);

    auto stage_done = [&, stages, launch_raw, i]() {
      Stage& st = (*stages)[i];
      st.finish = cluster.simulator().now();
      fill_traffic(st.report, cluster.network(), st.before);
      // True per-stage deltas: the hub counters are cumulative, so without
      // the diff stage N's row would include hits earned by stages 1..N-1.
      fill_cache_stats(st.report, cluster, st.cache_before);
      st.report.exec_seconds =
          sim::to_seconds(st.finish) -
          (i == 0 ? sim::to_seconds(options.cluster.job_startup)
                  : sim::to_seconds((*stages)[i - 1].finish));
      if (i + 1 < stages->size()) (*launch_raw)(i + 1, st.output);
    };

    if (options.scheme == Scheme::kDAS) {
      ActiveRequest request;
      request.input = in;
      request.kernel_name = kernel.name();
      request.pipeline_length =
          static_cast<std::uint32_t>(stages->size() - i);
      request.repeat_count = options.repeat_count;
      request.data_mode = workload.with_data;
      const SubmissionResult r = asc->submit(request, stage_done);
      stage.output = r.output;
      stage.report.offloaded = r.offloaded;
      stage.report.redistributed = r.redistributed;
      stage.report.redistribution_bytes = r.redistribution_bytes;
      stage.report.decision_note = r.decision.rationale;
    } else {
      if (!kernel.is_reduction()) {
        pfs::FileMeta out_meta = in_meta;
        out_meta.name = in_meta.name + "." + kernel.name();
        stage.output = cluster.pfs().create_file(
            std::move(out_meta), cluster.pfs().layout(in).clone(), nullptr);
      }
      if (options.scheme == Scheme::kNAS) {
        ActiveExecutor::Options opt{&kernel, halo, workload.with_data};
        run_repeated(
            options.repeat_count,
            [&cluster, active_execs, opt, in,
             out = stage.output](std::function<void()> pass_done) {
              active_execs->push_back(
                  std::make_unique<ActiveExecutor>(cluster, opt));
              active_execs->back()->start(in, out, std::move(pass_done));
            },
            stage_done);
        stage.report.offloaded = true;
      } else {
        TsExecutor::Options opt{&kernel, halo, workload.with_data};
        run_repeated(
            options.repeat_count,
            [&cluster, ts_execs, opt, in,
             out = stage.output](std::function<void()> pass_done) {
              ts_execs->push_back(
                  std::make_unique<TsExecutor>(cluster, opt));
              ts_execs->back()->start(in, out, std::move(pass_done));
            },
            stage_done);
      }
    }
  };

  cluster.simulator().schedule_at(
      options.cluster.job_startup,
      [launch, input]() { (*launch)(0, input); }, "pipeline.start");
  const auto wall_start = std::chrono::steady_clock::now();
  cluster.simulator().run();
  const auto wall_end = std::chrono::steady_clock::now();

  std::vector<RunReport> reports;
  RunReport combined = make_base_report(options, "pipeline");
  // Stage-wise verification chains the references: stage i is checked
  // against kernel_i applied to the reference output of stage i-1, and only
  // while every upstream stage was tile-exact (a non-exact stage's output
  // legitimately diverges from the reference downstream).
  std::optional<grid::Grid<float>> reference;
  bool upstream_exact = true;
  if (workload.with_data) reference = make_input(workload, *chain.front());
  for (std::size_t i = 0; i < stages->size(); ++i) {
    Stage& stage = (*stages)[i];
    DAS_REQUIRE(stage.finish >= 0 && "pipeline stage did not complete");
    if (workload.with_data && !chain[i]->is_reduction()) {
      reference = chain[i]->run_reference(*reference);
      if (upstream_exact && chain[i]->tile_exact()) {
        const auto bytes = cluster.pfs().gather_bytes(stage.output);
        const grid::Grid<float> produced =
            grid::from_bytes(bytes, workload.width(), workload.height());
        stage.report.output_max_error =
            grid::max_abs_diff(produced, *reference);
        stage.report.output_verified = produced == *reference;
      }
      upstream_exact = upstream_exact && chain[i]->tile_exact();
    }
    combined.client_server_bytes += stage.report.client_server_bytes;
    combined.server_server_bytes += stage.report.server_server_bytes;
    combined.control_messages += stage.report.control_messages;
    combined.redistribution_bytes += stage.report.redistribution_bytes;
    combined.offloaded = combined.offloaded || stage.report.offloaded;
    combined.redistributed =
        combined.redistributed || stage.report.redistributed;
    reports.push_back(stage.report);
  }
  combined.exec_seconds = sim::to_seconds(stages->back().finish);
  combined.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  combined.sim_events = cluster.simulator().events_delivered();
  fill_cache_stats(combined, cluster);
  fill_latency_breakdown(combined, cluster);
  reports.push_back(combined);
  if (options.context != nullptr) {
    for (RunReport& r : reports) r.session_id = options.context->session;
  }
  return reports;
}

RunReport run_list_scheme(const ListRunOptions& options) {
  DAS_REQUIRE(options.access.active());
  const kernels::KernelRegistry registry = kernels::standard_registry();
  const kernels::KernelPtr kernel =
      registry.create(options.workload.kernel_name);
  const WorkloadSpec& workload = options.workload;

  pfs::FileMeta meta = workload.make_meta("input");
  const auto offsets = kernel->features().resolve(meta.raster_width);
  const pfs::RegionList list_regions = build_access_regions(
      meta, options.access, halo_rows_for(meta, offsets));

  // Price the list access itself (never the whole-strip expansion): this is
  // the decision that must flip TS <-> DAS as sparsity varies.
  const ListStats stats =
      list_stats(meta, list_regions, options.cluster.storage_nodes);
  const double cost_factor = options.cluster.compute_cost.factor_for(
      kernel->name(), kernel->cost_factor());
  const std::uint64_t full_output = kernel->output_bytes(meta.size_bytes);
  const ListDecision decision = decide_list_access(
      meta, offsets, stats, options.cluster, options.distribution,
      cost_factor, full_output,
      access_output_bytes(meta, options.access,
                          halo_rows_for(meta, offsets), full_output));

  if (options.scheme != Scheme::kTS) {
    // Offloaded service: active storage runs the full sweep the classic
    // runner already models; only the decision note changes.
    SchemeRunOptions classic;
    classic.scheme = options.scheme;
    classic.workload = options.workload;
    classic.cluster = options.cluster;
    classic.distribution = options.distribution;
    classic.context = options.context;
    RunReport report = run_scheme(classic);
    report.decision_note = decision.rationale;
    return report;
  }

  Cluster cluster(options.cluster, options.context);
  const pfs::RegionList regions =
      options.whole_strips ? expand_to_strips(meta, list_regions)
                           : list_regions;

  std::optional<std::vector<std::byte>> data;
  if (workload.with_data) {
    data = grid::to_bytes(make_input(workload, *kernel));
  }
  const pfs::FileId input = cluster.pfs().create_file(
      meta,
      std::make_unique<pfs::RoundRobinLayout>(options.cluster.storage_nodes),
      data ? &*data : nullptr);

  RunReport report;
  report.scheme = to_string(options.scheme);
  report.kernel = kernel->name();
  report.data_bytes = workload.data_bytes;
  report.storage_nodes = options.cluster.storage_nodes;
  report.compute_nodes = options.cluster.compute_nodes;
  report.data_mode = workload.with_data;
  report.decision_note = decision.rationale;

  const TrafficSnapshot before = TrafficSnapshot::take(cluster.network());

  telemetry::Plane* plane =
      options.context != nullptr ? options.context->telemetry : nullptr;
  if (plane != nullptr) {
    cluster.network().enroll(plane->registry());
    for (pfs::ServerIndex s = 0; s < cluster.pfs().num_servers(); ++s) {
      cluster.pfs().server(s).enroll(plane->registry());
    }
    for (std::uint32_t c = 0; c < options.cluster.compute_nodes; ++c) {
      cluster.client(c).enroll(plane->registry());
    }
    plane->start(cluster.simulator());
  }

  // Contiguous run partition: client c owns runs [c*R/C, (c+1)*R/C), so
  // each client issues exactly one read_regions and the per-server batches
  // stay large (strided patterns land on few clients per server).
  struct ClientPart {
    pfs::RegionList part;
  };
  const std::uint32_t clients = options.cluster.compute_nodes;
  const std::size_t num_runs = regions.runs().size();
  std::vector<ClientPart> parts(clients);
  std::uint32_t active = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    const std::size_t lo = c * num_runs / clients;
    const std::size_t hi = (c + 1) * num_runs / clients;
    if (hi > lo) {
      parts[c].part = regions.subset(lo, hi);
      ++active;
    }
  }
  DAS_REQUIRE(active > 0 && "sparse access selected no runs");

  sim::SimTime finish = -1;
  std::uint32_t remaining = active;
  for (std::uint32_t c = 0; c < clients; ++c) {
    if (parts[c].part.empty()) continue;
    cluster.simulator().schedule_at(
        options.cluster.job_startup,
        [&cluster, &parts, &finish, &remaining, c, cost_factor, input]() {
          cluster.client(c).read_regions(
              input, parts[c].part,
              [&cluster, &parts, &finish, &remaining, c, cost_factor]() {
                // The client computes over the rows it fetched (sampled
                // rows + halo); the sampled outputs are kept client-side,
                // so nothing is written back.
                sim::Simulator& sim = cluster.simulator();
                const sim::SimTime done =
                    cluster.engine(cluster.compute_node(c))
                        .execute(sim.now(), parts[c].part.total_bytes(),
                                 cost_factor);
                sim.schedule_at(
                    done,
                    [&cluster, &finish, &remaining]() {
                      DAS_REQUIRE(remaining > 0);
                      if (--remaining == 0) {
                        finish = cluster.simulator().now();
                      }
                    },
                    "list.compute");
              });
        },
        "job.start");
  }

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.simulator().run();
  const auto wall_end = std::chrono::steady_clock::now();
  DAS_REQUIRE(finish >= 0 && "list run did not complete");
  if (plane != nullptr) plane->finish(cluster.simulator().now());

  report.exec_seconds = sim::to_seconds(finish);
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.sim_events =
      cluster.simulator().events_delivered() -
      (plane != nullptr ? plane->sampler_ticks() : 0);
  if (options.context != nullptr) report.session_id = options.context->session;
  if (plane != nullptr) {
    report.spans_finished = plane->spans().spans_finished();
    for (std::size_t h = 0; h < telemetry::kNumHops; ++h) {
      report.span_hop_seconds[h] = sim::to_seconds(
          plane->spans().hop_total(static_cast<telemetry::Hop>(h)));
    }
  }
  fill_traffic(report, cluster.network(), before);
  fill_utilization(report, cluster, finish);
  fill_cache_stats(report, cluster);
  fill_latency_breakdown(report, cluster);
  return report;
}

}  // namespace das::core
