// Migration trigger and cost model (the online counterpart of the Fig. 3
// decision workflow).
//
// The decision-audit records (audit.hpp) already measure, per pass, the
// server-to-server halo bytes a file's layout actually caused. This planner
// watches those observations: when the observed traffic diverges from what
// the *best* placement for the file's dependence pattern would cost — by a
// hysteresis-filtered factor — and the projected savings over the remaining
// passes exceed the one-time cost of moving the strips, it recommends an
// online migration (pfs::LayoutMigrator executes it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bandwidth_model.hpp"
#include "core/distribution_planner.hpp"
#include "pfs/file.hpp"
#include "pfs/layout.hpp"

namespace das::core {

struct MigrationConfig {
  /// Master switch: disabled planners never recommend anything, so every
  /// byte flow reproduces the migration-free system exactly.
  bool enabled = false;
  /// Trigger when observed halo bytes exceed this multiple of the best
  /// placement's prediction (per pass).
  double divergence_threshold = 4.0;
  /// Consecutive divergent passes required before recommending (guards
  /// against one-off spikes: a cold cache, a straggler burst).
  std::uint32_t hysteresis_passes = 2;
  /// Ignore passes that moved less than this (noise floor: a file whose
  /// halo traffic is tiny is not worth re-striping, whatever the ratio).
  std::uint64_t min_observed_bytes = 1 << 20;
  /// Strips committed per frontier advance of the executed migration.
  std::uint64_t strips_per_round = 16;

  [[nodiscard]] bool active() const { return enabled; }
};

/// A recommended migration: the target placement and the numbers that
/// justified it.
struct MigrationPlan {
  PlacementSpec target;
  /// Predicted per-pass halo bytes under `target`.
  std::uint64_t predicted_halo_bytes = 0;
  /// One-time bytes the migration must move.
  std::uint64_t move_bytes = 0;
  std::string rationale;
};

class MigrationPlanner {
 public:
  MigrationPlanner(const DistributionConfig& distribution,
                   const MigrationConfig& config)
      : planner_(distribution), config_(config) {}

  /// Feed one completed pass over `meta` (currently laid out as
  /// `current_layout`, accessed with dependence `offsets`): the pass moved
  /// `observed_halo_bytes` server-to-server for dependence fetches, and
  /// `remaining_passes` more passes over the same file are expected.
  /// Returns a plan when migration is warranted, nullopt otherwise.
  [[nodiscard]] std::optional<MigrationPlan> observe(
      const pfs::FileMeta& meta, const pfs::Layout& current_layout,
      const std::vector<std::int64_t>& offsets,
      std::uint64_t observed_halo_bytes, std::uint32_t remaining_passes);

  /// Tell the planner its last plan was launched, so it does not recommend
  /// again while (or right after) the migration runs.
  void notify_launched() { streak_ = 0; launched_ = true; }

  /// Divergent-pass streak accumulated so far (test/diagnostic hook).
  [[nodiscard]] std::uint32_t streak() const { return streak_; }
  [[nodiscard]] bool launched() const { return launched_; }
  [[nodiscard]] const MigrationConfig& config() const { return config_; }

 private:
  DistributionPlanner planner_;
  MigrationConfig config_;
  std::uint32_t streak_ = 0;
  bool launched_ = false;
};

}  // namespace das::core
