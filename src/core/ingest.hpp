// Parallel dataset ingest.
//
// Loading a dataset into the PFS is where the DAS layout is cheapest to
// establish: the data is crossing the client-server links anyway, and the
// layout only adds the replica copies (2*halo/r of the volume). The paper's
// "arranges the data" step becomes nearly free when done at ingest time —
// the A6 ablation quantifies this against re-laying-out after the fact.
//
// The ingest partitions the file's strips over the compute nodes; each
// client streams its strips (bounded in-flight window) through write_range,
// which delivers every strip to all of its holders (primary + replicas).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "pfs/file.hpp"
#include "pfs/layout.hpp"

namespace das::core {

class Ingestor {
 public:
  explicit Ingestor(Cluster& cluster) : cluster_(cluster) {}

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Register `meta` with `layout` and write its content from all compute
  /// nodes in parallel. `data` may be null (timing-only). `on_done` fires
  /// when every strip (including replicas) has been acked. Returns the new
  /// file id immediately.
  pfs::FileId ingest(pfs::FileMeta meta, std::unique_ptr<pfs::Layout> layout,
                     const std::vector<std::byte>* data,
                     std::function<void()> on_done);

  /// Logical bytes written by the last ingest (excluding replica copies).
  [[nodiscard]] std::uint64_t bytes_ingested() const {
    return bytes_ingested_;
  }

 private:
  struct ClientTask;

  Cluster& cluster_;
  std::uint64_t bytes_ingested_ = 0;
  std::vector<std::shared_ptr<ClientTask>> tasks_;
};

}  // namespace das::core
