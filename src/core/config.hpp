// Cluster and experiment configuration.
//
// Defaults are calibrated to a 2012-era HPC cluster like the paper's
// testbed: GigE-class node links (the bandwidth bottleneck the whole paper
// is about), striped-RAID local storage that outruns the NIC, and stencil
// kernels that stream memory at a few hundred MiB/s per node. Absolute
// seconds are not meant to match the paper's testbed; the byte-flow ratios
// that decide which scheme wins are.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cache/strip_cache.hpp"
#include "net/network.hpp"
#include "pfs/prefetch.hpp"
#include "simkit/time.hpp"
#include "storage/compute_engine.hpp"
#include "storage/disk.hpp"

namespace das::core {

/// Measured per-kernel compute cost overrides (das_sim --kernel-cost, fed by
/// --calibrate-kernels). Kernels keep their built-in guess as the fallback,
/// so an empty model reproduces the uncalibrated system exactly.
struct ComputeCostModel {
  std::map<std::string, double> kernel_cost_factor;

  [[nodiscard]] bool active() const { return !kernel_cost_factor.empty(); }

  [[nodiscard]] double factor_for(const std::string& kernel_name,
                                  double fallback) const {
    const auto it = kernel_cost_factor.find(kernel_name);
    return it == kernel_cost_factor.end() ? fallback : it->second;
  }
};

struct ClusterConfig {
  /// Storage servers (the paper's "active storage nodes").
  std::uint32_t storage_nodes = 12;
  /// Compute nodes (clients). The paper's default ratio is 1:1.
  std::uint32_t compute_nodes = 12;

  /// Per-node link bandwidth, full duplex (GigE class).
  double nic_bandwidth_bps = 110.0 * 1024 * 1024;
  sim::SimDuration wire_latency = sim::microseconds(80);

  /// Local storage on each server.
  double disk_bandwidth_bps = 700.0 * 1024 * 1024;
  sim::SimDuration disk_seek_time = sim::microseconds(400);

  /// Effective per-node processing rate for a cost-factor-1.0 kernel
  /// (memory-bandwidth-bound stencil on a 12-core 2012 node).
  double compute_rate_bps = 450.0 * 1024 * 1024;

  /// Calibrated per-kernel cost-factor overrides (empty = kernel defaults).
  ComputeCostModel compute_cost;

  /// One-time per-run cost: job launch, file open/metadata, shipping the
  /// processing kernel to the servers. Charged identically to every scheme.
  sim::SimDuration job_startup = sim::seconds(12);

  /// How many strips/runs a node keeps in flight (bounded prefetch).
  std::uint32_t pipeline_window = 4;

  /// Straggler injection: the first `straggler_count` storage nodes run
  /// their disk AND compute engine `straggler_slowdown` times slower.
  /// Active storage binds computation to data placement, so its exposure to
  /// slow servers differs from TS's — the straggler ablation measures that.
  std::uint32_t straggler_count = 0;
  double straggler_slowdown = 1.0;

  /// Per-request disk service-time jitter (fraction, uniform); 0 keeps the
  /// whole simulation deterministic. Each server disk gets an independent
  /// stream derived from `seed`.
  double disk_jitter = 0.0;
  std::uint64_t seed = 20120901;

  /// Per-server remote-strip cache (off by default: byte flows then match
  /// the uncached system bit for bit). When active, each storage server
  /// caches the halo strips it fetched from peers, so repeated requests
  /// over the same file pay RAM time instead of NIC transfers.
  cache::CacheConfig server_cache;

  /// Halo-strip prefetcher on every storage server (off by default, for the
  /// same bit-for-bit reason). When active, an admitted NAS/DAS request's
  /// remote-strip plan is fetched up to `depth` ahead of the compute sweep
  /// and landed in the strip cache, hiding fetch latency on the first pass.
  /// Requires an active server_cache.
  pfs::PrefetchConfig prefetch;

  [[nodiscard]] std::uint32_t total_nodes() const {
    return storage_nodes + compute_nodes;
  }

  [[nodiscard]] net::NetworkConfig network_config() const {
    net::NetworkConfig cfg;
    cfg.num_nodes = total_nodes();
    cfg.nic_bandwidth_bps = nic_bandwidth_bps;
    cfg.wire_latency = wire_latency;
    return cfg;
  }

  [[nodiscard]] storage::DiskConfig disk_config() const {
    return storage::DiskConfig{disk_bandwidth_bps, disk_seek_time};
  }

  [[nodiscard]] storage::ComputeConfig compute_config() const {
    return storage::ComputeConfig{compute_rate_bps, 1};
  }
};

/// Parameters of the DAS data distribution (paper §III-D).
struct DistributionConfig {
  /// Strips per group (the paper's r). Capacity overhead is 2*halo/r.
  std::uint64_t group_size = 16;
  /// Halo strips replicated onto each neighbouring server.
  std::uint64_t halo = 1;
  /// Largest tolerated capacity overhead when the planner picks r itself.
  double max_capacity_overhead = 0.25;
};

}  // namespace das::core
