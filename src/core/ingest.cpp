#include "core/ingest.hpp"

#include <utility>

#include "core/completion.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/assert.hpp"

namespace das::core {

struct Ingestor::ClientTask {
  std::uint32_t client_index = 0;
  std::uint64_t next_strip = 0;
  std::uint64_t end_strip = 0;
  std::uint32_t in_flight = 0;
  std::function<void()> issue;
};

pfs::FileId Ingestor::ingest(pfs::FileMeta meta,
                             std::unique_ptr<pfs::Layout> layout,
                             const std::vector<std::byte>* data,
                             std::function<void()> on_done) {
  DAS_REQUIRE(layout != nullptr);
  const pfs::FileMeta file_meta = meta;  // keep a copy; create_file moves it

  // Register the file (length-only); the timed writes below carry the
  // actual bytes and the disk/network cost.
  const pfs::FileId file =
      cluster_.pfs().create_file(std::move(meta), std::move(layout), nullptr);
  bytes_ingested_ = file_meta.size_bytes;

  const std::uint64_t num_strips = file_meta.num_strips();
  const std::uint32_t num_clients = cluster_.config().compute_nodes;
  const BarrierPtr barrier = make_barrier(as_callback(std::move(on_done)));

  // One payload block for the dataset; every strip write carries a shared
  // view of it (empty handle in timing-only mode).
  pfs::StripBuffer contents;
  if (data != nullptr) contents = pfs::StripBuffer::copy_of(*data);

  for (std::uint32_t c = 0; c < num_clients; ++c) {
    auto task = std::make_shared<ClientTask>();
    task->client_index = c;
    task->next_strip = c * num_strips / num_clients;
    task->end_strip = (c + 1) * num_strips / num_clients;
    if (task->next_strip >= task->end_strip) continue;
    barrier->add(task->end_strip - task->next_strip);
    tasks_.push_back(task);

    pfs::PfsClient& client = cluster_.client(c);
    task->issue = [this, task = task.get(), &client, file, file_meta,
                   contents, barrier]() {
      const std::uint32_t window = cluster_.config().pipeline_window;
      while (task->in_flight < window && task->next_strip < task->end_strip) {
        const pfs::StripRef ref = file_meta.strip(task->next_strip++);
        ++task->in_flight;
        pfs::StripBuffer payload;
        if (!contents.empty()) payload = contents.view(ref.offset, ref.length);
        client.write_range(file, ref.offset, ref.length, std::move(payload),
                           pfs::RangeDoneFn([task, barrier]() {
                             DAS_REQUIRE(task->in_flight > 0);
                             --task->in_flight;
                             task->issue();
                             barrier->arrive();
                           }));
      }
    };
    task->issue();
  }
  barrier->seal();
  return file;
}

}  // namespace das::core
