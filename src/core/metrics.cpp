#include "core/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace das::core {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof buf, "%.4g GiB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof buf, "%.4g MiB", b / (1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof buf, "%.4g KiB", b / (1ULL << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_report_table(const std::vector<RunReport>& reports) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line, "%-6s %-18s %10s %6s %10s %14s %14s %9s\n",
                "scheme", "kernel", "data", "nodes", "time(s)", "cli-srv",
                "srv-srv", "BW(MiB/s)");
  out << line;
  for (const RunReport& r : reports) {
    std::snprintf(line, sizeof line,
                  "%-6s %-18s %10s %6u %10.2f %14s %14s %9.1f\n",
                  r.scheme.c_str(), r.kernel.c_str(),
                  format_bytes(r.data_bytes).c_str(),
                  r.storage_nodes + r.compute_nodes, r.exec_seconds,
                  format_bytes(r.client_server_bytes).c_str(),
                  format_bytes(r.server_server_bytes).c_str(),
                  r.sustained_bandwidth_bps() / (1 << 20));
    out << line;
  }
  // Critical-path attribution, only when a run actually tracked spans (the
  // table stays byte-identical for untracked runs).
  static const char* kHopNames[7] = {"admission", "control", "net-queue",
                                     "net-wire",  "disk",    "cache",
                                     "compute"};
  for (const RunReport& r : reports) {
    if (r.spans_finished == 0) continue;
    std::snprintf(line, sizeof line,
                  "%s/%s spans: %llu finished; per-hop seconds:",
                  r.scheme.c_str(), r.kernel.c_str(),
                  static_cast<unsigned long long>(r.spans_finished));
    out << line;
    for (std::size_t h = 0; h < 7; ++h) {
      if (r.span_hop_seconds[h] <= 0.0) continue;
      std::snprintf(line, sizeof line, " %s=%.3f", kHopNames[h],
                    r.span_hop_seconds[h]);
      out << line;
    }
    out << '\n';
  }
  return out.str();
}

std::string report_csv_header() {
  return "scheme,kernel,data_bytes,storage_nodes,compute_nodes,exec_seconds,"
         "client_server_bytes,server_server_bytes,control_messages,"
         "redistribution_bytes,offloaded,redistributed,sustained_bw_bps,"
         "server_disk_util,server_nic_util,server_compute_util,"
         "client_compute_util,cache_hits,cache_misses,cache_evictions,"
         "cache_hit_bytes,cache_hit_rate,prefetch_issued,"
         "prefetch_issued_bytes,prefetch_coalesced,prefetch_dropped_stale,"
         "prefetch_hits,prefetch_hit_bytes,"
         "net_queue_p50,net_queue_p95,net_queue_p99,"
         "net_wire_p50,net_wire_p95,net_wire_p99,"
         "disk_p50,disk_p95,disk_p99,"
         "compute_p50,compute_p95,compute_p99,"
         "migrations,migration_bytes";
}

std::string to_csv(const RunReport& r) {
  std::ostringstream out;
  out << r.scheme << ',' << r.kernel << ',' << r.data_bytes << ','
      << r.storage_nodes << ',' << r.compute_nodes << ',' << r.exec_seconds
      << ',' << r.client_server_bytes << ',' << r.server_server_bytes << ','
      << r.control_messages << ',' << r.redistribution_bytes << ','
      << (r.offloaded ? 1 : 0) << ',' << (r.redistributed ? 1 : 0) << ','
      << r.sustained_bandwidth_bps() << ',' << r.server_disk_utilization
      << ',' << r.server_nic_utilization << ','
      << r.server_compute_utilization << ','
      << r.client_compute_utilization << ',' << r.cache_hits << ','
      << r.cache_misses << ',' << r.cache_evictions << ','
      << r.cache_hit_bytes << ',' << r.cache_hit_rate() << ','
      << r.prefetch_issued << ',' << r.prefetch_issued_bytes << ','
      << r.prefetch_coalesced << ',' << r.prefetch_dropped_stale << ','
      << r.prefetch_hits << ',' << r.prefetch_hit_bytes << ','
      << r.net_queue_wait.p50 << ',' << r.net_queue_wait.p95 << ','
      << r.net_queue_wait.p99 << ',' << r.net_wire.p50 << ','
      << r.net_wire.p95 << ',' << r.net_wire.p99 << ','
      << r.disk_service.p50 << ',' << r.disk_service.p95 << ','
      << r.disk_service.p99 << ',' << r.compute_service.p50 << ','
      << r.compute_service.p95 << ',' << r.compute_service.p99 << ','
      << r.migrations << ',' << r.migration_bytes;
  return out.str();
}

}  // namespace das::core
