// Improved data distribution planning (paper §III-D).
//
// Given an operator's dependence offsets and the file geometry, pick the
// group size r and halo so that every dependent element of every interior
// element is stored on the same server (Eq. 17 satisfied by construction),
// subject to a capacity-overhead budget (the paper's 2/r concern) and to
// keeping every server busy (at least one group per server).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bandwidth_model.hpp"
#include "core/config.hpp"
#include "pfs/file.hpp"

namespace das::core {

class DistributionPlanner {
 public:
  explicit DistributionPlanner(const DistributionConfig& config)
      : config_(config) {}

  /// Plan a placement of `meta` over `num_servers` servers that makes the
  /// dependence `offsets` (elements) local. Returns nullopt when no
  /// placement satisfies both the capacity budget and the parallelism
  /// constraint — the request should then be served as normal I/O.
  [[nodiscard]] std::optional<PlacementSpec> plan(
      const pfs::FileMeta& meta, const std::vector<std::int64_t>& offsets,
      std::uint32_t num_servers) const;

  [[nodiscard]] const DistributionConfig& config() const { return config_; }

 private:
  DistributionConfig config_;
};

}  // namespace das::core
