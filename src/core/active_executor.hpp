// Active-storage scheme executor (shared by NAS and DAS).
//
// Every storage server processes the strips it owns (the AS helper process
// invoking the kernel through the Local I/O API). The difference between
// NAS and DAS is entirely in the layout of the input file:
//  * round-robin (NAS): the dependence halo of every run is on other
//    servers, so the server fetches those strips remotely — the dependence
//    traffic and service load the paper identifies;
//  * DAS-replicated: the halo is a locally stored replica, so no
//    server-to-server input traffic occurs at all.
// Output strips are written locally; output halo replicas are propagated to
// the neighbouring servers (honest accounting of the DAS layout's write
// cost).
//
// Data-plane shape (data mode): each run assembles its input slab directly
// into the Grid the kernel reads (one copy per strip, from the shared
// delivery buffer), and the kernel's output lands in one pooled StripBuffer
// whose per-strip views feed every local write and replica message — so a
// run costs two slab copies total regardless of strip or replica count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/completion.hpp"
#include "grid/grid.hpp"
#include "kernels/kernel.hpp"
#include "pfs/file.hpp"
#include "pfs/local_io.hpp"
#include "pfs/strip_buffer.hpp"

namespace das::core {

class ActiveExecutor;

/// Sum of the halo-acquisition counters over a set of executors (one per
/// pass of a repeated request) — the observed side of the decision audit.
struct HaloFetchTotals {
  std::uint64_t strips_fetched = 0;
  std::uint64_t bytes_fetched = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_hit_bytes = 0;

  HaloFetchTotals& operator+=(const ActiveExecutor& executor);
};

class ActiveExecutor {
 public:
  struct Options {
    const kernels::ProcessingKernel* kernel = nullptr;
    /// Halo strips the dependence pattern needs on each side of a run.
    std::uint64_t halo_strips = 1;
    /// Carry and verify real bytes.
    bool data_mode = false;
  };

  ActiveExecutor(Cluster& cluster, const Options& options);
  ~ActiveExecutor();  // out of line: ServerTask is incomplete here

  ActiveExecutor(const ActiveExecutor&) = delete;
  ActiveExecutor& operator=(const ActiveExecutor&) = delete;

  /// Offload the kernel over `input`, writing `output` (same size, already
  /// created with its layout). `on_done` fires when every server has
  /// processed all its runs and all output (incl. replicas) is on disk.
  void start(pfs::FileId input, pfs::FileId output,
             std::function<void()> on_done);

  /// Halo strips fetched from remote servers (0 under a sufficient DAS
  /// layout; ~2 per strip under round-robin).
  [[nodiscard]] std::uint64_t halo_strips_fetched() const {
    return halo_strips_fetched_;
  }
  [[nodiscard]] std::uint64_t halo_bytes_fetched() const {
    return halo_bytes_fetched_;
  }

  /// Remote halo strips served from the server-side strip cache instead of
  /// the network (always 0 when caching is disabled).
  [[nodiscard]] std::uint64_t halo_cache_hits() const {
    return halo_cache_hits_;
  }
  [[nodiscard]] std::uint64_t halo_cache_hit_bytes() const {
    return halo_cache_hit_bytes_;
  }

 private:
  struct ServerTask;
  struct RunState;

  void start_server(pfs::ServerIndex server, pfs::FileId input,
                    pfs::FileId output, const BarrierPtr& barrier);
  // The per-run pipeline. Tasks are owned by tasks_ for the executor's
  // lifetime, so event callbacks carry only {this, task, index} — a few
  // words, always inline in the event node.
  void pump(ServerTask* task);
  void start_run(ServerTask* task, std::size_t index);
  void on_input(ServerTask* task, std::size_t index);
  void compute_and_write(ServerTask* task, std::size_t index);
  void write_output(ServerTask* task, std::size_t index);
  void finish_run(ServerTask* task, std::size_t index);

  Cluster& cluster_;
  Options options_;
  /// Kernel cost factor after applying the cluster's calibrated overrides.
  double cost_factor_ = 1.0;
  std::vector<std::unique_ptr<ServerTask>> tasks_;
  std::uint64_t halo_strips_fetched_ = 0;
  std::uint64_t halo_bytes_fetched_ = 0;
  std::uint64_t halo_cache_hits_ = 0;
  std::uint64_t halo_cache_hit_bytes_ = 0;
};

}  // namespace das::core
