#include "core/list_access.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/bandwidth_model.hpp"
#include "simkit/assert.hpp"

namespace das::core {
namespace {

/// "12.34 s" / "37.5%"-style compact numbers for rationale strings.
std::string seconds_str(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs", s);
  return buf;
}

std::string factor_str(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", f);
  return buf;
}

}  // namespace

AccessSpec AccessSpec::parse(const std::string& text) {
  AccessSpec spec;
  if (text == "column") {
    spec.mode = Mode::kColumn;
    return spec;
  }
  if (text.rfind("strided:", 0) == 0) {
    const std::string k = text.substr(8);
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(k, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != k.size() || value == 0) {
      throw std::invalid_argument("--access=strided:K needs K >= 1, got \"" +
                                  text + "\"");
    }
    spec.mode = Mode::kStrided;
    spec.stride = static_cast<std::uint32_t>(value);
    return spec;
  }
  if (text.rfind("trace:", 0) == 0 && text.size() > 6) {
    spec.mode = Mode::kTrace;
    spec.trace_path = text.substr(6);
    return spec;
  }
  throw std::invalid_argument(
      "unknown access pattern \"" + text +
      "\" (expected strided:K, column, or trace:FILE)");
}

std::string AccessSpec::label() const {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kStrided: return "strided:" + std::to_string(stride);
    case Mode::kColumn: return "column";
    case Mode::kTrace: return "trace:" + trace_path;
  }
  return "?";
}

std::uint32_t halo_rows_for(const pfs::FileMeta& meta,
                            const std::vector<std::int64_t>& offsets) {
  if (meta.raster_width == 0) return 0;
  std::uint64_t max_abs = 0;
  for (const std::int64_t o : offsets) {
    const std::uint64_t a =
        o < 0 ? static_cast<std::uint64_t>(-(o + 1)) + 1
              : static_cast<std::uint64_t>(o);
    max_abs = std::max(max_abs, a);
  }
  // Stencil offsets are r*width + c with |c| << width (the diagonal
  // neighbour of an 8-connected stencil is width+1 elements away but only
  // ONE row away), so the row distance is the offset rounded to the nearest
  // multiple of the width — a ceiling would charge the 3-row window of
  // every such stencil as 5 rows.
  const std::uint64_t width = meta.raster_width;
  return static_cast<std::uint32_t>((max_abs + width / 2) / width);
}

pfs::RegionList build_access_regions(const pfs::FileMeta& meta,
                                     const AccessSpec& spec,
                                     std::uint32_t halo_rows) {
  if (spec.mode == AccessSpec::Mode::kNone) return pfs::RegionList{};

  if (spec.mode == AccessSpec::Mode::kTrace) {
    std::ifstream in(spec.trace_path);
    if (!in) {
      throw std::invalid_argument("cannot open region trace file \"" +
                                  spec.trace_path + "\"");
    }
    std::vector<pfs::Run> runs;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      pfs::Run run;
      if (!(fields >> run.offset >> run.length)) {
        throw std::invalid_argument("malformed region trace line \"" + line +
                                    "\" in " + spec.trace_path +
                                    " (expected: offset length)");
      }
      runs.push_back(run);
    }
    return pfs::RegionList::from_runs(std::move(runs));
  }

  DAS_REQUIRE(meta.raster_width > 0 && meta.raster_height > 0 &&
              "sparse access patterns need raster geometry");
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(meta.raster_width) * meta.element_size;
  const std::uint32_t height = meta.raster_height;
  const std::uint32_t h = halo_rows;

  if (spec.mode == AccessSpec::Mode::kColumn) {
    // The middle column plus its halo columns: one short run per row. This
    // is the header-dominated extreme — count = height runs of a few
    // elements each, every one on a different part of the stripe.
    const std::uint32_t c = meta.raster_width / 2;
    const std::uint32_t lo = c >= h ? c - h : 0;
    const std::uint32_t hi = std::min(meta.raster_width - 1, c + h);
    return pfs::RegionList::strided(
        static_cast<std::uint64_t>(lo) * meta.element_size,
        static_cast<std::uint64_t>(hi - lo + 1) * meta.element_size,
        static_cast<std::int64_t>(row_bytes), height);
  }

  // strided:k — sample every k-th row starting at row `h` so each sample's
  // halo [i-h, i+h] stays inside the raster and the pattern stays regular
  // (the strided wire encoding). Each fetched run carries exactly the rows
  // the kernel needs to produce the sampled output row: payload fraction
  // (2h+1)/k of the file.
  const std::uint32_t k = spec.stride;
  const std::uint64_t run_rows = 2ULL * h + 1;
  if (height < run_rows || k <= 2 * h) {
    // Samples overlap (or the raster is shorter than one halo window): the
    // union is a dense prefix — one run, explicit encoding, and the
    // coalescer at the server sees it as a single extent.
    std::uint64_t end_rows = height;
    if (k <= 2 * h && height >= run_rows) {
      const std::uint32_t last = h + ((height - 1 - h) / k) * k;
      end_rows = std::min<std::uint64_t>(height, last + h + 1);
    }
    return pfs::RegionList::from_runs(
        {pfs::Run{0, std::min(end_rows * row_bytes, meta.size_bytes)}});
  }
  const std::uint64_t count = (height - run_rows) / k + 1;
  return pfs::RegionList::strided(
      0, run_rows * row_bytes,
      static_cast<std::int64_t>(k * row_bytes), count);
}

ListStats list_stats(const pfs::FileMeta& meta, const pfs::RegionList& regions,
                     std::uint32_t num_servers) {
  ListStats stats;
  if (regions.empty()) return stats;
  DAS_REQUIRE(num_servers > 0);
  const std::vector<pfs::StripRun> split = split_by_strip(meta, regions);
  stats.runs = split.size();
  stats.payload_bytes = regions.total_bytes();
  stats.reply_framing_bytes = pfs::RegionList::reply_framing_bytes(split.size());

  // Per-server request headers: mirror the client's batching (one request
  // per server holding at least one touched strip, round-robin striping).
  std::vector<std::uint64_t> runs_per_server(num_servers, 0);
  std::uint64_t prev_strip = UINT64_MAX;
  std::uint64_t prev_end = 0;
  for (const pfs::StripRun& r : split) {
    runs_per_server[r.strip % num_servers] += 1;
    // Coalesced extents: split runs are sorted, so a new extent starts
    // whenever the strip changes or a gap precedes the run.
    if (r.strip != prev_strip) {
      ++stats.touched_strips;
      ++stats.coalesced_extents;
    } else if (r.offset_in_strip > prev_end) {
      ++stats.coalesced_extents;
    }
    prev_strip = r.strip;
    prev_end = r.offset_in_strip + r.length;
  }
  for (const std::uint64_t n : runs_per_server) {
    if (n > 0) {
      stats.request_header_bytes +=
          pfs::RegionList::request_bytes(regions.encoding(), n);
    }
  }
  return stats;
}

std::uint64_t access_output_bytes(const pfs::FileMeta& meta,
                                  const AccessSpec& spec,
                                  std::uint32_t halo_rows,
                                  std::uint64_t full_output_bytes) {
  switch (spec.mode) {
    case AccessSpec::Mode::kNone:
      return full_output_bytes;
    case AccessSpec::Mode::kStrided: {
      if (meta.raster_height == 0) return full_output_bytes;
      // One kept output row per sample, whether or not the fetch
      // degenerated to a dense prefix (overlapping halos change what is
      // READ, never what the consumer keeps).
      const std::uint64_t h = halo_rows;
      const std::uint64_t height = meta.raster_height;
      const std::uint64_t run_rows = 2 * h + 1;
      const std::uint64_t samples =
          height >= run_rows ? (height - run_rows) / spec.stride + 1
                             : (height + spec.stride - 1) / spec.stride;
      return full_output_bytes * samples / height;
    }
    case AccessSpec::Mode::kColumn:
      // The consumer keeps one output column of the raster.
      if (meta.raster_width == 0) return full_output_bytes;
      return std::max<std::uint64_t>(1,
                                     full_output_bytes / meta.raster_width);
    case AccessSpec::Mode::kTrace:
      // A trace's consumer semantics are unknown; charge the offload path
      // the full output (conservative — biases the decision toward the
      // list, never toward a phantom offload win).
      return full_output_bytes;
  }
  return full_output_bytes;
}

ListDecision decide_list_access(const pfs::FileMeta& meta,
                                const std::vector<std::int64_t>& offsets,
                                const ListStats& stats,
                                const ClusterConfig& cluster,
                                const DistributionConfig& distribution,
                                double kernel_cost_factor,
                                std::uint64_t output_bytes,
                                std::uint64_t returned_bytes) {
  const double nic = static_cast<double>(cluster.nic_bandwidth_bps);
  const double disk = static_cast<double>(cluster.disk_bandwidth_bps);
  const double comp = static_cast<double>(cluster.compute_rate_bps);
  const double servers = cluster.storage_nodes;
  const double clients = cluster.compute_nodes;
  const double fan = std::min(servers, clients);
  const double payload = static_cast<double>(stats.payload_bytes);
  const double wire = static_cast<double>(stats.wire_bytes());

  // Serve as list I/O: the runs cross min(S, C) client-server NIC pairs,
  // the payload comes off S disks (coalesced extents, so near-sequential),
  // and the clients compute over the fetched rows.
  ListDecision decision;
  decision.normal_seconds = wire / (nic * fan) + payload / (disk * servers) +
                            payload * kernel_cost_factor / (comp * clients);

  // Offload: active storage computes every output row (it cannot subset the
  // sweep — the sparsity is over *outputs*), so the whole file streams off
  // the disks and through the server compute engines, plus the dependence
  // halo exchange the bandwidth model forecasts; only the sampled payload
  // returns to the clients.
  const PlacementSpec placement{cluster.storage_nodes, distribution.group_size,
                                distribution.halo};
  const TrafficForecast forecast =
      forecast_traffic(meta, offsets, placement, output_bytes);
  const double file = static_cast<double>(meta.size_bytes);
  decision.active_seconds =
      file / (disk * servers) + file * kernel_cost_factor / (comp * servers) +
      static_cast<double>(forecast.active_total_bytes()) / (nic * servers) +
      static_cast<double>(returned_bytes) / (nic * fan);

  decision.action = decision.active_seconds < decision.normal_seconds
                        ? OffloadAction::kOffload
                        : OffloadAction::kServeNormal;
  decision.rationale =
      "list " + seconds_str(decision.normal_seconds) + " (" +
      std::to_string(stats.wire_bytes()) + " wire B = " +
      std::to_string(stats.payload_bytes) + " payload + " +
      std::to_string(stats.request_header_bytes + stats.reply_framing_bytes) +
      " header, " + std::to_string(stats.runs) + " runs -> " +
      std::to_string(stats.coalesced_extents) + " extents, coalesce " +
      factor_str(stats.coalescing_factor()) + ") vs offload " +
      seconds_str(decision.active_seconds) + " (full " +
      std::to_string(meta.size_bytes) + " B sweep + " +
      std::to_string(forecast.active_total_bytes()) + " halo B, " +
      std::to_string(returned_bytes) + " B returned): " +
      to_string(decision.action);
  return decision;
}

}  // namespace das::core
