// Scheme runners: one call reproduces one bar/point of the paper's
// evaluation (TS / NAS / DAS on one kernel, one data size, one cluster
// size), returning the RunReport the benches aggregate into tables.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/list_access.hpp"
#include "core/metrics.hpp"
#include "core/migration_planner.hpp"
#include "core/workload.hpp"
#include "simkit/context.hpp"

namespace das::core {

enum class Scheme { kTS, kNAS, kDAS };

[[nodiscard]] constexpr const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kTS: return "TS";
    case Scheme::kNAS: return "NAS";
    case Scheme::kDAS: return "DAS";
  }
  return "?";
}

struct SchemeRunOptions {
  Scheme scheme = Scheme::kDAS;
  WorkloadSpec workload;
  ClusterConfig cluster;
  DistributionConfig distribution;
  /// DAS: the file is already stored in the planned distribution (the
  /// paper's evaluation setting). Set false to charge the runtime
  /// redistribution (ablation A4).
  bool pre_distributed = true;
  /// Successive operations sharing the dependence pattern (decision input).
  std::uint32_t pipeline_length = 1;
  /// How many times the whole operation re-runs over the same input within
  /// one simulation (recurring analyses of a hot dataset). Repeats past the
  /// first can hit the servers' strip caches when those are enabled.
  std::uint32_t repeat_count = 1;
  /// Online layout migration (NAS repeated passes): watch per-pass halo
  /// traffic and re-stripe the input in the background when the layout is
  /// demonstrably wrong for the observed pattern. Disabled by default —
  /// every byte flow then reproduces the migration-free system exactly.
  MigrationConfig migration;
  /// Run context (logger/tracer/rng) for this run; null gives the cluster's
  /// simulator its private default. Parallel sweeps give every run its own
  /// context so concurrent simulations never share mutable state.
  sim::RunContext* context = nullptr;
};

/// Run one scheme on one workload and report the result.
[[nodiscard]] RunReport run_scheme(const SchemeRunOptions& options);

/// One sparse-access run through the list-I/O request plane.
struct ListRunOptions {
  /// kTS serves the access as list I/O: each client issues one
  /// read_regions over its contiguous share of the runs and computes over
  /// the fetched rows. Any other scheme delegates to run_scheme (active
  /// storage computes every output — it cannot subset the sweep), with the
  /// list-aware pricing recorded in the decision note either way.
  Scheme scheme = Scheme::kTS;
  WorkloadSpec workload;
  AccessSpec access;
  ClusterConfig cluster;
  DistributionConfig distribution;
  /// Expand every run to its enclosing whole strips before issuing — the
  /// pre-list-I/O behavior, kept as the A/B baseline bench_listio
  /// measures the bytes-moved reduction against.
  bool whole_strips = false;
  sim::RunContext* context = nullptr;
};

/// Run one sparse access (see ListRunOptions). The report's
/// client_server_bytes is the bytes-moved metric of EXPERIMENTS.md: runs +
/// list headers only, never the enclosing strips (unless whole_strips).
[[nodiscard]] RunReport run_list_scheme(const ListRunOptions& options);

/// Run a chain of kernels (e.g. flow-routing then flow-accumulation), each
/// consuming the previous operator's output, within ONE simulation —
/// the successive-operation scenario of the paper's introduction. Returns
/// one report per stage plus a combined report (last element).
[[nodiscard]] std::vector<RunReport> run_pipeline(
    const SchemeRunOptions& options,
    const std::vector<std::string>& kernel_chain);

}  // namespace das::core
