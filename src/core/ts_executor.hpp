// Traditional Storage (TS) scheme executor.
//
// The baseline of the paper's evaluation: servers only serve I/O; the
// analysis kernel runs on the compute nodes. Each compute node owns a
// contiguous slab of strips, reads it (plus the dependence halo) through the
// PFS client, processes it, and writes the output slab back — so the whole
// dataset crosses the client-server links twice.
//
// Data-plane shape (data mode): arriving strips are copied once into the
// Grid the kernel reads in place, and the computed output lands in one
// pooled StripBuffer whose per-strip views feed the write-back — callbacks
// capture only {executor, task}, so the strip churn allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/completion.hpp"
#include "kernels/kernel.hpp"
#include "pfs/file.hpp"
#include "pfs/strip_buffer.hpp"

namespace das::core {

class TsExecutor {
 public:
  struct Options {
    const kernels::ProcessingKernel* kernel = nullptr;
    /// Halo strips each slab needs beyond its own (from the dependence).
    std::uint64_t halo_strips = 1;
    /// Carry and verify real bytes.
    bool data_mode = false;
  };

  TsExecutor(Cluster& cluster, const Options& options);
  ~TsExecutor();  // out of line: NodeTask is incomplete here

  TsExecutor(const TsExecutor&) = delete;
  TsExecutor& operator=(const TsExecutor&) = delete;

  /// Run the scheme over `input`, writing `output` (same size, already
  /// created). `on_done` fires when every output strip has been acked.
  void start(pfs::FileId input, pfs::FileId output,
             std::function<void()> on_done);

 private:
  struct NodeTask;

  void start_node(std::uint32_t client_index, pfs::FileId input,
                  pfs::FileId output, const BarrierPtr& barrier);
  // Per-node pipeline steps; tasks are owned by tasks_ for the executor's
  // lifetime, so callbacks carry only {this, task}.
  void issue_reads(NodeTask* task);
  void on_strip(NodeTask* task, pfs::StripRef ref,
                const pfs::StripBuffer& payload);
  void complete_slab(NodeTask* task);
  void gate_arrive(NodeTask* task, std::uint64_t strip);
  void node_ack(NodeTask* task);

  Cluster& cluster_;
  Options options_;
  /// Kernel cost factor after applying the cluster's calibrated overrides.
  double cost_factor_ = 1.0;
  std::vector<std::unique_ptr<NodeTask>> tasks_;
};

}  // namespace das::core
