// Per-tenant accounting for the traffic engine.
//
// Every job contributes three latency samples: how long admission held it
// back, how long it ran once admitted (service), and the end-to-end sojourn
// the tenant actually experiences (arrival to completion — the SLO metric).
// The CSV renderer emits one row per tenant plus an "all" aggregate row,
// with fixed-precision fields so equal runs produce byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simkit/stats.hpp"

namespace das::traffic {

struct TenantStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t bytes_read = 0;
  /// Jobs that had to wait in the admission queue.
  std::uint64_t jobs_deferred = 0;

  /// Seconds each job waited for admission (0 when admitted immediately).
  sim::Histogram admission_wait;
  /// Seconds from admission to completion.
  sim::Histogram service;
  /// Seconds from scheduled arrival to completion (the SLO metric).
  sim::Histogram sojourn;

  void merge(const TenantStats& other);
};

/// Column header for slo_csv_row(); ends with '\n'. The trailing `session`
/// column carries the run's trace session id (16 hex digits) so SLO rows
/// join traces, audits and metrics on one key.
[[nodiscard]] std::string slo_csv_header();

/// One CSV row: `label,jobs,bytes,deferred,` followed by p50/p95/p99/mean
/// for sojourn and service and p95 admission wait, all in seconds with
/// fixed precision, then the session id; ends with '\n'.
[[nodiscard]] std::string slo_csv_row(const std::string& label,
                                      const TenantStats& stats,
                                      std::uint64_t session = 0);

}  // namespace das::traffic
