#include "traffic/straggler.hpp"

#include <algorithm>
#include <utility>

#include "simkit/assert.hpp"
#include "telemetry/registry.hpp"

namespace das::traffic {

StragglerScheduler::StragglerScheduler(sim::Simulator& simulator,
                                       net::Network& network, pfs::Pfs& pfs,
                                       const StragglerConfig& config)
    : sim_(simulator),
      net_(network),
      pfs_(pfs),
      config_(config),
      ewma_(pfs.num_servers(), 0.0),
      samples_(pfs.num_servers(), 0) {
  DAS_REQUIRE(config.reroute_multiplier > 0.0);
  DAS_REQUIRE(config.hedge_multiplier > 0.0);
  DAS_REQUIRE(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0);
}

StragglerScheduler::Op* StragglerScheduler::acquire_op() {
  if (free_ops_.empty()) {
    ops_.push_back(std::make_unique<Op>());
    return ops_.back().get();
  }
  Op* op = free_ops_.back();
  free_ops_.pop_back();
  return op;
}

void StragglerScheduler::release_op(Op* op) {
  op->on_done.reset();
  op->holders.clear();  // keeps capacity for the next read
  op->runs.clear();     // likewise
  op->hedge_armed = false;
  op->done = false;
  op->outstanding = 0;
  op->span = 0;
  free_ops_.push_back(op);
}

void StragglerScheduler::record_latency(pfs::ServerIndex server,
                                        double seconds) {
  latency_.record(seconds);
  if (samples_[server] == 0) {
    ewma_[server] = seconds;
  } else {
    ewma_[server] = config_.ewma_alpha * seconds +
                    (1.0 - config_.ewma_alpha) * ewma_[server];
  }
  ++samples_[server];
}

pfs::ServerIndex StragglerScheduler::pick_fastest(
    const std::vector<pfs::ServerIndex>& holders,
    pfs::ServerIndex exclude) const {
  // A never-sampled holder must not score 0.0: it would win every pick, so
  // a cold replica (exactly what layout migration creates) would absorb all
  // rerouted and hedged traffic until its first reply landed. Score unknown
  // servers at the global median instead — competitive, but only chosen
  // over servers measured slower than the cluster norm.
  const double unsampled = latency_.count() > 0 ? latency_.quantile(0.5) : 0.0;
  pfs::ServerIndex best = kNoServer;
  double best_score = 0.0;
  for (const pfs::ServerIndex h : holders) {
    if (h == exclude) continue;
    const double score = samples_[h] > 0 ? ewma_[h] : unsampled;
    if (best == kNoServer || score < best_score) {
      best = h;
      best_score = score;
    }
  }
  return best;
}

void StragglerScheduler::enroll(telemetry::Registry& registry) const {
  registry.enroll_counter("straggler.reads", {}, reads_issued_);
  registry.enroll_counter("straggler.reroutes", {}, reroutes_);
  registry.enroll_counter("straggler.hedges", {}, hedges_issued_);
  registry.enroll_counter("straggler.hedges_won", {}, hedges_won_);
  registry.enroll_counter("straggler.wasted_bytes", {}, wasted_bytes_);
  registry.enroll_histogram("straggler.read_latency_s", {}, &latency_);
}

void StragglerScheduler::read_strip(net::NodeId client, net::TenantId tenant,
                                    pfs::FileId file, std::uint64_t strip,
                                    DoneFn on_done, std::uint64_t span) {
  begin_read(client, tenant, file, strip, pfs_.meta(file).strip(strip).length,
             {}, std::move(on_done), span);
}

void StragglerScheduler::read_strip_runs(net::NodeId client,
                                         net::TenantId tenant,
                                         pfs::FileId file,
                                         std::vector<pfs::StripRun> runs,
                                         DoneFn on_done, std::uint64_t span) {
  DAS_REQUIRE(!runs.empty());
  const std::uint64_t strip = runs.front().strip;
  std::uint64_t payload = 0;
  for (const pfs::StripRun& r : runs) {
    DAS_REQUIRE(r.strip == strip && "one list read targets one strip");
    payload += r.length;
  }
  begin_read(client, tenant, file, strip, payload, std::move(runs),
             std::move(on_done), span);
}

void StragglerScheduler::begin_read(net::NodeId client, net::TenantId tenant,
                                    pfs::FileId file, std::uint64_t strip,
                                    std::uint64_t length,
                                    std::vector<pfs::StripRun> runs,
                                    DoneFn on_done, std::uint64_t span) {
  // Resolve against the layout this strip is currently served under (the
  // prior layout while a migration's frontier has not yet passed the strip).
  std::vector<pfs::ServerIndex> holders = pfs_.read_holders(file, strip);
  DAS_REQUIRE(!holders.empty());

  pfs::ServerIndex target = holders[0];
  if (config_.reroute && holders.size() > 1 &&
      latency_.count() >= config_.min_samples &&
      samples_[target] >= config_.min_samples &&
      ewma_[target] > config_.reroute_multiplier * latency_.quantile(0.5)) {
    const pfs::ServerIndex fastest = pick_fastest(holders, kNoServer);
    if (fastest != kNoServer && fastest != target) {
      target = fastest;
      ++reroutes_;
    }
  }

  Op* op = acquire_op();
  op->file = file;
  op->strip = strip;
  op->length = length;
  op->runs = std::move(runs);
  op->client = client;
  op->tenant = tenant;
  op->first_server = target;
  // Snapshot the holder set at issue time: under migration the live layout
  // can change between issue and hedge-fire, and a hedge resolved against
  // the new layout could target a server that never held this strip.
  op->holders = std::move(holders);
  op->on_done = std::move(on_done);
  op->span = span;

  ++reads_issued_;
  issue(op, target, /*is_hedge=*/false);
  if (config_.hedge && op->holders.size() > 1) arm_hedge(op);
}

void StragglerScheduler::issue(Op* op, pfs::ServerIndex target,
                               bool is_hedge) {
  if (is_hedge) {
    op->hedge_issued_at = sim_.now();
  } else {
    op->first_issued_at = sim_.now();
  }
  ++op->outstanding;
  pfs::PfsServer& server = pfs_.server(target);
  if (op->runs.empty()) {
    // Request travels as a tenant-tagged control message; the server reads
    // the strip (through any installed disk scheduler) and ships the payload
    // back.
    net_.send(net::Message{
        op->client, server.node(), 0, net::TrafficClass::kControl,
        [this, op, &server, target, is_hedge]() {
          server.serve_read(op->file, op->strip, 0, op->length, op->client,
                            net::TrafficClass::kClientServer,
                            [this, op, target, is_hedge](
                                const pfs::StripBuffer& /*payload*/) {
                              complete(op, target, is_hedge);
                            },
                            op->tenant, op->span);
        },
        op->tenant, op->span});
    return;
  }
  // List read: the request itself carries the run descriptors, so it bills
  // real header bytes on the data-plane class. The server coalesces the
  // runs into disk extents and replies with one packed payload. The op's
  // run list stays intact — a hedge re-issues a copy of the same list.
  net_.send(net::Message{
      op->client, server.node(),
      pfs::RegionList::request_bytes(pfs::RegionEncoding::kStrided,
                                     op->runs.size()),
      net::TrafficClass::kClientServer,
      [this, op, &server, target, is_hedge]() {
        server.serve_read_list(op->file, op->runs, op->client,
                               net::TrafficClass::kClientServer,
                               [this, op, target, is_hedge](
                                   const pfs::StripBuffer& /*payload*/) {
                                 complete(op, target, is_hedge);
                               },
                               op->tenant, op->span);
      },
      op->tenant, op->span});
}

void StragglerScheduler::complete(Op* op, pfs::ServerIndex from,
                                  bool is_hedge) {
  const sim::SimTime issued =
      is_hedge ? op->hedge_issued_at : op->first_issued_at;
  record_latency(from, sim::to_seconds(sim_.now() - issued));

  DAS_REQUIRE(op->outstanding > 0);
  --op->outstanding;

  if (op->done) {
    // The other copy already won; these bytes moved for nothing.
    wasted_bytes_ += op->length;
  } else {
    op->done = true;
    if (op->hedge_armed) {
      sim_.cancel(op->hedge_timer);
      op->hedge_armed = false;
    }
    if (is_hedge) ++hedges_won_;
    DoneFn done = std::move(op->on_done);
    if (done) done();
  }
  if (op->outstanding == 0) release_op(op);
}

void StragglerScheduler::arm_hedge(Op* op) {
  // Before enough history exists the p95 is meaningless, so do not hedge at
  // all — better to miss the first few stragglers than to flood the cluster
  // with duplicates while the latency estimate is still warming up.
  if (latency_.count() < config_.min_samples) return;
  // Trigger off the median, not a tail quantile: the tail is exactly the
  // straggler latency being fought, so a p95-based timer could never fire
  // before the straggler itself replied.
  const sim::SimDuration delay = std::max(
      config_.hedge_floor,
      sim::seconds(config_.hedge_multiplier * latency_.quantile(0.5)));
  op->hedge_armed = true;
  op->hedge_timer = sim_.schedule_after(
      delay, [this, op]() { fire_hedge(op); }, "traffic.hedge");
}

void StragglerScheduler::fire_hedge(Op* op) {
  op->hedge_armed = false;
  if (op->done) return;
  // Use the holder set snapshotted at issue time, not the live layout: those
  // servers are guaranteed to still serve the strip (migration retires old
  // copies without deleting them until the file's epoch advances).
  const pfs::ServerIndex target = pick_fastest(op->holders, op->first_server);
  if (target == kNoServer) return;
  ++hedges_issued_;
  issue(op, target, /*is_hedge=*/true);
}

}  // namespace das::traffic
