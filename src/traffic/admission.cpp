#include "traffic/admission.hpp"

#include <algorithm>
#include <utility>

#include "simkit/assert.hpp"

namespace das::traffic {

void TokenBucket::take(std::uint64_t bytes) {
  tokens_ -= std::min(bytes, tokens_);
  max_inflight_ = std::max(max_inflight_, inflight_bytes());
}

bool TokenBucket::submit(std::uint64_t bytes, AdmitFn on_admit) {
  DAS_REQUIRE(bytes > 0);
  if (!config_.active()) {
    if (on_admit) on_admit();
    return true;
  }
  if (waiters_.empty() && fits(bytes)) {
    take(bytes);
    if (on_admit) on_admit();
    return true;
  }
  ++deferred_;
  waiters_.push_back(Waiter{bytes, std::move(on_admit)});
  max_queued_ = std::max(max_queued_, waiters_.size());
  return false;
}

void TokenBucket::release(std::uint64_t bytes) {
  if (!config_.active()) return;
  tokens_ = std::min(config_.capacity_bytes, tokens_ + bytes);
  while (!waiters_.empty() && fits(waiters_.front().bytes)) {
    Waiter next = std::move(waiters_.front());
    waiters_.pop_front();
    take(next.bytes);
    if (next.on_admit) next.on_admit();
  }
}

}  // namespace das::traffic
