#include "traffic/fair_queue.hpp"

#include <utility>

namespace das::traffic {
namespace {

/// Cost charged to a tenant for one message/read: its payload bytes, floor 1
/// so zero-byte control messages still advance the tenant's finish tag.
std::uint64_t cost_of(std::uint64_t bytes) {
  return std::max<std::uint64_t>(1, bytes);
}

}  // namespace

NicFairQueue::NodeQueue& NicFairQueue::node_queue(net::NodeId node) {
  auto [it, inserted] = queues_.try_emplace(node);
  if (inserted) {
    for (const auto& [tenant, weight] : weights_) {
      it->second.queue.set_weight(tenant, weight);
    }
  }
  return it->second;
}

bool NicFairQueue::intercept(net::Message& msg) {
  const net::NodeId node = msg.src;
  NodeQueue& nq = node_queue(node);
  nq.queue.push(msg.tenant, cost_of(msg.bytes), std::move(msg));
  ++scheduled_;
  max_depth_ = std::max(max_depth_, nq.queue.size());
  if (!nq.pump_pending) {
    nq.pump_pending = true;
    const sim::SimTime when =
        std::max(sim_.now(), net_.nic(node).egress_free_at());
    sim_.schedule_at(when, [this, node]() { pump(node); }, "traffic.nic_wfq");
  }
  return true;
}

void NicFairQueue::pump(net::NodeId node) {
  NodeQueue& nq = node_queue(node);
  if (nq.queue.empty()) {
    nq.pump_pending = false;
    return;
  }
  net_.transmit(nq.queue.pop());
  if (nq.queue.empty()) {
    nq.pump_pending = false;
    return;
  }
  // The transmit above advanced the egress reservation; release the next
  // message the moment the NIC frees up.
  const sim::SimTime when =
      std::max(sim_.now(), net_.nic(node).egress_free_at());
  sim_.schedule_at(when, [this, node]() { pump(node); }, "traffic.nic_wfq");
}

DiskFairQueue::ServerQueue& DiskFairQueue::server_queue(
    pfs::PfsServer& server) {
  auto [it, inserted] = queues_.try_emplace(&server);
  if (inserted) {
    for (const auto& [tenant, weight] : weights_) {
      it->second.queue.set_weight(tenant, weight);
    }
  }
  return it->second;
}

bool DiskFairQueue::intercept_read(pfs::PfsServer& server,
                                   pfs::ReadRequest& request) {
  ServerQueue& sq = server_queue(server);
  sq.queue.push(request.tenant, cost_of(request.length), std::move(request));
  ++scheduled_;
  max_depth_ = std::max(max_depth_, sq.queue.size());
  if (!sq.pump_pending) {
    sq.pump_pending = true;
    const sim::SimTime when = std::max(sim_.now(), server.disk().free_at());
    sim_.schedule_at(when, [this, &server]() { pump(server); },
                     "traffic.disk_wfq");
  }
  return true;
}

void DiskFairQueue::pump(pfs::PfsServer& server) {
  ServerQueue& sq = server_queue(server);
  if (sq.queue.empty()) {
    sq.pump_pending = false;
    return;
  }
  server.serve_read_now(sq.queue.pop());
  if (sq.queue.empty()) {
    sq.pump_pending = false;
    return;
  }
  const sim::SimTime when = std::max(sim_.now(), server.disk().free_at());
  sim_.schedule_at(when, [this, &server]() { pump(server); },
                   "traffic.disk_wfq");
}

}  // namespace das::traffic
