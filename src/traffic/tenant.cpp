#include "traffic/tenant.hpp"

#include <cstdio>

#include "telemetry/plane.hpp"

namespace das::traffic {
namespace {

/// Fixed-precision seconds — CSV rows must be byte-identical across runs
/// and hosts, so never go through ostream locale/format state.
std::string fixed(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9f", seconds);
  return buf;
}

}  // namespace

void TenantStats::merge(const TenantStats& other) {
  jobs_submitted += other.jobs_submitted;
  jobs_completed += other.jobs_completed;
  bytes_read += other.bytes_read;
  jobs_deferred += other.jobs_deferred;
  admission_wait.merge(other.admission_wait);
  service.merge(other.service);
  sojourn.merge(other.sojourn);
}

std::string slo_csv_header() {
  return "tenant,jobs,bytes,deferred,"
         "sojourn_p50_s,sojourn_p95_s,sojourn_p99_s,sojourn_mean_s,"
         "service_p50_s,service_p95_s,service_p99_s,service_mean_s,"
         "admission_wait_p95_s,session\n";
}

std::string slo_csv_row(const std::string& label, const TenantStats& stats,
                        std::uint64_t session) {
  const sim::HistogramSummary sojourn = stats.sojourn.summary();
  const sim::HistogramSummary service = stats.service.summary();
  const sim::HistogramSummary wait = stats.admission_wait.summary();
  std::string row = label;
  row += ',' + std::to_string(stats.jobs_completed);
  row += ',' + std::to_string(stats.bytes_read);
  row += ',' + std::to_string(stats.jobs_deferred);
  row += ',' + fixed(sojourn.p50) + ',' + fixed(sojourn.p95) + ',' +
         fixed(sojourn.p99) + ',' + fixed(sojourn.mean);
  row += ',' + fixed(service.p50) + ',' + fixed(service.p95) + ',' +
         fixed(service.p99) + ',' + fixed(service.mean);
  row += ',' + fixed(wait.p95);
  row += ',' + telemetry::session_hex(session);
  row += '\n';
  return row;
}

}  // namespace das::traffic
