// Multi-tenant traffic engine.
//
// Runs an open-loop workload — N tenants submitting strip-read/kernel jobs
// on a precomputed arrival schedule — against one shared simulated cluster,
// with the three contention controls this subsystem exists to study:
// per-tenant admission (token bucket on in-flight bytes), weighted fair
// queueing at the NIC and disk service points, and straggler-aware client
// reads (re-route + hedging). Everything is deterministic: the schedule
// comes from per-tenant RNG substreams, the simulation is single-threaded,
// and the SLO report renders with fixed precision, so one (seed, config)
// pair always produces the same bytes.
//
// A job is the traffic-engine unit of work: read `job_bytes` of strips from
// one dataset (through the straggler scheduler), then, for kernel jobs,
// charge the client's compute engine at the kernel's cost factor. Jobs do
// not run the full TS/active executors — the subsystem measures contention
// between tenants, not kernel semantics, and this keeps 10^4 concurrent
// clients affordable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/config.hpp"
#include "traffic/admission.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/fair_queue.hpp"
#include "traffic/straggler.hpp"
#include "traffic/tenant.hpp"

namespace das::traffic {

struct TrafficConfig {
  core::ClusterConfig cluster;
  ArrivalConfig arrivals;
  /// When non-empty, replay this trace file instead of Poisson arrivals.
  std::string trace_file;
  /// Copies of every strip (ReplicatedRoundRobinLayout); >= 2 gives the
  /// straggler scheduler replica holders to re-route/hedge to.
  std::uint32_t replication = 2;
  AdmissionConfig admission;
  /// Weighted fair queueing at every NIC egress and server disk.
  bool fair_queue = false;
  /// Per-tenant WFQ weights, cycled over tenants; empty means all 1.0.
  std::vector<double> weights;
  StragglerConfig straggler;
  /// Sparse list-I/O access (--access=strided:K under traffic mode): jobs
  /// fetch every K-th 4 KiB row unit of each strip through one list request
  /// (StragglerScheduler::read_strip_runs) instead of the whole strip, and
  /// compute over only the fetched bytes. 0 or 1 keeps the whole-strip
  /// reads byte for byte.
  std::uint32_t access_stride = 0;
  /// Run context (logger/tracer); null uses the cluster's private default.
  sim::RunContext* context = nullptr;
};

struct TrafficReport {
  std::vector<TenantStats> tenants;
  TenantStats total;
  double makespan_s = 0.0;
  std::uint64_t events = 0;
  /// Run session id stamped into the SLO CSV (joins traces/audits/metrics).
  std::uint64_t session = 0;
  /// SLO alerts fired by the telemetry plane (0 without one).
  std::uint64_t slo_alerts = 0;
  /// Straggler-scheduler counters (zero when the feature is off).
  std::uint64_t reads_issued = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t wasted_bytes = 0;
  /// Fair-queue counters (zero when the feature is off).
  std::uint64_t nic_scheduled = 0;
  std::uint64_t disk_scheduled = 0;

  /// Aggregate strip-read latency seen by clients (seconds).
  sim::HistogramSummary read_latency;

  /// Deterministic per-tenant SLO table: slo_csv_header() + one row per
  /// tenant (label = tenant id) + an "all" aggregate row, each stamped with
  /// the session id.
  [[nodiscard]] std::string slo_csv() const;
};

/// Run the configured workload to completion and report per-tenant SLOs.
[[nodiscard]] TrafficReport run_traffic(const TrafficConfig& config);

}  // namespace das::traffic
