// Straggler-aware client-side strip reads.
//
// The traffic engine's jobs read strips through this scheduler instead of
// going straight to the primary holder. It keeps, per storage server, an
// EWMA of client-observed read latency, plus one global latency
// distribution, and uses them two ways (both off by default):
//
//  * re-route: when the primary holder's EWMA exceeds
//    `reroute_multiplier` x the global median, the read is sent to the
//    replica holder with the lowest EWMA instead — sustained stragglers
//    (slow disk, hot node) are simply avoided;
//  * hedge: after `hedge_multiplier` x the global median with no reply, a
//    duplicate request goes to a different holder and the first reply
//    wins — transient stragglers cost one extra strip transfer instead of
//    a tail-latency spike. The loser's bytes are counted as waste.
//
// Both need replica holders to exist (ReplicatedRoundRobinLayout); with a
// replication-free layout the scheduler degrades to plain primary reads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "pfs/pfs.hpp"
#include "pfs/region.hpp"
#include "simkit/simulator.hpp"
#include "simkit/stats.hpp"
#include "simkit/time.hpp"
#include "telemetry/metrics.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::traffic {

struct StragglerConfig {
  bool reroute = false;
  bool hedge = false;
  /// Avoid a primary whose EWMA exceeds this multiple of the global median.
  double reroute_multiplier = 2.0;
  /// Hedge after this multiple of the global median latency with no reply
  /// (the median, not a tail quantile: the tail is the straggler latency
  /// being fought, so a tail-based timer would never beat the straggler).
  double hedge_multiplier = 3.0;
  /// Never hedge earlier than this (guards against p95 ~ 0 early on).
  sim::SimDuration hedge_floor = sim::milliseconds(2);
  /// Samples required (per server and globally) before judging anyone.
  std::uint32_t min_samples = 16;
  /// EWMA smoothing factor for per-server latency.
  double ewma_alpha = 0.2;

  [[nodiscard]] bool active() const { return reroute || hedge; }
};

class StragglerScheduler {
 public:
  using DoneFn = sim::InplaceFn<void()>;

  StragglerScheduler(sim::Simulator& simulator, net::Network& network,
                     pfs::Pfs& pfs, const StragglerConfig& config);

  StragglerScheduler(const StragglerScheduler&) = delete;
  StragglerScheduler& operator=(const StragglerScheduler&) = delete;

  /// Read strip `strip` of `file` for `tenant` running on `client`.
  /// `on_done` fires at the client when the first copy of the payload has
  /// fully arrived (a losing hedged copy still transfers afterwards and is
  /// accounted as waste).
  void read_strip(net::NodeId client, net::TenantId tenant, pfs::FileId file,
                  std::uint64_t strip, DoneFn on_done,
                  std::uint64_t span = 0);

  /// List-I/O variant: fetch only `runs` (all within one strip) as a single
  /// coalesced list request (pfs::PfsServer::serve_read_list). Re-route and
  /// hedging apply exactly as for read_strip; a hedge re-issues the same
  /// run list to the replica holder, and a losing copy's waste is the list
  /// payload, not the whole strip.
  void read_strip_runs(net::NodeId client, net::TenantId tenant,
                       pfs::FileId file, std::vector<pfs::StripRun> runs,
                       DoneFn on_done, std::uint64_t span = 0);

  [[nodiscard]] std::uint64_t reads_issued() const { return reads_issued_; }
  [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }
  [[nodiscard]] std::uint64_t hedges_issued() const { return hedges_issued_; }
  [[nodiscard]] std::uint64_t hedges_won() const { return hedges_won_; }
  [[nodiscard]] std::uint64_t wasted_bytes() const { return wasted_bytes_; }

  /// Client-observed strip read latency (seconds), all servers.
  [[nodiscard]] const sim::Histogram& latency_histogram() const {
    return latency_;
  }

  /// Per-server latency EWMA in seconds (0 until the server has samples).
  [[nodiscard]] double server_ewma(pfs::ServerIndex server) const {
    return ewma_[server];
  }

  /// Enroll reroute/hedge counters and the read-latency histogram.
  void enroll(telemetry::Registry& registry) const;

 private:
  /// One logical strip read; lives until every issued copy has replied.
  struct Op {
    pfs::FileId file = pfs::kInvalidFile;
    std::uint64_t strip = 0;
    std::uint64_t length = 0;
    net::NodeId client = net::kInvalidNode;
    net::TenantId tenant = net::kNoTenant;
    pfs::ServerIndex first_server = 0;
    /// Holder set snapshotted at issue time, so a later hedge never targets
    /// a server the strip migrated away from mid-flight.
    std::vector<pfs::ServerIndex> holders;
    sim::SimTime first_issued_at = 0;
    sim::SimTime hedge_issued_at = 0;
    sim::EventId hedge_timer = 0;
    bool hedge_armed = false;
    bool done = false;
    std::uint32_t outstanding = 0;
    DoneFn on_done;
    std::uint64_t span = 0;  // causal span of the owning job; 0 untracked
    /// Non-empty for a list read: the runs every issued copy requests.
    /// `length` is then the list payload (waste + latency accounting).
    std::vector<pfs::StripRun> runs;
  };

  [[nodiscard]] Op* acquire_op();
  void release_op(Op* op);

  /// Shared tail of read_strip / read_strip_runs: pick the target (with
  /// re-route), populate a pooled op and issue it (arming the hedge timer).
  void begin_read(net::NodeId client, net::TenantId tenant, pfs::FileId file,
                  std::uint64_t strip, std::uint64_t length,
                  std::vector<pfs::StripRun> runs, DoneFn on_done,
                  std::uint64_t span);

  void issue(Op* op, pfs::ServerIndex target, bool is_hedge);
  void complete(Op* op, pfs::ServerIndex from, bool is_hedge);
  void arm_hedge(Op* op);
  void fire_hedge(Op* op);
  void record_latency(pfs::ServerIndex server, double seconds);

  /// The holder with the lowest EWMA, skipping `exclude`; never-sampled
  /// holders score the global median latency so a cold server is tried
  /// only over measured-slow ones. kNoServer when none.
  [[nodiscard]] pfs::ServerIndex pick_fastest(
      const std::vector<pfs::ServerIndex>& holders,
      pfs::ServerIndex exclude) const;

  static constexpr pfs::ServerIndex kNoServer = UINT32_MAX;

  sim::Simulator& sim_;
  net::Network& net_;
  pfs::Pfs& pfs_;
  StragglerConfig config_;
  std::vector<double> ewma_;
  std::vector<std::uint64_t> samples_;
  sim::Histogram latency_;
  telemetry::Counter reads_issued_;
  telemetry::Counter reroutes_;
  telemetry::Counter hedges_issued_;
  telemetry::Counter hedges_won_;
  telemetry::Counter wasted_bytes_;
  std::vector<std::unique_ptr<Op>> ops_;
  std::vector<Op*> free_ops_;
};

}  // namespace das::traffic
