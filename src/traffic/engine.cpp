#include "traffic/engine.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "kernels/registry.hpp"
#include "pfs/layout.hpp"
#include "simkit/assert.hpp"
#include "telemetry/plane.hpp"

namespace das::traffic {
namespace {

/// Per-byte compute cost charged at the client for each job kind (raw reads
/// charge nothing). Resolved once from the kernel registry so the traffic
/// engine and the classic executors price a kernel identically.
struct KindCosts {
  double factor[kNumJobKinds] = {};

  KindCosts() {
    const kernels::KernelRegistry registry = kernels::standard_registry();
    factor[static_cast<std::size_t>(JobKind::kRawRead)] = 0.0;
    factor[static_cast<std::size_t>(JobKind::kFlowRouting)] =
        registry.create("flow-routing")->cost_factor();
    factor[static_cast<std::size_t>(JobKind::kGaussian)] =
        registry.create("gaussian-2d")->cost_factor();
    factor[static_cast<std::size_t>(JobKind::kFlowAccumulation)] =
        registry.create("flow-accumulation")->cost_factor();
  }

  [[nodiscard]] double of(JobKind kind) const {
    return factor[static_cast<std::size_t>(kind)];
  }
};

/// One traffic run: owns the cluster, the control-plane state machines and
/// the per-job bookkeeping. Local to run_traffic().
class TrafficEngine {
 public:
  explicit TrafficEngine(const TrafficConfig& config)
      : config_(config),
        cluster_(config.cluster, config.context),
        straggler_(cluster_.simulator(), cluster_.network(), cluster_.pfs(),
                   config.straggler) {
    DAS_REQUIRE(config.arrivals.tenants > 0);
    DAS_REQUIRE(config.arrivals.strip_bytes > 0);
    DAS_REQUIRE(config.arrivals.datasets > 0);
    DAS_REQUIRE(config.cluster.compute_nodes > 0);
    plane_ = config.context != nullptr ? config.context->telemetry : nullptr;
    build_access_template();
    build_datasets();
    build_schedulers();
    build_tenants();
    if (plane_ != nullptr) enroll_instruments();
  }

  TrafficReport run();

 private:
  struct Job {
    JobArrival arrival;
    sim::SimTime admitted_at = 0;
    std::uint64_t strips_left = 0;
    std::uint64_t span = 0;  // causal span minted at submit; 0 untracked
  };

  /// --access=strided:K under traffic: precompute the within-strip run list
  /// once (every dataset strip is full-length, so one template fits all);
  /// each read stamps the strip number into a copy. Empty = whole strips.
  void build_access_template() {
    if (config_.access_stride <= 1) return;
    constexpr std::uint64_t kRowUnit = 4096;
    const std::uint64_t strip = config_.arrivals.strip_bytes;
    const std::uint64_t unit = std::min(kRowUnit, strip);
    const std::uint64_t step = unit * config_.access_stride;
    for (std::uint64_t off = 0; off < strip; off += step) {
      const std::uint64_t len = std::min(unit, strip - off);
      run_template_.push_back(pfs::StripRun{0, off, len});
      strip_payload_ += len;
    }
  }

  void build_datasets() {
    const ArrivalConfig& a = config_.arrivals;
    const std::uint64_t span = std::max<std::uint64_t>(
        1, (a.job_bytes + a.strip_bytes - 1) / a.strip_bytes);
    DAS_REQUIRE(a.dataset_strips >= span);
    for (std::uint32_t d = 0; d < a.datasets; ++d) {
      pfs::FileMeta meta;
      meta.name = "traffic-" + std::to_string(d);
      meta.size_bytes = a.dataset_strips * a.strip_bytes;
      meta.strip_size = a.strip_bytes;
      files_.push_back(cluster_.pfs().create_file(
          std::move(meta),
          std::make_unique<pfs::ReplicatedRoundRobinLayout>(
              cluster_.pfs().num_servers(), config_.replication)));
    }
  }

  void build_schedulers() {
    if (!config_.fair_queue) return;
    nic_wfq_ = std::make_unique<NicFairQueue>(cluster_.simulator(),
                                              cluster_.network());
    disk_wfq_ = std::make_unique<DiskFairQueue>(cluster_.simulator());
    if (!config_.weights.empty()) {
      for (std::uint32_t t = 0; t < config_.arrivals.tenants; ++t) {
        const double w = config_.weights[t % config_.weights.size()];
        nic_wfq_->set_weight(t, w);
        disk_wfq_->set_weight(t, w);
      }
    }
    cluster_.network().set_send_scheduler(nic_wfq_.get());
    for (pfs::ServerIndex s = 0; s < cluster_.pfs().num_servers(); ++s) {
      cluster_.pfs().server(s).set_read_scheduler(disk_wfq_.get());
    }
  }

  void build_tenants() {
    stats_.resize(config_.arrivals.tenants);
    for (std::uint32_t t = 0; t < config_.arrivals.tenants; ++t) {
      buckets_.emplace_back(config_.admission);
    }
  }

  /// Enroll every subsystem's instruments in the run's telemetry plane.
  /// Tenant-labelled series are capped at 32 tenants so huge fleets do not
  /// explode the column count; the cap is logged nowhere because the
  /// aggregate series (net, straggler, servers) still cover every tenant.
  void enroll_instruments() {
    telemetry::Registry& registry = plane_->registry();
    cluster_.network().enroll(registry);
    for (pfs::ServerIndex s = 0; s < cluster_.pfs().num_servers(); ++s) {
      cluster_.pfs().server(s).enroll(registry);
    }
    straggler_.enroll(registry);
    const std::uint32_t tenants =
        std::min<std::uint32_t>(config_.arrivals.tenants, 32);
    for (std::uint32_t t = 0; t < tenants; ++t) {
      const telemetry::Labels labels{telemetry::label("tenant", t)};
      registry.enroll_counter("tenant.jobs_completed", labels,
                              &stats_[t].jobs_completed);
      registry.enroll_counter("tenant.bytes_read", labels,
                              &stats_[t].bytes_read);
      const TokenBucket& bucket = buckets_[t];
      registry.enroll_gauge("admission.inflight_bytes", labels, [&bucket]() {
        return static_cast<double>(bucket.inflight_bytes());
      });
      registry.enroll_gauge("admission.queued", labels, [&bucket]() {
        return static_cast<double>(bucket.queued());
      });
    }
    plane_->enroll_slo_gauges(config_.arrivals.tenants);
  }

  /// Client node a tenant runs on (tenants cycle over the compute nodes).
  [[nodiscard]] net::NodeId client_of(std::uint32_t tenant) const {
    return cluster_.compute_node(tenant %
                                 config_.cluster.compute_nodes);
  }

  void submit(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    ++stats_[t].jobs_submitted;
    if (plane_ != nullptr) {
      job.span = plane_->spans().begin(t, cluster_.simulator().now(),
                                       client_of(t));
    }
    const bool immediate =
        buckets_[t].submit(job.arrival.bytes, [this, j]() { start(j); });
    if (!immediate) ++stats_[t].jobs_deferred;
  }

  void start(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    job.admitted_at = cluster_.simulator().now();
    stats_[t].admission_wait.record(
        sim::to_seconds(job.admitted_at - job.arrival.at));
    if (plane_ != nullptr) {
      plane_->spans().add(job.span, telemetry::Hop::kAdmission,
                          job.admitted_at - job.arrival.at);
    }
    job.strips_left = job.arrival.bytes / config_.arrivals.strip_bytes;
    DAS_REQUIRE(job.strips_left > 0);
    const pfs::FileId file = files_[job.arrival.dataset];
    const net::NodeId client = client_of(t);
    for (std::uint64_t s = 0; s < job.strips_left; ++s) {
      if (run_template_.empty()) {
        straggler_.read_strip(client, t, file, job.arrival.first_strip + s,
                              [this, j]() { strip_done(j); }, job.span);
      } else {
        std::vector<pfs::StripRun> runs = run_template_;
        for (pfs::StripRun& r : runs) r.strip = job.arrival.first_strip + s;
        straggler_.read_strip_runs(client, t, file, std::move(runs),
                                   [this, j]() { strip_done(j); }, job.span);
      }
    }
  }

  /// Bytes a job actually fetches (and computes over): the whole job under
  /// whole-strip reads, only the sampled runs under list-I/O access.
  [[nodiscard]] std::uint64_t job_payload(const Job& job) const {
    if (run_template_.empty()) return job.arrival.bytes;
    return job.arrival.bytes / config_.arrivals.strip_bytes * strip_payload_;
  }

  void strip_done(std::uint32_t j) {
    Job& job = jobs_[j];
    DAS_REQUIRE(job.strips_left > 0);
    if (--job.strips_left > 0) return;
    const double cost = costs_.of(job.arrival.kind);
    if (cost <= 0.0) {
      finish(j);
      return;
    }
    // Kernel jobs process the bytes on the client; the engine is a serial
    // per-node resource, so co-located tenants contend here too.
    sim::Simulator& sim = cluster_.simulator();
    const sim::SimTime done_at =
        cluster_.engine(client_of(job.arrival.tenant))
            .execute(sim.now(), job_payload(job), cost);
    if (plane_ != nullptr) {
      plane_->spans().add(job.span, telemetry::Hop::kCompute,
                          done_at - sim.now());
    }
    sim.schedule_at(done_at, [this, j]() { finish(j); }, "traffic.compute");
  }

  void finish(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    const sim::SimTime now = cluster_.simulator().now();
    TenantStats& stats = stats_[t];
    ++stats.jobs_completed;
    stats.bytes_read += job_payload(job);
    stats.sojourn.record(sim::to_seconds(now - job.arrival.at));
    stats.service.record(sim::to_seconds(now - job.admitted_at));
    last_finish_ = std::max(last_finish_, now);
    if (plane_ != nullptr) {
      plane_->spans().end(job.span, now, client_of(t));
      plane_->slo().record(t, now, sim::to_seconds(now - job.arrival.at));
    }
    buckets_[t].release(job.arrival.bytes);
  }

  TrafficConfig config_;
  core::Cluster cluster_;
  StragglerScheduler straggler_;
  KindCosts costs_;
  std::vector<pfs::FileId> files_;
  std::vector<TenantStats> stats_;
  std::deque<TokenBucket> buckets_;
  std::unique_ptr<NicFairQueue> nic_wfq_;
  std::unique_ptr<DiskFairQueue> disk_wfq_;
  std::vector<Job> jobs_;
  /// Within-strip run template for list-I/O access (empty = whole strips)
  /// and the payload bytes one strip's runs carry.
  std::vector<pfs::StripRun> run_template_;
  std::uint64_t strip_payload_ = 0;
  sim::SimTime last_finish_ = 0;
  telemetry::Plane* plane_ = nullptr;
};

TrafficReport TrafficEngine::run() {
  const std::vector<JobArrival> schedule =
      config_.trace_file.empty()
          ? generate_poisson(config_.arrivals)
          : load_trace(config_.trace_file, config_.arrivals);

  jobs_.reserve(schedule.size());
  for (const JobArrival& arrival : schedule) {
    jobs_.push_back(Job{arrival, 0, 0});
  }
  sim::Simulator& sim = cluster_.simulator();
  for (std::uint32_t j = 0; j < jobs_.size(); ++j) {
    sim.schedule_at(jobs_[j].arrival.at, [this, j]() { submit(j); },
                    "traffic.arrival");
  }
  if (plane_ != nullptr) plane_->start(sim);
  sim.run();
  if (plane_ != nullptr) plane_->finish(sim.now());

  TrafficReport report;
  report.tenants = stats_;
  for (const TenantStats& s : stats_) report.total.merge(s);
  DAS_REQUIRE(report.total.jobs_completed == jobs_.size());
  report.makespan_s = sim::to_seconds(last_finish_);
  // Sampler ticks are observability events, not simulated work: subtract
  // them so the reported event count is identical with telemetry on or off.
  report.events = sim.events_delivered() -
                  (plane_ != nullptr ? plane_->sampler_ticks() : 0);
  if (config_.context != nullptr) report.session = config_.context->session;
  if (plane_ != nullptr) {
    report.slo_alerts = plane_->slo().alerts_fired();
  }
  report.reads_issued = straggler_.reads_issued();
  report.reroutes = straggler_.reroutes();
  report.hedges_issued = straggler_.hedges_issued();
  report.hedges_won = straggler_.hedges_won();
  report.wasted_bytes = straggler_.wasted_bytes();
  if (nic_wfq_) report.nic_scheduled = nic_wfq_->messages_scheduled();
  if (disk_wfq_) report.disk_scheduled = disk_wfq_->reads_scheduled();
  report.read_latency = straggler_.latency_histogram().summary();
  return report;
}

}  // namespace

std::string TrafficReport::slo_csv() const {
  std::string csv = slo_csv_header();
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    csv += slo_csv_row(std::to_string(t), tenants[t], session);
  }
  csv += slo_csv_row("all", total, session);
  return csv;
}

TrafficReport run_traffic(const TrafficConfig& config) {
  TrafficEngine engine(config);
  return engine.run();
}

}  // namespace das::traffic
