#include "traffic/engine.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "kernels/registry.hpp"
#include "pfs/layout.hpp"
#include "simkit/assert.hpp"

namespace das::traffic {
namespace {

/// Per-byte compute cost charged at the client for each job kind (raw reads
/// charge nothing). Resolved once from the kernel registry so the traffic
/// engine and the classic executors price a kernel identically.
struct KindCosts {
  double factor[kNumJobKinds] = {};

  KindCosts() {
    const kernels::KernelRegistry registry = kernels::standard_registry();
    factor[static_cast<std::size_t>(JobKind::kRawRead)] = 0.0;
    factor[static_cast<std::size_t>(JobKind::kFlowRouting)] =
        registry.create("flow-routing")->cost_factor();
    factor[static_cast<std::size_t>(JobKind::kGaussian)] =
        registry.create("gaussian-2d")->cost_factor();
    factor[static_cast<std::size_t>(JobKind::kFlowAccumulation)] =
        registry.create("flow-accumulation")->cost_factor();
  }

  [[nodiscard]] double of(JobKind kind) const {
    return factor[static_cast<std::size_t>(kind)];
  }
};

/// One traffic run: owns the cluster, the control-plane state machines and
/// the per-job bookkeeping. Local to run_traffic().
class TrafficEngine {
 public:
  explicit TrafficEngine(const TrafficConfig& config)
      : config_(config),
        cluster_(config.cluster, config.context),
        straggler_(cluster_.simulator(), cluster_.network(), cluster_.pfs(),
                   config.straggler) {
    DAS_REQUIRE(config.arrivals.tenants > 0);
    DAS_REQUIRE(config.arrivals.strip_bytes > 0);
    DAS_REQUIRE(config.arrivals.datasets > 0);
    DAS_REQUIRE(config.cluster.compute_nodes > 0);
    build_datasets();
    build_schedulers();
    build_tenants();
  }

  TrafficReport run();

 private:
  struct Job {
    JobArrival arrival;
    sim::SimTime admitted_at = 0;
    std::uint64_t strips_left = 0;
  };

  void build_datasets() {
    const ArrivalConfig& a = config_.arrivals;
    const std::uint64_t span = std::max<std::uint64_t>(
        1, (a.job_bytes + a.strip_bytes - 1) / a.strip_bytes);
    DAS_REQUIRE(a.dataset_strips >= span);
    for (std::uint32_t d = 0; d < a.datasets; ++d) {
      pfs::FileMeta meta;
      meta.name = "traffic-" + std::to_string(d);
      meta.size_bytes = a.dataset_strips * a.strip_bytes;
      meta.strip_size = a.strip_bytes;
      files_.push_back(cluster_.pfs().create_file(
          std::move(meta),
          std::make_unique<pfs::ReplicatedRoundRobinLayout>(
              cluster_.pfs().num_servers(), config_.replication)));
    }
  }

  void build_schedulers() {
    if (!config_.fair_queue) return;
    nic_wfq_ = std::make_unique<NicFairQueue>(cluster_.simulator(),
                                              cluster_.network());
    disk_wfq_ = std::make_unique<DiskFairQueue>(cluster_.simulator());
    if (!config_.weights.empty()) {
      for (std::uint32_t t = 0; t < config_.arrivals.tenants; ++t) {
        const double w = config_.weights[t % config_.weights.size()];
        nic_wfq_->set_weight(t, w);
        disk_wfq_->set_weight(t, w);
      }
    }
    cluster_.network().set_send_scheduler(nic_wfq_.get());
    for (pfs::ServerIndex s = 0; s < cluster_.pfs().num_servers(); ++s) {
      cluster_.pfs().server(s).set_read_scheduler(disk_wfq_.get());
    }
  }

  void build_tenants() {
    stats_.resize(config_.arrivals.tenants);
    for (std::uint32_t t = 0; t < config_.arrivals.tenants; ++t) {
      buckets_.emplace_back(config_.admission);
    }
  }

  /// Client node a tenant runs on (tenants cycle over the compute nodes).
  [[nodiscard]] net::NodeId client_of(std::uint32_t tenant) const {
    return cluster_.compute_node(tenant %
                                 config_.cluster.compute_nodes);
  }

  void submit(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    ++stats_[t].jobs_submitted;
    const bool immediate =
        buckets_[t].submit(job.arrival.bytes, [this, j]() { start(j); });
    if (!immediate) ++stats_[t].jobs_deferred;
  }

  void start(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    job.admitted_at = cluster_.simulator().now();
    stats_[t].admission_wait.record(
        sim::to_seconds(job.admitted_at - job.arrival.at));
    job.strips_left = job.arrival.bytes / config_.arrivals.strip_bytes;
    DAS_REQUIRE(job.strips_left > 0);
    const pfs::FileId file = files_[job.arrival.dataset];
    const net::NodeId client = client_of(t);
    for (std::uint64_t s = 0; s < job.strips_left; ++s) {
      straggler_.read_strip(client, t, file, job.arrival.first_strip + s,
                            [this, j]() { strip_done(j); });
    }
  }

  void strip_done(std::uint32_t j) {
    Job& job = jobs_[j];
    DAS_REQUIRE(job.strips_left > 0);
    if (--job.strips_left > 0) return;
    const double cost = costs_.of(job.arrival.kind);
    if (cost <= 0.0) {
      finish(j);
      return;
    }
    // Kernel jobs process the bytes on the client; the engine is a serial
    // per-node resource, so co-located tenants contend here too.
    sim::Simulator& sim = cluster_.simulator();
    const sim::SimTime done_at =
        cluster_.engine(client_of(job.arrival.tenant))
            .execute(sim.now(), job.arrival.bytes, cost);
    sim.schedule_at(done_at, [this, j]() { finish(j); }, "traffic.compute");
  }

  void finish(std::uint32_t j) {
    Job& job = jobs_[j];
    const std::uint32_t t = job.arrival.tenant;
    const sim::SimTime now = cluster_.simulator().now();
    TenantStats& stats = stats_[t];
    ++stats.jobs_completed;
    stats.bytes_read += job.arrival.bytes;
    stats.sojourn.record(sim::to_seconds(now - job.arrival.at));
    stats.service.record(sim::to_seconds(now - job.admitted_at));
    last_finish_ = std::max(last_finish_, now);
    buckets_[t].release(job.arrival.bytes);
  }

  TrafficConfig config_;
  core::Cluster cluster_;
  StragglerScheduler straggler_;
  KindCosts costs_;
  std::vector<pfs::FileId> files_;
  std::vector<TenantStats> stats_;
  std::deque<TokenBucket> buckets_;
  std::unique_ptr<NicFairQueue> nic_wfq_;
  std::unique_ptr<DiskFairQueue> disk_wfq_;
  std::vector<Job> jobs_;
  sim::SimTime last_finish_ = 0;
};

TrafficReport TrafficEngine::run() {
  const std::vector<JobArrival> schedule =
      config_.trace_file.empty()
          ? generate_poisson(config_.arrivals)
          : load_trace(config_.trace_file, config_.arrivals);

  jobs_.reserve(schedule.size());
  for (const JobArrival& arrival : schedule) {
    jobs_.push_back(Job{arrival, 0, 0});
  }
  sim::Simulator& sim = cluster_.simulator();
  for (std::uint32_t j = 0; j < jobs_.size(); ++j) {
    sim.schedule_at(jobs_[j].arrival.at, [this, j]() { submit(j); },
                    "traffic.arrival");
  }
  sim.run();

  TrafficReport report;
  report.tenants = stats_;
  for (const TenantStats& s : stats_) report.total.merge(s);
  DAS_REQUIRE(report.total.jobs_completed == jobs_.size());
  report.makespan_s = sim::to_seconds(last_finish_);
  report.events = sim.events_delivered();
  report.reads_issued = straggler_.reads_issued();
  report.reroutes = straggler_.reroutes();
  report.hedges_issued = straggler_.hedges_issued();
  report.hedges_won = straggler_.hedges_won();
  report.wasted_bytes = straggler_.wasted_bytes();
  if (nic_wfq_) report.nic_scheduled = nic_wfq_->messages_scheduled();
  if (disk_wfq_) report.disk_scheduled = disk_wfq_->reads_scheduled();
  report.read_latency = straggler_.latency_histogram().summary();
  return report;
}

}  // namespace

std::string TrafficReport::slo_csv() const {
  std::string csv = slo_csv_header();
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    csv += slo_csv_row(std::to_string(t), tenants[t]);
  }
  csv += slo_csv_row("all", total);
  return csv;
}

TrafficReport run_traffic(const TrafficConfig& config) {
  TrafficEngine engine(config);
  return engine.run();
}

}  // namespace das::traffic
