// Per-tenant admission control: a token bucket on in-flight bytes.
//
// An open-loop workload keeps submitting no matter how loaded the system
// is; without admission control one aggressive tenant can fill every NIC
// and disk queue and blow up everyone's tail latency. Each tenant owns a
// bucket of `capacity_bytes` tokens: starting a job consumes its byte size,
// completing it returns the tokens, and jobs that do not fit wait in the
// tenant's FIFO. A job larger than the whole bucket is admitted only when
// the bucket is completely full (it can never "fit", but must not starve).
#pragma once

#include <cstdint>
#include <deque>

#include "simkit/inplace_fn.hpp"
#include "simkit/stats.hpp"
#include "simkit/time.hpp"

namespace das::traffic {

struct AdmissionConfig {
  bool enabled = false;
  /// Token capacity: the most bytes one tenant may have in flight.
  std::uint64_t capacity_bytes = 64ULL << 20;

  [[nodiscard]] bool active() const {
    return enabled && capacity_bytes > 0;
  }
};

/// Runs when a queued job is finally admitted.
using AdmitFn = sim::InplaceFn<void()>;

class TokenBucket {
 public:
  explicit TokenBucket(const AdmissionConfig& config)
      : config_(config), tokens_(config.capacity_bytes) {}

  /// Admit a job of `bytes` now if it fits (or the bucket is disabled);
  /// otherwise queue `on_admit` until enough completions return tokens.
  /// Returns true when the job was admitted immediately.
  bool submit(std::uint64_t bytes, AdmitFn on_admit);

  /// Return a completed job's tokens and admit as many waiters as now fit,
  /// in FIFO order.
  void release(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t tokens() const { return tokens_; }
  [[nodiscard]] std::uint64_t inflight_bytes() const {
    return config_.capacity_bytes - tokens_;
  }
  [[nodiscard]] std::size_t queued() const { return waiters_.size(); }

  /// Peak in-flight bytes and queue depth seen (reporting).
  [[nodiscard]] std::uint64_t max_inflight_bytes() const {
    return max_inflight_;
  }
  [[nodiscard]] std::size_t max_queued() const { return max_queued_; }
  [[nodiscard]] std::uint64_t deferred_jobs() const { return deferred_; }

 private:
  struct Waiter {
    std::uint64_t bytes = 0;
    AdmitFn on_admit;
  };

  [[nodiscard]] bool fits(std::uint64_t bytes) const {
    // Oversize jobs run alone: they need the full (idle) bucket.
    return bytes <= tokens_ ||
           (bytes > config_.capacity_bytes &&
            tokens_ == config_.capacity_bytes);
  }
  void take(std::uint64_t bytes);

  AdmissionConfig config_;
  std::uint64_t tokens_ = 0;
  std::uint64_t max_inflight_ = 0;
  std::uint64_t deferred_ = 0;
  std::size_t max_queued_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace das::traffic
