// Weighted fair queueing at the cluster's two contended service points.
//
// WeightedFairQueue implements classic virtual-time WFQ: an item from
// tenant t with cost c gets start tag S = max(V, F_t) and finish tag
// F = S + c / weight_t; pop() serves the smallest finish tag (FIFO among
// equal tags via a sequence number) and advances V. A tenant with weight 2
// drains twice the bytes per unit of contention as a weight-1 tenant,
// regardless of how aggressively either submits.
//
// NicFairQueue installs the discipline at every node's egress NIC (via
// net::SendScheduler) and DiskFairQueue at every storage server's read
// service point (via pfs::ReadScheduler). Both hold back queued work and
// release exactly one item per dispatch event, timed to the resource's
// "next free time", so the underlying reservation model is unchanged —
// only the order in which tenants reach it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "pfs/server.hpp"
#include "simkit/assert.hpp"
#include "simkit/simulator.hpp"

namespace das::traffic {

template <typename T>
class WeightedFairQueue {
 public:
  /// Weight for `tenant` (default 1.0). Applies to later pushes.
  void set_weight(std::uint32_t tenant, double weight) {
    DAS_REQUIRE(weight > 0.0);
    weights_[tenant] = weight;
  }

  void push(std::uint32_t tenant, std::uint64_t cost, T item) {
    const auto w = weights_.find(tenant);
    const double weight = w != weights_.end() ? w->second : 1.0;
    double& last_finish = last_finish_[tenant];
    const double start = std::max(virtual_time_, last_finish);
    const double finish = start + static_cast<double>(cost) / weight;
    last_finish = finish;
    heap_.push_back(Entry{finish, next_seq_++, std::move(item)});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Remove and return the item with the smallest finish tag.
  T pop() {
    DAS_REQUIRE(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    virtual_time_ = std::max(virtual_time_, entry.finish);
    return std::move(entry.item);
  }

 private:
  struct Entry {
    double finish = 0.0;
    std::uint64_t seq = 0;
    T item;
  };

  /// Heap comparator: true when `a` should be served after `b`.
  static bool later(const Entry& a, const Entry& b) {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::map<std::uint32_t, double> weights_;
  std::map<std::uint32_t, double> last_finish_;
  double virtual_time_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// WFQ at every node's egress NIC. One queue per sending node; a dispatch
/// event releases one message whenever the node's egress falls idle.
class NicFairQueue : public net::SendScheduler {
 public:
  NicFairQueue(sim::Simulator& simulator, net::Network& network)
      : sim_(simulator), net_(network) {}

  /// Weight for `tenant` on every node queue, current and future. Safe to
  /// call mid-run: live queues re-tag from the next push onward.
  void set_weight(std::uint32_t tenant, double weight) {
    weights_[tenant] = weight;
    for (auto& [node, nq] : queues_) nq.queue.set_weight(tenant, weight);
  }

  bool intercept(net::Message& msg) override;

  [[nodiscard]] std::uint64_t messages_scheduled() const { return scheduled_; }
  [[nodiscard]] std::size_t max_queue_depth() const { return max_depth_; }

 private:
  struct NodeQueue {
    WeightedFairQueue<net::Message> queue;
    bool pump_pending = false;
  };

  NodeQueue& node_queue(net::NodeId node);
  void pump(net::NodeId node);

  sim::Simulator& sim_;
  net::Network& net_;
  std::map<std::uint32_t, double> weights_;
  std::unordered_map<net::NodeId, NodeQueue> queues_;
  std::uint64_t scheduled_ = 0;
  std::size_t max_depth_ = 0;
};

/// WFQ at every storage server's read service point. One queue per server;
/// a dispatch event releases one read whenever the server's disk falls idle.
class DiskFairQueue : public pfs::ReadScheduler {
 public:
  explicit DiskFairQueue(sim::Simulator& simulator) : sim_(simulator) {}

  /// Weight for `tenant` on every server queue, current and future. Safe to
  /// call mid-run: live queues re-tag from the next push onward.
  void set_weight(std::uint32_t tenant, double weight) {
    weights_[tenant] = weight;
    for (auto& [server, sq] : queues_) sq.queue.set_weight(tenant, weight);
  }

  bool intercept_read(pfs::PfsServer& server,
                      pfs::ReadRequest& request) override;

  [[nodiscard]] std::uint64_t reads_scheduled() const { return scheduled_; }
  [[nodiscard]] std::size_t max_queue_depth() const { return max_depth_; }

 private:
  struct ServerQueue {
    WeightedFairQueue<pfs::ReadRequest> queue;
    bool pump_pending = false;
  };

  ServerQueue& server_queue(pfs::PfsServer& server);
  void pump(pfs::PfsServer& server);

  sim::Simulator& sim_;
  std::map<std::uint32_t, double> weights_;
  std::unordered_map<pfs::PfsServer*, ServerQueue> queues_;
  std::uint64_t scheduled_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace das::traffic
