// Open-loop arrival processes for the multi-tenant traffic engine.
//
// Arrivals are generated up front, before the simulation starts: an
// open-loop workload submits on its own schedule no matter how slow the
// system is, which is what exposes queueing collapse under overload.
// Every tenant draws from its own deterministic RNG substream (forked from
// the master seed by tenant id), so the schedule for tenant t is identical
// no matter how many other tenants run, what the admission/hedging knobs
// are, or how the host executes the sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simkit/random.hpp"
#include "simkit/time.hpp"

namespace das::traffic {

/// Job kinds a tenant submits. Raw strip reads move bytes only; the kernel
/// kinds additionally charge client compute at the kernel's cost factor
/// (the paper's Table-I mix under multi-tenant contention).
enum class JobKind : std::uint8_t {
  kRawRead = 0,
  kFlowRouting = 1,
  kGaussian = 2,
  kFlowAccumulation = 3,
};

inline constexpr std::size_t kNumJobKinds = 4;

[[nodiscard]] constexpr const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kRawRead: return "raw-read";
    case JobKind::kFlowRouting: return "flow-routing";
    case JobKind::kGaussian: return "gaussian-2d";
    case JobKind::kFlowAccumulation: return "flow-accumulation";
  }
  return "?";
}

/// One scheduled submission: what a tenant asks for and when.
struct JobArrival {
  std::uint32_t tenant = 0;
  sim::SimTime at = 0;
  JobKind kind = JobKind::kRawRead;
  /// Dataset index the job reads (the engine maps it to a FileId).
  std::uint32_t dataset = 0;
  /// First strip of the contiguous range the job reads.
  std::uint64_t first_strip = 0;
  /// Bytes the job reads (strip-aligned by construction).
  std::uint64_t bytes = 0;
};

struct ArrivalConfig {
  std::uint32_t tenants = 1;
  std::uint32_t jobs_per_tenant = 8;
  /// Mean submissions per second per tenant (Poisson process).
  double rate_hz = 1.0;
  /// Bytes each job reads; rounded up to whole strips by the generator.
  std::uint64_t job_bytes = 16ULL << 20;
  /// Dataset pool the jobs draw from (round-robin base + random pick).
  std::uint32_t datasets = 1;
  std::uint64_t dataset_strips = 256;
  std::uint64_t strip_bytes = 1ULL << 20;
  /// Relative weight of each JobKind in the mix (zero disables a kind).
  double mix[kNumJobKinds] = {1.0, 1.0, 1.0, 1.0};
  std::uint64_t seed = 20120901;
};

/// Generate the full open-loop schedule: per-tenant Poisson arrivals with
/// kinds, datasets and offsets drawn from the tenant's private substream,
/// merged into one list sorted by (time, tenant, sequence).
[[nodiscard]] std::vector<JobArrival> generate_poisson(
    const ArrivalConfig& config);

/// Load a schedule from a trace file: one `time_s,tenant,kind,bytes` row
/// per job (header and '#' comment lines are skipped; kind is one of
/// raw-read, flow-routing, gaussian-2d, flow-accumulation). Dataset and
/// offset are derived deterministically from `config` exactly as the
/// Poisson generator derives them. Throws std::invalid_argument on
/// malformed rows or tenant ids >= config.tenants.
[[nodiscard]] std::vector<JobArrival> load_trace(
    const std::string& path, const ArrivalConfig& config);

}  // namespace das::traffic
