#include "traffic/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "simkit/assert.hpp"

namespace das::traffic {
namespace {

/// Strips a job of `job_bytes` covers (at least one).
std::uint64_t strips_per_job(const ArrivalConfig& config) {
  DAS_REQUIRE(config.strip_bytes > 0);
  return std::max<std::uint64_t>(
      1, (config.job_bytes + config.strip_bytes - 1) / config.strip_bytes);
}

/// Draw a kind index from the mix weights; falls back to raw reads when
/// every weight is zero.
JobKind pick_kind(sim::Rng& rng, const double (&mix)[kNumJobKinds]) {
  double total = 0.0;
  for (const double w : mix) {
    DAS_REQUIRE(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return JobKind::kRawRead;
  double x = rng.next_double() * total;
  for (std::size_t k = 0; k < kNumJobKinds; ++k) {
    x -= mix[k];
    if (x < 0.0) return static_cast<JobKind>(k);
  }
  return static_cast<JobKind>(kNumJobKinds - 1);
}

/// Fill dataset + offset from the tenant stream; shared by both sources so
/// a trace replay reads the same strips a Poisson run would.
void pick_placement(sim::Rng& rng, const ArrivalConfig& config,
                    std::uint32_t tenant, JobArrival& job) {
  job.dataset = config.datasets > 0
                    ? (tenant + static_cast<std::uint32_t>(rng.uniform_int(
                                    0, config.datasets - 1))) %
                          config.datasets
                    : 0;
  const std::uint64_t span = strips_per_job(config);
  const std::uint64_t last_start =
      config.dataset_strips > span ? config.dataset_strips - span : 0;
  job.first_strip = static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(last_start)));
}

/// Stable merge order: time, then tenant, then per-tenant sequence (the
/// generators emit per-tenant lists already in sequence order).
void sort_schedule(std::vector<JobArrival>& schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const JobArrival& a, const JobArrival& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.tenant < b.tenant;
                   });
}

}  // namespace

std::vector<JobArrival> generate_poisson(const ArrivalConfig& config) {
  DAS_REQUIRE(config.tenants > 0);
  DAS_REQUIRE(config.rate_hz > 0.0);
  DAS_REQUIRE(config.job_bytes > 0);

  const sim::Rng master(config.seed);
  const std::uint64_t job_bytes =
      strips_per_job(config) * config.strip_bytes;

  std::vector<JobArrival> schedule;
  schedule.reserve(static_cast<std::size_t>(config.tenants) *
                   config.jobs_per_tenant);
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    sim::Rng rng = master.fork("tenant" + std::to_string(t));
    double clock_s = 0.0;
    for (std::uint32_t j = 0; j < config.jobs_per_tenant; ++j) {
      // Exponential inter-arrival; 1 - u keeps the argument of log nonzero.
      clock_s += -std::log(1.0 - rng.next_double()) / config.rate_hz;
      JobArrival job;
      job.tenant = t;
      job.at = sim::seconds(clock_s);
      job.kind = pick_kind(rng, config.mix);
      job.bytes = job_bytes;
      pick_placement(rng, config, t, job);
      schedule.push_back(job);
    }
  }
  sort_schedule(schedule);
  return schedule;
}

std::vector<JobArrival> load_trace(const std::string& path,
                                   const ArrivalConfig& config) {
  DAS_REQUIRE(config.tenants > 0);
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open trace file: " + path);
  }

  const sim::Rng master(config.seed);
  std::vector<sim::Rng> streams;
  streams.reserve(config.tenants);
  for (std::uint32_t t = 0; t < config.tenants; ++t) {
    streams.push_back(master.fork("tenant" + std::to_string(t)));
  }

  std::vector<JobArrival> schedule;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line_no == 1 && line.rfind("time", 0) == 0) continue;  // header

    std::istringstream row(line);
    std::string time_s, tenant_s, kind_s, bytes_s;
    if (!std::getline(row, time_s, ',') || !std::getline(row, tenant_s, ',') ||
        !std::getline(row, kind_s, ',') || !std::getline(row, bytes_s)) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": expected time_s,tenant,kind,bytes");
    }
    JobArrival job;
    try {
      job.at = sim::seconds(std::stod(time_s));
      job.tenant = static_cast<std::uint32_t>(std::stoul(tenant_s));
      job.bytes = std::stoull(bytes_s);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": malformed number");
    }
    if (job.at < 0 || job.tenant >= config.tenants || job.bytes == 0) {
      throw std::invalid_argument(
          "trace line " + std::to_string(line_no) +
          ": time must be >= 0, bytes > 0, tenant < " +
          std::to_string(config.tenants));
    }
    bool known = false;
    for (std::size_t k = 0; k < kNumJobKinds; ++k) {
      if (kind_s == to_string(static_cast<JobKind>(k))) {
        job.kind = static_cast<JobKind>(k);
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": unknown kind: " + kind_s);
    }
    // Round to whole strips, like the generator.
    job.bytes = std::max<std::uint64_t>(
                    1, (job.bytes + config.strip_bytes - 1) /
                           config.strip_bytes) *
                config.strip_bytes;
    pick_placement(streams[job.tenant], config, job.tenant, job);
    schedule.push_back(job);
  }
  sort_schedule(schedule);
  return schedule;
}

}  // namespace das::traffic
