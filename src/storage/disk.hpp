// Rotational/SSD-agnostic disk model: positioning cost + streaming bandwidth.
//
// A request at the offset where the previous one ended streams at full
// bandwidth; any other offset pays one positioning (seek) penalty. The disk
// is a serial resource reserved with "next free time" bookkeeping, like the
// NIC model in net/.
#pragma once

#include <cstdint>

#include "simkit/random.hpp"
#include "simkit/stats.hpp"
#include "simkit/time.hpp"
#include "simkit/trace.hpp"

namespace das::storage {

struct DiskConfig {
  double bandwidth_bps = 500.0 * 1024 * 1024;        // 500 MiB/s streaming
  sim::SimDuration seek_time = sim::microseconds(500);
  /// Per-request service-time jitter as a fraction of the nominal time
  /// (uniform in [1-jitter, 1+jitter]); 0 keeps the disk deterministic.
  double jitter = 0.0;
  /// Seed for the jitter stream (give each disk its own).
  std::uint64_t seed = 0;
};

class Disk {
 public:
  explicit Disk(const DiskConfig& config);

  /// Reserve the disk for a read of `bytes` at `offset`, starting no earlier
  /// than `now`. Returns the completion time.
  sim::SimTime read(sim::SimTime now, std::uint64_t offset,
                    std::uint64_t bytes);

  /// Reserve the disk for a write of `bytes` at `offset`.
  sim::SimTime write(sim::SimTime now, std::uint64_t offset,
                     std::uint64_t bytes);

  [[nodiscard]] const DiskConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t seeks() const { return seeks_; }
  [[nodiscard]] sim::SimDuration busy_time() const { return busy_; }
  [[nodiscard]] sim::SimTime free_at() const { return free_at_; }

  /// Node this disk belongs to, for trace attribution (set by the server).
  void set_trace_node(std::uint32_t node) { trace_node_ = node; }

  /// Tracer to record spans into (set by the server; null disables tracing).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Per-request wait behind earlier accesses / service time (seconds).
  [[nodiscard]] const sim::Histogram& wait_histogram() const { return wait_; }
  [[nodiscard]] const sim::Histogram& service_histogram() const {
    return service_;
  }

 private:
  sim::SimTime access(sim::SimTime now, std::uint64_t offset,
                      std::uint64_t bytes, const char* op);

  DiskConfig config_;
  std::uint32_t trace_node_ = 0;
  sim::Tracer* tracer_ = nullptr;
  sim::Histogram wait_;
  sim::Histogram service_;
  sim::SimTime free_at_ = 0;
  std::uint64_t next_sequential_offset_ = UINT64_MAX;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t seeks_ = 0;
  sim::SimDuration busy_ = 0;
  sim::Rng rng_;
};

}  // namespace das::storage
