#include "storage/compute_engine.hpp"

#include <algorithm>

#include "simkit/assert.hpp"

namespace das::storage {

ComputeEngine::ComputeEngine(const ComputeConfig& config)
    : config_(config),
      effective_rate_bps_(config.rate_bps * config.cores) {
  DAS_REQUIRE(config.rate_bps > 0.0);
  DAS_REQUIRE(config.cores > 0);
}

sim::SimTime ComputeEngine::execute(sim::SimTime now, std::uint64_t bytes,
                                    double cost_factor) {
  DAS_REQUIRE(cost_factor > 0.0);
  const sim::SimTime start = std::max(now, free_at_);
  const sim::SimDuration span =
      sim::transfer_time(bytes, effective_rate_bps_ / cost_factor);
  free_at_ = start + span;
  busy_ += span;
  bytes_processed_ += bytes;
  return free_at_;
}

}  // namespace das::storage
