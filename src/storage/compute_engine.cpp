#include "storage/compute_engine.hpp"

#include <algorithm>
#include <string>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::storage {

ComputeEngine::ComputeEngine(const ComputeConfig& config)
    : config_(config),
      effective_rate_bps_(config.rate_bps * config.cores) {
  DAS_REQUIRE(config.rate_bps > 0.0);
  DAS_REQUIRE(config.cores > 0);
}

sim::SimTime ComputeEngine::execute(sim::SimTime now, std::uint64_t bytes,
                                    double cost_factor) {
  DAS_REQUIRE(cost_factor > 0.0);
  const sim::SimTime start = std::max(now, free_at_);
  const sim::SimDuration span =
      sim::transfer_time(bytes, effective_rate_bps_ / cost_factor);
  free_at_ = start + span;
  busy_ += span;
  bytes_processed_ += bytes;
  wait_.record(sim::to_seconds(start - now));
  service_.record(sim::to_seconds(span));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->complete(start, free_at_, trace_node_, sim::TraceTrack::kCompute,
                      "compute", "compute",
                      "{\"bytes\":" + std::to_string(bytes) + "}");
  }
  return free_at_;
}

}  // namespace das::storage
