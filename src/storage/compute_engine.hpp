// Per-node computation model.
//
// A node processes data at `rate_bps * cores` bytes per second, scaled by a
// per-kernel cost factor (a Gaussian convolution costs more per byte than a
// min-of-neighbours scan). Like the other resources, the engine is reserved
// serially with "next free time" bookkeeping; a node that is also servicing
// remote strip requests loses compute availability through the shared disk
// and NIC, which the NAS experiments in the paper identify as one of the two
// dependence penalties.
#pragma once

#include <cstdint>

#include "simkit/stats.hpp"
#include "simkit/time.hpp"
#include "simkit/trace.hpp"

namespace das::storage {

struct ComputeConfig {
  /// Per-core processing rate for a cost-factor-1.0 kernel.
  double rate_bps = 250.0 * 1024 * 1024;
  std::uint32_t cores = 1;
};

class ComputeEngine {
 public:
  explicit ComputeEngine(const ComputeConfig& config);

  /// Reserve the engine to process `bytes` of input at `cost_factor` times
  /// the baseline per-byte cost, starting no earlier than `now`.
  /// Returns the completion time.
  sim::SimTime execute(sim::SimTime now, std::uint64_t bytes,
                       double cost_factor = 1.0);

  [[nodiscard]] const ComputeConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t bytes_processed() const {
    return bytes_processed_;
  }
  [[nodiscard]] sim::SimDuration busy_time() const { return busy_; }
  [[nodiscard]] sim::SimTime free_at() const { return free_at_; }

  /// Node this engine belongs to, for trace attribution (set by the cluster).
  void set_trace_node(std::uint32_t node) { trace_node_ = node; }

  /// Tracer to record spans into (set by the cluster; null disables tracing).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Per-execution wait behind earlier work / service time (seconds).
  [[nodiscard]] const sim::Histogram& wait_histogram() const { return wait_; }
  [[nodiscard]] const sim::Histogram& service_histogram() const {
    return service_;
  }

 private:
  ComputeConfig config_;
  double effective_rate_bps_;
  std::uint32_t trace_node_ = 0;
  sim::Tracer* tracer_ = nullptr;
  sim::SimTime free_at_ = 0;
  std::uint64_t bytes_processed_ = 0;
  sim::SimDuration busy_ = 0;
  sim::Histogram wait_;
  sim::Histogram service_;
};

}  // namespace das::storage
