#include "storage/disk.hpp"

#include <algorithm>
#include <string>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::storage {

Disk::Disk(const DiskConfig& config)
    : config_(config), rng_(config.seed) {
  DAS_REQUIRE(config.bandwidth_bps > 0.0);
  DAS_REQUIRE(config.seek_time >= 0);
  DAS_REQUIRE(config.jitter >= 0.0 && config.jitter < 1.0);
}

sim::SimTime Disk::access(sim::SimTime now, std::uint64_t offset,
                          std::uint64_t bytes, const char* op) {
  const sim::SimTime start = std::max(now, free_at_);
  sim::SimDuration span = sim::transfer_time(bytes, config_.bandwidth_bps);
  if (offset != next_sequential_offset_) {
    span += config_.seek_time;
    ++seeks_;
  }
  if (config_.jitter > 0.0 && span > 0) {
    const double factor =
        1.0 + config_.jitter * (2.0 * rng_.next_double() - 1.0);
    span = static_cast<sim::SimDuration>(
        static_cast<double>(span) * factor);
  }
  next_sequential_offset_ = offset + bytes;
  free_at_ = start + span;
  busy_ += span;
  wait_.record(sim::to_seconds(start - now));
  service_.record(sim::to_seconds(span));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->complete(start, free_at_, trace_node_, sim::TraceTrack::kDisk, op,
                      "disk", "{\"bytes\":" + std::to_string(bytes) + "}");
  }
  return free_at_;
}

sim::SimTime Disk::read(sim::SimTime now, std::uint64_t offset,
                        std::uint64_t bytes) {
  bytes_read_ += bytes;
  return access(now, offset, bytes, "disk.read");
}

sim::SimTime Disk::write(sim::SimTime now, std::uint64_t offset,
                         std::uint64_t bytes) {
  bytes_written_ += bytes;
  return access(now, offset, bytes, "disk.write");
}

}  // namespace das::storage
