#include "cache/strip_cache.hpp"

#include <string>
#include <utility>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"
#include "telemetry/registry.hpp"

namespace das::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  invalidations += other.invalidations;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
  evicted_bytes += other.evicted_bytes;
  prefetch_insertions += other.prefetch_insertions;
  prefetch_hits += other.prefetch_hits;
  prefetch_hit_bytes += other.prefetch_hit_bytes;
  return *this;
}

CacheStats& CacheStats::operator-=(const CacheStats& other) {
  DAS_REQUIRE(hits >= other.hits && misses >= other.misses);
  hits -= other.hits;
  misses -= other.misses;
  insertions -= other.insertions;
  evictions -= other.evictions;
  invalidations -= other.invalidations;
  hit_bytes -= other.hit_bytes;
  miss_bytes -= other.miss_bytes;
  evicted_bytes -= other.evicted_bytes;
  prefetch_insertions -= other.prefetch_insertions;
  prefetch_hits -= other.prefetch_hits;
  prefetch_hit_bytes -= other.prefetch_hit_bytes;
  return *this;
}

StripCache::StripCache(const CacheConfig& config)
    : config_(config), policy_(make_policy(config.policy)) {
  DAS_REQUIRE(config.active());
  DAS_REQUIRE(config.hit_bandwidth_bps > 0.0);
}

void StripCache::trace_event(const char* name, const CacheKey& key,
                             std::uint64_t length) const {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->instant_now(trace_node_, sim::TraceTrack::kCache, name, "cache",
                       "{\"file\":" + std::to_string(key.file) +
                           ",\"strip\":" + std::to_string(key.strip) +
                           ",\"bytes\":" + std::to_string(length) + "}");
}

const StripCache::Slot* StripCache::find(const CacheKey& key) const {
  if (key.file >= files_.size()) return nullptr;
  const auto& table = files_[key.file];
  if (key.strip >= table.size()) return nullptr;
  const Slot& slot = table[key.strip];
  return slot.present ? &slot : nullptr;
}

StripCache::Slot& StripCache::slot_for(const CacheKey& key) {
  if (key.file >= files_.size()) files_.resize(key.file + 1);
  auto& table = files_[key.file];
  if (key.strip >= table.size()) table.resize(key.strip + 1);
  return table[key.strip];
}

const CachedStrip* StripCache::lookup(const CacheKey& key) {
  Slot* slot = find(key);
  if (slot != nullptr && slot->epoch != file_epoch(key.file)) {
    // Inserted under a prior layout generation; drop it now.
    erase(key, /*count_as_eviction=*/false);
    ++stats_.invalidations;
    slot = nullptr;
  }
  if (slot == nullptr) {
    ++stats_.misses;
    trace_event("cache.miss", key, 0);
    return nullptr;
  }
  CachedStrip& entry = slot->strip;
  ++stats_.hits;
  trace_event("cache.hit", key, entry.length);
  stats_.hit_bytes += entry.length;
  if (entry.prefetched) {
    ++stats_.prefetch_hits;
    stats_.prefetch_hit_bytes += entry.length;
    entry.prefetched = false;  // consumed: later hits are reuse
  }
  policy_->on_hit(key);
  return &entry;
}

void StripCache::insert(const CacheKey& key, std::uint64_t length,
                        pfs::StripBuffer bytes) {
  stats_.miss_bytes += length;
  emplace(key, length, std::move(bytes), /*prefetched=*/false);
}

void StripCache::admit_prefetched(const CacheKey& key, std::uint64_t length,
                                  pfs::StripBuffer bytes) {
  emplace(key, length, std::move(bytes), /*prefetched=*/true);
}

void StripCache::emplace(const CacheKey& key, std::uint64_t length,
                         pfs::StripBuffer bytes, bool prefetched) {
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(bytes.empty() || bytes.size() == length);
  if (length > config_.capacity_bytes) return;  // cannot ever fit
  if (find(key) != nullptr) {
    erase(key, /*count_as_eviction=*/false);
  }
  while (used_bytes_ + length > config_.capacity_bytes) {
    erase(policy_->victim(), /*count_as_eviction=*/true);
  }
  Slot& slot = slot_for(key);
  slot.strip.length = length;
  slot.strip.bytes = std::move(bytes);
  slot.strip.prefetched = prefetched;
  slot.epoch = file_epoch(key.file);
  slot.present = true;
  ++entry_count_;
  used_bytes_ += length;
  policy_->on_insert(key);
  trace_event("cache.insert", key, length);
  if (prefetched) {
    ++stats_.prefetch_insertions;
  } else {
    ++stats_.insertions;
  }
}

void StripCache::invalidate(const CacheKey& key) {
  if (find(key) == nullptr) return;
  erase(key, /*count_as_eviction=*/false);
  ++stats_.invalidations;
}

void StripCache::invalidate_file(std::uint64_t file) {
  if (file >= files_.size()) return;
  auto& table = files_[file];
  for (std::uint64_t strip = 0; strip < table.size(); ++strip) {
    if (!table[strip].present) continue;
    erase(CacheKey{file, strip}, /*count_as_eviction=*/false);
    ++stats_.invalidations;
  }
}

bool StripCache::contains(const CacheKey& key) const {
  const Slot* slot = find(key);
  return slot != nullptr && slot->epoch == file_epoch(key.file);
}

void StripCache::set_file_epoch(std::uint64_t file, std::uint32_t epoch) {
  if (file >= file_epochs_.size()) file_epochs_.resize(file + 1, 0);
  file_epochs_[file] = epoch;
}

void StripCache::erase(const CacheKey& key, bool count_as_eviction) {
  Slot* slot = find(key);
  DAS_REQUIRE(slot != nullptr);
  DAS_REQUIRE(used_bytes_ >= slot->strip.length);
  used_bytes_ -= slot->strip.length;
  if (count_as_eviction) {
    ++stats_.evictions;
    stats_.evicted_bytes += slot->strip.length;
    trace_event("cache.evict", key, slot->strip.length);
  }
  policy_->on_erase(key);
  slot->present = false;
  slot->strip.bytes.reset();  // return the payload to its pool promptly
  --entry_count_;
}

void StripCache::enroll(telemetry::Registry& registry,
                        std::uint32_t server) const {
  const telemetry::Labels labels{telemetry::label("server", server)};
  registry.enroll_counter("cache.hits", labels, &stats_.hits);
  registry.enroll_counter("cache.misses", labels, &stats_.misses);
  registry.enroll_counter("cache.hit_bytes", labels, &stats_.hit_bytes);
  registry.enroll_counter("cache.evictions", labels, &stats_.evictions);
  registry.enroll_gauge("cache.used_bytes", labels,
                        [this]() { return static_cast<double>(used_bytes_); });
}

void InvalidationHub::attach(StripCache* cache) {
  DAS_REQUIRE(cache != nullptr);
  caches_.push_back(cache);
}

void InvalidationHub::attach_listener(Listener listener) {
  DAS_REQUIRE(listener.on_key != nullptr && listener.on_file != nullptr);
  listeners_.push_back(std::move(listener));
}

void InvalidationHub::invalidate(const CacheKey& key) {
  for (StripCache* cache : caches_) cache->invalidate(key);
  for (const Listener& listener : listeners_) listener.on_key(key);
}

void InvalidationHub::invalidate_file(std::uint64_t file) {
  for (StripCache* cache : caches_) cache->invalidate_file(file);
  for (const Listener& listener : listeners_) listener.on_file(file);
}

void InvalidationHub::advance_file_epoch(std::uint64_t file,
                                         std::uint32_t epoch) {
  for (StripCache* cache : caches_) cache->set_file_epoch(file, epoch);
  for (const Listener& listener : listeners_) listener.on_file(file);
}

}  // namespace das::cache
