#include "cache/strip_cache.hpp"

#include <utility>

#include "simkit/assert.hpp"

namespace das::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  invalidations += other.invalidations;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
  evicted_bytes += other.evicted_bytes;
  return *this;
}

StripCache::StripCache(const CacheConfig& config)
    : config_(config), policy_(make_policy(config.policy)) {
  DAS_REQUIRE(config.active());
  DAS_REQUIRE(config.hit_bandwidth_bps > 0.0);
}

const CachedStrip* StripCache::lookup(const CacheKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  stats_.hit_bytes += it->second.length;
  policy_->on_hit(key);
  return &it->second;
}

void StripCache::insert(const CacheKey& key, std::uint64_t length,
                        std::vector<std::byte> bytes) {
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(bytes.empty() || bytes.size() == length);
  stats_.miss_bytes += length;
  if (length > config_.capacity_bytes) return;  // cannot ever fit
  if (const auto it = entries_.find(key); it != entries_.end()) {
    erase(key, /*count_as_eviction=*/false);
  }
  while (used_bytes_ + length > config_.capacity_bytes) {
    erase(policy_->victim(), /*count_as_eviction=*/true);
  }
  entries_[key] = CachedStrip{length, std::move(bytes)};
  used_bytes_ += length;
  policy_->on_insert(key);
  ++stats_.insertions;
}

void StripCache::invalidate(const CacheKey& key) {
  if (!entries_.contains(key)) return;
  erase(key, /*count_as_eviction=*/false);
  ++stats_.invalidations;
}

void StripCache::invalidate_file(std::uint64_t file) {
  auto it = entries_.lower_bound(CacheKey{file, 0});
  while (it != entries_.end() && it->first.file == file) {
    const CacheKey key = it->first;
    ++it;
    erase(key, /*count_as_eviction=*/false);
    ++stats_.invalidations;
  }
}

bool StripCache::contains(const CacheKey& key) const {
  return entries_.contains(key);
}

void StripCache::erase(const CacheKey& key, bool count_as_eviction) {
  const auto it = entries_.find(key);
  DAS_REQUIRE(it != entries_.end());
  DAS_REQUIRE(used_bytes_ >= it->second.length);
  used_bytes_ -= it->second.length;
  if (count_as_eviction) {
    ++stats_.evictions;
    stats_.evicted_bytes += it->second.length;
  }
  policy_->on_erase(key);
  entries_.erase(it);
}

void InvalidationHub::attach(StripCache* cache) {
  DAS_REQUIRE(cache != nullptr);
  caches_.push_back(cache);
}

void InvalidationHub::invalidate(const CacheKey& key) {
  for (StripCache* cache : caches_) cache->invalidate(key);
}

void InvalidationHub::invalidate_file(std::uint64_t file) {
  for (StripCache* cache : caches_) cache->invalidate_file(file);
}

}  // namespace das::cache
