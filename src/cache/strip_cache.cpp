#include "cache/strip_cache.hpp"

#include <string>
#include <utility>

#include "simkit/assert.hpp"
#include "simkit/trace.hpp"

namespace das::cache {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  invalidations += other.invalidations;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
  evicted_bytes += other.evicted_bytes;
  prefetch_insertions += other.prefetch_insertions;
  prefetch_hits += other.prefetch_hits;
  prefetch_hit_bytes += other.prefetch_hit_bytes;
  return *this;
}

CacheStats& CacheStats::operator-=(const CacheStats& other) {
  DAS_REQUIRE(hits >= other.hits && misses >= other.misses);
  hits -= other.hits;
  misses -= other.misses;
  insertions -= other.insertions;
  evictions -= other.evictions;
  invalidations -= other.invalidations;
  hit_bytes -= other.hit_bytes;
  miss_bytes -= other.miss_bytes;
  evicted_bytes -= other.evicted_bytes;
  prefetch_insertions -= other.prefetch_insertions;
  prefetch_hits -= other.prefetch_hits;
  prefetch_hit_bytes -= other.prefetch_hit_bytes;
  return *this;
}

StripCache::StripCache(const CacheConfig& config)
    : config_(config), policy_(make_policy(config.policy)) {
  DAS_REQUIRE(config.active());
  DAS_REQUIRE(config.hit_bandwidth_bps > 0.0);
}

void StripCache::trace_event(const char* name, const CacheKey& key,
                             std::uint64_t length) const {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->instant_now(trace_node_, sim::TraceTrack::kCache, name, "cache",
                       "{\"file\":" + std::to_string(key.file) +
                           ",\"strip\":" + std::to_string(key.strip) +
                           ",\"bytes\":" + std::to_string(length) + "}");
}

const CachedStrip* StripCache::lookup(const CacheKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    trace_event("cache.miss", key, 0);
    return nullptr;
  }
  ++stats_.hits;
  trace_event("cache.hit", key, it->second.length);
  stats_.hit_bytes += it->second.length;
  if (it->second.prefetched) {
    ++stats_.prefetch_hits;
    stats_.prefetch_hit_bytes += it->second.length;
    it->second.prefetched = false;  // consumed: later hits are reuse
  }
  policy_->on_hit(key);
  return &it->second;
}

void StripCache::insert(const CacheKey& key, std::uint64_t length,
                        std::vector<std::byte> bytes) {
  stats_.miss_bytes += length;
  emplace(key, length, std::move(bytes), /*prefetched=*/false);
}

void StripCache::admit_prefetched(const CacheKey& key, std::uint64_t length,
                                  std::vector<std::byte> bytes) {
  emplace(key, length, std::move(bytes), /*prefetched=*/true);
}

void StripCache::emplace(const CacheKey& key, std::uint64_t length,
                         std::vector<std::byte> bytes, bool prefetched) {
  DAS_REQUIRE(length > 0);
  DAS_REQUIRE(bytes.empty() || bytes.size() == length);
  if (length > config_.capacity_bytes) return;  // cannot ever fit
  if (const auto it = entries_.find(key); it != entries_.end()) {
    erase(key, /*count_as_eviction=*/false);
  }
  while (used_bytes_ + length > config_.capacity_bytes) {
    erase(policy_->victim(), /*count_as_eviction=*/true);
  }
  entries_[key] = CachedStrip{length, std::move(bytes), prefetched};
  used_bytes_ += length;
  policy_->on_insert(key);
  trace_event("cache.insert", key, length);
  if (prefetched) {
    ++stats_.prefetch_insertions;
  } else {
    ++stats_.insertions;
  }
}

void StripCache::invalidate(const CacheKey& key) {
  if (!entries_.contains(key)) return;
  erase(key, /*count_as_eviction=*/false);
  ++stats_.invalidations;
}

void StripCache::invalidate_file(std::uint64_t file) {
  auto it = entries_.lower_bound(CacheKey{file, 0});
  while (it != entries_.end() && it->first.file == file) {
    const CacheKey key = it->first;
    ++it;
    erase(key, /*count_as_eviction=*/false);
    ++stats_.invalidations;
  }
}

bool StripCache::contains(const CacheKey& key) const {
  return entries_.contains(key);
}

void StripCache::erase(const CacheKey& key, bool count_as_eviction) {
  const auto it = entries_.find(key);
  DAS_REQUIRE(it != entries_.end());
  DAS_REQUIRE(used_bytes_ >= it->second.length);
  used_bytes_ -= it->second.length;
  if (count_as_eviction) {
    ++stats_.evictions;
    stats_.evicted_bytes += it->second.length;
    trace_event("cache.evict", key, it->second.length);
  }
  policy_->on_erase(key);
  entries_.erase(it);
}

void InvalidationHub::attach(StripCache* cache) {
  DAS_REQUIRE(cache != nullptr);
  caches_.push_back(cache);
}

void InvalidationHub::attach_listener(Listener listener) {
  DAS_REQUIRE(listener.on_key != nullptr && listener.on_file != nullptr);
  listeners_.push_back(std::move(listener));
}

void InvalidationHub::invalidate(const CacheKey& key) {
  for (StripCache* cache : caches_) cache->invalidate(key);
  for (const Listener& listener : listeners_) listener.on_key(key);
}

void InvalidationHub::invalidate_file(std::uint64_t file) {
  for (StripCache* cache : caches_) cache->invalidate_file(file);
  for (const Listener& listener : listeners_) listener.on_file(file);
}

}  // namespace das::cache
