// Pluggable eviction policies for the remote-strip cache.
//
// A policy only ranks entries; the cache owns the bytes and drives the
// policy through the on_* notifications. Two policies model the interesting
// ends of the spectrum for active-storage halo traffic:
//  * LRU — classic recency order. Degenerates on cyclic halo scans (every
//    pass over a file touches the same strips in the same order, so with a
//    cache smaller than the working set the next victim is always the next
//    strip needed).
//  * LFU — frequency order with most-recently-inserted-first tie-breaking,
//    which keeps a stable frequent subset resident under cyclic scans (the
//    churn stays confined to one probationary slot), so hit rate grows
//    smoothly with capacity instead of jumping at working-set size.
//
// Both policies recycle their bookkeeping nodes (list nodes via splice onto
// a free list, map nodes via extract/reinsert), so the insert/evict churn of
// a warmed-up cache performs no heap allocation.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace das::cache {

/// Identifies one cached strip: (file, strip index). File ids are plain
/// integers so the cache layer stays independent of the PFS types.
struct CacheKey {
  std::uint64_t file = 0;
  std::uint64_t strip = 0;

  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// A new entry entered the cache (not previously tracked).
  virtual void on_insert(const CacheKey& key) = 0;

  /// A tracked entry was served from the cache.
  virtual void on_hit(const CacheKey& key) = 0;

  /// A tracked entry left the cache (eviction or invalidation).
  virtual void on_erase(const CacheKey& key) = 0;

  /// The entry to evict next. Requires at least one tracked entry.
  [[nodiscard]] virtual CacheKey victim() const = 0;

  [[nodiscard]] virtual std::size_t tracked() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Least-recently-used: victim is the entry untouched for longest.
class LruPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheKey& key) override;
  void on_hit(const CacheKey& key) override;
  void on_erase(const CacheKey& key) override;
  [[nodiscard]] CacheKey victim() const override;
  [[nodiscard]] std::size_t tracked() const override { return index_.size(); }
  [[nodiscard]] std::string name() const override { return "lru"; }

 private:
  using Index = std::map<CacheKey, std::list<CacheKey>::iterator>;

  void touch(const CacheKey& key);

  std::list<CacheKey> order_;  // front = most recent, back = victim
  std::list<CacheKey> spare_;  // recycled list nodes
  Index index_;
  std::vector<Index::node_type> spare_index_;  // recycled map nodes
};

/// Least-frequently-used, ties broken most-recently-inserted/used first.
/// The MRU tie-break is deliberate: under a cyclic scan larger than the
/// cache it sacrifices the just-inserted probationary entry instead of
/// rotating the whole cache, so entries that survive long enough to be hit
/// once are protected (scan resistance without a second queue).
class LfuPolicy final : public EvictionPolicy {
 public:
  void on_insert(const CacheKey& key) override;
  void on_hit(const CacheKey& key) override;
  void on_erase(const CacheKey& key) override;
  [[nodiscard]] CacheKey victim() const override;
  [[nodiscard]] std::size_t tracked() const override { return index_.size(); }
  [[nodiscard]] std::string name() const override { return "lfu"; }

 private:
  struct Entry {
    std::uint64_t frequency = 1;
    std::list<CacheKey>::iterator position;
  };

  using Buckets = std::map<std::uint64_t, std::list<CacheKey>>;
  using Index = std::map<CacheKey, Entry>;

  /// The bucket for `frequency`, reusing a recycled bucket node if the
  /// bucket does not exist yet.
  [[nodiscard]] Buckets::iterator bucket_of(std::uint64_t frequency);
  /// Remove `pos` from the bucket at `it`, recycling both the list node and
  /// (if the bucket empties) the bucket node.
  void remove_from_bucket(Buckets::iterator it,
                          std::list<CacheKey>::iterator pos);

  /// frequency -> keys at that frequency, front = most recently touched.
  Buckets buckets_;
  Index index_;
  std::list<CacheKey> spare_keys_;  // recycled list nodes
  std::vector<Buckets::node_type> spare_buckets_;
  std::vector<Index::node_type> spare_index_;
};

/// Factory over the policy names accepted in configs/CLI ("lru" | "lfu").
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<EvictionPolicy> make_policy(
    const std::string& name);

}  // namespace das::cache
