// Per-storage-server remote-strip cache.
//
// Under round-robin striping every active-storage run must fetch its
// dependence halo from neighbouring servers — the server-to-server traffic
// class the paper identifies as NAS's first penalty (§IV-B1). A server that
// caches the remote strips it fetched can serve repeated requests over the
// same file (recurring analyses of a hot dataset, iterative operators) from
// local memory instead of the network: a hit costs a RAM-bandwidth copy, a
// miss costs the full NIC transfer plus the peer's disk and NIC service
// load.
//
// The cache holds whole strips keyed by (file, strip), bounded by a byte
// capacity, with a pluggable eviction policy (eviction.hpp). Writes and
// redistributions invalidate through the InvalidationHub so no server ever
// serves stale halo bytes. In data-carrying mode the cache stores a shared
// StripBuffer handle on the same payload the store/network delivered (no
// copy on admit, no copy on hit); in timing mode entries are length-only,
// exactly like the store.
//
// Entries live in flat per-file strip tables (vector indexed by strip id)
// rather than an ordered map: lookup on the halo hot path is two vector
// indexes, and the only per-entry state is the slot itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/eviction.hpp"
#include "pfs/strip_buffer.hpp"
#include "simkit/trace.hpp"

namespace das::telemetry {
class Registry;
}  // namespace das::telemetry

namespace das::cache {

struct CacheConfig {
  /// Master switch; a disabled (or zero-capacity) cache is never attached,
  /// so every byte flow reproduces the uncached system exactly.
  bool enabled = false;
  std::uint64_t capacity_bytes = 0;
  /// Eviction policy name ("lru" | "lfu"); see eviction.hpp.
  std::string policy = "lru";
  /// Rate at which a hit is copied out of server RAM (the "local memory
  /// time" a hit costs instead of the NIC transfer).
  double hit_bandwidth_bps = 2.0 * 1024 * 1024 * 1024;

  [[nodiscard]] bool active() const { return enabled && capacity_bytes > 0; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t hit_bytes = 0;  // NIC bytes the cache absorbed
  std::uint64_t miss_bytes = 0;
  std::uint64_t evicted_bytes = 0;

  /// Prefetch accounting. `prefetch_insertions` counts entries admitted via
  /// admit_prefetched (disjoint from `insertions`, which stays demand-only).
  /// `prefetch_hits` is the subset of `hits` whose entry arrived by prefetch
  /// and had not been consumed yet — the first hit converts the entry to an
  /// ordinary resident strip, so later hits count as reuse, not prefetch.
  std::uint64_t prefetch_insertions = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_hit_bytes = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& other);
  CacheStats& operator-=(const CacheStats& other);
};

/// One cached strip as seen by a lookup. `bytes` shares the payload block
/// with whoever produced it (store, network delivery, prefetcher).
struct CachedStrip {
  std::uint64_t length = 0;
  pfs::StripBuffer bytes;  // empty in timing-only mode
  /// Arrived by prefetch and not yet consumed by a lookup.
  bool prefetched = false;
};

class StripCache {
 public:
  explicit StripCache(const CacheConfig& config);

  StripCache(const StripCache&) = delete;
  StripCache& operator=(const StripCache&) = delete;

  /// Look up a strip, recording a hit or miss. The returned pointer is
  /// valid until the next mutating call; nullptr on miss.
  [[nodiscard]] const CachedStrip* lookup(const CacheKey& key);

  /// Cache a strip, evicting per policy until it fits. Replaces any
  /// existing entry for the key. A strip larger than the whole capacity is
  /// not cached. `bytes` may be empty (timing mode) — capacity accounting
  /// always uses `length`.
  void insert(const CacheKey& key, std::uint64_t length,
              pfs::StripBuffer bytes);

  /// Cache a strip that arrived by prefetch rather than a demand miss: same
  /// capacity/eviction behaviour as insert, but counted separately (and no
  /// miss_bytes charge — no lookup missed). The entry is marked so its
  /// first hit is attributed to the prefetcher instead of cross-pass reuse.
  void admit_prefetched(const CacheKey& key, std::uint64_t length,
                        pfs::StripBuffer bytes);

  /// Drop the strip if present (a write made it stale).
  void invalidate(const CacheKey& key);

  /// Drop every strip of `file` (redistribution moved its placement).
  void invalidate_file(std::uint64_t file);

  /// Advance the layout epoch of `file`. Entries inserted under an older
  /// epoch are dropped lazily at their next lookup (counted as
  /// invalidations), so a fill that raced with a per-strip invalidation
  /// cannot outlive the migration that made its placement stale.
  void set_file_epoch(std::uint64_t file, std::uint32_t epoch);

  /// Peek without touching stats or recency (tests, assertions).
  [[nodiscard]] bool contains(const CacheKey& key) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] std::size_t entry_count() const { return entry_count_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Node this cache lives on, for trace attribution (set by the PFS).
  void set_trace_node(std::uint32_t node) { trace_node_ = node; }

  /// Tracer to record instants into (set by the PFS; null disables tracing).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Enroll hit/miss/eviction counters and an occupancy gauge, labelled
  /// with the owning server. Stats fields stay plain uint64 (reports diff
  /// them with CacheStats arithmetic); the registry reads them in place.
  void enroll(telemetry::Registry& registry, std::uint32_t server) const;

 private:
  /// Flat-table slot; `present` distinguishes an empty slot from a cached
  /// zero-length strip (which cannot exist — lengths are positive — but the
  /// flag keeps occupancy explicit instead of encoded in `length`).
  struct Slot {
    CachedStrip strip;
    std::uint32_t epoch = 0;  // file layout epoch at insert time
    bool present = false;
  };

  /// Slot lookup without growing; nullptr when the indexes are out of range
  /// or the slot is empty.
  [[nodiscard]] const Slot* find(const CacheKey& key) const;
  [[nodiscard]] Slot* find(const CacheKey& key) {
    return const_cast<Slot*>(std::as_const(*this).find(key));
  }
  /// Slot reference, growing the per-file table on demand.
  [[nodiscard]] Slot& slot_for(const CacheKey& key);

  /// Current layout epoch of `file` (0 until advanced).
  [[nodiscard]] std::uint32_t file_epoch(std::uint64_t file) const {
    return file < file_epochs_.size() ? file_epochs_[file] : 0;
  }

  void emplace(const CacheKey& key, std::uint64_t length,
               pfs::StripBuffer bytes, bool prefetched);
  void erase(const CacheKey& key, bool count_as_eviction);
  void trace_event(const char* name, const CacheKey& key,
                   std::uint64_t length) const;

  CacheConfig config_;
  std::unique_ptr<EvictionPolicy> policy_;
  /// files_[file][strip]; grown on demand, never shrunk (empty slots cost a
  /// few words each and file/strip ids are small and dense).
  std::vector<std::vector<Slot>> files_;
  std::vector<std::uint32_t> file_epochs_;
  std::size_t entry_count_ = 0;
  std::uint64_t used_bytes_ = 0;
  std::uint32_t trace_node_ = 0;
  sim::Tracer* tracer_ = nullptr;
  CacheStats stats_;
};

/// Write/redistribution invalidation fan-out: every server's write makes
/// the strip stale in EVERY server's cache (peers may have fetched it as
/// halo), so the PFS broadcasts invalidations through one hub.
class InvalidationHub {
 public:
  /// Extra parties that must hear every invalidation (e.g. a prefetcher
  /// with fetches in flight that would otherwise land stale strips).
  struct Listener {
    std::function<void(const CacheKey&)> on_key;
    std::function<void(std::uint64_t)> on_file;
  };

  void attach(StripCache* cache);
  void attach_listener(Listener listener);
  void invalidate(const CacheKey& key);
  void invalidate_file(std::uint64_t file);

  /// A layout migration of `file` completed: advance the epoch in every
  /// attached cache (older-epoch entries drop lazily) and tell listeners
  /// to treat the whole file as stale (in-flight prefetches are dropped).
  void advance_file_epoch(std::uint64_t file, std::uint32_t epoch);

  [[nodiscard]] std::size_t attached() const { return caches_.size(); }

 private:
  std::vector<StripCache*> caches_;
  std::vector<Listener> listeners_;
};

}  // namespace das::cache
