#include "cache/eviction.hpp"

#include <stdexcept>
#include <utility>

#include "simkit/assert.hpp"

namespace das::cache {

void LruPolicy::on_insert(const CacheKey& key) {
  DAS_REQUIRE(!index_.contains(key));
  if (spare_.empty()) {
    order_.push_front(key);
  } else {
    spare_.front() = key;
    order_.splice(order_.begin(), spare_, spare_.begin());
  }
  if (spare_index_.empty()) {
    index_.emplace(key, order_.begin());
  } else {
    auto nh = std::move(spare_index_.back());
    spare_index_.pop_back();
    nh.key() = key;
    nh.mapped() = order_.begin();
    index_.insert(std::move(nh));
  }
}

void LruPolicy::on_hit(const CacheKey& key) { touch(key); }

void LruPolicy::on_erase(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  spare_.splice(spare_.begin(), order_, it->second);
  spare_index_.push_back(index_.extract(it));
}

CacheKey LruPolicy::victim() const {
  DAS_REQUIRE(!order_.empty());
  return order_.back();
}

void LruPolicy::touch(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  order_.splice(order_.begin(), order_, it->second);
  it->second = order_.begin();
}

LfuPolicy::Buckets::iterator LfuPolicy::bucket_of(std::uint64_t frequency) {
  auto it = buckets_.lower_bound(frequency);
  if (it != buckets_.end() && it->first == frequency) return it;
  if (spare_buckets_.empty()) {
    return buckets_.emplace_hint(it, frequency, std::list<CacheKey>{});
  }
  auto nh = std::move(spare_buckets_.back());
  spare_buckets_.pop_back();
  nh.key() = frequency;  // the recycled node carries an (empty) key list
  return buckets_.insert(it, std::move(nh));
}

void LfuPolicy::remove_from_bucket(Buckets::iterator it,
                                   std::list<CacheKey>::iterator pos) {
  spare_keys_.splice(spare_keys_.begin(), it->second, pos);
  if (it->second.empty()) spare_buckets_.push_back(buckets_.extract(it));
}

void LfuPolicy::on_insert(const CacheKey& key) {
  DAS_REQUIRE(!index_.contains(key));
  const auto bucket = bucket_of(1);
  if (spare_keys_.empty()) {
    bucket->second.push_front(key);
  } else {
    spare_keys_.front() = key;
    bucket->second.splice(bucket->second.begin(), spare_keys_,
                          spare_keys_.begin());
  }
  if (spare_index_.empty()) {
    index_.emplace(key, Entry{1, bucket->second.begin()});
  } else {
    auto nh = std::move(spare_index_.back());
    spare_index_.pop_back();
    nh.key() = key;
    nh.mapped() = Entry{1, bucket->second.begin()};
    index_.insert(std::move(nh));
  }
}

void LfuPolicy::on_hit(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  // Move the key's list node straight from the old frequency bucket to the
  // front of the next one — no node is freed or allocated.
  const auto old_bucket = buckets_.find(it->second.frequency);
  DAS_REQUIRE(old_bucket != buckets_.end());
  const auto new_bucket = bucket_of(it->second.frequency + 1);
  new_bucket->second.splice(new_bucket->second.begin(), old_bucket->second,
                            it->second.position);
  if (old_bucket->second.empty()) {
    spare_buckets_.push_back(buckets_.extract(old_bucket));
  }
  it->second.frequency += 1;
  it->second.position = new_bucket->second.begin();
}

void LfuPolicy::on_erase(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  const auto bucket = buckets_.find(it->second.frequency);
  DAS_REQUIRE(bucket != buckets_.end());
  remove_from_bucket(bucket, it->second.position);
  spare_index_.push_back(index_.extract(it));
}

CacheKey LfuPolicy::victim() const {
  DAS_REQUIRE(!buckets_.empty());
  // Lowest frequency bucket, most recently touched first (see header).
  return buckets_.begin()->second.front();
}

std::unique_ptr<EvictionPolicy> make_policy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  throw std::invalid_argument("unknown cache eviction policy: " + name);
}

}  // namespace das::cache
