#include "cache/eviction.hpp"

#include <stdexcept>

#include "simkit/assert.hpp"

namespace das::cache {

void LruPolicy::on_insert(const CacheKey& key) {
  DAS_REQUIRE(!index_.contains(key));
  order_.push_front(key);
  index_[key] = order_.begin();
}

void LruPolicy::on_hit(const CacheKey& key) { touch(key); }

void LruPolicy::on_erase(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  order_.erase(it->second);
  index_.erase(it);
}

CacheKey LruPolicy::victim() const {
  DAS_REQUIRE(!order_.empty());
  return order_.back();
}

void LruPolicy::touch(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  order_.splice(order_.begin(), order_, it->second);
  it->second = order_.begin();
}

void LfuPolicy::on_insert(const CacheKey& key) {
  DAS_REQUIRE(!index_.contains(key));
  place(key, 1);
}

void LfuPolicy::on_hit(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  const std::uint64_t next = it->second.frequency + 1;
  buckets_[it->second.frequency].erase(it->second.position);
  if (buckets_[it->second.frequency].empty()) {
    buckets_.erase(it->second.frequency);
  }
  index_.erase(it);
  place(key, next);
}

void LfuPolicy::on_erase(const CacheKey& key) {
  const auto it = index_.find(key);
  DAS_REQUIRE(it != index_.end());
  buckets_[it->second.frequency].erase(it->second.position);
  if (buckets_[it->second.frequency].empty()) {
    buckets_.erase(it->second.frequency);
  }
  index_.erase(it);
}

CacheKey LfuPolicy::victim() const {
  DAS_REQUIRE(!buckets_.empty());
  // Lowest frequency bucket, most recently touched first (see header).
  return buckets_.begin()->second.front();
}

void LfuPolicy::place(const CacheKey& key, std::uint64_t frequency) {
  auto& bucket = buckets_[frequency];
  bucket.push_front(key);
  index_[key] = Entry{frequency, bucket.begin()};
}

std::unique_ptr<EvictionPolicy> make_policy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  throw std::invalid_argument("unknown cache eviction policy: " + name);
}

}  // namespace das::cache
