#include "kernels/statistics.hpp"

#include <gtest/gtest.h>

#include "grid/dem.hpp"
#include "grid/image.hpp"

namespace das::kernels {
namespace {

grid::Grid<float> counting_grid(std::uint32_t w, std::uint32_t h) {
  grid::Grid<float> g(w, h);
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<float>(i);
  }
  return g;
}

TEST(RasterSummaryTest, KnownGrid) {
  const auto g = counting_grid(4, 2);  // values 0..7
  const RasterSummary s = RasterSummary::of(g);
  EXPECT_EQ(s.count, 8U);
  EXPECT_FLOAT_EQ(s.min, 0.0F);
  EXPECT_FLOAT_EQ(s.max, 7.0F);
  EXPECT_DOUBLE_EQ(s.sum, 28.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), (140.0 / 8.0) - 3.5 * 3.5);
}

TEST(RasterSummaryTest, RowPartitionsMergeExactly) {
  // Integer-valued cells keep the double sums exact, so any row partition
  // must merge to exactly the whole-grid summary.
  const auto g = counting_grid(16, 32);
  const RasterSummary whole = RasterSummary::of(g);
  for (const std::uint32_t cut : {1U, 7U, 16U, 31U}) {
    RasterSummary merged = RasterSummary::of_rows(g, 0, cut);
    merged.merge(RasterSummary::of_rows(g, cut, 32));
    EXPECT_EQ(merged, whole) << "cut at row " << cut;
  }
}

TEST(RasterSummaryTest, MergeIsCommutative) {
  const auto g = counting_grid(8, 8);
  RasterSummary ab = RasterSummary::of_rows(g, 0, 4);
  ab.merge(RasterSummary::of_rows(g, 4, 8));
  RasterSummary ba = RasterSummary::of_rows(g, 4, 8);
  ba.merge(RasterSummary::of_rows(g, 0, 4));
  EXPECT_EQ(ab, ba);
}

TEST(RasterSummaryTest, EmptyRangeIsNeutral) {
  const auto g = counting_grid(4, 4);
  RasterSummary s = RasterSummary::of_rows(g, 2, 2);
  EXPECT_EQ(s.count, 0U);
  s.merge(RasterSummary::of(g));
  EXPECT_EQ(s, RasterSummary::of(g));
}

TEST(RasterSummaryTest, ConstantFieldHasZeroVariance) {
  const grid::Grid<float> g(10, 10, 4.5F);
  const RasterSummary s = RasterSummary::of(g);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatisticsKernelTest, ReferenceOutputEncodesTheSummary) {
  const auto g = counting_grid(4, 2);
  const auto out = StatisticsKernel{}.run_reference(g);
  EXPECT_EQ(out.width(), 5U);
  EXPECT_EQ(out.height(), 1U);
  EXPECT_FLOAT_EQ(out.at(0, 0), 8.0F);   // count
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0F);   // min
  EXPECT_FLOAT_EQ(out.at(2, 0), 7.0F);   // max
  EXPECT_FLOAT_EQ(out.at(3, 0), 3.5F);   // mean
}

TEST(StatisticsKernelTest, ReductionMetadata) {
  const StatisticsKernel kernel;
  EXPECT_TRUE(kernel.is_reduction());
  EXPECT_FALSE(kernel.tile_exact());
  EXPECT_TRUE(kernel.features().dependence.empty());
  EXPECT_EQ(kernel.halo_rows(), 0U);
  EXPECT_EQ(kernel.output_bytes(24ULL << 30), sizeof(RasterSummary));
}

TEST(StatisticsKernelDeathTest, RunTileIsForbidden) {
  const StatisticsKernel kernel;
  const grid::Grid<float> g(4, 4);
  grid::Grid<float> out(4, 4);
  EXPECT_DEATH(kernel.run_tile(g, 0, 4, 0, 4, out), "DAS_REQUIRE");
}

TEST(RasterSummaryDeathTest, StatsOfNothingAbort) {
  const RasterSummary s;
  EXPECT_DEATH(s.mean(), "DAS_REQUIRE");
  EXPECT_DEATH(s.variance(), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::kernels
