#include "kernels/catalog.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace das::kernels {
namespace {

TEST(CatalogTest, FromTextLoadsEveryRecord) {
  const auto catalog = FeaturesCatalog::from_text(
      "Name:flow-routing\n"
      "Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, "
      "imgWidth-1, imgWidth, imgWidth+1\n"
      "\n"
      "Name:column-scan\n"
      "Dependence: -imgWidth, imgWidth\n");
  EXPECT_EQ(catalog.size(), 2U);
  EXPECT_TRUE(catalog.contains("flow-routing"));
  EXPECT_TRUE(catalog.contains("column-scan"));
  EXPECT_FALSE(catalog.contains("median-3x3"));
}

TEST(CatalogTest, LookupReturnsTheRecord) {
  FeaturesCatalog catalog;
  catalog.add(eight_neighbor_pattern("op"));
  const auto record = catalog.lookup("op");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(*record, eight_neighbor_pattern("op"));
  EXPECT_FALSE(catalog.lookup("other").has_value());
}

TEST(CatalogTest, AddReplacesExistingRecord) {
  FeaturesCatalog catalog;
  catalog.add(eight_neighbor_pattern("op"));
  catalog.add(four_neighbor_pattern("op"));
  EXPECT_EQ(catalog.size(), 1U);
  EXPECT_EQ(catalog.lookup("op")->dependence.size(), 4U);
}

TEST(CatalogTest, RemoveErases) {
  FeaturesCatalog catalog;
  catalog.add(four_neighbor_pattern("op"));
  EXPECT_TRUE(catalog.remove("op"));
  EXPECT_FALSE(catalog.remove("op"));
  EXPECT_EQ(catalog.size(), 0U);
}

TEST(CatalogTest, TextRoundTrip) {
  FeaturesCatalog catalog;
  catalog.add(eight_neighbor_pattern("flow-routing"));
  catalog.add(four_neighbor_pattern("laplacian-4"));
  const auto reloaded = FeaturesCatalog::from_text(catalog.to_text());
  EXPECT_EQ(reloaded.size(), 2U);
  EXPECT_EQ(reloaded.lookup("flow-routing"),
            catalog.lookup("flow-routing"));
  EXPECT_EQ(reloaded.lookup("laplacian-4"), catalog.lookup("laplacian-4"));
}

TEST(CatalogTest, MalformedTextThrows) {
  EXPECT_THROW(FeaturesCatalog::from_text("Dependence: 1\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace das::kernels
