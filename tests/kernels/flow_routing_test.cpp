#include "kernels/flow_routing.hpp"

#include <gtest/gtest.h>

#include "grid/dem.hpp"

namespace das::kernels {
namespace {

TEST(FlowRoutingTest, RampDrainsSouthEast) {
  const auto dem = grid::generate_ramp(6, 6);
  const auto dirs = FlowRoutingKernel{}.run_reference(dem);
  // Interior cells: the lowest neighbour is always to the south-east.
  for (std::uint32_t y = 0; y + 1 < 6; ++y) {
    for (std::uint32_t x = 0; x + 1 < 6; ++x) {
      EXPECT_EQ(dirs.at(x, y), static_cast<float>(D8::kSE))
          << "at (" << x << "," << y << ")";
    }
  }
}

TEST(FlowRoutingTest, RampEdgesFollowTheBoundary) {
  const auto dem = grid::generate_ramp(6, 6);
  const auto dirs = FlowRoutingKernel{}.run_reference(dem);
  // Bottom row can only move east; right column only south.
  for (std::uint32_t x = 0; x + 1 < 6; ++x) {
    EXPECT_EQ(dirs.at(x, 5), static_cast<float>(D8::kE));
  }
  for (std::uint32_t y = 0; y + 1 < 6; ++y) {
    EXPECT_EQ(dirs.at(5, y), static_cast<float>(D8::kS));
  }
  // The south-east corner is the global minimum: a pit.
  EXPECT_EQ(dirs.at(5, 5), static_cast<float>(D8::kPit));
}

TEST(FlowRoutingTest, FlatTerrainIsAllPits) {
  const grid::Grid<float> flat(5, 5, 1.0F);
  const auto dirs = FlowRoutingKernel{}.run_reference(flat);
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    EXPECT_EQ(dirs[i], static_cast<float>(D8::kPit));
  }
}

TEST(FlowRoutingTest, RoutesToMinimumNeighbour) {
  grid::Grid<float> g(3, 3, 10.0F);
  g.at(0, 0) = 3.0F;  // NW neighbour of the centre
  g.at(2, 2) = 1.0F;  // SE neighbour, lower
  const auto dirs = FlowRoutingKernel{}.run_reference(g);
  EXPECT_EQ(dirs.at(1, 1), static_cast<float>(D8::kSE));
}

TEST(FlowRoutingTest, TieBreaksInScanOrder) {
  grid::Grid<float> g(3, 3, 10.0F);
  g.at(2, 1) = 2.0F;  // east of centre
  g.at(1, 2) = 2.0F;  // south of centre, equal value
  const auto dirs = FlowRoutingKernel{}.run_reference(g);
  // E precedes S in the scan order.
  EXPECT_EQ(dirs.at(1, 1), static_cast<float>(D8::kE));
}

TEST(FlowRoutingTest, ConeDrainsTowardCentre) {
  const auto dem = grid::generate_cone(9, 9);
  const auto dirs = FlowRoutingKernel{}.run_reference(dem);
  EXPECT_EQ(dirs.at(4, 4), static_cast<float>(D8::kPit));
  EXPECT_EQ(dirs.at(0, 4), static_cast<float>(D8::kE));
  EXPECT_EQ(dirs.at(8, 4), static_cast<float>(D8::kW));
  EXPECT_EQ(dirs.at(4, 0), static_cast<float>(D8::kS));
  EXPECT_EQ(dirs.at(4, 8), static_cast<float>(D8::kN));
}

TEST(FlowRoutingTest, DirectionCodesAreValidD8) {
  const auto dem = grid::generate_dem(grid::DemOptions{});
  const auto dirs = FlowRoutingKernel{}.run_reference(dem);
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    const auto code = static_cast<std::uint32_t>(dirs[i]);
    EXPECT_TRUE(code == 0 || code == 1 || code == 2 || code == 4 ||
                code == 8 || code == 16 || code == 32 || code == 64 ||
                code == 128);
  }
}

TEST(FlowRoutingTest, OutputValueIsStrictlyLowerAlongFlow) {
  const auto dem = grid::generate_dem(grid::DemOptions{});
  const auto dirs = FlowRoutingKernel{}.run_reference(dem);
  for (std::uint32_t y = 0; y < dem.height(); ++y) {
    for (std::uint32_t x = 0; x < dem.width(); ++x) {
      const auto code = static_cast<std::uint32_t>(dirs.at(x, y));
      if (code == 0) continue;
      const D8Step step = d8_step(static_cast<D8>(code));
      const auto nx = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(x) + step.dx);
      const auto ny = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(y) + step.dy);
      ASSERT_TRUE(dem.in_bounds(nx, ny));
      EXPECT_LT(dem.at(nx, ny), dem.at(x, y));
    }
  }
}

TEST(D8StepTest, AllCodesMapToUnitSteps) {
  for (const D8 code : {D8::kE, D8::kSE, D8::kS, D8::kSW, D8::kW, D8::kNW,
                        D8::kN, D8::kNE}) {
    const D8Step s = d8_step(code);
    EXPECT_TRUE(s.dx >= -1 && s.dx <= 1);
    EXPECT_TRUE(s.dy >= -1 && s.dy <= 1);
    EXPECT_FALSE(s.dx == 0 && s.dy == 0);
  }
}

TEST(FlowRoutingTest, MetadataIsConsistent) {
  const FlowRoutingKernel kernel;
  EXPECT_EQ(kernel.name(), "flow-routing");
  EXPECT_TRUE(kernel.tile_exact());
  EXPECT_EQ(kernel.halo_rows(), 1U);
  EXPECT_EQ(kernel.features().dependence.size(), 8U);
  EXPECT_GT(kernel.cost_factor(), 0.0);
}

}  // namespace
}  // namespace das::kernels
