#include "kernels/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "kernels/gaussian.hpp"

namespace das::kernels {
namespace {

TEST(RegistryTest, StandardRegistryHasTheTableOneKernelsAndExtensions) {
  const KernelRegistry registry = standard_registry();
  const auto names = registry.names();
  EXPECT_EQ(names, (std::vector<std::string>{
                       "flow-accumulation", "flow-routing", "gaussian-2d",
                       "laplacian-4", "median-3x3", "raster-statistics",
                       "surface-slope"}));
}

TEST(RegistryTest, CreateReturnsFreshInstances) {
  const KernelRegistry registry = standard_registry();
  const KernelPtr a = registry.create("flow-routing");
  const KernelPtr b = registry.create("flow-routing");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "flow-routing");
}

TEST(RegistryTest, ContainsChecks) {
  const KernelRegistry registry = standard_registry();
  EXPECT_TRUE(registry.contains("gaussian-2d"));
  EXPECT_FALSE(registry.contains("sobel"));
}

TEST(RegistryTest, UnknownKernelThrows) {
  const KernelRegistry registry = standard_registry();
  EXPECT_THROW(registry.create("sobel"), std::out_of_range);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
  KernelRegistry registry;
  registry.add([] { return std::make_unique<GaussianKernel>(); });
  EXPECT_THROW(
      registry.add([] { return std::make_unique<GaussianKernel>(); }),
      std::invalid_argument);
}

TEST(RegistryTest, EveryStandardKernelHasTableOneMetadata) {
  const KernelRegistry registry = standard_registry();
  for (const std::string& name : registry.names()) {
    const KernelPtr kernel = registry.create(name);
    EXPECT_EQ(kernel->name(), name);
    EXPECT_FALSE(kernel->description().empty());
    EXPECT_GT(kernel->cost_factor(), 0.0);
    if (kernel->is_reduction()) {
      EXPECT_TRUE(kernel->features().dependence.empty());
      EXPECT_LT(kernel->output_bytes(1 << 20), 1024U);
    } else {
      EXPECT_FALSE(kernel->features().dependence.empty());
      EXPECT_GE(kernel->halo_rows(), 1U);
      EXPECT_EQ(kernel->output_bytes(1 << 20), 1U << 20);
    }
  }
}

}  // namespace
}  // namespace das::kernels
