#include "kernels/slope.hpp"

#include <gtest/gtest.h>

#include "grid/dem.hpp"

namespace das::kernels {
namespace {

TEST(SlopeTest, FlatTerrainHasZeroSlope) {
  const grid::Grid<float> flat(8, 8, 42.0F);
  const auto out = SlopeKernel{}.run_reference(flat);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], 0.0F);
}

TEST(SlopeTest, LinearRampHasExactGradientMagnitudeInTheInterior) {
  // Horn's estimator is exact on linear surfaces: z = -(3x + 4y) has
  // |grad| = 5 everywhere away from the clamped border.
  const auto ramp = grid::generate_ramp(10, 10, 3.0, 4.0);
  const auto out = SlopeKernel{}.run_reference(ramp);
  for (std::uint32_t y = 1; y + 1 < 10; ++y) {
    for (std::uint32_t x = 1; x + 1 < 10; ++x) {
      EXPECT_NEAR(out.at(x, y), 5.0F, 1e-4F);
    }
  }
}

TEST(SlopeTest, CellSizeScalesTheGradient) {
  const auto ramp = grid::generate_ramp(8, 8, 2.0, 0.0);
  const auto unit = SlopeKernel{1.0}.run_reference(ramp);
  const auto coarse = SlopeKernel{2.0}.run_reference(ramp);
  EXPECT_NEAR(unit.at(4, 4), 2.0F, 1e-4F);
  EXPECT_NEAR(coarse.at(4, 4), 1.0F, 1e-4F);
}

TEST(SlopeTest, SteeperTerrainScoresHigher) {
  const auto gentle = grid::generate_ramp(8, 8, 1.0, 0.0);
  const auto steep = grid::generate_ramp(8, 8, 6.0, 0.0);
  const auto a = SlopeKernel{}.run_reference(gentle);
  const auto b = SlopeKernel{}.run_reference(steep);
  EXPECT_LT(a.at(4, 4), b.at(4, 4));
}

TEST(SlopeTest, SlopeIsNonNegative) {
  const auto dem = grid::generate_dem(grid::DemOptions{});
  const auto out = SlopeKernel{}.run_reference(dem);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_GE(out[i], 0.0F);
}

TEST(SlopeTest, MetadataIsConsistent) {
  const SlopeKernel kernel;
  EXPECT_EQ(kernel.name(), "surface-slope");
  EXPECT_TRUE(kernel.tile_exact());
  EXPECT_FALSE(kernel.is_reduction());
  EXPECT_EQ(kernel.features().dependence.size(), 8U);
}

TEST(SlopeDeathTest, NonPositiveCellSizeAborts) {
  EXPECT_DEATH(SlopeKernel{0.0}, "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::kernels
