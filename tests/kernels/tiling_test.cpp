// Property suite for the tile-execution contract: for every tile-exact
// kernel, running row slabs with a halo and stitching the outputs must
// reproduce the sequential reference bit for bit — this is the correctness
// foundation of the whole active-storage execution model.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "grid/dem.hpp"
#include "grid/image.hpp"
#include "kernels/flow_routing.hpp"
#include "kernels/gaussian.hpp"
#include "kernels/registry.hpp"

namespace das::kernels {
namespace {

grid::Grid<float> input_for(const ProcessingKernel& kernel,
                            std::uint32_t width, std::uint32_t height) {
  if (kernel.name() == "flow-routing") {
    grid::DemOptions opt;
    opt.width = width;
    opt.height = height;
    return grid::generate_dem(opt);
  }
  if (kernel.name() == "flow-accumulation") {
    grid::DemOptions opt;
    opt.width = width;
    opt.height = height;
    return FlowRoutingKernel{}.run_reference(grid::generate_dem(opt));
  }
  grid::ImageOptions opt;
  opt.width = width;
  opt.height = height;
  return grid::generate_image(opt);
}

using TilingCase = std::tuple<std::string, std::uint32_t, std::uint32_t>;
// (kernel, number of slabs, grid height)

class TilingTest : public ::testing::TestWithParam<TilingCase> {};

TEST_P(TilingTest, StitchedSlabsMatchReference) {
  const auto& [name, slabs, height] = GetParam();
  const KernelRegistry registry = standard_registry();
  const KernelPtr kernel = registry.create(name);
  ASSERT_TRUE(kernel->tile_exact());

  const std::uint32_t width = 24;
  const grid::Grid<float> input = input_for(*kernel, width, height);
  const grid::Grid<float> reference = kernel->run_reference(input);

  grid::Grid<float> stitched(width, height);
  const std::uint32_t halo = kernel->halo_rows();
  for (std::uint32_t i = 0; i < slabs; ++i) {
    const std::uint32_t row0 = i * height / slabs;
    const std::uint32_t row1 = (i + 1) * height / slabs;
    if (row0 == row1) continue;
    const std::uint32_t buf0 = row0 >= halo ? row0 - halo : 0;
    const std::uint32_t buf1 = std::min(height, row1 + halo);
    const grid::Grid<float> buffer = input.slice_rows(buf0, buf1);
    grid::Grid<float> out(width, row1 - row0);
    kernel->run_tile(buffer, buf0, height, row0, row1, out);
    stitched.paste_rows(row0, out);
  }
  EXPECT_EQ(stitched, reference);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndPartitions, TilingTest,
    ::testing::Combine(
        ::testing::Values("flow-routing", "gaussian-2d", "median-3x3",
                          "surface-slope", "laplacian-4"),
        ::testing::Values(1U, 2U, 3U, 5U, 8U, 16U),
        ::testing::Values(16U, 33U, 64U)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param)) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

TEST(TilingContractTest, OversizedBufferIsAccepted) {
  const GaussianKernel kernel;
  const grid::Grid<float> input = input_for(kernel, 8, 16);
  grid::Grid<float> out(8, 4);
  // Buffer covers the whole grid; output rows [4, 8).
  kernel.run_tile(input, 0, 16, 4, 8, out);
  const auto ref = kernel.run_reference(input);
  EXPECT_EQ(out, ref.slice_rows(4, 8));
}

TEST(TilingContractDeathTest, MissingHaloAborts) {
  const GaussianKernel kernel;
  const grid::Grid<float> input = input_for(kernel, 8, 16);
  const grid::Grid<float> buffer = input.slice_rows(4, 8);
  grid::Grid<float> out(8, 4);
  // Rows [4, 8) need rows 3 and 8 as halo; the buffer lacks both.
  EXPECT_DEATH(kernel.run_tile(buffer, 4, 16, 4, 8, out), "DAS_REQUIRE");
}

TEST(TilingContractDeathTest, WrongOutputShapeAborts) {
  const GaussianKernel kernel;
  const grid::Grid<float> input = input_for(kernel, 8, 16);
  grid::Grid<float> out(8, 3);  // should be 4 rows
  EXPECT_DEATH(kernel.run_tile(input, 0, 16, 4, 8, out), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::kernels
