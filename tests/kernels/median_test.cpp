#include "kernels/median.hpp"

#include <gtest/gtest.h>

#include "grid/image.hpp"

namespace das::kernels {
namespace {

TEST(MedianTest, ConstantFieldIsInvariant) {
  const grid::Grid<float> flat(6, 6, 8.0F);
  const auto out = MedianKernel{}.run_reference(flat);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], 8.0F);
}

TEST(MedianTest, RemovesIsolatedImpulses) {
  grid::Grid<float> g(7, 7, 1.0F);
  g.at(3, 3) = 255.0F;
  const auto out = MedianKernel{}.run_reference(g);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], 1.0F);
}

TEST(MedianTest, SparseImpulseNoiseIsCleaned) {
  const auto noisy = grid::generate_impulse_noise(64, 64, 10.0F, 250.0F,
                                                  0.02, 3);
  const auto out = MedianKernel{}.run_reference(noisy);
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 10.0F) ++survivors;
  }
  // 2% impulse rate: clusters large enough to survive a 3x3 median are rare.
  EXPECT_LT(survivors, out.size() / 100);
}

TEST(MedianTest, InteriorMedianOfKnownWindow) {
  grid::Grid<float> g(3, 3);
  const float values[9] = {9, 1, 8, 2, 7, 3, 6, 4, 5};
  for (std::size_t i = 0; i < 9; ++i) g[i] = values[i];
  const auto out = MedianKernel{}.run_reference(g);
  EXPECT_FLOAT_EQ(out.at(1, 1), 5.0F);
}

TEST(MedianTest, CornerUsesOnlyInBoundsNeighbours) {
  // Corner window has 4 cells; the median is the upper-middle (n/2 = 2,
  // zero-indexed) of the sorted values.
  grid::Grid<float> g(3, 3, 0.0F);
  g.at(0, 0) = 1.0F;
  g.at(1, 0) = 2.0F;
  g.at(0, 1) = 3.0F;
  g.at(1, 1) = 4.0F;
  const auto out = MedianKernel{}.run_reference(g);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0F);
}

TEST(MedianTest, EdgeUsesSixNeighbours) {
  grid::Grid<float> g(3, 3, 0.0F);
  // Top edge cell (1,0): window = rows 0-1, all columns -> 6 cells.
  g.at(0, 0) = 1.0F;
  g.at(1, 0) = 2.0F;
  g.at(2, 0) = 3.0F;
  g.at(0, 1) = 4.0F;
  g.at(1, 1) = 5.0F;
  g.at(2, 1) = 6.0F;
  const auto out = MedianKernel{}.run_reference(g);
  // Sorted {1,2,3,4,5,6}: element n/2 = 3 -> value 4.
  EXPECT_FLOAT_EQ(out.at(1, 0), 4.0F);
}

TEST(MedianTest, PreservesStepEdgesBetterThanMean) {
  // A sharp vertical step must survive the median untouched away from the
  // noise (the property medical imaging uses it for).
  grid::Grid<float> g(8, 8);
  for (std::uint32_t y = 0; y < 8; ++y) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      g.at(x, y) = x < 4 ? 0.0F : 100.0F;
    }
  }
  const auto out = MedianKernel{}.run_reference(g);
  for (std::uint32_t y = 0; y < 8; ++y) {
    EXPECT_FLOAT_EQ(out.at(1, y), 0.0F);
    EXPECT_FLOAT_EQ(out.at(6, y), 100.0F);
  }
}

TEST(MedianTest, MetadataIsConsistent) {
  const MedianKernel kernel;
  EXPECT_EQ(kernel.name(), "median-3x3");
  EXPECT_TRUE(kernel.tile_exact());
  EXPECT_GT(kernel.cost_factor(), 1.0);
}

}  // namespace
}  // namespace das::kernels
