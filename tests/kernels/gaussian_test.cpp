#include "kernels/gaussian.hpp"

#include <gtest/gtest.h>

#include "grid/image.hpp"

namespace das::kernels {
namespace {

TEST(GaussianTest, ConstantFieldIsInvariant) {
  const grid::Grid<float> flat(7, 5, 3.25F);
  const auto out = GaussianKernel{}.run_reference(flat);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 3.25F);
  }
}

TEST(GaussianTest, ImpulseResponseIsTheBinomialKernel) {
  grid::Grid<float> g(5, 5, 0.0F);
  g.at(2, 2) = 16.0F;
  const auto out = GaussianKernel{}.run_reference(g);
  EXPECT_FLOAT_EQ(out.at(2, 2), 4.0F);
  EXPECT_FLOAT_EQ(out.at(1, 2), 2.0F);
  EXPECT_FLOAT_EQ(out.at(3, 2), 2.0F);
  EXPECT_FLOAT_EQ(out.at(2, 1), 2.0F);
  EXPECT_FLOAT_EQ(out.at(2, 3), 2.0F);
  EXPECT_FLOAT_EQ(out.at(1, 1), 1.0F);
  EXPECT_FLOAT_EQ(out.at(3, 3), 1.0F);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(out.at(4, 2), 0.0F);
}

TEST(GaussianTest, ClampedBoundarySampling) {
  // A corner impulse: the clamped samples re-weight the corner itself.
  grid::Grid<float> g(4, 4, 0.0F);
  g.at(0, 0) = 16.0F;
  const auto out = GaussianKernel{}.run_reference(g);
  // Corner (0,0): clamping folds samples (-1,-1), (0,-1), (-1,0) and (0,0)
  // onto the corner, weights 1+2+2+4 = 9.
  EXPECT_FLOAT_EQ(out.at(0, 0), 9.0F);
  // Edge neighbour (1,0): samples (0,-1) (weight 1, clamped) and (0,0)
  // (weight 2) read the corner, total 3.
  EXPECT_FLOAT_EQ(out.at(1, 0), 3.0F);
}

TEST(GaussianTest, LinearityUnderScaling) {
  grid::ImageOptions opt;
  opt.width = 16;
  opt.height = 16;
  const auto img = grid::generate_image(opt);
  grid::Grid<float> doubled(16, 16);
  for (std::size_t i = 0; i < img.size(); ++i) doubled[i] = 2.0F * img[i];
  const auto a = GaussianKernel{}.run_reference(img);
  const auto b = GaussianKernel{}.run_reference(doubled);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i], 2.0F * a[i], 1e-3F);
  }
}

TEST(GaussianTest, SmoothingReducesNoiseVariance) {
  grid::ImageOptions opt;
  opt.width = 64;
  opt.height = 64;
  opt.num_blobs = 0;
  opt.noise_stddev = 20.0;
  const auto noisy = grid::generate_image(opt);
  const auto smooth = GaussianKernel{}.run_reference(noisy);

  auto variance = [&](const grid::Grid<float>& g) {
    double sum = 0, sum2 = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      sum += g[i];
      sum2 += static_cast<double>(g[i]) * g[i];
    }
    const double mean = sum / static_cast<double>(g.size());
    return sum2 / static_cast<double>(g.size()) - mean * mean;
  };
  EXPECT_LT(variance(smooth), variance(noisy) * 0.5);
}

TEST(GaussianTest, MetadataIsConsistent) {
  const GaussianKernel kernel;
  EXPECT_EQ(kernel.name(), "gaussian-2d");
  EXPECT_TRUE(kernel.tile_exact());
  EXPECT_EQ(kernel.features(), eight_neighbor_pattern("gaussian-2d"));
}

}  // namespace
}  // namespace das::kernels
