#include "kernels/laplacian.hpp"

#include <gtest/gtest.h>

#include "grid/dem.hpp"

namespace das::kernels {
namespace {

TEST(LaplacianTest, ConstantFieldIsZero) {
  const grid::Grid<float> flat(6, 6, 9.0F);
  const auto out = LaplacianKernel{}.run_reference(flat);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_FLOAT_EQ(out[i], 0.0F);
}

TEST(LaplacianTest, LinearRampIsZeroInTheInterior) {
  const auto ramp = grid::generate_ramp(8, 8, 2.0, 5.0);
  const auto out = LaplacianKernel{}.run_reference(ramp);
  for (std::uint32_t y = 1; y + 1 < 8; ++y) {
    for (std::uint32_t x = 1; x + 1 < 8; ++x) {
      EXPECT_NEAR(out.at(x, y), 0.0F, 1e-4F);
    }
  }
}

TEST(LaplacianTest, ImpulseResponse) {
  grid::Grid<float> g(5, 5, 0.0F);
  g.at(2, 2) = 1.0F;
  const auto out = LaplacianKernel{}.run_reference(g);
  EXPECT_FLOAT_EQ(out.at(2, 2), -4.0F);
  EXPECT_FLOAT_EQ(out.at(1, 2), 1.0F);
  EXPECT_FLOAT_EQ(out.at(3, 2), 1.0F);
  EXPECT_FLOAT_EQ(out.at(2, 1), 1.0F);
  EXPECT_FLOAT_EQ(out.at(2, 3), 1.0F);
  EXPECT_FLOAT_EQ(out.at(1, 1), 0.0F);  // diagonals unused
}

TEST(LaplacianTest, QuadraticSurfaceHasConstantLaplacian) {
  // z = x^2 -> discrete Laplacian = 2 exactly in the interior.
  grid::Grid<float> g(8, 8);
  for (std::uint32_t y = 0; y < 8; ++y) {
    for (std::uint32_t x = 0; x < 8; ++x) {
      g.at(x, y) = static_cast<float>(x) * static_cast<float>(x);
    }
  }
  const auto out = LaplacianKernel{}.run_reference(g);
  for (std::uint32_t y = 1; y + 1 < 8; ++y) {
    for (std::uint32_t x = 1; x + 1 < 8; ++x) {
      EXPECT_FLOAT_EQ(out.at(x, y), 2.0F);
    }
  }
}

TEST(LaplacianTest, FourNeighbourDependence) {
  const LaplacianKernel kernel;
  EXPECT_EQ(kernel.features(), four_neighbor_pattern("laplacian-4"));
  EXPECT_EQ(kernel.features().max_reach(100), 100U);  // one row, no corners
  EXPECT_TRUE(kernel.tile_exact());
}

}  // namespace
}  // namespace das::kernels
