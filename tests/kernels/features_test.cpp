#include "kernels/features.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace das::kernels {
namespace {

TEST(SymbolicOffsetTest, Resolve) {
  EXPECT_EQ((SymbolicOffset{-1, 1}).resolve(100), -99);
  EXPECT_EQ((SymbolicOffset{0, -1}).resolve(100), -1);
  EXPECT_EQ((SymbolicOffset{2, 3}).resolve(10), 23);
}

TEST(SymbolicOffsetTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ((SymbolicOffset{-1, 1}).to_string(), "-imgWidth+1");
  EXPECT_EQ((SymbolicOffset{-1, 0}).to_string(), "-imgWidth");
  EXPECT_EQ((SymbolicOffset{-1, -1}).to_string(), "-imgWidth-1");
  EXPECT_EQ((SymbolicOffset{0, -1}).to_string(), "-1");
  EXPECT_EQ((SymbolicOffset{0, 1}).to_string(), "1");
  EXPECT_EQ((SymbolicOffset{1, 1}).to_string(), "imgWidth+1");
  EXPECT_EQ((SymbolicOffset{3, 0}).to_string(), "3*imgWidth");
}

TEST(ParseTest, PaperFlowRoutingRecord) {
  const auto f = parse_features(
      "Name:flow-routing\n"
      "Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, "
      "imgWidth-1, imgWidth, imgWidth+1\n");
  EXPECT_EQ(f.name, "flow-routing");
  ASSERT_EQ(f.dependence.size(), 8U);
  EXPECT_EQ(f, eight_neighbor_pattern("flow-routing"));
}

TEST(ParseTest, ResolveEightNeighbourOffsets) {
  const auto f = eight_neighbor_pattern("op");
  const auto offsets = f.resolve(1000);
  const std::vector<std::int64_t> expected{-999, -1000, -1001, -1, 1,
                                           999,  1000,  1001};
  EXPECT_EQ(offsets, expected);
}

TEST(ParseTest, MaxReach) {
  EXPECT_EQ(eight_neighbor_pattern("op").max_reach(100), 101U);
  EXPECT_EQ(four_neighbor_pattern("op").max_reach(100), 100U);
}

TEST(ParseTest, FormatParseRoundTrip) {
  const auto original = eight_neighbor_pattern("median filter");
  const auto reparsed = parse_features(original.format());
  EXPECT_EQ(reparsed, original);
}

TEST(ParseTest, PlainIntegerOffsets) {
  const auto f = parse_features("Name:scan\nDependence: -4, 4, 8\n");
  EXPECT_EQ(f.resolve(99), (std::vector<std::int64_t>{-4, 4, 8}));
}

TEST(ParseTest, CoefficientTimesWidth) {
  const auto f = parse_features("Name:wide\nDependence: 2*imgWidth, "
                                "-3*imgWidth+5\n");
  EXPECT_EQ(f.resolve(10), (std::vector<std::int64_t>{20, -25}));
}

TEST(ParseTest, WrappedDependenceLine) {
  const auto f = parse_features(
      "Name:wrapped\nDependence: -imgWidth+1, -imgWidth,\n"
      "            imgWidth, imgWidth+1\n");
  EXPECT_EQ(f.dependence.size(), 4U);
}

TEST(ParseTest, CatalogWithMultipleRecords) {
  const auto records = parse_catalog(
      "Name:a\nDependence: 1\n\nName:b\nDependence: -1, 1\n");
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[1].dependence.size(), 2U);
}

TEST(ParseTest, WhitespaceTolerance) {
  const auto f = parse_features("Name:  spaced out  \nDependence:  -1 ,  "
                                "imgWidth + 1 \n");
  EXPECT_EQ(f.name, "spaced out");
  EXPECT_EQ(f.resolve(10), (std::vector<std::int64_t>{-1, 11}));
}

TEST(ParseTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_features(""), std::invalid_argument);
  EXPECT_THROW(parse_features("Name:\nDependence: 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_features("Name:x\n"), std::invalid_argument);
  EXPECT_THROW(parse_features("Dependence: 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_features("Name:x\nDependence: bogus\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_features("Name:x\nDependence: 1\nGarbage line\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_features("Name:x\nDependence: +\n"),
               std::invalid_argument);
}

TEST(ParseTest, SingleRecordParserRejectsCatalogs) {
  EXPECT_THROW(
      parse_features("Name:a\nDependence: 1\nName:b\nDependence: 2\n"),
      std::invalid_argument);
}

TEST(PatternTest, FourNeighbour) {
  const auto f = four_neighbor_pattern("op");
  const auto offsets = f.resolve(8);
  EXPECT_EQ(offsets, (std::vector<std::int64_t>{-8, -1, 1, 8}));
}

}  // namespace
}  // namespace das::kernels
