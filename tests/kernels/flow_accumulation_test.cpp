#include "kernels/flow_accumulation.hpp"

#include <gtest/gtest.h>

#include "grid/dem.hpp"
#include "kernels/flow_routing.hpp"

namespace das::kernels {
namespace {

grid::Grid<float> route(const grid::Grid<float>& dem) {
  return FlowRoutingKernel{}.run_reference(dem);
}

TEST(FlowAccumulationTest, RampHasClosedFormAnswer) {
  // On the SE-draining ramp, interior flow is a pure diagonal chain:
  // acc(x, y) counts the diagonal ancestors, min(x, y).
  const auto dirs = route(grid::generate_ramp(8, 8));
  const auto acc = FlowAccumulationKernel{}.run_reference(dirs);
  for (std::uint32_t y = 1; y + 1 < 8; ++y) {
    for (std::uint32_t x = 1; x + 1 < 8; ++x) {
      EXPECT_EQ(acc.at(x, y), static_cast<float>(std::min(x, y)))
          << "at (" << x << "," << y << ")";
    }
  }
  EXPECT_EQ(acc.at(0, 0), 0.0F);  // ridge cell: nothing drains into it
}

TEST(FlowAccumulationTest, MassConservation) {
  // Every cell contributes exactly once to each sink's basin:
  // sum over sinks of (acc + 1) == number of cells.
  const auto dem = grid::generate_dem(grid::DemOptions{});
  const auto dirs = route(dem);
  const auto acc = FlowAccumulationKernel{}.run_reference(dirs);
  double basin_total = 0.0;
  for (std::uint32_t y = 0; y < dirs.height(); ++y) {
    for (std::uint32_t x = 0; x < dirs.width(); ++x) {
      const auto code = static_cast<std::uint32_t>(dirs.at(x, y));
      bool is_sink = code == 0;
      if (!is_sink) {
        const D8Step s = d8_step(static_cast<D8>(code));
        is_sink = !dirs.in_bounds(static_cast<std::int64_t>(x) + s.dx,
                                  static_cast<std::int64_t>(y) + s.dy);
      }
      if (is_sink) basin_total += acc.at(x, y) + 1.0;
    }
  }
  EXPECT_DOUBLE_EQ(basin_total, static_cast<double>(dirs.size()));
}

TEST(FlowAccumulationTest, AccumulationNeverDecreasesDownstream) {
  const auto dirs = route(grid::generate_dem(grid::DemOptions{}));
  const auto acc = FlowAccumulationKernel{}.run_reference(dirs);
  for (std::uint32_t y = 0; y < dirs.height(); ++y) {
    for (std::uint32_t x = 0; x < dirs.width(); ++x) {
      const auto code = static_cast<std::uint32_t>(dirs.at(x, y));
      if (code == 0) continue;
      const D8Step s = d8_step(static_cast<D8>(code));
      const std::int64_t nx = static_cast<std::int64_t>(x) + s.dx;
      const std::int64_t ny = static_cast<std::int64_t>(y) + s.dy;
      if (!dirs.in_bounds(nx, ny)) continue;
      EXPECT_GE(acc.at(static_cast<std::uint32_t>(nx),
                       static_cast<std::uint32_t>(ny)),
                acc.at(x, y) + 1.0F);
    }
  }
}

TEST(FlowAccumulationTest, AllPitsMeansZeroEverywhere) {
  const grid::Grid<float> dirs(6, 6, 0.0F);  // every cell a pit
  const auto acc = FlowAccumulationKernel{}.run_reference(dirs);
  for (std::size_t i = 0; i < acc.size(); ++i) EXPECT_EQ(acc[i], 0.0F);
}

TEST(FlowAccumulationTest, RunTileIsTheLocalPass) {
  // A single slab covering the whole grid must equal the reference.
  const auto dirs = route(grid::generate_ramp(8, 8));
  const FlowAccumulationKernel kernel;
  const auto ref = kernel.run_reference(dirs);
  grid::Grid<float> out(8, 8);
  kernel.run_tile(dirs, 0, 8, 0, 8, out);
  EXPECT_EQ(out, ref);
}

TEST(FlowAccumulationTest, NotTileExact) {
  EXPECT_FALSE(FlowAccumulationKernel{}.tile_exact());
}

// The distributed algorithm must be exact for any slab partition.
class DistributedAccumulationTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(DistributedAccumulationTest, MatchesReferenceOnFractalTerrain) {
  grid::DemOptions opt;
  opt.width = 48;
  opt.height = 48;
  const auto dirs = route(grid::generate_dem(opt));
  const auto ref = FlowAccumulationKernel{}.run_reference(dirs);
  const auto result = distributed_flow_accumulation(dirs, GetParam());
  EXPECT_EQ(result.accumulation, ref);
  EXPECT_GE(result.rounds, 1U);
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, DistributedAccumulationTest,
    ::testing::Values(std::vector<std::uint32_t>{0},
                      std::vector<std::uint32_t>{0, 24},
                      std::vector<std::uint32_t>{0, 16, 32},
                      std::vector<std::uint32_t>{0, 12, 24, 36},
                      std::vector<std::uint32_t>{0, 1, 2, 3, 4, 40},
                      std::vector<std::uint32_t>{0,  6,  12, 18, 24,
                                                 30, 36, 42}),
    [](const auto& info) {
      return "slabs" + std::to_string(info.param.size());
    });

TEST(DistributedAccumulationTest, SingleSlabConvergesInOneRound) {
  const auto dirs = route(grid::generate_ramp(8, 8));
  const auto result = distributed_flow_accumulation(dirs, {0});
  EXPECT_EQ(result.rounds, 1U);
}

TEST(DistributedAccumulationTest, CrossSlabFlowNeedsMoreRounds) {
  // Diagonal chains cross every slab boundary, so a 2-slab split cannot
  // converge in a single round.
  const auto dirs = route(grid::generate_ramp(16, 16));
  const auto result = distributed_flow_accumulation(dirs, {0, 8});
  EXPECT_GT(result.rounds, 1U);
  const auto ref = FlowAccumulationKernel{}.run_reference(dirs);
  EXPECT_EQ(result.accumulation, ref);
}

TEST(DistributedAccumulationDeathTest, BadPartitionAborts) {
  const grid::Grid<float> dirs(8, 8, 0.0F);
  EXPECT_DEATH(distributed_flow_accumulation(dirs, {}), "DAS_REQUIRE");
  EXPECT_DEATH(distributed_flow_accumulation(dirs, {1}), "DAS_REQUIRE");
  EXPECT_DEATH(distributed_flow_accumulation(dirs, {0, 8}), "DAS_REQUIRE");
  EXPECT_DEATH(distributed_flow_accumulation(dirs, {0, 4, 4}),
               "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::kernels
