// Property suite for the vectorized kernel engine: every ISA the CPU can
// run, blocked or unblocked, must reproduce the scalar unblocked sweep BIT
// FOR BIT on every kernel — this is what keeps scheme CSVs and traces
// byte-identical whatever hardware the simulator runs on.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "grid/image.hpp"
#include "kernels/registry.hpp"
#include "kernels/simd.hpp"
#include "kernels/statistics.hpp"

namespace das::kernels {
namespace {

/// Pins ISA and block width for one test body, restoring on exit so test
/// order never leaks state.
class EngineGuard {
 public:
  EngineGuard(simd::Isa isa, std::uint32_t block_cols)
      : saved_override_(simd::isa_override()),
        saved_block_(simd::block_cols()) {
    simd::set_isa_override(isa);
    simd::set_block_cols(block_cols);
  }
  ~EngineGuard() {
    simd::set_isa_override(saved_override_);
    simd::set_block_cols(saved_block_);
  }
  EngineGuard(const EngineGuard&) = delete;
  EngineGuard& operator=(const EngineGuard&) = delete;

 private:
  std::optional<simd::Isa> saved_override_;
  std::uint32_t saved_block_;
};

std::vector<simd::Isa> runnable_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() >= simd::Isa::kSse2) {
    isas.push_back(simd::Isa::kSse2);
  }
  if (simd::detected_isa() >= simd::Isa::kAvx2) {
    isas.push_back(simd::Isa::kAvx2);
  }
  return isas;
}

grid::Grid<float> image(std::uint32_t width, std::uint32_t height) {
  grid::ImageOptions opt;
  opt.width = width;
  opt.height = height;
  return grid::generate_image(opt);
}

/// Bit-level equality (operator== on Grid is value equality, which would
/// also pass for -0.0 vs +0.0; the engine promises stronger).
void expect_bits_equal(const grid::Grid<float>& a, const grid::Grid<float>& b,
                       const std::string& label) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (std::uint32_t y = 0; y < a.height(); ++y) {
    ASSERT_EQ(0, std::memcmp(a.row(y), b.row(y),
                             sizeof(float) * a.width()))
        << label << ": row " << y << " differs";
  }
}

// Widths crossing every vector-boundary case: degenerate (1, 2), below one
// SSE lane-group, straddling 4- and 8-lane boundaries, and wide enough for
// several full vectors plus a tail.
constexpr std::uint32_t kWidths[] = {1, 2, 3, 5, 8, 9, 15, 16, 17, 31, 33, 67};

using SimdCase = std::tuple<std::string, std::uint32_t>;  // kernel, height

class SimdBitIdenticalTest : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdBitIdenticalTest, AllIsasAndBlockingsMatchScalar) {
  const auto& [name, height] = GetParam();
  const KernelRegistry registry = standard_registry();
  const KernelPtr kernel = registry.create(name);

  for (const std::uint32_t width : kWidths) {
    const grid::Grid<float> input = image(width, height);

    grid::Grid<float> reference(width, height);
    {
      EngineGuard guard(simd::Isa::kScalar, 0);  // scalar, unblocked
      reference = kernel->run_reference(input);
    }

    for (const simd::Isa isa : runnable_isas()) {
      for (const std::uint32_t block : {0U, 7U, simd::kDefaultBlockCols}) {
        EngineGuard guard(isa, block);
        const grid::Grid<float> out = kernel->run_reference(input);
        expect_bits_equal(out, reference,
                          name + " w" + std::to_string(width) + " isa=" +
                              simd::to_string(isa) + " block=" +
                              std::to_string(block));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SimdBitIdenticalTest,
    ::testing::Combine(::testing::Values("laplacian-4", "gaussian-2d",
                                         "surface-slope", "median-3x3",
                                         "flow-routing"),
                       ::testing::Values(3U, 16U, 33U)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_h" + std::to_string(std::get<1>(info.param));
    });

// Tile splits: dispatched sweeps must stitch bit-identically too (the
// executors run kernels per-slab, not whole-grid).
TEST(SimdTilingTest, TiledSweepsMatchScalarWholeGrid) {
  const KernelRegistry registry = standard_registry();
  const std::uint32_t width = 37;
  const std::uint32_t height = 41;
  const grid::Grid<float> input = image(width, height);

  for (const char* name : {"laplacian-4", "gaussian-2d", "surface-slope",
                           "median-3x3", "flow-routing"}) {
    const KernelPtr kernel = registry.create(name);
    grid::Grid<float> reference(width, height);
    {
      EngineGuard guard(simd::Isa::kScalar, 0);
      reference = kernel->run_reference(input);
    }
    const std::uint32_t halo = kernel->halo_rows();
    for (const simd::Isa isa : runnable_isas()) {
      EngineGuard guard(isa, 7);
      for (const std::uint32_t slabs : {2U, 5U}) {
        grid::Grid<float> stitched(width, height);
        for (std::uint32_t i = 0; i < slabs; ++i) {
          const std::uint32_t row0 = i * height / slabs;
          const std::uint32_t row1 = (i + 1) * height / slabs;
          if (row0 == row1) continue;
          const std::uint32_t buf0 = row0 >= halo ? row0 - halo : 0;
          const std::uint32_t buf1 = std::min(height, row1 + halo);
          const grid::Grid<float> buffer = input.slice_rows(buf0, buf1);
          grid::Grid<float> out(width, row1 - row0);
          kernel->run_tile(buffer, buf0, height, row0, row1, out);
          stitched.paste_rows(row0, out);
        }
        expect_bits_equal(stitched, reference,
                          std::string(name) + " isa=" + simd::to_string(isa) +
                              " slabs=" + std::to_string(slabs));
      }
    }
  }
}

// The statistics reduction folds through a different signature; compare the
// whole summary field by field (sum/sum_squares are exact-sequence doubles).
TEST(SimdStatisticsTest, SummaryBitIdenticalAcrossIsas) {
  for (const std::uint32_t width : kWidths) {
    const grid::Grid<float> input = image(width, 19);
    RasterSummary reference;
    {
      EngineGuard guard(simd::Isa::kScalar, 0);
      reference = RasterSummary::of(input);
    }
    for (const simd::Isa isa : runnable_isas()) {
      EngineGuard guard(isa, 0);
      const RasterSummary s = RasterSummary::of(input);
      EXPECT_EQ(s.count, reference.count) << "w" << width;
      EXPECT_EQ(0, std::memcmp(&s.min, &reference.min, sizeof(float)));
      EXPECT_EQ(0, std::memcmp(&s.max, &reference.max, sizeof(float)));
      EXPECT_EQ(0, std::memcmp(&s.sum, &reference.sum, sizeof(double)));
      EXPECT_EQ(0, std::memcmp(&s.sum_squares, &reference.sum_squares,
                               sizeof(double)));
    }
  }
}

TEST(SimdDispatchTest, IsaNamesRoundTrip) {
  EXPECT_EQ(simd::isa_from_string("scalar"), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_from_string("sse2"), simd::Isa::kSse2);
  EXPECT_EQ(simd::isa_from_string("avx2"), simd::Isa::kAvx2);
  EXPECT_EQ(simd::isa_from_string("avx512"), std::nullopt);
  EXPECT_EQ(simd::isa_from_string(""), std::nullopt);
  for (const simd::Isa isa : runnable_isas()) {
    EXPECT_EQ(simd::isa_from_string(simd::to_string(isa)), isa);
  }
}

TEST(SimdDispatchTest, OverrideClampsAndRestores) {
  const std::optional<simd::Isa> saved = simd::isa_override();
  simd::set_isa_override(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_EQ(simd::isa_override(), simd::Isa::kScalar);
  simd::set_isa_override(std::nullopt);
  EXPECT_EQ(simd::active_isa(), simd::detected_isa());
  EXPECT_EQ(simd::isa_override(), std::nullopt);
  simd::set_isa_override(saved);
}

TEST(SimdDispatchTest, UnsupportedIsaThrows) {
  if (simd::detected_isa() == simd::Isa::kAvx2) {
    GTEST_SKIP() << "CPU supports every ISA the engine dispatches";
  }
  EXPECT_THROW(simd::set_isa_override(simd::Isa::kAvx2),
               std::invalid_argument);
  EXPECT_EQ(simd::isa_override(), std::nullopt) << "failed set must not stick";
}

TEST(SimdDispatchTest, EveryIsaHasRowFunctions) {
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
    EXPECT_NE(simd::laplacian_row(isa), nullptr);
    EXPECT_NE(simd::gaussian_row(isa), nullptr);
    EXPECT_NE(simd::median_row(isa), nullptr);
    EXPECT_NE(simd::flow_routing_row(isa), nullptr);
    EXPECT_NE(simd::slope_row(isa), nullptr);
    EXPECT_NE(simd::statistics_row(isa), nullptr);
  }
}

// Flow routing's argmax is tie-heavy on flat terrain; the vector path must
// reproduce the scalar first-wins rule exactly, not just on smooth images.
TEST(SimdFlowRoutingTest, TieBreaksMatchScalarOnPlateausAndSteps) {
  const KernelRegistry registry = standard_registry();
  const KernelPtr kernel = registry.create("flow-routing");
  const std::uint32_t width = 35;
  const std::uint32_t height = 23;

  // Plateau (all ties -> every cell a pit), a single sink, and a two-level
  // step where an entire column ties at the lower level.
  std::vector<grid::Grid<float>> inputs;
  inputs.emplace_back(width, height, 5.0F);
  inputs.emplace_back(width, height, 5.0F);
  inputs.back().at(17, 11) = 1.0F;
  inputs.emplace_back(width, height, 5.0F);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = width / 2; x < width; ++x) {
      inputs.back().at(x, y) = 2.0F;
    }
  }

  for (const grid::Grid<float>& input : inputs) {
    grid::Grid<float> reference(width, height);
    {
      EngineGuard guard(simd::Isa::kScalar, 0);
      reference = kernel->run_reference(input);
    }
    EXPECT_EQ(reference.at(17, 11), 0.0F) << "a pit routes nowhere";
    for (const simd::Isa isa : runnable_isas()) {
      EngineGuard guard(isa, 7);
      const grid::Grid<float> out = kernel->run_reference(input);
      expect_bits_equal(out, reference,
                        std::string("flow-routing ties isa=") +
                            simd::to_string(isa));
    }
  }
}

}  // namespace
}  // namespace das::kernels
