#include "simkit/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace das::sim {
namespace {

TEST(LogTest, EmitsAtOrAboveTheLevel) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kInfo);
  logger.log(LogLevel::kDebug, seconds(1), "net", "dropped");
  logger.log(LogLevel::kInfo, seconds(1), "net", "kept");
  logger.log(LogLevel::kError, seconds(1), "net", "also kept");
  EXPECT_EQ(out.str().find("dropped"), std::string::npos);
  EXPECT_NE(out.str().find("kept"), std::string::npos);
  EXPECT_NE(out.str().find("also kept"), std::string::npos);
}

TEST(LogTest, LineCarriesTimestampLevelAndComponent) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kTrace);
  logger.log(LogLevel::kWarn, milliseconds(1500), "pfs", "slow strip");
  const std::string line = out.str();
  EXPECT_NE(line.find("1.500000s"), std::string::npos);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("pfs:"), std::string::npos);
  EXPECT_NE(line.find("slow strip"), std::string::npos);
}

TEST(LogTest, NullSinkDisablesEverything) {
  Logger logger(nullptr, LogLevel::kTrace);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.log(LogLevel::kError, 0, "x", "y");  // must not crash
}

TEST(LogTest, LazyBodySkippedWhenFiltered) {
  std::ostringstream out;
  Logger logger(&out, LogLevel::kError);
  bool evaluated = false;
  logger.log_lazy(LogLevel::kDebug, 0, "x",
                  [&](std::ostream& msg) {
                    evaluated = true;
                    msg << "expensive";
                  });
  EXPECT_FALSE(evaluated);
  logger.log_lazy(LogLevel::kError, 0, "x",
                  [&](std::ostream& msg) {
                    evaluated = true;
                    msg << "cheap enough";
                  });
  EXPECT_TRUE(evaluated);
  EXPECT_NE(out.str().find("cheap enough"), std::string::npos);
}

TEST(LogTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST(LogTest, SetLevelAndSinkTakeEffect) {
  std::ostringstream a, b;
  Logger logger(&a, LogLevel::kOff);
  logger.log(LogLevel::kError, 0, "x", "nope");
  EXPECT_TRUE(a.str().empty());
  logger.set_level(LogLevel::kInfo);
  logger.set_sink(&b);
  logger.log(LogLevel::kInfo, 0, "x", "yes");
  EXPECT_TRUE(a.str().empty());
  EXPECT_FALSE(b.str().empty());
}

TEST(LogTest, GlobalLoggerExists) {
  EXPECT_EQ(Logger::global().level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace das::sim
