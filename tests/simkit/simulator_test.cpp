#include "simkit/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace das::sim {
namespace {

TEST(SimulatorTest, TimeStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0U);
}

TEST(SimulatorTest, ScheduleAfterAdvancesTime) {
  Simulator s;
  SimTime seen = -1;
  s.schedule_after(milliseconds(5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, milliseconds(5));
  EXPECT_EQ(s.now(), milliseconds(5));
}

TEST(SimulatorTest, DeliversInTimestampOrderAcrossNesting) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_at(15, [&] { order.push_back(2); });
    s.schedule_at(30, [&] { order.push_back(4); });
  });
  s.schedule_at(20, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatorTest, RunReturnsDeliveredCount) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 5U);
  EXPECT_EQ(s.events_delivered(), 5U);
}

TEST(SimulatorTest, StopHaltsDelivery) {
  Simulator s;
  int delivered = 0;
  s.schedule_at(1, [&] {
    ++delivered;
    s.stop();
  });
  s.schedule_at(2, [&] { ++delivered; });
  s.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(s.stopped());
  EXPECT_EQ(s.pending_events(), 1U);
}

TEST(SimulatorTest, RunUntilStopsBeforeLaterEvents) {
  Simulator s;
  int delivered = 0;
  s.schedule_at(10, [&] { ++delivered; });
  s.schedule_at(20, [&] { ++delivered; });
  s.schedule_at(30, [&] { ++delivered; });
  EXPECT_EQ(s.run_until(20), 2U);  // events at exactly the deadline run
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(s.now(), 20);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator s;
  s.schedule_at(5, [] {});
  s.run_until(100);
  EXPECT_EQ(s.now(), 100);
}

TEST(SimulatorTest, CancelStopsScheduledEvent) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator s;
  SimTime inner = -1;
  s.schedule_at(7, [&] {
    s.schedule_after(0, [&] { inner = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner, 7);
}

TEST(SimulatorTest, StepDeliversOneEvent) {
  Simulator s;
  int delivered = 0;
  s.schedule_at(1, [&] { ++delivered; });
  s.schedule_at(2, [&] { ++delivered; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(5, [] {}), "DAS_REQUIRE");
}

TEST(SimulatorDeathTest, NegativeDelayAborts) {
  Simulator s;
  EXPECT_DEATH(s.schedule_after(-1, [] {}), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::sim
