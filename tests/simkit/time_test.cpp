#include "simkit/time.hpp"

#include <gtest/gtest.h>

namespace das::sim {
namespace {

TEST(TimeTest, UnitConstructors) {
  EXPECT_EQ(nanoseconds(5), 5);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_EQ(milliseconds(5), 5'000'000);
  EXPECT_EQ(seconds(5), 5'000'000'000);
}

TEST(TimeTest, FractionalSecondsRound) {
  EXPECT_EQ(seconds(1.5), 1'500'000'000);
  EXPECT_EQ(seconds(0.0000000014), 1);  // rounds to nearest ns
  EXPECT_EQ(seconds(-2.5), -2'500'000'000);
}

TEST(TimeTest, ConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_seconds(microseconds(1)), 1e-6);
}

TEST(TransferTimeTest, ExactDivision) {
  // 1 MiB at 1 MiB/s = 1 s.
  EXPECT_EQ(transfer_time(1024 * 1024, 1024.0 * 1024), seconds(1));
}

TEST(TransferTimeTest, ZeroBytesIsFree) {
  EXPECT_EQ(transfer_time(0, 100.0), 0);
}

TEST(TransferTimeTest, TinyTransfersNeverTakeZeroTime) {
  // 1 byte at 100 GB/s would truncate to 0 ns; the model clamps to 1 ns so
  // event ordering stays strict.
  EXPECT_GE(transfer_time(1, 1e11), 1);
}

TEST(TransferTimeTest, ScalesLinearly) {
  const auto one = transfer_time(1'000'000, 1e6);
  const auto ten = transfer_time(10'000'000, 1e6);
  EXPECT_EQ(ten, 10 * one);
}

TEST(TimeTest, InfinityIsLargerThanAnyPracticalTime) {
  EXPECT_GT(kTimeInfinity, seconds(86400LL * 365 * 100));
}

}  // namespace
}  // namespace das::sim
