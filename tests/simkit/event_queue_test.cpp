#include "simkit/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace das::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0U);
  EXPECT_EQ(q.total_pushed(), 0U);
}

TEST(EventQueueTest, PopsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); }, "");
  q.push(10, [&] { order.push_back(1); }, "");
  q.push(20, [&] { order.push_back(2); }, "");
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.push(42, [&order, i] { order.push_back(i); }, "");
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.push(50, [] {}, "");
  q.push(5, [] {}, "");
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10, [&] { fired = true; }, "");
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelledEventSkippedByNextTimeAndPop) {
  EventQueue q;
  const EventId early = q.push(10, [] {}, "early");
  q.push(20, [] {}, "late");
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
  const Event ev = q.pop();
  EXPECT_EQ(ev.when, 20);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {}, "");
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {}, "");
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1, [] {}, "");
  q.push(2, [] {}, "");
  q.push(3, [] {}, "");
  EXPECT_EQ(q.size(), 3U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 2U);
  q.pop();
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueueTest, TotalPushedIsMonotonic) {
  EventQueue q;
  const EventId a = q.push(1, [] {}, "");
  q.cancel(a);
  q.push(2, [] {}, "");
  EXPECT_EQ(q.total_pushed(), 2U);
}

TEST(EventQueueTest, TagIsPreserved) {
  EventQueue q;
  q.push(1, [] {}, "my-tag");
  EXPECT_STREQ(q.pop().tag, "my-tag");
}

TEST(EventQueueDeathTest, PopOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.pop(), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::sim
