#include "simkit/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace das::sim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NearbySeedsAreDecorrelated) {
  // SplitMix64 seeding should make consecutive seeds unrelated.
  Rng a(1000), b(1001);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkIsDeterministicPerName) {
  const Rng parent(7);
  Rng f1 = parent.fork("alpha");
  Rng f2 = parent.fork("alpha");
  Rng f3 = parent.fork("beta");
  const std::uint64_t v1 = f1.next_u64();
  EXPECT_EQ(v1, f2.next_u64());
  EXPECT_NE(v1, f3.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversWholeRange) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8U);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(42);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateIsApproximate) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ScaledNormal) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngDeathTest, InvalidBoundsAbort) {
  Rng rng(1);
  EXPECT_DEATH(rng.uniform_int(5, 4), "DAS_REQUIRE");
  EXPECT_DEATH(rng.uniform_real(1.0, 1.0), "DAS_REQUIRE");
  EXPECT_DEATH(rng.bernoulli(1.5), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::sim
