#include "simkit/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace das::sim {
namespace {

TEST(CounterTest, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(GaugeTest, TimeWeightedAverage) {
  TimeWeightedGauge g;
  g.set(0, 10.0);   // 10 held for [0, 100)
  g.set(100, 20.0); // 20 held for [100, 300)
  EXPECT_DOUBLE_EQ(g.average(300), (10.0 * 100 + 20.0 * 200) / 300.0);
}

TEST(GaugeTest, AverageBeforeFirstUpdateIsCurrent) {
  TimeWeightedGauge g;
  EXPECT_DOUBLE_EQ(g.average(50), 0.0);
  g.set(10, 7.0);
  EXPECT_DOUBLE_EQ(g.average(10), 7.0);
}

TEST(GaugeTest, TracksMaximum) {
  TimeWeightedGauge g;
  g.set(0, 1.0);
  g.set(1, 9.0);
  g.set(2, 3.0);
  EXPECT_DOUBLE_EQ(g.maximum(), 9.0);
  EXPECT_DOUBLE_EQ(g.current(), 3.0);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramTest, MinMax) {
  Histogram h;
  h.record(5.0);
  h.record(-1.0);
  h.record(3.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(HistogramTest, NearestRankQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(HistogramTest, QuantileAfterInterleavedRecords) {
  Histogram h;
  h.record(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  h.record(1.0);  // forces a re-sort on next query
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, QuantileZeroIsMinimum) {
  Histogram h;
  h.record(9.0);
  h.record(4.0);
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
}

TEST(HistogramTest, SummaryMatchesQuantiles) {
  Histogram h;
  for (int i = 1; i <= 200; ++i) h.record(i);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 200U);
  EXPECT_DOUBLE_EQ(s.mean, h.mean());
  EXPECT_DOUBLE_EQ(s.p50, h.quantile(0.5));
  EXPECT_DOUBLE_EQ(s.p95, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, h.quantile(0.99));
  EXPECT_DOUBLE_EQ(s.max, h.max());
}

TEST(HistogramTest, SummaryOfEmptyIsAllZero) {
  const Histogram h;
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  a.record(1.0);
  a.record(3.0);
  Histogram b;
  b.record(2.0);
  b.record(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4U);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  a.merge(Histogram{});  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 4U);
}

TEST(HistogramTest, MergeOfTwoEmptiesStaysEmpty) {
  Histogram a;
  a.merge(Histogram{});
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  EXPECT_EQ(a.summary().count, 0U);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsTheOtherDistribution) {
  Histogram a;
  Histogram b;
  b.record(2.0);
  b.record(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  // The source is untouched.
  EXPECT_EQ(b.count(), 2U);
}

TEST(HistogramTest, MergeOfSingleSamplesKeepsQuantilesExact) {
  Histogram a;
  a.record(5.0);
  Histogram b;
  b.record(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 5.0);
}

TEST(HistogramTest, MergeOrderDoesNotChangeTheDistribution) {
  // Property: folding per-node shards into a cluster-wide histogram must
  // give the same distribution regardless of merge order. Build 8 shards of
  // deterministic pseudo-random samples and merge forward vs. reversed.
  std::vector<Histogram> shards(8);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / 1e6;
  };
  for (Histogram& shard : shards) {
    for (int i = 0; i < 100; ++i) shard.record(next());
  }
  Histogram forward;
  for (const Histogram& shard : shards) forward.merge(shard);
  Histogram reversed;
  for (std::size_t i = shards.size(); i-- > 0;) reversed.merge(shards[i]);

  EXPECT_EQ(forward.count(), 800U);
  EXPECT_EQ(forward.count(), reversed.count());
  // Sums differ only by fp association order across the 8 shard partials.
  EXPECT_NEAR(forward.sum(), reversed.sum(), 1e-9 * forward.sum());
  EXPECT_DOUBLE_EQ(forward.min(), reversed.min());
  EXPECT_DOUBLE_EQ(forward.max(), reversed.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(forward.quantile(q), reversed.quantile(q)) << "q=" << q;
  }
}

TEST(GaugeTest, SameInstantUpdateReplacesValue) {
  TimeWeightedGauge g;
  g.set(5, 10.0);
  g.set(5, 20.0);  // zero-width interval: no time at 10 accrues
  EXPECT_DOUBLE_EQ(g.current(), 20.0);
  EXPECT_DOUBLE_EQ(g.average(10), 20.0);
}

TEST(HistogramDeathTest, QuantileOfEmptyAborts) {
  Histogram h;
  EXPECT_DEATH(h.quantile(0.5), "DAS_REQUIRE");
}

TEST(RegistryTest, FindOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(5);
  EXPECT_EQ(reg.counter("x").value(), 5U);
  EXPECT_EQ(reg.counters().size(), 1U);
}

TEST(RegistryTest, ReportListsAllMetrics) {
  MetricsRegistry reg;
  reg.counter("reads").add(3);
  reg.histogram("latency").record(0.5);
  reg.gauge("depth").set(0, 2.0);
  const std::string report = reg.report(100);
  EXPECT_NE(report.find("reads = 3"), std::string::npos);
  EXPECT_NE(report.find("latency"), std::string::npos);
  EXPECT_NE(report.find("depth"), std::string::npos);
}

}  // namespace
}  // namespace das::sim
