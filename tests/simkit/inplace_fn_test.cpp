#include "simkit/inplace_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace das::sim {
namespace {

TEST(InplaceFnTest, DefaultConstructedIsEmpty) {
  InplaceFn<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  InplaceFn<void()> null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InplaceFnTest, SmallCapturesStayInline) {
  // Eight captured words — the upper end of the simulator's scheduling
  // lambdas — must not allocate.
  std::array<std::uint64_t, 8> words{};
  words.fill(7);
  InplaceFn<std::uint64_t()> fn = [words]() {
    std::uint64_t sum = 0;
    for (const auto w : words) sum += w;
    return sum;
  };
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 56U);
}

TEST(InplaceFnTest, OutsizedCapturesFallBackToHeap) {
  std::array<std::uint64_t, 32> big{};
  big[31] = 42;
  InplaceFn<std::uint64_t()> fn = [big]() { return big[31]; };
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 42U);
}

TEST(InplaceFnTest, HoldsMoveOnlyCapturesThatStdFunctionRejects) {
  auto owned = std::make_unique<int>(11);
  InplaceFn<int()> fn = [owned = std::move(owned)]() { return *owned; };
  EXPECT_EQ(fn(), 11);
}

TEST(InplaceFnTest, MoveTransfersTheCallableAndEmptiesTheSource) {
  int calls = 0;
  InplaceFn<void()> a = [&calls]() { ++calls; };
  InplaceFn<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InplaceFn<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InplaceFnTest, MoveAssignDestroysThePreviousCallable) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> count;
    ~Probe() {
      if (count != nullptr) ++*count;
    }
    Probe(std::shared_ptr<int> c) : count(std::move(c)) {}
    Probe(Probe&& other) noexcept : count(std::move(other.count)) {}
    void operator()() const {}
  };
  InplaceFn<void()> fn = Probe(counter);
  const int destroyed_before = *counter;
  fn = []() {};
  EXPECT_EQ(*counter, destroyed_before + 1);
}

TEST(InplaceFnTest, ResetDestroysAndEmpties) {
  auto owned = std::make_shared<int>(5);
  InplaceFn<void()> fn = [owned]() {};
  const long uses = owned.use_count();
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(owned.use_count(), uses - 1);
}

TEST(InplaceFnTest, ForwardsArgumentsAndReturnValues) {
  InplaceFn<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);

  // Move-only arguments must be forwarded, not copied.
  InplaceFn<int(std::unique_ptr<int>)> take =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(take(std::make_unique<int>(9)), 9);
}

TEST(InplaceFnTest, AcceptsAStdFunction) {
  // The simulator's public schedule() API accepts anything callable,
  // including std::function values built elsewhere.
  std::function<int()> wrapped = []() { return 3; };
  InplaceFn<int()> fn = wrapped;
  EXPECT_EQ(fn(), 3);
}

TEST(InplaceFnTest, ManyMovesPreserveTheCallable) {
  std::vector<InplaceFn<int()>> fns;
  for (int i = 0; i < 100; ++i) {
    fns.push_back([i]() { return i; });  // reallocation forces moves
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fns[static_cast<std::size_t>(i)](), i);
  }
}

}  // namespace
}  // namespace das::sim
