#include "simkit/trace.hpp"

#include <gtest/gtest.h>

#include <map>

namespace das::sim {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.complete(0, 10, 0, TraceTrack::kDisk, "disk.read", "disk");
  t.instant(5, 0, TraceTrack::kCache, "cache.hit", "cache");
  t.async_begin(0, 0, 1, "run", "request");
  t.async_end(10, 0, 1, "run", "request");
  t.set_process_name(0, "server0");
  EXPECT_EQ(t.event_count(), 0U);
}

TEST(TracerTest, CompleteSpanCarriesDuration) {
  Tracer t;
  t.enable();
  t.complete(100, 350, 3, TraceTrack::kNicEgress, "net.tx", "net",
             "{\"bytes\":42}");
  ASSERT_EQ(t.events().size(), 1U);
  const TraceEvent& e = t.events().front();
  EXPECT_EQ(e.ph, 'X');
  EXPECT_EQ(e.ts, 100);
  EXPECT_EQ(e.dur, 250);
  EXPECT_EQ(e.pid, 3U);
  EXPECT_EQ(e.tid, static_cast<std::uint32_t>(TraceTrack::kNicEgress));
}

TEST(TracerTest, InstantNowUsesBoundClock) {
  Tracer t;
  t.enable();
  SimTime fake_now = 0;
  t.set_clock([&fake_now]() { return fake_now; });
  fake_now = 777;
  t.instant_now(1, TraceTrack::kPrefetch, "prefetch.issue", "prefetch");
  ASSERT_EQ(t.events().size(), 1U);
  EXPECT_EQ(t.events().front().ts, 777);
  EXPECT_EQ(t.events().front().ph, 'i');
}

TEST(TracerTest, ScopeIdsAreUniqueAndNeverZero) {
  Tracer t;
  const std::uint64_t a = t.next_scope_id();
  const std::uint64_t b = t.next_scope_id();
  EXPECT_NE(a, 0U);
  EXPECT_NE(b, 0U);
  EXPECT_NE(a, b);
}

TEST(TracerTest, AsyncEventsLandOnRequestTrack) {
  Tracer t;
  t.enable();
  t.async_begin(10, 2, 7, "as.run", "request");
  t.async_end(90, 2, 7, "as.run", "request");
  ASSERT_EQ(t.events().size(), 2U);
  for (const TraceEvent& e : t.events()) {
    EXPECT_EQ(e.tid, static_cast<std::uint32_t>(TraceTrack::kRequest));
    EXPECT_EQ(e.id, 7U);
  }
  EXPECT_EQ(t.events()[0].ph, 'b');
  EXPECT_EQ(t.events()[1].ph, 'e');
}

TEST(TracerTest, SortedEventsAreMonotoneByTimestamp) {
  Tracer t;
  t.enable();
  t.instant(30, 0, TraceTrack::kCache, "c", "cache");
  t.instant(10, 0, TraceTrack::kCache, "a", "cache");
  t.instant(20, 0, TraceTrack::kCache, "b", "cache");
  const auto sorted = t.sorted_events();
  ASSERT_EQ(sorted.size(), 3U);
  EXPECT_LE(sorted[0].ts, sorted[1].ts);
  EXPECT_LE(sorted[1].ts, sorted[2].ts);
  EXPECT_EQ(sorted[0].name, "a");
  EXPECT_EQ(sorted[2].name, "c");
}

TEST(TracerTest, MetadataIsDeduplicated) {
  Tracer t;
  t.enable();
  t.set_process_name(4, "server4");
  t.set_process_name(4, "server4");  // repeated cluster construction
  t.set_track_name(4, TraceTrack::kDisk, "disk");
  t.set_track_name(4, TraceTrack::kDisk, "disk");
  EXPECT_EQ(t.event_count(), 2U);
}

TEST(TracerTest, ClearKeepsEnabledState) {
  Tracer t;
  t.enable();
  t.instant(1, 0, TraceTrack::kCache, "x", "cache");
  t.clear();
  EXPECT_EQ(t.event_count(), 0U);
  EXPECT_TRUE(t.enabled());
}

TEST(TracerTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(TracerTest, ToJsonHasTraceEventShape) {
  Tracer t;
  t.enable();
  t.set_process_name(0, "server0");
  t.complete(1000, 3000, 0, TraceTrack::kDisk, "disk.read", "disk",
             "{\"bytes\":8}");
  t.instant(1500, 0, TraceTrack::kCache, "cache.hit", "cache");
  t.async_begin(1000, 0, 1, "as.run", "request");
  t.async_end(3000, 0, 1, "as.run", "request");
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);  // ns -> us
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x1\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bytes\":8}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, EveryAsyncBeginHasAMatchingEnd) {
  Tracer t;
  t.enable();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    t.async_begin(i * 10, 0, i, "as.run", "request");
  }
  for (std::uint64_t i = 1; i <= 5; ++i) {
    t.async_end(i * 10 + 100, 0, i, "as.run", "request");
  }
  std::map<std::uint64_t, int> open;
  for (const TraceEvent& e : t.sorted_events()) {
    if (e.ph == 'b') ++open[e.id];
    if (e.ph == 'e') --open[e.id];
  }
  for (const auto& [id, balance] : open) EXPECT_EQ(balance, 0) << id;
}

TEST(TracerDeathTest, CompleteWithNegativeSpanAborts) {
  Tracer t;
  t.enable();
  EXPECT_DEATH(t.complete(10, 5, 0, TraceTrack::kDisk, "x", "disk"),
               "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::sim
