// Model-based fuzz for the indexed-heap EventQueue.
//
// Drives the real queue and a trivially-correct reference model (a sorted
// (when, seq) multimap plus a live-id set) through the same seeded stream
// of push / cancel / pop operations, and checks after every step that the
// queue agrees with the model on size, next_time, delivery order (FIFO
// among equal timestamps), and cancellation results — including stale
// handles for events that already fired.
#include "simkit/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "simkit/random.hpp"

namespace das::sim {
namespace {

struct ModelEntry {
  EventId id = 0;
  std::uint64_t payload = 0;
};

class ReferenceModel {
 public:
  void push(SimTime when, std::uint64_t seq, EventId id,
            std::uint64_t payload) {
    live_.emplace(std::make_pair(when, seq), ModelEntry{id, payload});
  }

  bool cancel(EventId id) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->second.id == id) {
        live_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  [[nodiscard]] SimTime next_time() const { return live_.begin()->first.first; }

  ModelEntry pop() {
    ModelEntry entry = live_.begin()->second;
    live_.erase(live_.begin());
    return entry;
  }

 private:
  // Ordered by (when, push sequence): exactly the queue's delivery order.
  std::map<std::pair<SimTime, std::uint64_t>, ModelEntry> live_;
};

TEST(EventQueueFuzzTest, AgreesWithReferenceModelUnderChurn) {
  Rng rng(20260805);
  EventQueue queue;
  ReferenceModel model;
  std::uint64_t next_payload = 0;
  std::uint64_t delivered_payload_sum = 0;
  std::uint64_t model_payload_sum = 0;
  std::vector<EventId> issued;  // includes fired/cancelled (stale) handles

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.45 || queue.empty()) {
      // Push. A narrow time range forces many equal-timestamp ties so the
      // FIFO tie-break is exercised constantly.
      const auto when = static_cast<SimTime>(rng.uniform_int(0, 50));
      const std::uint64_t payload = next_payload++;
      const std::uint64_t seq_before = queue.total_pushed();
      const EventId id = queue.push(
          when, [payload, &delivered_payload_sum]() {
            delivered_payload_sum += payload;
          },
          "fuzz");
      model.push(when, seq_before, id, payload);
      issued.push_back(id);
    } else if (roll < 0.65) {
      // Cancel a random handle — often stale (already fired or cancelled).
      const EventId id = issued[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1))];
      EXPECT_EQ(queue.cancel(id), model.cancel(id));
    } else {
      // Pop and deliver.
      ASSERT_FALSE(model.empty());
      EXPECT_EQ(queue.next_time(), model.next_time());
      Event ev = queue.pop();
      const ModelEntry expect = model.pop();
      EXPECT_EQ(ev.id, expect.id);
      ev.action();
      model_payload_sum += expect.payload;
      EXPECT_EQ(delivered_payload_sum, model_payload_sum);
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
  }

  // Drain: remaining events must come out in exact model order.
  while (!model.empty()) {
    EXPECT_EQ(queue.next_time(), model.next_time());
    EXPECT_EQ(queue.pop().id, model.pop().id);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueFuzzTest, SlotReuseNeverResurrectsCancelledHandles) {
  EventQueue queue;
  // Exercise generation tagging: fire and cancel through the same slots
  // many times; every retired handle must stay dead forever.
  std::vector<EventId> retired;
  for (int round = 0; round < 200; ++round) {
    const EventId a = queue.push(round, []() {}, "a");
    const EventId b = queue.push(round, []() {}, "b");
    EXPECT_TRUE(queue.cancel(a));
    EXPECT_FALSE(queue.cancel(a));  // already cancelled
    (void)queue.pop();              // fires b
    EXPECT_FALSE(queue.cancel(b));  // already fired
    retired.push_back(a);
    retired.push_back(b);
    for (const EventId id : retired) {
      EXPECT_FALSE(queue.cancel(id));
    }
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.total_pushed(), 400U);
}

}  // namespace
}  // namespace das::sim
