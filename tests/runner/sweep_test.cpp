#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace das::runner {
namespace {

TEST(SweepTest, RunsEveryIndexExactlyOnceSerially) {
  std::vector<int> hits(100, 0);
  parallel_for_indexed(1, hits.size(),
                       [&](std::size_t i) { hits[i] += 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(SweepTest, RunsEveryIndexExactlyOnceInParallel) {
  // Atomic per-slot counters: any double-execution or skip shows up as a
  // count != 1 regardless of interleaving.
  std::vector<std::atomic<int>> hits(257);
  parallel_for_indexed(8, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, ZeroCountIsANoOp) {
  int calls = 0;
  parallel_for_indexed(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SweepTest, ResultsLandInTheCallersSlots) {
  // The sweep-runner contract: workers write to disjoint pre-sized slots,
  // and the caller reads them in index order afterwards.
  std::vector<std::size_t> out(64, 0);
  parallel_for_indexed(4, out.size(),
                       [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepTest, FirstExceptionPropagatesAfterAllWorkersDrain) {
  std::atomic<int> completed{0};
  try {
    parallel_for_indexed(4, 32, [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("cell 7 failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the cell exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 7 failed");
  }
  // Everything that ran to completion did so fully; no use-after-join.
  EXPECT_LE(completed.load(), 31);
}

TEST(SweepTest, SerialPathPropagatesExceptionsToo) {
  EXPECT_THROW(parallel_for_indexed(1, 4,
                                    [](std::size_t i) {
                                      if (i == 2) throw std::logic_error("x");
                                    }),
               std::logic_error);
}

TEST(SweepTest, MoreJobsThanWorkStillCoversEveryIndex) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for_indexed(16, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1U);
}

}  // namespace
}  // namespace das::runner
