#include "runner/paper.hpp"

#include <gtest/gtest.h>

namespace das::runner {
namespace {

TEST(PaperConfigTest, KernelsMatchTableOne) {
  EXPECT_EQ(paper_kernels(),
            (std::vector<std::string>{"flow-routing", "flow-accumulation",
                                      "gaussian-2d"}));
}

TEST(PaperConfigTest, ClusterSplitsNodesOneToOne) {
  const auto cfg = paper_cluster(24);
  EXPECT_EQ(cfg.storage_nodes, 12U);
  EXPECT_EQ(cfg.compute_nodes, 12U);
  EXPECT_EQ(cfg.total_nodes(), 24U);
}

TEST(PaperConfigTest, WorkloadGeometryGivesOneStripHalo) {
  const auto spec = paper_workload("flow-routing", 24);
  EXPECT_EQ(spec.data_bytes, 24ULL << 30);
  EXPECT_EQ(spec.strip_size, 1ULL << 20);
  // One row is one element short of a strip, so the 8-neighbour reach
  // ((W+1) * E) is exactly one strip.
  EXPECT_EQ((static_cast<std::uint64_t>(spec.width()) + 1) *
                spec.element_size,
            spec.strip_size);
  EXPECT_FALSE(spec.with_data);
}

TEST(PaperConfigTest, RunCellProducesAPopulatedReport) {
  const auto report =
      run_cell(das::core::Scheme::kDAS, "gaussian-2d", 1, 8);
  EXPECT_EQ(report.scheme, "DAS");
  EXPECT_EQ(report.kernel, "gaussian-2d");
  EXPECT_GT(report.exec_seconds, 0.0);
  EXPECT_TRUE(report.offloaded);
}

TEST(ShapeCheckTest, FormattingListsEveryCheck) {
  std::vector<ShapeCheck> checks;
  checks.push_back(ShapeCheck{"DAS vs TS", "over 30%", 0.42, true});
  checks.push_back(ShapeCheck{"NAS slower", "NAS > TS", 1.5, false});
  const std::string out = format_checks(checks);
  EXPECT_NE(out.find("DAS vs TS"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("NO"), std::string::npos);
}

TEST(PaperConfigDeathTest, OddNodeCountsAbort) {
  EXPECT_DEATH(paper_cluster(25), "DAS_REQUIRE");
}

}  // namespace
}  // namespace das::runner
