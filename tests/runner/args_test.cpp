#include "runner/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace das::runner {
namespace {

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(ArgsTest, EqualsForm) {
  const Args args = parse({"--kernel=gaussian-2d", "--gib=24"});
  EXPECT_EQ(args.get("kernel", ""), "gaussian-2d");
  EXPECT_EQ(args.get_int("gib", 0), 24);
}

TEST(ArgsTest, SpaceForm) {
  const Args args = parse({"--nodes", "48"});
  EXPECT_EQ(args.get_int("nodes", 0), 48);
}

TEST(ArgsTest, BareFlagIsTrue) {
  const Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(ArgsTest, DefaultsWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get("kernel", "flow-routing"), "flow-routing");
  EXPECT_EQ(args.get_int("gib", 6), 6);
  EXPECT_FALSE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.has("kernel"));
}

TEST(ArgsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
}

TEST(ArgsTest, UnusedFlagsAreReported) {
  const Args args = parse({"--kernel=x", "--typo=1"});
  EXPECT_EQ(args.get("kernel", ""), "x");
  EXPECT_EQ(args.unused(), "typo");
}

TEST(ArgsTest, AllFlagsTouchedMeansNoUnused) {
  const Args args = parse({"--a=1", "--b=2"});
  args.get_int("a", 0);
  args.get_int("b", 0);
  EXPECT_EQ(args.unused(), "");
}

TEST(ArgsTest, MalformedArgumentThrows) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

}  // namespace
}  // namespace das::runner
